"""Naive consensus devices — the engines' favorite victims.

These are honest, reasonable-looking devices that *do* solve their
problems in favorable settings (no faults, or small spreads) and are
exactly the kind of candidate the impossibility engines exist to
refute on inadequate graphs.  They are also building blocks for the
examples and benchmarks.

All of them follow the same simple shape: gossip values for a number
of rounds, then decide by some aggregation rule.
"""

from __future__ import annotations

import statistics
from collections.abc import Mapping
from typing import Any

from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice


class FloodValueDevice(SyncDevice):
    """Shared machinery: broadcast own input, collect one value per
    port for ``rounds`` rounds (re-broadcasting own input each round),
    then decide with :meth:`aggregate`.

    State: ``(values_seen, decided_value_or_None)`` where
    ``values_seen`` is a tuple of (port, round, value) observations.
    """

    def __init__(self, rounds: int = 1) -> None:
        if rounds < 1:
            raise ValueError("need at least one exchange round")
        self.rounds = rounds

    def init_state(self, ctx: NodeContext) -> State:
        return ((), None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        if round_index >= self.rounds:
            return {}
        return {port: ctx.input for port in ctx.ports}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        seen, decided = state
        if round_index < self.rounds:
            observations = tuple(
                (port, round_index, inbox[port])
                for port in ctx.ports
                if inbox.get(port) is not None
            )
            seen = seen + observations
        if round_index == self.rounds - 1 and decided is None:
            decided = self.aggregate(ctx, [value for _, _, value in seen])
        return (seen, decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[1]

    def aggregate(self, ctx: NodeContext, values: list[Any]) -> Any:
        raise NotImplementedError


class MajorityVoteDevice(FloodValueDevice):
    """Broadcast the input once; decide the majority of all values seen
    (own input included), breaking ties toward ``default``."""

    def __init__(self, default: Any = 0, rounds: int = 1) -> None:
        super().__init__(rounds)
        self.default = default

    def aggregate(self, ctx: NodeContext, values: list[Any]) -> Any:
        tally: dict[Any, int] = {}
        for value in [ctx.input, *values]:
            tally[value] = tally.get(value, 0) + 1
        best = max(tally.values())
        winners = sorted(
            (v for v, count in tally.items() if count == best), key=repr
        )
        if len(winners) == 1:
            return winners[0]
        return self.default if self.default in winners else winners[0]


class MidpointDevice(FloodValueDevice):
    """Broadcast the input once; decide the midpoint of the extremes of
    all values seen — a natural simple-approximate-agreement attempt."""

    def aggregate(self, ctx: NodeContext, values: list[Any]) -> float:
        everything = [float(ctx.input), *map(float, values)]
        return (min(everything) + max(everything)) / 2.0


class MedianDevice(FloodValueDevice):
    """Broadcast the input once; decide the median of all values seen —
    a natural (ε,δ,γ)-agreement attempt."""

    def aggregate(self, ctx: NodeContext, values: list[Any]) -> float:
        everything = [float(ctx.input), *map(float, values)]
        return float(statistics.median(everything))


class EchoInputDevice(FloodValueDevice):
    """Decides its own input, ignoring everyone — trivially solves
    (ε,δ,γ)-agreement when ``ε >= δ`` and nothing else."""

    def aggregate(self, ctx: NodeContext, values: list[Any]) -> Any:
        return ctx.input


class MinimumDevice(FloodValueDevice):
    """Broadcast once; decide the minimum value seen (a crash-tolerant
    rule that Byzantine faults demolish)."""

    def aggregate(self, ctx: NodeContext, values: list[Any]) -> Any:
        return min([ctx.input, *values], key=lambda v: (repr(type(v)), v))
