"""Trace renderers and the paper index."""

import pytest

import repro.paper as paper
from repro.analysis.traces import (
    render_fire_times,
    render_sync_decisions,
    render_sync_messages,
    render_timed_events,
)
from repro.graphs import triangle
from repro.protocols import MajorityVoteDevice, RelayFireDevice
from repro.runtime.sync import run, uniform_system
from repro.runtime.timed import make_timed_system, run_timed


class TestSyncTraces:
    def setup_method(self):
        g = triangle()
        self.behavior = run(
            uniform_system(g, MajorityVoteDevice(), {"a": 1, "b": 1, "c": 0}),
            2,
        )

    def test_message_table(self):
        out = render_sync_messages(self.behavior)
        assert "a → b" in out and "r0" in out and "r1" in out

    def test_message_table_restricted(self):
        out = render_sync_messages(self.behavior, nodes=["a", "b"])
        assert "a → b" in out and "c" not in out.replace("decisions", "")

    def test_decision_table(self):
        out = render_sync_decisions(self.behavior)
        assert "node" in out and "round" in out


class TestTimedTraces:
    def setup_method(self):
        g = triangle()
        factories = {u: (lambda: RelayFireDevice(fire_at=2.5)) for u in g.nodes}
        self.behavior = run_timed(
            make_timed_system(g, factories, {"a": 1, "b": 0, "c": 0}, delay=1.0),
            horizon=4.0,
        )

    def test_event_timeline(self):
        out = render_timed_events(self.behavior)
        assert "start" in out and "fire" in out and "receive" in out

    def test_timeline_respects_horizon(self):
        out = render_timed_events(self.behavior, through=0.5)
        assert "fire" not in out

    def test_fire_table(self):
        out = render_fire_times(self.behavior)
        assert "2.5" in out


class TestPaperIndex:
    def test_all_results_resolve_to_callables(self):
        for result in paper.RESULTS:
            resolved = paper.resolve(result.engine)
            assert callable(resolved), result.identifier

    def test_benchmarks_exist_on_disk(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for result in paper.RESULTS:
            assert (root / result.benchmark).exists(), result.benchmark

    def test_every_theorem_present(self):
        identifiers = {r.identifier for r in paper.RESULTS}
        for expected in (
            "theorem-1-nodes",
            "theorem-1-connectivity",
            "theorem-2",
            "theorem-4",
            "theorem-5",
            "theorem-6",
            "theorem-8",
            "corollary-12",
            "corollary-13",
            "corollary-14",
            "corollary-15",
        ):
            assert expected in identifiers

    def test_by_id(self):
        assert paper.by_id("theorem-8").section == "7"
        with pytest.raises(KeyError):
            paper.by_id("theorem-99")

    def test_print_index(self, capsys):
        paper.print_index()
        out = capsys.readouterr().out
        assert "theorem-1-nodes" in out
        assert "Scaling" in out
