"""AUTH — weakening the Fault axiom (Section 2's remark).

With simulated unforgeable signatures, Dolev–Strong agreement works on
the very graphs the theorems forbid: the triangle with f = 1, and even
n = f + 2.  The table contrasts the unauthenticated engine verdict
with the authenticated protocol outcome on the same graph.
"""

from conftest import report

from repro.analysis import format_table
from repro.core import refute_node_bound
from repro.graphs import complete_graph, triangle
from repro.problems import ByzantineAgreementSpec
from repro.protocols import (
    MajorityVoteDevice,
    authenticated_consensus_devices,
)
from repro.runtime.sync import SilentDevice, TwoFacedDevice, make_system, run

SPEC = ByzantineAgreementSpec()


def _auth_run(n, f, faulty_builder):
    g = complete_graph(n)
    devices = dict(authenticated_consensus_devices(g, f))
    honest_reference = authenticated_consensus_devices(g, f)
    faulty = list(g.nodes)[-f:]
    for node in faulty:
        devices[node] = faulty_builder(honest_reference[node])
    inputs = {u: (1 if i < n - f else 0) for i, u in enumerate(g.nodes)}
    behavior = run(make_system(g, devices, inputs), f + 1)
    correct = [u for u in g.nodes if u not in faulty]
    return SPEC.check(inputs, behavior.decisions(), correct)


def test_triangle_with_signatures(benchmark):
    verdict = benchmark(
        lambda: _auth_run(3, 1, lambda honest: SilentDevice())
    )
    assert verdict.ok

    # Contrast: the same graph WITHOUT signatures.
    g = triangle()
    witness = refute_node_bound(
        g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=3
    )
    rows = [
        ("oral messages (Fault axiom holds)", "IMPOSSIBLE — witness found"),
        ("signed messages (Fault axiom weakened)", "agreement reached"),
    ]
    report(
        "AUTH: the triangle, with and without signatures",
        format_table(("model", "outcome"), rows),
    )
    assert witness.found and verdict.ok


def test_two_faced_general_with_signatures(benchmark):
    verdict = benchmark(
        lambda: _auth_run(
            3,
            1,
            lambda honest: TwoFacedDevice(honest, honest, ["n0"]),
        )
    )
    assert verdict.ok


def test_broadcast_at_n_equals_f_plus_2(benchmark):
    """Dolev–Strong *broadcast* tolerates any f < n: four nodes, two
    Byzantine faults (far below 3f+1 = 7), correct general — every
    correct node accepts the general's value.

    (Full consensus validity additionally needs a correct majority,
    n > 2f; broadcast does not.)
    """
    from repro.protocols import DolevStrongBroadcastDevice

    g = complete_graph(4)
    f = 2

    def once():
        devices = {
            u: DolevStrongBroadcastDevice(u, general="n0", max_faults=f)
            for u in g.nodes
        }
        devices["n2"] = SilentDevice()
        devices["n3"] = SilentDevice()
        inputs = {"n0": 1, "n1": None, "n2": None, "n3": None}
        behavior = run(make_system(g, devices, inputs), f + 1)
        return behavior.decisions()

    decisions = benchmark(once)
    assert decisions["n0"] == 1 and decisions["n1"] == 1
