"""Sweeps, tables and figure renderings for the benchmark harness."""

from .diagrams import (
    diamond_figure,
    eight_ring_figure,
    hexagon_figure,
    ring_figure,
    triangle_figure,
    witness_chain_figure,
)
from .sweep import (
    SWEEP_HEADERS,
    SweepRow,
    connectivity_sweep,
    node_bound_sweep,
    sweep_store_key,
)
from .adversary_search import SearchResult, search_agreement_attacks
from .parallel import (
    ItemError,
    ParallelRunner,
    available_parallelism,
    fork_available,
)
from .runstore import RunStore, RunStoreError, Shard, atomic_write_text
from .campaign import (
    CampaignConfig,
    CampaignResult,
    Counterexample,
    DegradationFrontier,
    FRONTIER_HEADERS,
    FrontierRow,
    NodeFault,
    SearchStats,
    campaign_store_key,
    degradation_frontier,
    frontier_store_key,
    replay_counterexample,
    run_campaign,
    sample_fault_plan,
    shrink_counterexample,
)
from .convergence import (
    ConvergenceCurve,
    measure_convergence,
    theoretical_dlpsw_factor,
)
from .report import ReportLine, full_report, render_report
from .witness_io import (
    campaign_to_dict,
    load_campaign,
    load_json_file,
    save_campaign,
    save_witness,
    witness_to_dict,
)
from .metrics import COMPARE_HEADERS, RunMetrics, compare, measure
from .tables import format_table
from .traces import (
    render_fire_times,
    render_sync_decisions,
    render_sync_messages,
    render_timed_events,
)

__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "Counterexample",
    "DegradationFrontier",
    "FRONTIER_HEADERS",
    "FrontierRow",
    "ItemError",
    "NodeFault",
    "ParallelRunner",
    "RunStore",
    "RunStoreError",
    "SWEEP_HEADERS",
    "Shard",
    "SweepRow",
    "atomic_write_text",
    "campaign_store_key",
    "campaign_to_dict",
    "degradation_frontier",
    "frontier_store_key",
    "sweep_store_key",
    "replay_counterexample",
    "run_campaign",
    "sample_fault_plan",
    "save_campaign",
    "shrink_counterexample",
    "connectivity_sweep",
    "diamond_figure",
    "eight_ring_figure",
    "COMPARE_HEADERS",
    "RunMetrics",
    "ConvergenceCurve",
    "ReportLine",
    "SearchStats",
    "measure_convergence",
    "theoretical_dlpsw_factor",
    "SearchResult",
    "available_parallelism",
    "fork_available",
    "full_report",
    "load_campaign",
    "load_json_file",
    "render_report",
    "save_witness",
    "witness_to_dict",
    "compare",
    "format_table",
    "measure",
    "render_fire_times",
    "render_sync_decisions",
    "render_sync_messages",
    "render_timed_events",
    "search_agreement_attacks",
    "hexagon_figure",
    "node_bound_sweep",
    "ring_figure",
    "triangle_figure",
    "witness_chain_figure",
]
