"""T1a — Theorem 1, node bound (Section 3.1).

Regenerates: the triangle + hexagon covering figures, the scenario
chain E1/E2/E3, and the sweep table showing the sharp 3f+1 threshold
(engine witness at n <= 3f, EIG success at n >= 3f+1).
"""

from conftest import report

from repro.analysis import (
    SWEEP_HEADERS,
    format_table,
    hexagon_figure,
    node_bound_sweep,
    triangle_figure,
    witness_chain_figure,
)
from repro.core import refute_node_bound
from repro.graphs import complete_graph, triangle
from repro.protocols import MajorityVoteDevice


def test_triangle_chain(benchmark):
    g = triangle()
    devices = {u: MajorityVoteDevice() for u in g.nodes}

    witness = benchmark(
        lambda: refute_node_bound(g, devices, max_faults=1, rounds=3)
    )

    assert witness.found
    assert len(witness.checked) == 3
    assert len(witness.links) == 2
    # E1 and E3 satisfy validity for the majority device; the chain
    # breaks in the mixed-input middle behavior E2 — the paper's shape.
    assert [c.label for c in witness.violated] == ["E2"]
    benchmark.extra_info["violated"] = [c.label for c in witness.violated]
    report(
        "T1a: Byzantine agreement, 3f+1 node bound (triangle, f=1)",
        "\n".join(
            [
                triangle_figure(),
                "",
                hexagon_figure(),
                "",
                witness.describe(),
                "",
                "chain: "
                + witness_chain_figure(
                    [c.label for c in witness.checked],
                    [str(link.node) for link in witness.links],
                ),
            ]
        ),
    )


def test_general_case_two_faults(benchmark):
    g = complete_graph(6)
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    witness = benchmark(
        lambda: refute_node_bound(g, devices, max_faults=2, rounds=3)
    )
    assert witness.found
    for checked in witness.checked:
        assert len(checked.constructed.correct_nodes) >= 4  # n - f


def test_threshold_sweep(benchmark):
    rows = benchmark(lambda: node_bound_sweep((1, 2)))
    table = format_table(
        SWEEP_HEADERS,
        [r.as_tuple() for r in rows],
        "Theorem 1 node-bound sweep (f = 1, 2)",
    )
    report("T1a: threshold sweep", table)
    # Shape: impossible strictly below 3f+1, solvable at and above.
    for row in rows:
        if row.n_nodes <= 3 * row.max_faults:
            assert "IMPOSSIBLE" in row.outcome
        else:
            assert "SOLVED" in row.outcome
