"""Parallel drivers must be invisible: identical results at any jobs.

Every parallel entry point (``run_campaign``, ``degradation_frontier``,
the sweeps, and indexed ``search_agreement_attacks``) merges worker
results deterministically, so ``jobs=N`` output is byte-identical to
the serial scan.  These tests pin that contract, serializing results
to sorted JSON where a serializer exists.
"""

import json

from repro.analysis.adversary_search import search_agreement_attacks
from repro.analysis.campaign import (
    CampaignConfig,
    degradation_frontier,
    run_campaign,
)
from repro.analysis.parallel import (
    ParallelRunner,
    available_parallelism,
    fork_available,
)
from repro.analysis.sweep import connectivity_sweep, node_bound_sweep
from repro.analysis.witness_io import campaign_to_dict
from repro.graphs.builders import complete_graph
from repro.protocols.eig import eig_devices
from repro.protocols.naive import MajorityVoteDevice


def _naive_factory(graph):
    return {u: MajorityVoteDevice() for u in graph.nodes}


def _eig_factory(graph):
    return dict(eig_devices(graph, 1))


def _as_json(result):
    return json.dumps(campaign_to_dict(result), sort_keys=True)


class TestParallelRunner:
    def test_serial_fallback_preserves_order(self):
        runner = ParallelRunner(1)
        assert not runner.parallel
        assert runner.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_preserves_order(self):
        runner = ParallelRunner(2)
        items = list(range(10))
        assert runner.map(lambda x: x + 1, items) == [x + 1 for x in items]

    def test_empty_and_singleton_inputs(self):
        assert ParallelRunner(4).map(lambda x: x, []) == []
        assert ParallelRunner(4).map(lambda x: -x, [7]) == [-7]

    def test_available_parallelism_positive(self):
        assert available_parallelism() >= 1
        assert isinstance(fork_available(), bool)


class TestCampaignParallelEquivalence:
    def _config(self, factory, attempts, seed, links=2):
        return CampaignConfig(
            graph=complete_graph(4),
            device_factory=factory,
            rounds=3,
            attempts=attempts,
            seed=seed,
            max_link_faults=links,
        )

    def test_breaking_campaign_identical_across_jobs(self):
        config = self._config(_naive_factory, attempts=40, seed=11)
        serial = run_campaign(config, jobs=1)
        parallel = run_campaign(config, jobs=2)
        assert serial.broken and parallel.broken
        assert _as_json(serial) == _as_json(parallel)

    def test_surviving_campaign_identical_across_jobs(self):
        # EIG tolerates the sampled link faults at this tiny budget.
        config = self._config(_eig_factory, attempts=6, seed=5, links=1)
        serial = run_campaign(config, jobs=1)
        parallel = run_campaign(config, jobs=2)
        assert _as_json(serial) == _as_json(parallel)

    def test_frontier_identical_across_jobs(self):
        config = self._config(_naive_factory, attempts=12, seed=3)
        serial = degradation_frontier(
            config, max_link_faults=2, attempts_per_level=12
        )
        parallel = degradation_frontier(
            config, max_link_faults=2, attempts_per_level=12, jobs=2
        )
        assert serial == parallel


class TestSweepParallelEquivalence:
    def test_node_bound_sweep(self):
        assert node_bound_sweep((1,)) == node_bound_sweep((1,), jobs=2)

    def test_connectivity_sweep(self):
        assert connectivity_sweep() == connectivity_sweep(jobs=2)


class TestAdversarySearchParallelEquivalence:
    def test_indexed_results_identical_across_jobs(self):
        g = complete_graph(4)
        serial = search_agreement_attacks(
            g, _naive_factory, 1, 3, attempts=30, seed=2, jobs=1
        )
        parallel = search_agreement_attacks(
            g, _naive_factory, 1, 3, attempts=30, seed=2, jobs=2
        )
        assert serial == parallel
        assert serial.broken  # majority vote falls quickly

    def test_legacy_stream_untouched_by_default(self):
        # jobs=None keeps the historical single-stream sampling; its
        # draws differ from indexed mode but remain self-consistent.
        g = complete_graph(4)
        first = search_agreement_attacks(
            g, _naive_factory, 1, 3, attempts=30, seed=2
        )
        second = search_agreement_attacks(
            g, _naive_factory, 1, 3, attempts=30, seed=2
        )
        assert first == second
