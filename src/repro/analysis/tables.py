"""Plain-text table rendering for benchmark reports.

The paper's "evaluation" is its theorems; our benchmarks regenerate
each construction and print the outcome in rows.  This module keeps
that output consistent and dependency-free.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[Any]], title: str = ""
) -> str:
    """Fixed-width table with a rule under the header."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells):
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths)).rstrip()

    out = []
    if title:
        out.append(title)
        out.append("=" * len(title))
    out.append(line(headers))
    out.append(line(["-" * w for w in widths]))
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    if value is None:
        return "—"
    if value is True:
        return "yes"
    if value is False:
        return "no"
    return str(value)
