"""Bounded, content-addressed behavior memoization.

Systems here are deterministic by axiom — a (system, rounds,
FaultPlan) triple has exactly **one** behavior and one injection
trace.  That turns re-execution into a pure cache-lookup problem: the
campaign engine's delta-debugging shrinker re-runs hundreds of
overlapping plan subsets, a replay re-runs the exact shrunk
configuration, and scenario cut-outs re-run the same system at the
same horizon.  This module provides:

* :class:`BehaviorCache` — a bounded LRU mapping canonical fingerprint
  strings to results, with hit/miss counters (``cache.stats()``).
* :func:`fingerprint` / :func:`plan_fingerprint` /
  :func:`graph_fingerprint` — canonical content keys.  Fingerprints
  hash *values* (sorted node/edge names, the fault plan's JSON form),
  never object identities, so a rebuilt-but-equal configuration hits.
* :func:`memoized_run` — a drop-in for ``run()`` keyed by
  ``(rounds, fault plan)`` with the cache stored on the system object
  itself, so the memo lives exactly as long as the system and two
  different systems can never alias.

Correctness contract: a cache hit returns the *same objects* a fresh
execution would have produced equal objects to.  That is only sound
because devices are pure and behaviors/traces are treated as immutable
values everywhere in this repo — the executors never mutate a behavior
after returning it.
"""

from __future__ import annotations

import hashlib
import json
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from .. import obs
from .faults import FaultPlan, InjectionTrace, SyncFaultInjector

if TYPE_CHECKING:  # pragma: no cover - types only
    from ..graphs.graph import CommunicationGraph
    from .sync.behavior import SyncBehavior
    from .sync.system import SyncSystem

_MEMO_ATTR = "_behavior_memo"


class BehaviorCache:
    """A bounded LRU cache from fingerprint strings to results.

    ``get`` returns ``None`` on a miss (cached values are never
    ``None``), moves hits to the MRU end, and counts every lookup;
    ``put`` evicts from the LRU end once ``maxsize`` is exceeded.
    """

    __slots__ = ("_data", "maxsize", "hits", "misses")

    def __init__(self, maxsize: int = 512) -> None:
        if maxsize <= 0:
            raise ValueError("maxsize must be positive")
        self._data: OrderedDict[str, Any] = OrderedDict()
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0

    def get(self, key: str) -> Any | None:
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value: Any) -> None:
        if value is None:
            raise ValueError("cached values must not be None")
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def clear(self) -> None:
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def stats(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }

    def describe(self) -> str:
        s = self.stats()
        total = s["hits"] + s["misses"]
        rate = (100.0 * s["hits"] / total) if total else 0.0
        return (
            f"cache: {s['hits']} hits / {s['misses']} misses "
            f"({rate:.0f}% hit rate), {s['size']}/{s['maxsize']} entries"
        )


# -- fingerprints ----------------------------------------------------------


def fingerprint(*parts: Any) -> str:
    """SHA-256 over the ``repr`` of ``parts``.

    Callers are responsible for passing *canonical* parts — strings,
    numbers, and tuples/sorted lists thereof — so that equal content
    yields equal keys regardless of construction order.
    """
    digest = hashlib.sha256(repr(parts).encode("utf-8"))
    return digest.hexdigest()


def json_fingerprint(value: Any) -> str:
    """Fingerprint of any JSON-serialisable value, via its canonical
    (sorted-keys) JSON form.

    The shared primitive behind :func:`plan_fingerprint` and the run
    store's content-addressed shard keys: equal values fingerprint
    identically however they were assembled, and the key survives a
    round-trip through JSON persistence.
    """
    return fingerprint(json.dumps(value, sort_keys=True))


def plan_fingerprint(plan: FaultPlan | None) -> str:
    """Canonical fingerprint of a fault plan (``None`` = fault-free).

    Uses the plan's JSON form with sorted keys, so plans that are equal
    as values fingerprint identically however they were assembled.
    """
    if plan is None:
        return "fault-free"
    return json_fingerprint(plan.to_dict())


def graph_fingerprint(graph: "CommunicationGraph") -> str:
    """Canonical fingerprint of a communication graph's shape."""
    return fingerprint(
        tuple(sorted(map(str, graph.nodes))),
        tuple(sorted(f"{u}->{v}" for (u, v) in graph.edges)),
    )


# -- memoized execution ----------------------------------------------------


def behavior_cache_of(system: "SyncSystem") -> BehaviorCache:
    """The per-system behavior cache (created on first use).

    Stored in the (frozen) system's ``__dict__`` — the
    ``functools.cached_property`` trick — so its lifetime is the
    system's and keys need not include system identity at all.
    """
    cache = system.__dict__.get(_MEMO_ATTR)
    if cache is None:
        cache = BehaviorCache(maxsize=64)
        system.__dict__[_MEMO_ATTR] = cache
    return cache


def memoized_run(
    system: "SyncSystem",
    rounds: int,
    plan: FaultPlan | None = None,
    cache: BehaviorCache | None = None,
) -> tuple["SyncBehavior", InjectionTrace | None]:
    """Run ``system`` (optionally under a fault ``plan``), memoized.

    Returns ``(behavior, injection trace)`` — the trace is ``None``
    for fault-free runs.  Keys are ``(rounds, plan fingerprint)``
    against the per-system cache (or an explicit shared ``cache``, in
    which case system identity is part of the key via the compiled
    plan's id — share caches across systems only through the campaign
    layer, which keys by content).  Determinism makes caching the
    trace sound: same system + same plan ⇒ identical trace.
    """
    from .sync.executor import run

    if cache is None:
        cache = behavior_cache_of(system)
        key = fingerprint("sync-run", rounds, plan_fingerprint(plan))
    else:
        key = fingerprint("sync-run", id(system), rounds, plan_fingerprint(plan))

    if obs.is_enabled():
        # Telemetry-transparent caching: traced entries live under a
        # separate key and carry the run-scope events the original
        # execution emitted, so a hit replays exactly the event stream
        # a fresh run would produce — cache warmth never changes the
        # trace.  Hit/miss facts themselves are host-scope events.
        okey = key + ":obs"
        entry = cache.get(okey)
        if entry is not None:
            result, payload = entry
            obs.emit(obs.CACHE_HIT, cache="behavior", op="sync-run")
            obs.replay(payload)
            return result
        obs.emit(obs.CACHE_MISS, cache="behavior", op="sync-run")
        injector = SyncFaultInjector(plan) if plan is not None else None
        with obs.capture() as capsule:
            behavior = run(system, rounds, injector)
        obs.replay(capsule.payload())
        result = (behavior, injector.trace if injector is not None else None)
        cache.put(okey, (result, capsule.run_payload()))
        return result

    hit = cache.get(key)
    if hit is not None:
        return hit
    injector = SyncFaultInjector(plan) if plan is not None else None
    behavior = run(system, rounds, injector)
    result = (behavior, injector.trace if injector is not None else None)
    cache.put(key, result)
    return result


__all__ = [
    "BehaviorCache",
    "behavior_cache_of",
    "fingerprint",
    "graph_fingerprint",
    "json_fingerprint",
    "memoized_run",
    "plan_fingerprint",
]
