"""Randomized adversary search: attack a protocol empirically.

The engines *construct* counterexamples on inadequate graphs; on
adequate graphs the theorems are silent, and the natural question is
"can some adversary still break this implementation?".  This harness
searches randomized Byzantine strategies — seeded liars, two-faced
splits, replayed message scripts, crash times — against a protocol
configuration and reports the first specification violation found (or
that the budget survived).

Useful both as a testing tool for new protocols and as an empirical
companion to the bounds: the search breaks every naive device on
adequate graphs quickly, yet exhausts its budget against EIG.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from .. import obs
from ..graphs.graph import CommunicationGraph, NodeId
from ..problems.byzantine import ByzantineAgreementSpec
from ..runtime.memo import BehaviorCache, fingerprint
from ..problems.spec import SpecVerdict
from ..runtime.sync.adversary import (
    CrashDevice,
    RandomLiarDevice,
    ReplayDevice,
    SilentDevice,
    TwoFacedDevice,
)
from ..runtime.sync.device import SyncDevice
from ..runtime.sync.executor import run
from ..runtime.sync.system import make_system


@dataclass(frozen=True)
class Attack:
    """One adversarial configuration: faulty nodes, their strategies,
    and the input assignment."""

    faulty: Mapping[NodeId, str]
    inputs: Mapping[NodeId, Any]
    seed: int


@dataclass(frozen=True)
class SearchResult:
    """Outcome of an adversary search."""

    attempts: int
    broken: bool
    attack: Attack | None
    verdict: SpecVerdict | None

    def describe(self) -> str:
        if not self.broken:
            return f"protocol survived {self.attempts} randomized attacks"
        assert self.attack is not None and self.verdict is not None
        strategies = ", ".join(
            f"{node}={kind}" for node, kind in self.attack.faulty.items()
        )
        return (
            f"broken after {self.attempts} attacks by [{strategies}] with "
            f"inputs {dict(self.attack.inputs)}: {self.verdict.describe()}"
        )


STRATEGIES = ("silent", "liar", "crash", "replay", "two-faced")
_STRATEGIES = STRATEGIES  # backwards-compatible alias


def sample_adversary(
    kind: str,
    node: NodeId,
    honest: SyncDevice,
    graph: CommunicationGraph,
    rounds: int,
    rng: random.Random,
    value_pool: Sequence[Any],
) -> tuple[SyncDevice, tuple]:
    """Build one faulty device of the named strategy ``kind``, drawing
    any randomness from ``rng``, and return it together with the
    canonical tuple of parameters drawn.  The parameter tuple fully
    determines the device's behavior (the honest base device is fixed
    per search), so it can key a behavior memo: two attempts that drew
    the same strategies, parameters and inputs run identically."""
    if kind == "silent":
        return SilentDevice(), ()
    if kind == "liar":
        seed = rng.randrange(2**30)
        return RandomLiarDevice(seed, value_pool), (seed,)
    if kind == "crash":
        crash_round = rng.randrange(rounds + 1)
        return CrashDevice(honest, crash_round=crash_round), (crash_round,)
    if kind == "replay":
        scripts = {
            neighbor: [rng.choice(value_pool) for _ in range(rounds)]
            for neighbor in graph.neighbors(node)
        }
        params = tuple(
            (repr(neighbor), tuple(script))
            for neighbor, script in scripts.items()
        )
        return ReplayDevice(scripts), params
    if kind == "two-faced":
        neighbors = list(graph.neighbors(node))
        rng.shuffle(neighbors)
        half = neighbors[: max(1, len(neighbors) // 2)]
        return TwoFacedDevice(honest, honest, half), tuple(
            repr(u) for u in half
        )
    raise ValueError(kind)


def build_adversary(
    kind: str,
    node: NodeId,
    honest: SyncDevice,
    graph: CommunicationGraph,
    rounds: int,
    rng: random.Random,
    value_pool: Sequence[Any],
) -> SyncDevice:
    """Build one faulty device of the named strategy ``kind``, drawing
    any randomness from ``rng`` (deterministic given the rng state).
    Shared with the campaign engine (:mod:`repro.analysis.campaign`)."""
    device, _ = sample_adversary(
        kind, node, honest, graph, rounds, rng, value_pool
    )
    return device


def _attack_attempt(
    graph: CommunicationGraph,
    device_factory: Callable[[CommunicationGraph], Mapping[NodeId, SyncDevice]],
    max_faults: int,
    rounds: int,
    value_pool: Sequence[Any],
    spec: ByzantineAgreementSpec,
    rng: random.Random,
    cache: BehaviorCache | None = None,
) -> tuple[Mapping[NodeId, str], Mapping[NodeId, Any], Any]:
    """One attack attempt drawn from ``rng``; returns the strategy map,
    the inputs, and the spec verdict.

    ``cache`` memoizes verdicts by attack content — the drawn
    ``(node, strategy, parameters)`` triples plus the inputs.  Small
    strategy spaces (silent / crash / two-faced on small graphs) repeat
    often across attempts, so colliding attempts skip execution; the
    result is unchanged because equal content means an identical run.
    """
    nodes = list(graph.nodes)
    honest = dict(device_factory(graph))
    faulty_nodes = rng.sample(nodes, max_faults)
    strategies: dict[NodeId, str] = {}
    devices = dict(honest)
    drawn: list[tuple[str, str, tuple]] = []
    for node in faulty_nodes:
        kind = rng.choice(STRATEGIES)
        strategies[node] = kind
        devices[node], params = sample_adversary(
            kind, node, honest[node], graph, rounds, rng, value_pool
        )
        drawn.append((repr(node), kind, params))
    inputs = {u: rng.choice(value_pool) for u in nodes}
    key = None
    if cache is not None:
        key = fingerprint(
            "attack", rounds, tuple(sorted(drawn)),
            tuple((repr(u), repr(v)) for u, v in inputs.items()),
        )
        if obs.is_enabled():
            # Telemetry-transparent memoization: a hit replays the
            # run-scope events recorded when the entry was filled, so
            # the trace is independent of cache warmth (hit/miss facts
            # are host-scope).
            okey = key + ":obs"
            entry = cache.get(okey)
            if entry is not None:
                verdict, payload = entry
                obs.emit(obs.CACHE_HIT, cache="attack", op="attempt")
                obs.replay(payload)
                return (strategies, inputs, verdict)
            obs.emit(obs.CACHE_MISS, cache="attack", op="attempt")
            with obs.capture() as capsule:
                behavior = run(make_system(graph, devices, inputs), rounds)
            obs.replay(capsule.payload())
            correct = [u for u in nodes if u not in strategies]
            verdict = spec.check(inputs, behavior.decisions(), correct)
            cache.put(okey, (verdict, capsule.run_payload()))
            return (strategies, inputs, verdict)
        verdict = cache.get(key)
        if verdict is not None:
            return (strategies, inputs, verdict)
    behavior = run(make_system(graph, devices, inputs), rounds)
    correct = [u for u in nodes if u not in strategies]
    verdict = spec.check(inputs, behavior.decisions(), correct)
    if cache is not None and key is not None:
        cache.put(key, verdict)
    return (strategies, inputs, verdict)


def search_agreement_attacks(
    graph: CommunicationGraph,
    device_factory: Callable[[CommunicationGraph], Mapping[NodeId, SyncDevice]],
    max_faults: int,
    rounds: int,
    attempts: int = 200,
    seed: int = 0,
    value_pool: Sequence[Any] = (0, 1),
    spec: ByzantineAgreementSpec | None = None,
    jobs: int | None = None,
    cache: BehaviorCache | None = None,
) -> SearchResult:
    """Randomly attack a Byzantine-agreement protocol.

    ``device_factory(graph)`` builds a fresh honest device assignment;
    each attempt replaces a random ``f``-subset with random strategies
    and random inputs, runs, and checks the spec over correct nodes.

    ``jobs=None`` (the default) keeps the historical sampling format:
    one rng stream threaded through all attempts.  Any integer ``jobs``
    switches to *indexed* sampling — a private stream per attempt,
    seeded by ``(seed, attempt)`` — which is what lets attempts fan
    out across a process pool.  Indexed results are identical for
    every ``jobs`` value (``jobs=1`` runs the same samples serially);
    they just differ from the legacy stream's draws.

    Pass a :class:`~repro.runtime.memo.BehaviorCache` as ``cache`` to
    memoize verdicts by attack content (repeated silent / crash /
    two-faced draws skip execution) and to read hit/miss counters
    afterwards — this is what ``repro attack --cache-stats`` prints.
    The counters only accumulate in-process: a forked pool's hits stay
    in the workers.
    """
    spec = spec or ByzantineAgreementSpec()
    if jobs is None:
        rng = random.Random(seed)
        for attempt in range(1, attempts + 1):
            obs.emit(obs.ATTEMPT_START, attempt=attempt)
            strategies, inputs, verdict = _attack_attempt(
                graph, device_factory, max_faults, rounds, value_pool, spec,
                rng, cache,
            )
            obs.emit(obs.ATTEMPT_END, attempt=attempt, ok=verdict.ok)
            if not verdict.ok:
                return SearchResult(
                    attempts=attempt,
                    broken=True,
                    attack=Attack(
                        faulty=strategies, inputs=inputs, seed=seed
                    ),
                    verdict=verdict,
                )
        return SearchResult(
            attempts=attempts, broken=False, attack=None, verdict=None
        )

    from .parallel import ParallelRunner

    def probe(attempt: int):
        rng = random.Random(f"{seed}:attack:{attempt}")
        strategies, inputs, verdict = _attack_attempt(
            graph, device_factory, max_faults, rounds, value_pool, spec, rng,
            cache,
        )
        return (attempt, strategies, inputs, verdict)

    runner = ParallelRunner(jobs)
    batch = max(4 * runner.jobs, 8)
    for lo in range(1, attempts + 1, batch):
        hi = min(lo + batch, attempts + 1)
        # Captured merge: replay worker telemetry in index order and
        # stop at the first violation, exactly like a serial scan.
        for (attempt, strategies, inputs, verdict), payload in (
            runner.map_captured(probe, range(lo, hi))
        ):
            obs.emit(obs.ATTEMPT_START, attempt=attempt)
            obs.replay(payload)
            obs.emit(obs.ATTEMPT_END, attempt=attempt, ok=verdict.ok)
            if not verdict.ok:
                return SearchResult(
                    attempts=attempt,
                    broken=True,
                    attack=Attack(
                        faulty=strategies, inputs=inputs, seed=seed
                    ),
                    verdict=verdict,
                )
    return SearchResult(
        attempts=attempts, broken=False, attack=None, verdict=None
    )
