"""Witness serialization round-trips through JSON."""

import json

import pytest

from repro.analysis.witness_io import (
    load_campaign,
    load_json_file,
    save_witness,
    witness_to_dict,
)
from repro.core import refute_node_bound, refute_weak_agreement
from repro.graphs import triangle
from repro.protocols import ExchangeOnceWeakDevice, MajorityVoteDevice


def sync_witness():
    g = triangle()
    return refute_node_bound(
        g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=3
    )


class TestWitnessToDict:
    def test_structure(self):
        data = witness_to_dict(sync_witness())
        assert data["problem"] == "byzantine-agreement"
        assert data["found"] is True
        assert len(data["behaviors"]) == 3
        labels = [b["label"] for b in data["behaviors"]]
        assert labels == ["E1", "E2", "E3"]
        violated = [b for b in data["behaviors"] if not b["ok"]]
        assert violated and violated[0]["violations"]

    def test_json_safe(self):
        data = witness_to_dict(sync_witness(), include_traces=True)
        text = json.dumps(data)  # must not raise
        assert "message_traces" in text

    def test_timed_witness_serializes(self):
        g = triangle()
        witness = refute_weak_agreement(
            {u: (lambda: ExchangeOnceWeakDevice(2.0)) for u in g.nodes},
            delta=1.0,
            decision_deadline=3.0,
        )
        data = witness_to_dict(witness)
        json.dumps(data)
        assert data["extra"]["k"] == witness.extra["k"]

    def test_links_present(self):
        data = witness_to_dict(sync_witness())
        assert data["links"][0]["between"] == ["E1", "E2"]


class TestSaveWitness:
    def test_writes_file(self, tmp_path):
        path = save_witness(sync_witness(), tmp_path / "w.json")
        loaded = json.loads(path.read_text())
        assert loaded["max_faults"] == 1
        assert loaded["graph"]["nodes"] == ["a", "b", "c"]


class TestAtomicSaves:
    def test_save_witness_leaves_no_temp_files(self, tmp_path):
        save_witness(sync_witness(), tmp_path / "w.json")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["w.json"]

    def test_save_witness_replaces_existing(self, tmp_path):
        target = tmp_path / "w.json"
        target.write_text("{}")
        save_witness(sync_witness(), target)
        assert json.loads(target.read_text())["found"] is True


class TestLoadJsonFile:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            load_json_file(tmp_path / "gone.json", "witness")

    def test_truncated_json_names_the_file(self, tmp_path):
        path = tmp_path / "half.json"
        path.write_text('{"kind": "campaign", "graph": {"nodes": ["a"')
        with pytest.raises(ValueError, match="corrupt or truncated"):
            load_json_file(path, "campaign summary")
        with pytest.raises(ValueError, match=str(path)):
            load_json_file(path, "campaign summary")

    def test_valid_json_round_trips(self, tmp_path):
        path = tmp_path / "ok.json"
        path.write_text('{"a": [1, 2]}')
        assert load_json_file(path) == {"a": [1, 2]}


class TestLoadCampaign:
    def test_rejects_non_campaign_payload(self, tmp_path):
        path = tmp_path / "w.json"
        path.write_text(json.dumps({"kind": "witness"}))
        with pytest.raises(ValueError, match="not a campaign file"):
            load_campaign(path)

    def test_cli_replay_of_corrupt_file_is_clean_error(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        path = tmp_path / "broken.json"
        path.write_text('{"kind": "campaign", "found": {"faulty_no')
        code = main(["campaign", "--replay", str(path)])
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "corrupt or truncated" in captured.err
        assert "Traceback" not in captured.err
