"""Edge-case coverage for the synchronous adversary devices: crashing
at round zero, degenerate two-faced splits, and replay scripts shorter
than the horizon."""

from repro.graphs import triangle
from repro.protocols import MajorityVoteDevice
from repro.runtime.sync import (
    CrashDevice,
    ReplayDevice,
    TwoFacedDevice,
    run,
    uniform_system,
)


def _with_faulty_a(device, inputs=None):
    g = triangle()
    system = uniform_system(
        g, MajorityVoteDevice(), inputs or {u: 1 for u in g.nodes}
    )
    return system.with_devices({"a": device})


class TestCrashDevice:
    def test_crash_at_round_zero_is_born_silent(self):
        system = _with_faulty_a(CrashDevice(MajorityVoteDevice(), 0))
        behavior = run(system, 2)
        assert behavior.edge("a", "b").messages == (None, None)
        assert behavior.edge("a", "c").messages == (None, None)
        # State never advances past init either.
        states = behavior.node("a").states
        assert all(s == states[0] for s in states)

    def test_crash_mid_run_sends_prefix_only(self):
        inner = MajorityVoteDevice(rounds=3)
        g = triangle()
        system = uniform_system(
            g, MajorityVoteDevice(rounds=3), {u: 1 for u in g.nodes}
        ).with_devices({"a": CrashDevice(inner, 1)})
        behavior = run(system, 3)
        assert behavior.edge("a", "b").messages == (1, None, None)


class TestTwoFacedDevice:
    def test_empty_split_runs_face_two_everywhere(self):
        two_faced = TwoFacedDevice(
            MajorityVoteDevice(), MajorityVoteDevice(), ports_for_one=[]
        )
        system = _with_faulty_a(two_faced)
        honest = _with_faulty_a(MajorityVoteDevice())
        assert (
            dict(run(system, 2).edge_behaviors)
            == dict(run(honest, 2).edge_behaviors)
        )

    def test_full_split_runs_face_one_everywhere(self):
        two_faced = TwoFacedDevice(
            MajorityVoteDevice(), MajorityVoteDevice(), ports_for_one=["b", "c"]
        )
        system = _with_faulty_a(two_faced)
        honest = _with_faulty_a(MajorityVoteDevice())
        assert (
            dict(run(system, 2).edge_behaviors)
            == dict(run(honest, 2).edge_behaviors)
        )

    def test_split_faces_see_disjoint_inboxes(self):
        # Face one talks to b only, face two to c only; each face's
        # majority is computed from its own port subset.
        two_faced = TwoFacedDevice(
            MajorityVoteDevice(), MajorityVoteDevice(), ports_for_one=["b"]
        )
        system = _with_faulty_a(two_faced, {"a": 1, "b": 0, "c": 1})
        behavior = run(system, 2)
        state_one, state_two = behavior.node("a").states[-1]
        assert state_one != state_two


class TestReplayDevice:
    def test_script_shorter_than_horizon_sends_none_after_end(self):
        replay = ReplayDevice({"b": [7], "c": [8, 9]})
        system = _with_faulty_a(replay)
        behavior = run(system, 4)
        assert behavior.edge("a", "b").messages == (7, None, None, None)
        assert behavior.edge("a", "c").messages == (8, 9, None, None)
        assert replay.scripted_rounds() == 2

    def test_unlisted_port_sends_nothing(self):
        replay = ReplayDevice({"b": [1, 2]})
        system = _with_faulty_a(replay)
        behavior = run(system, 2)
        assert behavior.edge("a", "c").messages == (None, None)
