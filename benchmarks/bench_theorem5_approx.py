"""T5 — Theorem 5, simple approximate agreement (Section 6.1).

Regenerates: the hexagon covering with real inputs 0/1 and the
three-scenario chain in which validity pins the endpoint outputs and
agreement cannot contract the middle — for both the midpoint and the
median device families, on both inadequate regimes.
"""

from conftest import report

from repro.core import refute_simple_connectivity, refute_simple_node_bound
from repro.graphs import complete_graph, diamond, triangle
from repro.protocols import MedianDevice, MidpointDevice


def test_midpoint_on_triangle(benchmark):
    g = triangle()
    devices = {u: MidpointDevice() for u in g.nodes}
    witness = benchmark(
        lambda: refute_simple_node_bound(g, devices, 1, rounds=3)
    )
    assert witness.found
    report("T5: simple approximate agreement (midpoint)", witness.describe())


def test_median_on_triangle(benchmark):
    g = triangle()
    devices = {u: MedianDevice() for u in g.nodes}
    witness = benchmark(
        lambda: refute_simple_node_bound(g, devices, 1, rounds=3)
    )
    assert witness.found


def test_connectivity_variant(benchmark):
    g = diamond()
    devices = {u: MidpointDevice() for u in g.nodes}
    witness = benchmark(
        lambda: refute_simple_connectivity(g, devices, 1, rounds=4)
    )
    assert witness.found


def test_general_case(benchmark):
    g = complete_graph(6)
    devices = {u: MidpointDevice() for u in g.nodes}
    witness = benchmark(
        lambda: refute_simple_node_bound(g, devices, 2, rounds=3)
    )
    assert witness.found
