"""Trace export: JSONL round-trip, summaries, executor instrumentation."""

import json

import pytest

from repro import obs
from repro.graphs import complete_graph
from repro.protocols import MajorityVoteDevice
from repro.runtime.sync import make_system, run
from repro.testing import bare_execute_plan
from repro.runtime.plan import compile_sync_plan


def _run_workload():
    graph = complete_graph(3)
    system = make_system(
        graph,
        {u: MajorityVoteDevice() for u in graph.nodes},
        {u: i % 2 for i, u in enumerate(graph.nodes)},
    )
    return run(system, 2)


class TestTraceRoundTrip:
    def test_write_then_read(self, tmp_path):
        obs.enable()
        _run_workload()
        path = str(tmp_path / "t.jsonl")
        count = obs.write_trace(path)
        trace = obs.read_trace(path)
        assert trace["meta"]["format"] == obs.TRACE_FORMAT
        assert trace["meta"]["events"] == count == len(trace["events"])
        assert trace["meta"]["dropped"] == 0
        kinds = {e["kind"] for e in trace["events"]}
        assert obs.ROUND_START in kinds and obs.MESSAGE_DELIVERY in kinds
        assert trace["metrics"]["run.rounds.total"] == 2
        # 3 nodes x 2 out-edges x 2 rounds
        assert trace["metrics"]["run.messages.delivered"] == 12

    def test_trace_lines_are_canonical_json(self):
        obs.enable()
        _run_workload()
        for line in obs.trace_lines():
            assert line == json.dumps(
                json.loads(line), sort_keys=True, separators=(",", ":")
            )

    def test_host_events_excluded_from_trace(self, tmp_path):
        obs.enable()
        obs.emit(obs.ROUND_START, round=0)
        obs.emit(obs.CACHE_HIT, cache="behavior")
        path = str(tmp_path / "t.jsonl")
        obs.write_trace(path)
        kinds = [e["kind"] for e in obs.read_trace(path)["events"]]
        assert kinds == [obs.ROUND_START]

    def test_read_rejects_non_trace(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type":"meta","format":"something-else"}\n')
        with pytest.raises(ValueError):
            obs.read_trace(str(path))

    def test_export_without_enable_raises(self):
        with pytest.raises(ValueError):
            list(obs.trace_lines())

    def test_registry_from_trace(self, tmp_path):
        obs.enable()
        _run_workload()
        path = str(tmp_path / "t.jsonl")
        obs.write_trace(path)
        live = dict(obs.get_registry().run_counters())
        rebuilt = obs.registry_from_trace(path)
        assert dict(rebuilt.run_counters()) == live


class TestSummaries:
    def test_live_summary_sections(self):
        obs.enable()
        _run_workload()
        obs.emit(obs.CACHE_MISS, cache="behavior")
        out = obs.render_live_summary()
        assert "run events by kind:" in out
        assert "run metrics:" in out
        assert "process-local" in out

    def test_live_summary_without_enable(self):
        assert obs.render_live_summary() == "telemetry was never enabled"

    def test_profile_views(self, tmp_path):
        obs.enable()
        _run_workload()
        path = str(tmp_path / "t.jsonl")
        obs.write_trace(path)
        summary = obs.summarize_trace(path)
        assert "events by kind:" in summary
        events = obs.format_events(path, kind=obs.ROUND_END, limit=1)
        assert "round_end" in events
        assert "(1 of 2 events" in events
        metrics = obs.format_metrics(path)
        assert "run.rounds.total" in metrics


class TestExecutorInstrumentation:
    def test_disabled_run_matches_bare_executor(self):
        graph = complete_graph(4)
        system = make_system(
            graph,
            {u: MajorityVoteDevice() for u in graph.nodes},
            {u: i % 2 for i, u in enumerate(graph.nodes)},
        )
        plan = compile_sync_plan(system)
        assert bare_execute_plan(plan, 3) == run(system, 3)

    def test_instrumentation_does_not_change_behavior(self):
        baseline = _run_workload()
        obs.enable()
        traced = _run_workload()
        assert traced == baseline

    def test_round_events_shape(self):
        obs.enable()
        _run_workload()
        events = obs.get_log().events("run")
        starts = [e for e in events if e.kind == obs.ROUND_START]
        ends = [e for e in events if e.kind == obs.ROUND_END]
        assert len(starts) == len(ends) == 2
        deliveries = [e for e in events if e.kind == obs.MESSAGE_DELIVERY]
        assert len(deliveries) == 12
        # deliveries are emitted in sorted edge order within each round
        first_round = [
            dict(e.fields) for e in deliveries if dict(e.fields)["round"] == 0
        ]
        keys = [(d["src"], d["dst"]) for d in first_round]
        assert keys == sorted(keys)

    def test_timed_executor_emits_events(self):
        from repro.core import refute_weak_agreement
        from repro.graphs import triangle
        from repro.protocols import ExchangeOnceWeakDevice

        obs.enable()
        factories = {
            u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0))
            for u in triangle().nodes
        }
        refute_weak_agreement(factories, delta=1.0, decision_deadline=3.0)
        kinds = {e.kind for e in obs.get_log().events("run")}
        assert obs.TIMED_EVENT in kinds
