"""Theorem 5 and 6 engine tests."""

import pytest

from repro.core import (
    refute_epsilon_delta,
    refute_simple_connectivity,
    refute_simple_node_bound,
    ring_size_for_epsilon_delta,
)
from repro.graphs import complete_graph, diamond, triangle
from repro.protocols.naive import MedianDevice, MidpointDevice
from repro.runtime.sync import FunctionDevice


class TestSimpleApproximate:
    def test_midpoint_on_triangle(self):
        g = triangle()
        witness = refute_simple_node_bound(
            g, {u: MidpointDevice() for u in g.nodes}, 1, rounds=3
        )
        assert witness.found

    def test_median_on_triangle(self):
        g = triangle()
        witness = refute_simple_node_bound(
            g, {u: MedianDevice() for u in g.nodes}, 1, rounds=3
        )
        assert witness.found

    def test_echo_breaks_agreement_in_middle(self):
        echo = FunctionDevice(
            init=lambda ctx: float(ctx.input),
            send=lambda ctx, state, r: {},
            transition=lambda ctx, state, r, inbox: state,
            choose=lambda ctx, state: state,
        )
        g = triangle()
        witness = refute_simple_node_bound(
            g, {u: echo for u in g.nodes}, 1, rounds=2
        )
        # Echoing the input is valid but cannot contract the spread in
        # the mixed-input middle behavior E2.
        labels = [c.label for c in witness.violated]
        assert "E2" in labels

    def test_connectivity_bound_on_diamond(self):
        g = diamond()
        witness = refute_simple_connectivity(
            g, {u: MidpointDevice() for u in g.nodes}, 1, rounds=4
        )
        assert witness.found

    def test_six_node_two_fault_case(self):
        g = complete_graph(6)
        witness = refute_simple_node_bound(
            g, {u: MidpointDevice() for u in g.nodes}, 2, rounds=3
        )
        assert witness.found


class TestEpsilonDeltaGamma:
    def test_ring_size_divisibility(self):
        k = ring_size_for_epsilon_delta(0.5, 1.0, 1.0)
        assert (k + 2) % 3 == 0
        assert k > 1 + 2 * 1.0 / (1.0 - 0.5)

    def test_ring_size_rejects_trivial_case(self):
        with pytest.raises(ValueError):
            ring_size_for_epsilon_delta(1.0, 1.0, 1.0)

    def test_median_devices_refuted(self):
        g = triangle()
        witness = refute_epsilon_delta(
            {u: MedianDevice() for u in g.nodes},
            epsilon=0.25,
            delta=1.0,
            gamma=1.0,
            rounds=3,
        )
        assert witness.found
        assert witness.extra["k"] >= 2

    def test_lemma7_trace_is_reported(self):
        g = triangle()
        witness = refute_epsilon_delta(
            {u: MedianDevice() for u in g.nodes},
            epsilon=0.25,
            delta=1.0,
            gamma=1.0,
            rounds=3,
        )
        trace = witness.extra["lemma7"]
        assert len(trace) == witness.extra["k"] + 2
        assert trace[0]["input"] == 0.0
        # Inputs increase by delta along the ring.
        assert trace[1]["input"] == pytest.approx(1.0)

    def test_scenarios_cover_all_adjacent_pairs(self):
        g = triangle()
        witness = refute_epsilon_delta(
            {u: MedianDevice() for u in g.nodes},
            epsilon=0.5,
            delta=1.0,
            gamma=0.5,
            rounds=3,
        )
        k = witness.extra["k"]
        assert len(witness.checked) == k + 1

    def test_midpoint_devices_refuted_with_tight_gamma(self):
        g = triangle()
        witness = refute_epsilon_delta(
            {u: MidpointDevice() for u in g.nodes},
            epsilon=0.1,
            delta=1.0,
            gamma=0.2,
            rounds=3,
        )
        assert witness.found
