"""The reproduction's central property: for EVERY deterministic device
family, the impossibility engines produce a violating correct behavior.

Hypothesis generates random device families — random decision rules,
random gossip payloads, random decision rounds — and the engines must
refute all of them.  This is the executable form of "we assume a given
problem can be solved ... and derive a contradiction" quantified over
implementations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    refute_epsilon_delta,
    refute_node_bound,
    refute_simple_node_bound,
)
from repro.graphs import triangle
from repro.problems import ByzantineAgreementSpec
from repro.protocols import eig_devices
from repro.runtime.sync import FunctionDevice, make_system, run

TRIANGLE = triangle()


def hashed_choice(seed, observations, options):
    """A deterministic pseudo-random function of the observations."""
    digest = hash((seed, observations)) & 0xFFFFFFFF
    return options[digest % len(options)]


@st.composite
def gossip_agreement_devices(draw):
    """A family of devices that gossip for a few rounds and then decide
    by a seeded deterministic rule over everything they saw."""
    rounds = draw(st.integers(1, 3))
    seed = draw(st.integers(0, 2**20))
    rule = draw(
        st.sampled_from(["majority", "min", "max", "first", "hash"])
    )

    def init(ctx):
        return ((), None)

    def send(ctx, state, r):
        if r >= rounds:
            return {}
        seen, _ = state
        return {p: (ctx.input, len(seen)) for p in ctx.ports}

    def decide(ctx, seen):
        values = [ctx.input] + [m[0] for _, m in seen if m is not None]
        if rule == "majority":
            ones = sum(1 for v in values if v == 1)
            return 1 if ones * 2 > len(values) else 0
        if rule == "min":
            return min(values)
        if rule == "max":
            return max(values)
        if rule == "first":
            return values[0]
        return hashed_choice(seed, tuple(values), (0, 1))

    def transition(ctx, state, r, inbox):
        seen, decided = state
        if r < rounds:
            seen = seen + tuple(
                sorted(inbox.items(), key=lambda kv: str(kv[0]))
            )
        if r == rounds - 1 and decided is None:
            decided = decide(ctx, seen)
        return (seen, decided)

    def choose(ctx, state):
        return state[1]

    return FunctionDevice(init, send, transition, choose), rounds


class TestTheorem1IsUniversal:
    @given(gossip_agreement_devices())
    @settings(max_examples=40, deadline=None)
    def test_every_device_family_is_refuted(self, device_and_rounds):
        device, rounds = device_and_rounds
        devices = {u: device for u in TRIANGLE.nodes}
        witness = refute_node_bound(
            TRIANGLE, devices, 1, rounds=rounds + 1, require_violation=False
        )
        assert witness.found, (
            "an agreement device family survived the covering argument — "
            "impossible if the engine is sound"
        )

    @given(gossip_agreement_devices())
    @settings(max_examples=20, deadline=None)
    def test_chain_structure_always_present(self, device_and_rounds):
        device, rounds = device_and_rounds
        witness = refute_node_bound(
            TRIANGLE,
            {u: device for u in TRIANGLE.nodes},
            1,
            rounds=rounds + 1,
            require_violation=False,
        )
        assert len(witness.checked) == 3
        assert len(witness.links) == 2
        for checked in witness.checked:
            assert len(checked.constructed.correct_nodes) == 2


@st.composite
def averaging_devices(draw):
    """Real-valued devices: one exchange, then a random affine blend of
    min/max/own — plausible approximate-agreement attempts."""
    w_min = draw(st.floats(0.0, 1.0))
    w_max = draw(st.floats(0.0, 1.0 - w_min))
    w_own = 1.0 - w_min - w_max

    def init(ctx):
        return (None, None)

    def send(ctx, state, r):
        if r == 0:
            return {p: float(ctx.input) for p in ctx.ports}
        return {}

    def transition(ctx, state, r, inbox):
        value, decided = state
        if r == 0:
            pool = [float(ctx.input)] + [
                float(v)
                for v in inbox.values()
                if isinstance(v, (int, float))
            ]
            value = (
                w_min * min(pool) + w_max * max(pool) + w_own * float(ctx.input)
            )
            decided = value
        return (value, decided)

    def choose(ctx, state):
        return state[1]

    return FunctionDevice(init, send, transition, choose)


class TestTheorems5And6AreUniversal:
    @given(averaging_devices())
    @settings(max_examples=30, deadline=None)
    def test_simple_approximate_always_refuted(self, device):
        witness = refute_simple_node_bound(
            TRIANGLE,
            {u: device for u in TRIANGLE.nodes},
            1,
            rounds=2,
            require_violation=False,
        )
        assert witness.found

    @given(averaging_devices())
    @settings(max_examples=10, deadline=None)
    def test_epsilon_delta_always_refuted(self, device):
        witness = refute_epsilon_delta(
            {u: device for u in TRIANGLE.nodes},
            epsilon=0.5,
            delta=1.0,
            gamma=1.0,
            rounds=2,
            require_violation=False,
        )
        assert witness.found


class TestEIGIsUniversallyCorrect:
    """The dual property: on the adequate K4, EIG survives every replay
    adversary built from hypothesis-chosen scripts."""

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)
            ),
            min_size=2,
            max_size=2,
        ),
        st.tuples(st.integers(0, 1), st.integers(0, 1), st.integers(0, 1)),
    )
    @settings(max_examples=40, deadline=None)
    def test_eig_survives_arbitrary_scripts(self, script_rows, inputs):
        from repro.graphs import complete_graph
        from repro.runtime.sync import ReplayDevice

        g = complete_graph(4)
        devices = dict(eig_devices(g, 1))
        scripts = {
            f"n{i}": [row[i] for row in script_rows] for i in range(3)
        }
        devices["n3"] = ReplayDevice(scripts)
        input_map = {
            "n0": inputs[0],
            "n1": inputs[1],
            "n2": inputs[2],
            "n3": 0,
        }
        behavior = run(make_system(g, devices, input_map), 2)
        verdict = ByzantineAgreementSpec().check(
            input_map, behavior.decisions(), ["n0", "n1", "n2"]
        )
        assert verdict.ok, verdict.describe()
