"""Connectivity tests, including a cross-check against networkx."""

import random

import pytest

from repro.graphs import (
    CommunicationGraph,
    GraphError,
    complete_bipartite,
    complete_graph,
    diamond,
    global_min_cut,
    line,
    local_connectivity,
    min_vertex_cut,
    node_connectivity,
    random_connected_graph,
    ring,
    star,
    triangle,
    vertex_disjoint_paths,
    wheel,
)


class TestKnownConnectivities:
    def test_complete_graph(self):
        for n in (3, 4, 7):
            assert node_connectivity(complete_graph(n)) == n - 1

    def test_ring(self):
        assert node_connectivity(ring(5)) == 2

    def test_line(self):
        assert node_connectivity(line(4)) == 1

    def test_star(self):
        assert node_connectivity(star(4)) == 1

    def test_wheel(self):
        assert node_connectivity(wheel(5)) == 3

    def test_diamond_is_two_connected(self):
        assert node_connectivity(diamond()) == 2

    def test_complete_bipartite(self):
        assert node_connectivity(complete_bipartite(2, 5)) == 2

    def test_disconnected_graph(self):
        g = CommunicationGraph(["a", "b", "c"], [("a", "b")])
        assert node_connectivity(g) == 0


class TestMinVertexCut:
    def test_diamond_cut_separates(self):
        g = diamond()
        cut = min_vertex_cut(g, "a", "c")
        assert cut == {"b", "d"}

    def test_cut_actually_disconnects(self):
        g = wheel(6)
        cut = min_vertex_cut(g, "w0", "w3")
        assert "w3" not in g.reachable_from("w0", removed=cut)

    def test_adjacent_nodes_rejected(self):
        with pytest.raises(GraphError):
            min_vertex_cut(triangle(), "a", "b")

    def test_same_node_rejected(self):
        with pytest.raises(GraphError):
            min_vertex_cut(triangle(), "a", "a")

    def test_global_min_cut_disconnects(self):
        g = wheel(6)
        cut = global_min_cut(g)
        assert len(cut) == 3
        survivors = [u for u in g.nodes if u not in cut]
        reach = g.reachable_from(survivors[0], removed=cut)
        assert reach != set(survivors)

    def test_global_min_cut_of_complete_graph_raises(self):
        with pytest.raises(GraphError):
            global_min_cut(complete_graph(4))


class TestLocalConnectivity:
    def test_matches_cut_size(self):
        g = complete_bipartite(3, 4)
        s = g.nodes[0]  # bL0
        t = g.nodes[1]  # bL1 (same side: non-adjacent)
        assert local_connectivity(g, s, t) == len(min_vertex_cut(g, s, t))


class TestVertexDisjointPaths:
    def test_paths_are_disjoint_and_valid(self):
        g = wheel(6)
        paths = vertex_disjoint_paths(g, "w0", "w3")
        assert len(paths) == 3
        interior: set = set()
        for path in paths:
            assert path[0] == "w0" and path[-1] == "w3"
            for u, v in zip(path, path[1:]):
                assert g.has_edge(u, v)
            middle = set(path[1:-1])
            assert not middle & interior
            interior |= middle

    def test_adjacent_endpoints_include_direct_edge(self):
        g = complete_graph(5)
        paths = vertex_disjoint_paths(g, "n0", "n1")
        assert ["n0", "n1"] in paths
        assert len(paths) == 4

    def test_count_equals_connectivity_in_ring(self):
        g = ring(7)
        paths = vertex_disjoint_paths(g, "r0", "r3")
        assert len(paths) == 2


class TestEdgeCases:
    def test_single_node_graph_has_zero_connectivity(self):
        g = CommunicationGraph(["only"], [])
        assert node_connectivity(g) == 0

    def test_empty_graph_rejected(self):
        g = CommunicationGraph([], [])
        with pytest.raises(GraphError):
            node_connectivity(g)

    def test_two_isolated_nodes(self):
        g = CommunicationGraph(["a", "b"], [])
        assert node_connectivity(g) == 0

    def test_disconnected_pair_has_empty_cut(self):
        g = CommunicationGraph(["a", "b", "c", "d"], [("a", "b"), ("c", "d")])
        assert node_connectivity(g) == 0
        assert min_vertex_cut(g, "a", "c") == set()
        assert vertex_disjoint_paths(g, "a", "c") == []

    def test_global_min_cut_of_disconnected_graph_is_empty(self):
        g = CommunicationGraph(["a", "b", "c"], [("a", "b")])
        assert global_min_cut(g) == set()

    def test_local_connectivity_adjacent_pair_rejected(self):
        g = triangle()
        with pytest.raises(GraphError):
            local_connectivity(g, "a", "b")

    def test_local_connectivity_same_node_rejected(self):
        with pytest.raises(GraphError):
            local_connectivity(triangle(), "a", "a")

    def test_local_connectivity_non_adjacent_pair(self):
        g = ring(5)
        assert local_connectivity(g, "r0", "r2") == 2


class TestAnalyticsCache:
    def setup_method(self):
        from repro.graphs.connectivity import clear_analytics

        clear_analytics()

    def test_repeat_queries_hit_the_instance_cache(self):
        from repro.graphs.connectivity import analytics_stats

        g = wheel(6)
        first = node_connectivity(g)
        before = analytics_stats()
        assert node_connectivity(g) == first
        after = analytics_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["misses"] == before["misses"]

    def test_rebuilt_equal_graphs_hit_the_global_table(self):
        from repro.graphs.connectivity import analytics_stats

        assert node_connectivity(complete_graph(5)) == 4
        before = analytics_stats()
        # A fresh instance with identical content: the per-instance
        # cache is cold but the content-keyed global table is warm.
        assert node_connectivity(complete_graph(5)) == 4
        after = analytics_stats()
        assert after["hits"] > before["hits"]

    def test_returned_cut_is_a_defensive_copy(self):
        g = diamond()
        cut = min_vertex_cut(g, "a", "c")
        cut.add("XXX")
        assert min_vertex_cut(g, "a", "c") == {"b", "d"}

    def test_returned_paths_are_defensive_copies(self):
        g = wheel(6)
        paths = vertex_disjoint_paths(g, "w0", "w3")
        paths[0].append("XXX")
        paths.clear()
        fresh = vertex_disjoint_paths(g, "w0", "w3")
        assert len(fresh) == 3
        assert all("XXX" not in p for p in fresh)

    def test_clear_analytics_resets_counters(self):
        from repro.graphs.connectivity import analytics_stats, clear_analytics

        node_connectivity(ring(5))
        clear_analytics()
        s = analytics_stats()
        assert s == {"hits": 0, "misses": 0, "global_entries": 0}


class TestAgainstNetworkx:
    nx = pytest.importorskip("networkx")

    def _to_nx(self, g):
        nxg = self.nx.Graph()
        nxg.add_nodes_from(g.nodes)
        nxg.add_edges_from(
            (u, v) for (u, v) in g.edges if str(u) < str(v) or (u, v)[0] != u
        )
        nxg.add_edges_from((u, v) for (u, v) in g.edges)
        return nxg

    @pytest.mark.parametrize("seed", range(12))
    def test_random_graphs_match(self, seed):
        rng = random.Random(seed)
        n = rng.randint(4, 10)
        g = random_connected_graph(n, rng.uniform(0.1, 0.6), rng)
        assert node_connectivity(g) == self.nx.node_connectivity(self._to_nx(g))

    @pytest.mark.parametrize("seed", range(6))
    def test_min_cut_size_matches_connectivity(self, seed):
        rng = random.Random(100 + seed)
        g = random_connected_graph(8, 0.3, rng)
        if g.is_complete():
            pytest.skip("no cut in a complete graph")
        cut = global_min_cut(g)
        assert len(cut) == node_connectivity(g)
        survivors = [u for u in g.nodes if u not in cut]
        reach = g.reachable_from(survivors[0], removed=cut)
        assert reach != set(survivors)
