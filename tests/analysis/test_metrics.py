"""Metrics tests."""

from repro.analysis.metrics import COMPARE_HEADERS, RunMetrics, compare, measure
from repro.graphs import complete_graph
from repro.protocols import MajorityVoteDevice, eig_devices
from repro.runtime.sync import SilentDevice, make_system, run, uniform_system


class TestMeasure:
    def test_counts_messages_not_silence(self):
        g = complete_graph(3)
        system = uniform_system(
            g, MajorityVoteDevice(), {u: 0 for u in g.nodes}
        )
        metrics = measure(run(system, 2))
        # One exchange round: 3 nodes x 2 neighbors messages; round 2
        # is silent.
        assert metrics.messages == 6
        assert metrics.rounds == 2
        assert metrics.traffic > 0

    def test_silent_devices_produce_nothing(self):
        g = complete_graph(3)
        system = uniform_system(g, SilentDevice(), {u: 0 for u in g.nodes})
        metrics = measure(run(system, 3))
        assert metrics.messages == 0
        assert metrics.last_decision_round is None

    def test_decision_rounds(self):
        g = complete_graph(4)
        system = make_system(
            g, eig_devices(g, 1), {u: 0 for u in g.nodes}
        )
        metrics = measure(run(system, 2))
        assert metrics.last_decision_round == 2

    def test_compare_rows_align_with_headers(self):
        m = RunMetrics(
            rounds=1,
            messages=2,
            traffic=3,
            max_message=4,
            decision_rounds={"a": 1},
        )
        rows = compare({"x": m})
        assert len(rows[0]) == len(COMPARE_HEADERS)
        assert rows[0][0] == "x"
