"""Sync behavior data-structure tests: prefixes, scenarios, renaming."""

import pytest

from repro.graphs import GraphError, triangle
from repro.protocols import MajorityVoteDevice
from repro.runtime.sync import run, uniform_system
from repro.runtime.sync.behavior import EdgeBehavior, NodeBehavior


@pytest.fixture
def behavior():
    g = triangle()
    return run(
        uniform_system(g, MajorityVoteDevice(), {"a": 1, "b": 0, "c": 0}), 3
    )


class TestNodeBehavior:
    def test_rounds(self, behavior):
        assert behavior.node("a").rounds == 3

    def test_prefix_truncates_states(self, behavior):
        nb = behavior.node("a")
        prefix = nb.prefix(1)
        assert prefix.states == nb.states[:2]

    def test_prefix_keeps_decision_if_early(self, behavior):
        nb = behavior.node("a")
        assert nb.decided_at == 1
        assert nb.prefix(1).decision == nb.decision
        assert nb.prefix(0).decision is None

    def test_prefix_beyond_length_raises(self, behavior):
        with pytest.raises(GraphError):
            behavior.node("a").prefix(10)

    def test_manual_prefix(self):
        nb = NodeBehavior(states=(0, 1, 2), decision="x", decided_at=2)
        assert nb.prefix(1) == NodeBehavior(states=(0, 1))


class TestEdgeBehavior:
    def test_prefix(self):
        eb = EdgeBehavior(messages=("m0", "m1", "m2"))
        assert eb.prefix(2).messages == ("m0", "m1")
        with pytest.raises(GraphError):
            eb.prefix(5)

    def test_rounds(self, behavior):
        assert behavior.edge("a", "b").rounds == 3


class TestScenario:
    def test_scenario_contents(self, behavior):
        scenario = behavior.scenario(["a", "b"])
        assert set(scenario.nodes) == {"a", "b"}
        assert set(scenario.edge_behaviors) == {("a", "b"), ("b", "a")}
        assert set(scenario.border_behaviors) == {("c", "a"), ("c", "b")}

    def test_unknown_node_rejected(self, behavior):
        with pytest.raises(GraphError):
            behavior.scenario(["a", "zzz"])

    def test_renamed(self, behavior):
        scenario = behavior.scenario(["a", "b"])
        renamed = scenario.renamed({"a": "x", "b": "y"})
        assert set(renamed.nodes) == {"x", "y"}
        assert ("x", "y") in renamed.edge_behaviors
        # Border source c keeps its name.
        assert ("c", "x") in renamed.border_behaviors

    def test_core_equal_ignores_border(self, behavior):
        s1 = behavior.scenario(["a", "b"])
        s2 = behavior.scenario(["a", "b"])
        object.__setattr__(s2, "border_behaviors", {})
        assert s1.core_equal(s2)

    def test_core_equal_detects_difference(self, behavior):
        s1 = behavior.scenario(["a", "b"])
        s2 = behavior.scenario(["a", "c"])
        assert not s1.core_equal(s2)

    def test_decisions_mapping(self, behavior):
        decisions = behavior.decisions()
        assert set(decisions) == {"a", "b", "c"}
        assert set(decisions.values()) == {0}


class TestWitnessExplain:
    def test_explain_includes_traces(self):
        from repro.analysis.traces import explain_witness
        from repro.core import refute_node_bound

        g = triangle()
        witness = refute_node_bound(
            g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=3
        )
        text = explain_witness(witness)
        assert "full trace" in text
        assert "messages per round" in text
        assert "decisions" in text
