"""ClockSyncSpec tests."""

import pytest

from repro.problems import ClockSyncSpec
from repro.runtime.timed import LinearClock


def make_spec(alpha=0.5, t_prime=1.0):
    return ClockSyncSpec(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(2.0, 0.0),
        lower=LinearClock(1.0, 0.0),  # l(t) = t
        upper=LinearClock(1.0, 5.0),  # u(t) = t + 5
        alpha=alpha,
        t_prime=t_prime,
    )


class TestClockSyncSpec:
    def test_trivial_skew(self):
        spec = make_spec()
        # l(q(t)) - l(p(t)) = 2t - t = t.
        assert spec.trivial_skew(3.0) == pytest.approx(3.0)
        assert spec.agreement_bound(3.0) == pytest.approx(2.5)

    def test_agreement_pass_and_fail(self):
        spec = make_spec()
        logical = {
            "a": lambda t: t,
            "b": lambda t: t + 2.0,
        }
        assert spec.check_agreement_at(logical, ["a", "b"], 3.0).ok
        tight = {
            "a": lambda t: t,
            "b": lambda t: t + 2.9,
        }
        verdict = spec.check_agreement_at(tight, ["a", "b"], 3.0)
        assert not verdict.ok
        assert verdict.violations[0].condition == "agreement"

    def test_agreement_before_t_prime_rejected(self):
        spec = make_spec(t_prime=2.0)
        with pytest.raises(ValueError):
            spec.check_agreement_at({"a": lambda t: t}, ["a"], 1.0)

    def test_validity(self):
        spec = make_spec()
        inside = {"a": lambda t: 1.5 * t}
        assert spec.check_validity_at(inside, ["a"], 2.0).ok
        below = {"a": lambda t: 0.5 * t}
        verdict = spec.check_validity_at(below, ["a"], 2.0)
        assert not verdict.ok
        assert verdict.violations[0].condition == "validity"
        above = {"a": lambda t: 3.0 * t + 10}
        assert not spec.check_validity_at(above, ["a"], 2.0).ok

    def test_check_at_combines(self):
        spec = make_spec()
        logical = {"a": lambda t: t, "b": lambda t: 0.1 * t}
        verdict = spec.check_at(logical, ["a", "b"], 3.0)
        conditions = {v.condition for v in verdict.violations}
        assert "validity" in conditions

    def test_check_at_before_t_prime_skips_agreement(self):
        spec = make_spec(t_prime=10.0)
        logical = {"a": lambda t: t, "b": lambda t: t + 100.0}
        verdict = spec.check_at(logical, ["a", "b"], 5.0)
        conditions = {v.condition for v in verdict.violations}
        assert "agreement" not in conditions

    def test_alpha_must_be_positive(self):
        with pytest.raises(ValueError):
            make_spec(alpha=0.0)
