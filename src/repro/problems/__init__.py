"""Executable specifications of the paper's five consensus problems."""

from .approximate import EpsilonDeltaGammaSpec, SimpleApproximateAgreementSpec
from .byzantine import (
    ByzantineAgreementSpec,
    WeakAgreementSpec,
    check_agreement,
    check_termination,
)
from .clock_sync import ClockSyncSpec
from .firing_squad import FiringSquadSpec
from .spec import SpecVerdict, Violation

__all__ = [
    "ByzantineAgreementSpec",
    "ClockSyncSpec",
    "EpsilonDeltaGammaSpec",
    "FiringSquadSpec",
    "SimpleApproximateAgreementSpec",
    "SpecVerdict",
    "Violation",
    "WeakAgreementSpec",
    "check_agreement",
    "check_termination",
]
