"""Timed protocols: weak-agreement/firing-squad devices in their happy
paths, firing squad via agreement, and averaging clock sync beating the
trivial skew on an adequate graph."""


from repro.graphs import complete_graph, triangle
from repro.problems import FiringSquadSpec, WeakAgreementSpec
from repro.protocols import (
    AveragingSyncDevice,
    ByzantineClockDevice,
    ExchangeOnceWeakDevice,
    RelayFireDevice,
    fire_round_of,
    firing_squad_devices,
    max_logical_skew,
)
from repro.runtime.sync import RandomLiarDevice, make_system
from repro.runtime.sync import run as run_sync
from repro.runtime.timed import LinearClock, make_timed_system, run_timed


class TestWeakDevicesHappyPath:
    def test_unanimous_input_decides_input(self):
        g = triangle()
        factories = {
            u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0))
            for u in g.nodes
        }
        for value in (0, 1):
            behavior = run_timed(
                make_timed_system(
                    g, factories, {u: value for u in g.nodes}, delay=1.0
                ),
                horizon=3.0,
            )
            verdict = WeakAgreementSpec().check(
                {u: value for u in g.nodes},
                behavior.decisions(),
                g.nodes,
                all_correct=True,
            )
            assert verdict.ok, verdict.describe()

    def test_mixed_inputs_fall_back_to_default(self):
        g = triangle()
        factories = {
            u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0, default=0))
            for u in g.nodes
        }
        behavior = run_timed(
            make_timed_system(
                g, factories, {"a": 1, "b": 0, "c": 0}, delay=1.0
            ),
            horizon=3.0,
        )
        assert set(behavior.decisions().values()) == {0}


class TestTimedFiringDevices:
    def test_all_fire_simultaneously_with_stimulus(self):
        g = triangle()
        factories = {u: (lambda: RelayFireDevice(fire_at=2.5)) for u in g.nodes}
        behavior = run_timed(
            make_timed_system(g, factories, {"a": 1, "b": 0, "c": 0}, delay=1.0),
            horizon=4.0,
        )
        verdict = FiringSquadSpec().check(
            {"a": 1, "b": 0, "c": 0},
            behavior.fire_times(),
            g.nodes,
            all_correct=True,
        )
        assert verdict.ok, verdict.describe()
        assert set(behavior.fire_times().values()) == {2.5}

    def test_silence_without_stimulus(self):
        g = triangle()
        factories = {u: (lambda: RelayFireDevice(fire_at=2.5)) for u in g.nodes}
        behavior = run_timed(
            make_timed_system(g, factories, {u: 0 for u in g.nodes}, delay=1.0),
            horizon=4.0,
        )
        assert all(t is None for t in behavior.fire_times().values())


class TestFiringSquadFromAgreement:
    def test_adequate_graph_fires_in_unison_despite_fault(self):
        g = complete_graph(4)
        devices = dict(firing_squad_devices(g, max_faults=1))
        devices["n3"] = RandomLiarDevice(seed=13)
        inputs = {"n0": 1, "n1": 0, "n2": 0, "n3": 0}
        behavior = run_sync(make_system(g, devices, inputs), rounds=4)
        rounds_fired = {
            fire_round_of(behavior, u) for u in ("n0", "n1", "n2")
        }
        assert len(rounds_fired) == 1  # simultaneous (or none)

    def test_no_stimulus_no_fire(self):
        g = complete_graph(4)
        devices = firing_squad_devices(g, max_faults=1)
        inputs = {u: 0 for u in g.nodes}
        behavior = run_sync(make_system(g, devices, inputs), rounds=4)
        assert all(fire_round_of(behavior, u) is None for u in g.nodes)

    def test_stimulus_everywhere_fires_at_f_plus_2(self):
        g = complete_graph(4)
        devices = firing_squad_devices(g, max_faults=1)
        inputs = {u: 1 for u in g.nodes}
        behavior = run_sync(make_system(g, devices, inputs), rounds=4)
        assert {fire_round_of(behavior, u) for u in g.nodes} == {3}


class TestAveragingClockSync:
    def _skews(self, with_byzantine):
        g = complete_graph(4)
        lower = LinearClock(1.0, 0.0)
        delay = 0.125
        clocks = {
            "n0": LinearClock(1.0, 0.0),
            "n1": LinearClock(1.02, 0.0),
            "n2": LinearClock(1.05, 0.0),
            "n3": LinearClock(1.08, 0.0),
        }
        factories = {
            u: (lambda: AveragingSyncDevice(lower, 2.0, delay, max_faults=1))
            for u in g.nodes
        }
        if with_byzantine:
            factories["n3"] = lambda: ByzantineClockDevice(2.0, spread=50.0)
        system = make_timed_system(
            g,
            factories,
            {u: None for u in g.nodes},
            delay=delay,
            delay_mode="clock",
            clocks=clocks,
        )
        behavior = run_timed(system, horizon=20.0)
        sample_times = (10.0, 15.0, 20.0)
        correct = ["n0", "n1", "n2"]
        synced = max_logical_skew(behavior, correct, sample_times)
        # Trivial skew among the same nodes at the same times.
        trivial = max(
            (clocks["n2"](t) - clocks["n0"](t)) for t in sample_times
        )
        return synced, trivial

    def test_beats_trivial_skew_fault_free(self):
        synced, trivial = self._skews(with_byzantine=False)
        assert synced < trivial

    def test_beats_trivial_skew_with_byzantine_clock(self):
        synced, trivial = self._skews(with_byzantine=True)
        assert synced < trivial
