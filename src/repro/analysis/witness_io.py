"""Witness serialization: dump an impossibility witness to a JSON-safe
structure (and to disk) for external tooling, dashboards, or archives.

Full behaviors are large; the serialization keeps the argument's
skeleton — per-behavior correct/faulty sets, verdicts, decisions, and
chain links — plus engine extras, and can optionally inline the
violated behaviors' message traces.

All writes are atomic (tmp + fsync + rename, via
:func:`repro.analysis.runstore.atomic_write_text`): a crash mid-save
leaves either the previous file or the complete new one, never a
truncated JSON that a later ``repro campaign --replay`` chokes on.
Loading goes through :func:`load_json_file`, which turns truncated or
hand-mangled input into a one-line error naming the file instead of a
raw ``json`` traceback.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from ..core.witness import ImpossibilityWitness
from .runstore import atomic_write_text


def _jsonable(value: Any) -> Any:
    """Best-effort conversion to JSON-safe values."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return repr(value)


def witness_to_dict(
    witness: ImpossibilityWitness, include_traces: bool = False
) -> dict[str, Any]:
    """A JSON-safe summary of a witness."""
    behaviors = []
    for checked in witness.checked:
        constructed = checked.constructed
        entry: dict[str, Any] = {
            "label": checked.label,
            "correct": sorted(map(str, constructed.correct_nodes)),
            "faulty": sorted(map(str, constructed.faulty_nodes)),
            "ok": checked.verdict.ok,
            "violations": [
                {
                    "condition": v.condition,
                    "detail": v.detail,
                    "nodes": sorted(map(str, v.nodes)),
                }
                for v in checked.verdict.violations
            ],
        }
        decisions = getattr(constructed, "decisions", None)
        if callable(decisions):
            entry["decisions"] = _jsonable(decisions())
        inputs = getattr(constructed, "inputs", None)
        if inputs is not None:
            entry["inputs"] = _jsonable(dict(inputs))
        if include_traces and not checked.verdict.ok:
            behavior = getattr(constructed, "behavior", None)
            edge_behaviors = getattr(behavior, "edge_behaviors", None)
            if edge_behaviors:
                entry["message_traces"] = {
                    f"{u}->{v}": _jsonable(
                        getattr(eb, "messages", getattr(eb, "sends", ()))
                    )
                    for (u, v), eb in edge_behaviors.items()
                }
        behaviors.append(entry)
    return {
        "problem": witness.problem,
        "bound": witness.bound,
        "graph": {
            "nodes": sorted(map(str, witness.graph.nodes)),
            "edges": sorted(
                f"{min(str(u), str(v))}-{max(str(u), str(v))}"
                for (u, v) in witness.graph.edges
            ),
        },
        "max_faults": witness.max_faults,
        "found": witness.found,
        "behaviors": behaviors,
        "links": [
            {
                "node": str(link.node),
                "covering_node": str(link.covering_node),
                "between": [link.first, link.second],
            }
            for link in witness.links
        ],
        "extra": _jsonable(witness.extra),
    }


def save_witness(
    witness: ImpossibilityWitness,
    path: str | Path,
    include_traces: bool = False,
) -> Path:
    """Write the witness summary as JSON, atomically; return the path."""
    return atomic_write_text(
        path,
        json.dumps(
            witness_to_dict(witness, include_traces=include_traces),
            indent=2,
            sort_keys=True,
        ),
    )


def campaign_to_dict(result: Any) -> dict[str, Any]:
    """A JSON-safe summary of a campaign result (see
    :mod:`repro.analysis.campaign`) — enough to re-run the shrunk
    counterexample with ``repro campaign --replay``."""
    from .campaign import CampaignResult, counterexample_to_dict

    assert isinstance(result, CampaignResult)
    config = result.config
    data: dict[str, Any] = {
        "kind": "campaign",
        "graph": {
            "nodes": sorted(map(str, config.graph.nodes)),
            "edges": sorted(
                f"{min(str(u), str(v))}-{max(str(u), str(v))}"
                for (u, v) in config.graph.edges
            ),
        },
        "rounds": config.rounds,
        "budget": {
            "node_faults": config.max_node_faults,
            "link_faults": config.max_link_faults,
        },
        "seed": config.seed,
        "attempts": result.attempts,
        "broken": result.broken,
        "found": None,
        "shrunk": None,
        "shrink_steps": result.shrink_steps,
        "injection_trace": None,
    }
    if result.found is not None:
        data["found"] = counterexample_to_dict(result.found)
        data["violations"] = [
            {"condition": v.condition, "detail": v.detail}
            for v in result.found.verdict.violations
        ]
    if result.shrunk is not None:
        data["shrunk"] = counterexample_to_dict(result.shrunk)
    if result.injection_trace is not None:
        data["injection_trace"] = result.injection_trace.to_jsonable()
    return _jsonable(data)


def save_campaign(result: Any, path: str | Path) -> Path:
    """Write a campaign summary as JSON, atomically; return the path."""
    return atomic_write_text(
        path, json.dumps(campaign_to_dict(result), indent=2, sort_keys=True)
    )


def load_json_file(path: str | Path, what: str = "file") -> Any:
    """Read a JSON file with clear errors instead of raw tracebacks.

    ``what`` names the artifact in the message ("campaign summary",
    "witness").  Missing files and unparseable content both raise
    :class:`ValueError` mentioning the path, which the CLI renders as a
    one-line ``error: ...``.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise ValueError(f"{what} {path} not found") from None
    except OSError as exc:
        raise ValueError(f"cannot read {what} {path}: {exc}") from exc
    try:
        return json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"{what} {path} is corrupt or truncated "
            f"(not valid JSON: {exc})"
        ) from exc


def load_campaign(path: str | Path) -> dict[str, Any]:
    """Load a saved campaign summary, validating its shape."""
    data = load_json_file(path, "campaign summary")
    if not isinstance(data, dict) or data.get("kind") != "campaign":
        raise ValueError(
            f"campaign summary {path} is not a campaign file "
            "(expected a JSON object with kind='campaign')"
        )
    return data
