"""The axiom checkers: pass for honest models, fail for rigged ones."""

import pytest

from repro.core.axioms import (
    AxiomViolation,
    check_bounded_delay_locality,
    check_determinism_everywhere,
    check_fault_axiom,
    check_locality_axiom,
    check_scaling_axiom,
)
from repro.graphs import complete_graph, line, triangle
from repro.protocols import MajorityVoteDevice, eig_devices
from repro.runtime.sync import FunctionDevice, make_system, uniform_system
from repro.runtime.timed import (
    LinearClock,
    make_timed_system,
)
from repro.runtime.timed.device import TimedDevice


class TestLocality:
    def test_holds_for_majority_devices(self):
        g = triangle()
        system = uniform_system(
            g, MajorityVoteDevice(), {"a": 1, "b": 0, "c": 0}
        )
        assert check_locality_axiom(system, ("b", "c"), rounds=3)

    def test_holds_for_eig(self):
        g = complete_graph(4)
        system = make_system(
            g, eig_devices(g, 1), {u: i % 2 for i, u in enumerate(g.nodes)}
        )
        assert check_locality_axiom(system, ("n0", "n1", "n2"), rounds=2)

    def test_detects_nondeterminism(self):
        import itertools

        counter = itertools.count()
        impure = FunctionDevice(
            init=lambda ctx: next(counter),
            send=lambda ctx, state, r: {p: state for p in ctx.ports},
            transition=lambda ctx, state, r, inbox: state,
        )
        g = triangle()
        system = uniform_system(g, impure, {u: 0 for u in g.nodes})
        with pytest.raises(AxiomViolation):
            check_locality_axiom(system, ("b", "c"), rounds=2)


class TestFault:
    def test_masquerade_between_two_runs(self):
        g = triangle()
        sys0 = uniform_system(g, MajorityVoteDevice(), {u: 0 for u in g.nodes})
        sys1 = uniform_system(g, MajorityVoteDevice(), {u: 1 for u in g.nodes})
        assert check_fault_axiom(sys0, sys1, "a", rounds=3)


class TestBoundedDelay:
    def test_line_graph_propagation(self):
        class Gossip(TimedDevice):
            def on_start(self, ctx, api):
                if ctx.input == 1:
                    for port in ctx.ports:
                        api.send(port, "news")

            def on_message(self, ctx, api, port, message):
                for out in ctx.ports:
                    if out != port:
                        api.send(out, message)

        g = line(5)

        def build(value):
            inputs = {u: 0 for u in g.nodes}
            inputs["l0"] = value
            return make_timed_system(
                g, {u: Gossip for u in g.nodes}, inputs, delay=1.0
            )

        assert check_bounded_delay_locality(
            build, far_node="l4", changed_node="l0", distance=4,
            delta=1.0, horizon=6.0,
        )


class TestScaling:
    def test_clocked_system_scales(self):
        class Talker(TimedDevice):
            def on_start(self, ctx, api):
                api.set_timer("t", 1.0)

            def on_timer(self, ctx, api, name):
                for port in ctx.ports:
                    api.send(port, ("c", api.clock()))

        g = triangle()
        system = make_timed_system(
            g,
            {u: Talker for u in g.nodes},
            {u: None for u in g.nodes},
            delay=0.25,
            delay_mode="clock",
            clocks={u: LinearClock(1.5, 0.0) for u in g.nodes},
        )
        assert check_scaling_axiom(system, LinearClock(3.0, 0.0), horizon=3.0)


class TestDeterminism:
    def test_batch_check(self):
        g = triangle()
        systems = {
            "zeros": uniform_system(
                g, MajorityVoteDevice(), {u: 0 for u in g.nodes}
            ),
            "mixed": uniform_system(
                g, MajorityVoteDevice(), {"a": 1, "b": 0, "c": 1}
            ),
        }
        assert check_determinism_everywhere(systems, rounds=2)
