"""Tracer spans and the metrics registry."""

from repro import obs
from repro.obs import MetricsRegistry


class TestTracer:
    def test_span_emits_paired_events_with_enclosed_count(self):
        obs.enable()
        tracer = obs.get_tracer()
        with tracer.span("campaign.attempt", attempt=1):
            obs.emit(obs.ROUND_START, round=0)
            obs.emit(obs.ROUND_END, round=0, messages=0, injected=0)
        kinds = [e.kind for e in obs.get_log().events("run")]
        assert kinds == [
            obs.SPAN_START,
            obs.ROUND_START,
            obs.ROUND_END,
            obs.SPAN_END,
        ]
        end = obs.get_log().events("run")[-1]
        assert dict(end.fields)["events"] == 2

    def test_enclosed_count_ignores_host_events(self):
        obs.enable()
        with obs.get_tracer().span("s"):
            obs.emit(obs.CACHE_HIT, cache="behavior")
            obs.emit(obs.ROUND_START, round=0)
        end = obs.get_log().events("run")[-1]
        assert dict(end.fields)["events"] == 1

    def test_wall_time_aggregates_not_in_events(self):
        obs.enable()
        with obs.get_tracer().span("s"):
            pass
        obs.observe_span("s", 0.25)
        stats = obs.get_tracer().stats()["s"]
        assert stats["count"] == 2
        assert stats["total_s"] >= 0.25
        for event in obs.get_log().events("run"):
            assert "seconds" not in dict(event.fields)
        assert obs.get_tracer().render().startswith("span")

    def test_span_disabled_is_noop(self):
        tracer_cls = type(obs.get_tracer()) if obs.get_tracer() else None
        assert tracer_cls is None  # telemetry off: no tracer exists
        obs.observe_span("s", 1.0)  # must not raise


class TestRegistryDerivation:
    def test_run_counters_derived_from_events(self):
        obs.enable()
        obs.emit(obs.ROUND_END, round=0, messages=6, injected=2)
        obs.emit(obs.ATTEMPT_END, attempt=1, ok=True)
        obs.emit(obs.ATTEMPT_END, attempt=2, ok=False)
        obs.emit(obs.ORBIT_REUSE, attempt=3)
        obs.emit(obs.SHRINK_STEP, attempt=2, deleted="atom", atoms=1, nodes=0)
        obs.emit(obs.TIMED_EVENT, time=0.5, node="p", event="deliver")
        obs.emit(obs.SWEEP_POINT, sweep="node-bound", n=4)
        obs.emit(obs.FRONTIER_LEVEL, budget=1, attempts=5, broken="-")
        counters = obs.get_registry().run_counters()
        assert counters["run.rounds.total"] == 1
        assert counters["run.messages.delivered"] == 6
        assert counters["run.faults.injected"] == 2
        assert counters["run.attempts.total"] == 2
        assert counters["run.attempts.ok"] == 1
        assert counters["run.attempts.violations"] == 1
        assert counters["run.orbit.reused"] == 1
        assert counters["run.shrink.deletions"] == 1
        assert counters["run.timed.events"] == 1
        assert counters["run.sweep.points"] == 1
        assert counters["run.frontier.levels"] == 1

    def test_captured_events_do_not_touch_registry_until_replayed(self):
        obs.enable()
        with obs.capture() as capsule:
            obs.emit(obs.ROUND_END, round=0, messages=3, injected=0)
        assert obs.get_registry().get_counter("run.rounds.total") == 0
        obs.replay(capsule.payload())
        assert obs.get_registry().get_counter("run.rounds.total") == 1

    def test_scope_snapshot_filtering(self):
        obs.enable()
        obs.emit(obs.ROUND_START, round=0)
        obs.emit(obs.CACHE_HIT, cache="behavior")
        registry = obs.get_registry()
        run = registry.snapshot(scope="run")["counters"]
        host = registry.snapshot(scope="host")["counters"]
        assert "run.events.round_start" in run
        assert "host.events.cache_hit" in host
        assert not any(k.startswith("host.") for k in run)


class TestLegacyRendering:
    def test_describe_cache_matches_behavior_cache_describe(self):
        from repro.runtime.memo import BehaviorCache

        cache = BehaviorCache(maxsize=64)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        registry = MetricsRegistry()
        obs.absorb_cache_stats(registry, cache.stats())
        assert obs.describe_cache(registry) == cache.describe()

    def test_describe_search_stats_matches_legacy_shape(self):
        from repro.analysis.campaign import CampaignConfig, SearchStats, run_campaign
        from repro.graphs import complete_graph
        from repro.protocols import MajorityVoteDevice
        from repro.runtime.incremental import IncrementalContext
        from repro.runtime.memo import BehaviorCache

        config = CampaignConfig(
            graph=complete_graph(4),
            device_factory=lambda g: {
                u: MajorityVoteDevice() for u in g.nodes
            },
            rounds=2,
            max_node_faults=0,
            max_link_faults=2,
            attempts=20,
            seed=0,
        )
        stats = SearchStats()
        run_campaign(
            config,
            cache=BehaviorCache(),
            orbit_dedup=True,
            incremental=IncrementalContext(),
            stats=stats,
        )
        out = stats.describe()
        assert "cache:" in out
        assert "orbit dedup:" in out
        assert "incremental execution:" in out
        # Rendering is pure: same stats, same strings.
        assert out == stats.describe()

    def test_absorb_search_stats_handles_missing_sections(self):
        registry = MetricsRegistry()

        class Empty:
            cache = None
            orbit_index = None
            incremental = None

        obs.absorb_search_stats(registry, Empty())
        assert obs.describe_search_stats(registry, Empty()) == "no caches in use"
