"""The tentpole guarantee: traces and metrics are byte-identical
across worker counts — and across every optimization layer, since the
run-scope stream is a pure function of the workload."""

import pytest

from repro import obs
from repro.analysis.adversary_search import search_agreement_attacks
from repro.analysis.campaign import CampaignConfig, run_campaign
from repro.analysis.sweep import node_bound_sweep
from repro.graphs import complete_graph
from repro.protocols import MajorityVoteDevice
from repro.runtime.incremental import IncrementalContext
from repro.runtime.memo import BehaviorCache


def _config(**overrides):
    defaults = dict(
        graph=complete_graph(4),
        device_factory=lambda g: {u: MajorityVoteDevice() for u in g.nodes},
        rounds=2,
        max_node_faults=0,
        max_link_faults=2,
        attempts=25,
        seed=0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def _traced(fn):
    """Run ``fn`` under fresh telemetry; return (trace lines, metrics)."""
    obs.enable()
    try:
        fn()
        lines = list(obs.trace_lines())
        metrics = dict(obs.get_registry().run_counters())
    finally:
        obs.reset()
    return lines, metrics


class TestCampaignDeterminism:
    @pytest.mark.parametrize(
        "options",
        [
            {},
            {"orbit_dedup": True},
            {"incremental": "fresh"},
            {"memoize": False},
        ],
        ids=["plain", "orbit", "incremental", "unmemoized"],
    )
    def test_jobs_do_not_change_trace_or_metrics(self, options):
        def build(jobs):
            opts = dict(options)
            if opts.get("incremental") == "fresh":
                opts["incremental"] = IncrementalContext()
            return lambda: run_campaign(_config(), jobs=jobs, **opts)

        serial_lines, serial_metrics = _traced(build(1))
        par_lines, par_metrics = _traced(build(4))
        assert par_lines == serial_lines
        assert par_metrics == serial_metrics

    def test_trace_independent_of_optimizations(self):
        plain, _ = _traced(lambda: run_campaign(_config(), memoize=False))
        for opts in (
            {"cache": BehaviorCache()},
            {"orbit_dedup": True, "memoize": False},
            {"incremental": IncrementalContext(), "memoize": False},
        ):
            lines, _ = _traced(lambda: run_campaign(_config(), **opts))
            assert lines == plain

    def test_cache_warmth_does_not_change_trace(self):
        cache = BehaviorCache()
        cold, _ = _traced(lambda: run_campaign(_config(), cache=cache))
        assert cache.hits or cache.misses
        warm, _ = _traced(lambda: run_campaign(_config(), cache=cache))
        assert warm == cold


class TestAttackAndSweepDeterminism:
    def test_attack_indexed_jobs(self):
        def build(jobs):
            graph = complete_graph(4)
            return lambda: search_agreement_attacks(
                graph,
                lambda g: {u: MajorityVoteDevice() for u in g.nodes},
                max_faults=1,
                rounds=2,
                attempts=20,
                seed=3,
                jobs=jobs,
            )

        serial_lines, serial_metrics = _traced(build(1))
        par_lines, par_metrics = _traced(build(4))
        assert par_lines == serial_lines
        assert par_metrics == serial_metrics

    def test_sweep_jobs(self):
        serial_lines, serial_metrics = _traced(
            lambda: node_bound_sweep((1,), jobs=1)
        )
        par_lines, par_metrics = _traced(
            lambda: node_bound_sweep((1,), jobs=4)
        )
        assert par_lines == serial_lines
        assert par_metrics == serial_metrics
