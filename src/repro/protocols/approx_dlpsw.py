"""Iterated approximate agreement [DLPSW], the positive counterpart of
Theorem 5.

On a complete graph with ``n >= 3f + 1``, each round every node
broadcasts its value, sorts the ``n`` values it holds (its own plus
``n - 1`` received, with missing values replaced by its own), discards
the ``f`` lowest and ``f`` highest, and averages the rest.  The
surviving multiset is sandwiched by correct values, so:

* validity — values stay inside the range of correct inputs;
* convergence — the spread of correct values contracts by a constant
  factor every round (``benchmarks/bench_approx_convergence.py``
  measures the factor empirically and checks it against the classical
  ``⌊(n - 2f - 1)/f⌋ + 1`` bound of [DLPSW]).

After ``rounds`` iterations each node decides its current value; the
output spread is strictly below the input spread (simple approximate
agreement) and below any target ε given enough rounds.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice


def trimmed_mean(values: list[float], trim: int) -> float:
    """Drop the ``trim`` lowest and highest values; average the rest."""
    if len(values) <= 2 * trim:
        raise GraphError("not enough values to trim")
    kept = sorted(values)[trim : len(values) - trim]
    return sum(kept) / len(kept)


class IteratedTrimmedMeanDevice(SyncDevice):
    """DLPSW-style iterated averaging with f-trimming."""

    def __init__(self, max_faults: int, rounds: int) -> None:
        if rounds < 1:
            raise GraphError("need at least one averaging round")
        self.f = max_faults
        self.rounds = rounds

    # State: (current_value, decided)

    def init_state(self, ctx: NodeContext) -> State:
        return (float(ctx.input), None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        value, _decided = state
        if round_index >= self.rounds:
            return {}
        return {port: value for port in ctx.ports}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        value, decided = state
        if round_index >= self.rounds:
            return state
        pool = [value]
        for port in ctx.ports:
            raw = inbox.get(port)
            pool.append(float(raw) if isinstance(raw, (int, float)) else value)
        value = trimmed_mean(pool, self.f)
        if round_index == self.rounds - 1:
            decided = value
        return (value, decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[1]


def dlpsw_devices(
    graph: CommunicationGraph, max_faults: int, rounds: int
) -> dict[NodeId, IteratedTrimmedMeanDevice]:
    """DLPSW devices for a complete adequate graph."""
    if not graph.is_complete():
        raise GraphError("this implementation assumes a complete graph")
    if len(graph) < 3 * max_faults + 1:
        raise GraphError(
            "iterated trimmed-mean approximate agreement requires "
            f"n >= 3f+1 = {3 * max_faults + 1}; Theorem 5's engine shows "
            "why nothing can do better"
        )
    return {
        u: IteratedTrimmedMeanDevice(max_faults, rounds) for u in graph.nodes
    }
