#!/usr/bin/env python3
"""Snapshot the performance layers into ``BENCH_runtime.json``.

Measures, on this machine, each optimization layer against its
"before" shape — and, more importantly, re-verifies on every run that
each layer is output-invisible:

* ``executor``      — compiled-plan ``run()`` vs the interpretive
                      reference executor (``repro.testing.
                      reference_sync_run``), same workload.
* ``campaign_shrink`` — a shrink-heavy fault campaign, memoized
                      (shared :class:`BehaviorCache`, warm second run)
                      vs unmemoized, identical results required.
* ``orbit_dedup``   — ``run_campaign(orbit_dedup=True)`` vs the plain
                      scan on a symmetric graph: one execution per
                      automorphism orbit, verdicts mapped back,
                      byte-identical sorted-JSON reports required.
* ``incremental_shrink`` — repeated campaign+shrink+replay passes with
                      a shared prefix-sharing execution trie
                      (``incremental=IncrementalContext()``) vs the
                      same passes re-executing every round; identical
                      reports required.
* ``parallel``      — ``run_campaign(jobs=N)`` vs serial, byte-identical
                      sorted-JSON reports required.  Wall-clock scaling
                      is recorded honestly along with the machine's
                      core count: on a single-core box the pool cannot
                      beat serial and the numbers will say so (and
                      ``ParallelRunner`` now refuses the pool there).
* ``telemetry_overhead`` — the instrumented hot path
                      (``execute_plan``) with telemetry *disabled* vs
                      ``repro.testing.bare_execute_plan``, the verbatim
                      copy with the hooks stripped.  The disabled/bare
                      wall-time ratio is a **hard gate**: above
                      1.05 the script exits nonzero, same as an
                      equivalence failure.  (An informational
                      enabled-telemetry timing rides along.)
* ``checkpoint_overhead`` — ``run_campaign(store=None)`` vs a bare
                      hand-rolled attempt-scan loop with no run-store
                      branches.  Same hard-gate contract at 1.05;
                      informational journal-to-cold-store and
                      resume-from-warm-store timings ride along.

Usage::

    PYTHONPATH=src python scripts/bench_snapshot.py [--out BENCH_runtime.json]
    PYTHONPATH=src python scripts/bench_snapshot.py --smoke   # CI: tiny sizes
    PYTHONPATH=src python scripts/bench_snapshot.py --sections executor,parallel

``--smoke`` shrinks every workload so the script finishes in seconds;
equivalence checks still run at full strictness (that is the point of
the CI job), only the timings become meaningless-but-present.

``--sections`` re-measures only the named sections; the output file is
merged, never clobbered — sections absent from this run (or written by
an older script version) are preserved as-is.
"""

import argparse
import json
import pathlib
import sys
import time

sys.path.insert(
    0, str(pathlib.Path(__file__).resolve().parents[1] / "src")
)

from repro.analysis.campaign import CampaignConfig, run_campaign  # noqa: E402
from repro.analysis.parallel import (  # noqa: E402
    available_parallelism,
    fork_available,
)
from repro.analysis.witness_io import campaign_to_dict  # noqa: E402
from repro.graphs.builders import complete_graph  # noqa: E402
from repro.protocols.eig import eig_devices  # noqa: E402
from repro.protocols.naive import MajorityVoteDevice  # noqa: E402
from repro.runtime.incremental import IncrementalContext  # noqa: E402
from repro.runtime.memo import BehaviorCache  # noqa: E402
from repro.runtime.plan import compile_sync_plan  # noqa: E402
from repro.runtime.sync.executor import run  # noqa: E402
from repro.runtime.sync.system import make_system  # noqa: E402
from repro.testing import reference_sync_run  # noqa: E402


def _naive_factory(graph):
    return {u: MajorityVoteDevice() for u in graph.nodes}


def _time(fn, repeats):
    """Best-of-``repeats`` wall time (seconds) and the last result."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def bench_executor(smoke):
    n, rounds, repeats = (4, 3, 3) if smoke else (8, 10, 20)
    system = make_system(
        complete_graph(n),
        _naive_factory(complete_graph(n)),
        {u: i % 2 for i, u in enumerate(complete_graph(n).nodes)},
    )
    t_ref, b_ref = _time(lambda: reference_sync_run(system, rounds), repeats)
    compile_sync_plan(system)
    t_plan, b_plan = _time(lambda: run(system, rounds), repeats)
    return {
        "workload": f"K{n} majority, {rounds} rounds",
        "reference_s": t_ref,
        "reference_ops": 1.0 / t_ref if t_ref else None,
        "compiled_s": t_plan,
        "compiled_ops": 1.0 / t_plan if t_plan else None,
        "speedup": t_ref / t_plan if t_plan else None,
        "identical_output": b_ref == b_plan,
    }


def _campaign_config(smoke):
    n, rounds, links, attempts = (4, 3, 3, 12) if smoke else (6, 5, 4, 80)
    return CampaignConfig(
        graph=complete_graph(n),
        device_factory=_naive_factory,
        rounds=rounds,
        max_node_faults=0,
        max_link_faults=links,
        attempts=attempts,
        seed=0,
    )


def bench_campaign_shrink(smoke):
    """The campaign + shrink + replay workload, memoized vs not.

    The memoized leg runs the campaign **four times** against one
    shared cache — the realistic shape (a frontier sweep or a
    re-analysis of the same config re-executes heavily overlapping
    attempts, and the shrinker re-runs overlapping fault subsets) —
    and is compared against four unmemoized runs of the same config.
    """
    config = _campaign_config(smoke)
    repeats = 1 if smoke else 3
    passes = 4

    def cold():
        return [
            run_campaign(config, memoize=False) for _ in range(passes)
        ]

    def warm():
        cache = BehaviorCache(maxsize=4096)
        return (
            [run_campaign(config, cache=cache) for _ in range(passes)],
            cache,
        )

    t_cold, cold_runs = _time(cold, repeats)
    t_warm, (warm_runs, cache) = _time(warm, repeats)
    return {
        "workload": (
            f"{passes}x campaign+shrink+replay on "
            f"K{len(config.graph)}, {config.attempts} attempts, "
            f"k<={config.max_link_faults} links"
        ),
        "unmemoized_s": t_cold,
        "unmemoized_ops": passes / t_cold if t_cold else None,
        "memoized_s": t_warm,
        "memoized_ops": passes / t_warm if t_warm else None,
        "speedup": t_cold / t_warm if t_warm else None,
        "identical_output": cold_runs == warm_runs,
        "cache": cache.stats(),
    }


def _eig_factory(graph):
    return dict(eig_devices(graph, 1))


def bench_orbit_dedup(smoke):
    """Plain campaign scan vs. one-execution-per-orbit on K4.

    The workload is a *surviving* EIG campaign with drop-only faults:
    no early exit, so all attempts are scanned, and the sampled
    scenario space (one dropped link on K4, binary inputs) has only a
    few dozen automorphism orbits — attempts past the first few dozen
    collapse onto already-executed representatives.
    """
    attempts = 60 if smoke else 600
    config = CampaignConfig(
        graph=complete_graph(4),
        device_factory=_eig_factory,
        rounds=2,
        max_node_faults=0,
        max_link_faults=1,
        attempts=attempts,
        seed=11,
        link_kinds=("drop",),
    )
    repeats = 1 if smoke else 3

    t_plain, plain = _time(
        lambda: run_campaign(config, memoize=False), repeats
    )

    from repro.analysis.campaign import SearchStats

    stats = SearchStats()

    def deduped():
        return run_campaign(
            config, memoize=False, orbit_dedup=True, stats=stats
        )

    t_dedup, dedup = _time(deduped, repeats)
    same = json.dumps(campaign_to_dict(plain), sort_keys=True) == json.dumps(
        campaign_to_dict(dedup), sort_keys=True
    )
    return {
        "workload": (
            f"surviving EIG campaign on K4, {attempts} attempts, "
            "k<=1 drop faults"
        ),
        "plain_s": t_plain,
        "plain_ops": attempts / t_plain if t_plain else None,
        "orbit_dedup_s": t_dedup,
        "orbit_dedup_ops": attempts / t_dedup if t_dedup else None,
        "speedup": t_plain / t_dedup if t_dedup else None,
        "identical_output": same,
        "orbits": stats.orbit_index.stats(),
    }


def bench_incremental_shrink(smoke):
    """Repeated campaign+shrink+replay passes, trie-backed vs not.

    Mirrors the ``campaign_shrink`` repetition shape (re-analysis of
    one config re-executes heavily overlapping attempts) but measures
    the round-level prefix trie instead of whole-run memoization:
    ``memoize=False`` on both legs, so every saving comes from rounds
    replayed out of snapshots.
    """
    n, rounds, links, attempts, passes = (
        (4, 4, 3, 20, 2) if smoke else (8, 10, 8, 120, 6)
    )
    config = CampaignConfig(
        graph=complete_graph(n),
        device_factory=_naive_factory,
        rounds=rounds,
        max_node_faults=0,
        max_link_faults=links,
        attempts=attempts,
        seed=5,
    )
    repeats = 1 if smoke else 3

    def cold():
        return [
            run_campaign(config, memoize=False) for _ in range(passes)
        ]

    def warm():
        context = IncrementalContext()
        return (
            [
                run_campaign(config, memoize=False, incremental=context)
                for _ in range(passes)
            ],
            context,
        )

    t_cold, cold_runs = _time(cold, repeats)
    t_warm, (warm_runs, context) = _time(warm, repeats)
    return {
        "workload": (
            f"{passes}x campaign+shrink+replay on K{n}, "
            f"{attempts} attempts, k<={links} links, {rounds} rounds, "
            "unmemoized both legs"
        ),
        "plain_s": t_cold,
        "plain_ops": passes / t_cold if t_cold else None,
        "incremental_s": t_warm,
        "incremental_ops": passes / t_warm if t_warm else None,
        "speedup": t_cold / t_warm if t_warm else None,
        "identical_output": cold_runs == warm_runs,
        "trie": context.stats(),
    }


def bench_sweep(smoke):
    from repro.analysis.sweep import node_bound_sweep

    faults = (1,) if smoke else (1, 2)
    repeats = 1 if smoke else 3
    t_serial, serial = _time(lambda: node_bound_sweep(faults), repeats)
    t_par, parallel = _time(
        lambda: node_bound_sweep(faults, jobs=2), repeats
    )
    return {
        "workload": f"node-bound sweep, f in {list(faults)}",
        "points": len(serial),
        "serial_s": t_serial,
        "serial_ops": len(serial) / t_serial if t_serial else None,
        "jobs2_s": t_par,
        "identical_output": serial == parallel,
    }


#: Hard ceiling on the disabled-telemetry / bare hot-path ratio.
TELEMETRY_OVERHEAD_BUDGET = 1.05


def bench_telemetry_overhead(smoke):
    """Disabled-telemetry ``execute_plan`` vs the bare oracle copy.

    The two legs are timed *interleaved* (bare, disabled, bare, ...)
    so clock drift and cache warming hit both equally; each leg keeps
    its best-of.  The workload matches the ``executor`` section's.
    """
    from repro import obs
    from repro.testing import bare_execute_plan

    n, rounds, repeats = (4, 3, 60) if smoke else (8, 10, 120)
    graph = complete_graph(n)
    system = make_system(
        graph,
        _naive_factory(graph),
        {u: i % 2 for i, u in enumerate(graph.nodes)},
    )
    plan = compile_sync_plan(system)
    obs.reset()  # telemetry must be off for the gated leg

    best_bare = best_disabled = float("inf")
    b_bare = b_disabled = None
    for _ in range(repeats):
        start = time.perf_counter()
        b_bare = bare_execute_plan(plan, rounds)
        best_bare = min(best_bare, time.perf_counter() - start)
        start = time.perf_counter()
        b_disabled = run(system, rounds)
        best_disabled = min(best_disabled, time.perf_counter() - start)

    obs.enable()
    try:
        best_enabled = float("inf")
        for _ in range(max(3, repeats // 10)):
            start = time.perf_counter()
            run(system, rounds)
            best_enabled = min(best_enabled, time.perf_counter() - start)
    finally:
        obs.reset()

    ratio = best_disabled / best_bare if best_bare else None
    return {
        "workload": f"K{n} majority, {rounds} rounds, compiled plan",
        "bare_s": best_bare,
        "disabled_s": best_disabled,
        "enabled_s": best_enabled,
        "disabled_over_bare": ratio,
        "budget": TELEMETRY_OVERHEAD_BUDGET,
        "within_budget": (
            ratio is not None and ratio <= TELEMETRY_OVERHEAD_BUDGET
        ),
        "identical_output": b_bare == b_disabled,
    }


#: Hard ceiling on the store-disabled / bare-scan-loop ratio.
CHECKPOINT_OVERHEAD_BUDGET = 1.05


def bench_checkpoint_overhead(smoke):
    """Checkpointing-disabled ``run_campaign`` vs a bare scan loop.

    The run-store hooks ride inside the campaign's attempt loop, so a
    run with ``store=None`` must cost (nearly) nothing extra.  The
    oracle is a hand-rolled sample-execute-check loop with no journal
    branches at all; the two legs are timed *interleaved* and the
    disabled/bare ratio is a **hard gate** (same contract as
    ``telemetry_overhead``).  Informational timings for journaling to
    a cold store and resuming from a fully-warm one ride along.

    The workload is a *surviving* campaign (no early exit), so both
    legs scan every attempt and the journal spans the full run.
    """
    import shutil
    import tempfile

    from repro.analysis.campaign import (
        _sample_attempt,
        campaign_store_key,
        execute_attempt,
    )
    from repro.analysis.runstore import RunStore

    # The full workload costs ~10ms per leg, so smoke keeps it (a
    # 6-attempt scan would leave the fixed per-run cost un-amortized
    # and trip the gate on setup noise, not the loop).
    attempts, repeats = (40, 3) if smoke else (40, 7)
    config = CampaignConfig(
        graph=complete_graph(4),
        device_factory=_eig_factory,
        rounds=2,
        max_node_faults=0,
        max_link_faults=1,
        attempts=attempts,
        seed=5,
        link_kinds=("drop",),
    )

    def bare_scan():
        oks = []
        for attempt in range(1, config.attempts + 1):
            node_faults, plan, inputs = _sample_attempt(config, attempt)
            _, verdict, _ = execute_attempt(
                config, inputs, node_faults, plan, None, None
            )
            oks.append(verdict.ok)
            if not verdict.ok:
                break
        return oks

    best_bare = best_disabled = float("inf")
    oks = disabled = None
    for _ in range(repeats):
        start = time.perf_counter()
        oks = bare_scan()
        best_bare = min(best_bare, time.perf_counter() - start)
        start = time.perf_counter()
        disabled = run_campaign(config, memoize=False)
        best_disabled = min(best_disabled, time.perf_counter() - start)
    assert not disabled.broken, "workload must survive (no early exit)"

    key = campaign_store_key(config)
    reference = json.dumps(campaign_to_dict(disabled), sort_keys=True)
    identical = all(oks) and len(oks) == config.attempts

    tmp = tempfile.mkdtemp(prefix="bench-ckpt-")
    try:
        best_cold = float("inf")
        for i in range(repeats):
            store_dir = pathlib.Path(tmp) / f"cold{i}"
            start = time.perf_counter()
            with RunStore(store_dir).shard(key) as shard:
                cold = run_campaign(config, memoize=False, store=shard)
            best_cold = min(best_cold, time.perf_counter() - start)
            identical = identical and (
                json.dumps(campaign_to_dict(cold), sort_keys=True)
                == reference
            )
        warm_dir = pathlib.Path(tmp) / "cold0"
        best_warm = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            with RunStore(warm_dir).shard(key) as shard:
                warm = run_campaign(config, memoize=False, store=shard)
            best_warm = min(best_warm, time.perf_counter() - start)
            identical = identical and (
                json.dumps(campaign_to_dict(warm), sort_keys=True)
                == reference
            )
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    ratio = best_disabled / best_bare if best_bare else None
    return {
        "workload": (
            f"surviving EIG campaign on K4, {attempts} attempts, "
            "k<=1 drop faults, unmemoized"
        ),
        "bare_s": best_bare,
        "disabled_s": best_disabled,
        "journal_cold_s": best_cold,
        "resume_warm_s": best_warm,
        "disabled_over_bare": ratio,
        "budget": CHECKPOINT_OVERHEAD_BUDGET,
        "within_budget": (
            ratio is not None and ratio <= CHECKPOINT_OVERHEAD_BUDGET
        ),
        "identical_output": identical,
    }


def bench_parallel(smoke):
    config = _campaign_config(smoke)
    repeats = 1 if smoke else 3
    t_serial, serial = _time(lambda: run_campaign(config, jobs=1), repeats)
    rows = {}
    identical = True
    reference = json.dumps(campaign_to_dict(serial), sort_keys=True)
    for jobs in (2, 4):
        t_par, par = _time(lambda: run_campaign(config, jobs=jobs), repeats)
        same = json.dumps(campaign_to_dict(par), sort_keys=True) == reference
        identical = identical and same
        rows[f"jobs{jobs}"] = {
            "wall_s": t_par,
            "speedup_vs_serial": t_serial / t_par if t_par else None,
            "identical_output": same,
        }
    return {
        "workload": f"campaign, {config.attempts} attempts",
        "serial_s": t_serial,
        "fork_available": fork_available(),
        "cores": available_parallelism(),
        "levels": rows,
        "identical_output": identical,
        "note": (
            "speedup is hardware-bound: with a single available core "
            "the pool adds fork overhead and cannot beat serial"
        ),
    }


BENCHES = {
    "executor": bench_executor,
    "campaign_shrink": bench_campaign_shrink,
    "orbit_dedup": bench_orbit_dedup,
    "incremental_shrink": bench_incremental_shrink,
    "sweep": bench_sweep,
    "parallel": bench_parallel,
    "telemetry_overhead": bench_telemetry_overhead,
    "checkpoint_overhead": bench_checkpoint_overhead,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out",
        default=str(
            pathlib.Path(__file__).resolve().parents[1]
            / "BENCH_runtime.json"
        ),
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads for CI; equivalence checks at full strength",
    )
    parser.add_argument(
        "--sections",
        help="comma-separated subset of sections to re-measure "
        f"(default: all of {', '.join(BENCHES)}); the output file is "
        "merged, other sections survive untouched",
    )
    args = parser.parse_args()

    if args.sections:
        names = [s for s in args.sections.split(",") if s]
        unknown = [s for s in names if s not in BENCHES]
        if unknown:
            parser.error(f"unknown sections: {', '.join(unknown)}")
    else:
        names = list(BENCHES)

    sections = {name: BENCHES[name](args.smoke) for name in names}

    # Merge into the existing snapshot rather than clobbering it, so a
    # --sections run (or a newer script against an older file) never
    # drops sections it did not measure.
    out_path = pathlib.Path(args.out)
    snapshot = {"sections": {}}
    if out_path.exists():
        try:
            prior = json.loads(out_path.read_text())
            if isinstance(prior.get("sections"), dict):
                snapshot["sections"].update(prior["sections"])
        except (ValueError, OSError):
            pass  # unreadable prior snapshot: start fresh
    snapshot["sections"].update(sections)
    snapshot["python"] = sys.version.split()[0]
    snapshot["cores"] = available_parallelism()
    snapshot["smoke"] = args.smoke
    out_path.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    )

    failures = [
        name
        for name, section in sections.items()
        if not section["identical_output"]
    ]
    over_budget = [
        name
        for name, section in sections.items()
        if not section.get("within_budget", True)
    ]
    for name, section in sections.items():
        speed = section.get("speedup")
        extra = f", speedup {speed:.2f}x" if speed else ""
        ratio = section.get("disabled_over_bare")
        if ratio is not None:
            extra += (
                f", disabled/bare {ratio:.3f} "
                f"(budget {section['budget']:.2f})"
            )
        print(
            f"{name}: identical={section['identical_output']}{extra}"
        )
    print(f"wrote {args.out}")
    if failures:
        print(f"EQUIVALENCE FAILURES: {', '.join(failures)}")
        return 1
    if over_budget:
        print(f"OVERHEAD OVER BUDGET: {', '.join(over_budget)}")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
