"""Deterministic adversary campaigns with counterexample shrinking.

A *campaign* stresses a protocol under a **combined** fault budget: up
to ``f`` faulty nodes (the existing Byzantine strategy devices) plus up
to ``k`` faulty links (a sampled :class:`~repro.runtime.faults.
FaultPlan`).  Each attempt is deterministic given ``(seed, attempt)``;
on a specification violation the failing configuration is shrunk
delta-debugging-style — greedily deleting fault atoms and faulty nodes
while the violation persists — down to a minimal counterexample that
replays exactly (same seed ⇒ identical injection trace).

The second half is *graceful-degradation* reporting: sweep the link
budget upward and record, per spec clause (agreement / validity /
termination), the first budget at which it breaks.  Together these grow
the repo from "the theorems' constructions" toward "as many failure
scenarios as you can imagine", with every run replayable.

Performance (PR 2): every attempt is deterministic given its content,
so :func:`execute_attempt` memoizes through a content-addressed
:class:`~repro.runtime.memo.BehaviorCache` — the shrinker's and
replayer's re-executions of identical ``(inputs, node faults, plan)``
configurations become cache hits — and :func:`run_campaign` /
:func:`degradation_frontier` accept ``jobs=N`` to fan attempts /
budget levels across a process pool with serial-identical results
(attempts are merged in index order; the first violating index wins,
exactly as in the serial scan).

Performance (PR 3): two further equivalence-gated reductions.
``orbit_dedup=True`` canonicalizes each sampled scenario under the
graph's automorphism group (:mod:`repro.graphs.automorphisms`) and
executes one representative per orbit, reusing only the spec's ok-bit
for the rest — the violating attempt itself is always re-executed for
shrinking, so results stay byte-identical.  (Requires a node-symmetric
device factory: every node gets behaviorally identical, label-
equivariant devices, as with the bundled majority/EIG factories.)
``incremental=True`` routes executions through a prefix-sharing
:class:`~repro.runtime.incremental.ExecutionTrie`, replaying shared
round prefixes — the shrinker's one-atom-deleted candidates being the
best case — from snapshots instead of re-running them.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any

from .. import obs
from ..graphs.automorphisms import OrbitIndex
from ..graphs.graph import CommunicationGraph, DirectedEdge, NodeId
from ..problems.byzantine import ByzantineAgreementSpec
from ..problems.spec import SpecVerdict, Violation
from ..runtime.faults import (
    FaultPlan,
    InjectionTrace,
    LinkFault,
    Partition,
    SyncFaultInjector,
    partition_between,
)
from ..runtime.incremental import ExecutionTrie, IncrementalContext
from ..runtime.memo import (
    BehaviorCache,
    fingerprint,
    graph_fingerprint,
    json_fingerprint,
    plan_fingerprint,
)
from ..runtime.plan import compile_sync_plan
from ..runtime.sync.behavior import SyncBehavior
from ..runtime.sync.device import SyncDevice
from ..runtime.sync.executor import run
from ..runtime.sync.system import make_system
from .adversary_search import STRATEGIES, build_adversary
from .parallel import ParallelRunner
from .runstore import (
    Shard,
    decode_payload,
    encode_payload,
    journaled_map,
    reusable,
    run_scope_payload,
)

DeviceFactory = Callable[[CommunicationGraph], Mapping[NodeId, SyncDevice]]

#: Link-fault kinds sampled by default.  All four primitives plus
#: partitions; corruption draws replacements from the value pool, which
#: well-formed protocols (e.g. EIG) must already tolerate from
#: Byzantine senders.
DEFAULT_LINK_KINDS = ("drop", "corrupt", "delay", "omit", "partition")

SPEC_CONDITIONS = ("agreement", "validity", "termination")


@dataclass(frozen=True)
class NodeFault:
    """One faulty node in a campaign attempt.  ``key`` seeds the
    strategy's private randomness, so the device can be rebuilt
    bit-identically during shrinking and replay."""

    node: NodeId
    kind: str
    key: str

    def describe(self) -> str:
        return f"{self.node}={self.kind}"


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign needs to run — and to be re-run."""

    graph: CommunicationGraph
    device_factory: DeviceFactory
    rounds: int
    max_node_faults: int = 0
    max_link_faults: int = 1
    attempts: int = 100
    seed: int = 0
    value_pool: tuple[Any, ...] = (0, 1)
    link_kinds: tuple[str, ...] = DEFAULT_LINK_KINDS
    spec: ByzantineAgreementSpec = field(default_factory=ByzantineAgreementSpec)

    def __post_init__(self) -> None:
        for name in ("max_node_faults", "max_link_faults", "attempts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class Counterexample:
    """One failing configuration: inputs, faulty nodes, fault plan."""

    inputs: Mapping[NodeId, Any]
    node_faults: tuple[NodeFault, ...]
    plan: FaultPlan
    verdict: SpecVerdict
    attempt: int

    @property
    def cost(self) -> tuple[int, int]:
        """(faulty nodes, fault-plan atoms) — the shrinker minimizes
        this lexicographically by deletion."""
        return (len(self.node_faults), self.plan.size)

    def describe(self) -> str:
        nodes = (
            ", ".join(nf.describe() for nf in self.node_faults) or "none"
        )
        return (
            f"attempt {self.attempt}: faulty nodes [{nodes}]; "
            f"links: {self.plan.describe()}; "
            f"inputs {dict(self.inputs)}; {self.verdict.describe()}"
        )


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a campaign: the first violation found (if any), its
    shrunk form, and the shrunk replay's injection trace."""

    config: CampaignConfig
    attempts: int
    found: Counterexample | None
    shrunk: Counterexample | None
    shrink_steps: int = 0
    injection_trace: InjectionTrace | None = None

    @property
    def broken(self) -> bool:
        return self.found is not None

    def describe(self) -> str:
        if not self.broken:
            return (
                f"protocol survived {self.attempts} campaign attempts "
                f"(budget: {self.config.max_node_faults} nodes + "
                f"{self.config.max_link_faults} links)"
            )
        assert self.found is not None and self.shrunk is not None
        return (
            f"broken: {self.found.describe()}\n"
            f"shrunk ({self.shrink_steps} deletions): "
            f"{self.shrunk.describe()}"
        )


# -- deterministic sampling ------------------------------------------------


def _sample_link_fault(
    edge: DirectedEdge,
    kind: str,
    rounds: int,
    rng: random.Random,
) -> LinkFault:
    start = rng.randrange(rounds)
    end = rng.randrange(start + 1, rounds + 1)
    if kind == "delay":
        return LinkFault(
            edge, "delay", start, end, delay=rng.randrange(1, rounds + 1)
        )
    if kind == "omit":
        period = rng.randrange(2, max(3, rounds + 1))
        burst = rng.randrange(1, period)
        return LinkFault(edge, "omit", start, end, burst=burst, period=period)
    return LinkFault(edge, kind, start, end)


def sample_fault_plan(
    graph: CommunicationGraph,
    rounds: int,
    max_link_faults: int,
    rng: random.Random,
    kinds: Sequence[str] = DEFAULT_LINK_KINDS,
    seed: int = 0,
    value_pool: tuple[Any, ...] = (0, 1),
) -> FaultPlan:
    """Sample a fault plan touching at most ``max_link_faults`` links.

    A sampled partition spends its whole edge-cut against the link
    budget, so plans containing one are only drawn when the budget
    affords the cut.
    """
    edges = sorted(graph.edges, key=repr)
    budget = rng.randrange(max_link_faults + 1) if edges else 0
    link_faults: list[LinkFault] = []
    partitions: list[Partition] = []
    used: set[DirectedEdge] = set()
    for _ in range(8 * budget + 8):  # bounded draws: partitions may not fit
        if len(used) >= budget:
            break
        kind = rng.choice(tuple(kinds))
        if kind == "partition":
            side = rng.sample(
                sorted(graph.nodes, key=repr),
                rng.randrange(1, len(graph.nodes)),
            )
            start = rng.randrange(rounds)
            end = rng.randrange(start + 1, rounds + 1)
            cut = partition_between(graph, side, start, end)
            if not cut.edges or len(used | cut.edges) > budget:
                continue
            partitions.append(cut)
            used |= cut.edges
        else:
            candidates = [e for e in edges if e not in used]
            if not candidates:
                break
            edge = rng.choice(candidates)
            link_faults.append(_sample_link_fault(edge, kind, rounds, rng))
            used.add(edge)
    return FaultPlan(
        link_faults=tuple(link_faults),
        partitions=tuple(partitions),
        seed=seed,
        corrupt_pool=value_pool,
    )


def _sample_node_faults(
    config: CampaignConfig, attempt: int, rng: random.Random
) -> tuple[NodeFault, ...]:
    count = rng.randrange(config.max_node_faults + 1)
    nodes = rng.sample(sorted(config.graph.nodes, key=repr), count)
    return tuple(
        NodeFault(
            node=node,
            kind=rng.choice(STRATEGIES),
            key=f"{config.seed}:{attempt}:{node}",
        )
        for node in nodes
    )


# -- execution -------------------------------------------------------------


def _config_token(config: CampaignConfig) -> str:
    """Canonical fingerprint of the parts of a config that determine an
    attempt's outcome (graph shape, rounds, value pool, spec, and the
    device factory's source location).  Memoized on the config object.

    Two *distinct* factories defined on the same source line would
    collide, so sharing one :class:`BehaviorCache` across configs is
    only safe when their factories live at different definition sites;
    the default per-campaign cache is always safe.
    """
    token = config.__dict__.get("_memo_token")
    if token is None:
        factory = config.device_factory
        code = getattr(factory, "__code__", None)
        token = fingerprint(
            graph_fingerprint(config.graph),
            config.rounds,
            repr(config.value_pool),
            repr(config.spec),
            getattr(factory, "__module__", ""),
            getattr(factory, "__qualname__", repr(factory)),
            code.co_filename if code is not None else "",
            code.co_firstlineno if code is not None else -1,
        )
        config.__dict__["_memo_token"] = token
    return token


def campaign_store_key(config: CampaignConfig) -> str:
    """Content fingerprint naming a campaign's run-store shard.

    Covers everything that determines the attempt stream — graph shape,
    device factory, rounds, both fault budgets, attempt count, seed and
    link kinds — so a shared store directory hands each distinct
    campaign its own journal, and re-running the same campaign (even
    from a different process or ``--jobs`` value) finds its old one.
    """
    return json_fingerprint(
        {
            "kind": "campaign",
            "config": _config_token(config),
            "node_faults": config.max_node_faults,
            "link_faults": config.max_link_faults,
            "attempts": config.attempts,
            "seed": config.seed,
            "link_kinds": list(config.link_kinds),
        }
    )


def frontier_store_key(
    config: CampaignConfig,
    max_link_faults: int | None = None,
    attempts_per_level: int | None = None,
) -> str:
    """Content fingerprint naming a degradation-frontier shard.

    Applies the same defaulting as :func:`degradation_frontier`, so the
    key depends on the *effective* sweep bounds.
    """
    max_links = (
        config.max_link_faults if max_link_faults is None else max_link_faults
    )
    attempts = (
        config.attempts if attempts_per_level is None else attempts_per_level
    )
    return json_fingerprint(
        {
            "kind": "frontier",
            "config": _config_token(config),
            "node_faults": config.max_node_faults,
            "max_links": max_links,
            "attempts_per_level": attempts,
            "seed": config.seed,
            "link_kinds": list(config.link_kinds),
        }
    )


def _attempt_key(
    config: CampaignConfig,
    inputs: Mapping[NodeId, Any],
    node_faults: Sequence[NodeFault],
    plan: FaultPlan,
) -> str:
    """Content-addressed key of one fully specified attempt."""
    return fingerprint(
        _config_token(config),
        tuple(sorted((str(u), repr(v)) for u, v in inputs.items())),
        tuple((str(nf.node), nf.kind, nf.key) for nf in node_faults),
        plan_fingerprint(plan),
    )


def _context_key(
    config: CampaignConfig,
    inputs: Mapping[NodeId, Any],
    node_faults: Sequence[NodeFault],
) -> str:
    """Content key of an *execution context* — everything but the fault
    plan.  Attempts sharing a context run on one compiled system (and
    one execution trie); plans are what vary underneath it."""
    return fingerprint(
        _config_token(config),
        tuple(sorted((str(u), repr(v)) for u, v in inputs.items())),
        tuple((str(nf.node), nf.kind, nf.key) for nf in node_faults),
    )


def _build_system(
    config: CampaignConfig,
    inputs: Mapping[NodeId, Any],
    node_faults: Sequence[NodeFault],
):
    """The synchronous system for one attempt: factory devices with the
    faulty nodes' devices swapped for rebuilt-bit-identical adversaries."""
    graph = config.graph
    devices = dict(config.device_factory(graph))
    for nf in node_faults:
        devices[nf.node] = build_adversary(
            nf.kind,
            nf.node,
            devices[nf.node],
            graph,
            config.rounds,
            random.Random(nf.key),
            config.value_pool,
        )
    return make_system(graph, devices, dict(inputs))


def execute_attempt(
    config: CampaignConfig,
    inputs: Mapping[NodeId, Any],
    node_faults: Sequence[NodeFault],
    plan: FaultPlan,
    cache: BehaviorCache | None = None,
    incremental: IncrementalContext | None = None,
) -> tuple[SyncBehavior, SpecVerdict, InjectionTrace]:
    """Run one fully specified configuration and check the spec.

    This is the single entry point used by search, shrinking, replay
    and the frontier sweep, so all four see byte-identical executions.
    A device that crashes on injected garbage is itself a robustness
    finding and is reported as an ``execution`` violation rather than
    as a campaign error.

    With a ``cache``, the attempt is keyed by its *content* — inputs,
    node faults, fault plan, and the config's fingerprint — and a
    repeat execution (the shrinker and replayer produce many) returns
    the cached ``(behavior, verdict, trace)`` without re-running.
    Determinism makes this sound: equal content ⇒ equal results.

    With an ``incremental`` context, cache misses execute through the
    context's :class:`~repro.runtime.incremental.ExecutionTrie` for
    this attempt's (config, inputs, node faults): rounds on which this
    plan acts like an earlier plan are replayed from snapshots, and
    only the divergent suffix actually runs.  The behavior, verdict
    and trace are byte-identical to the plain path (golden-tested).
    """
    if cache is not None:
        key = _attempt_key(config, inputs, node_faults, plan)
        if obs.is_enabled():
            # Telemetry-transparent caching (same scheme as
            # memoized_run): traced entries carry the run-scope events
            # of the original execution, replayed on every hit, so the
            # trace never depends on cache warmth.  The hit/miss facts
            # are host-scope.
            okey = key + ":obs"
            entry = cache.get(okey)
            if entry is not None:
                result, payload = entry
                obs.emit(obs.CACHE_HIT, cache="attempt", op="execute")
                obs.replay(payload)
                return result
            obs.emit(obs.CACHE_MISS, cache="attempt", op="execute")
            with obs.capture() as capsule:
                result = _execute_attempt_uncached(
                    config, inputs, node_faults, plan, incremental
                )
            obs.replay(capsule.payload())
            cache.put(okey, (result, capsule.run_payload()))
            return result
        hit = cache.get(key)
        if hit is not None:
            return hit
        result = _execute_attempt_uncached(
            config, inputs, node_faults, plan, incremental
        )
        cache.put(key, result)
        return result
    return _execute_attempt_uncached(
        config, inputs, node_faults, plan, incremental
    )


def _execute_attempt_uncached(
    config: CampaignConfig,
    inputs: Mapping[NodeId, Any],
    node_faults: Sequence[NodeFault],
    plan: FaultPlan,
    incremental: IncrementalContext | None = None,
) -> tuple[SyncBehavior, SpecVerdict, InjectionTrace]:
    graph = config.graph
    faulty_nodes = {nf.node for nf in node_faults}
    correct = [u for u in graph.nodes if u not in faulty_nodes]

    if incremental is not None:
        ctx_key = _context_key(config, inputs, node_faults)
        trie = incremental.get(ctx_key)
        if trie is None:
            system = _build_system(config, inputs, node_faults)
            trie = ExecutionTrie(compile_sync_plan(system))
            incremental.put(ctx_key, trie)
        staged = trie.prepare(plan, config.rounds)
        try:
            behavior = staged.execute()
        except Exception as exc:  # devices choking on injected garbage
            verdict = _execution_violation(exc, correct)
            empty = SyncBehavior(graph=graph, rounds=0)
            result = (empty, verdict, staged.trace)
        else:
            verdict = config.spec.check(inputs, behavior.decisions(), correct)
            result = (behavior, verdict, staged.trace)
        return result

    injector = SyncFaultInjector(plan)
    system = _build_system(config, inputs, node_faults)
    try:
        behavior = run(system, config.rounds, injector)
    except Exception as exc:  # devices choking on injected garbage
        verdict = _execution_violation(exc, correct)
        empty = SyncBehavior(graph=graph, rounds=0)
        result = (empty, verdict, injector.trace)
    else:
        verdict = config.spec.check(inputs, behavior.decisions(), correct)
        result = (behavior, verdict, injector.trace)
    return result


def _execution_violation(exc: Exception, correct: Sequence[NodeId]) -> SpecVerdict:
    return SpecVerdict(
        (
            Violation(
                "execution",
                f"run crashed under injected faults: {exc}",
                tuple(correct),
            ),
        )
    )


def replay_counterexample(
    config: CampaignConfig,
    counterexample: Counterexample,
    cache: BehaviorCache | None = None,
    incremental: IncrementalContext | None = None,
) -> tuple[SyncBehavior, SpecVerdict, InjectionTrace]:
    """Re-run a counterexample exactly; deterministic by construction."""
    return execute_attempt(
        config,
        counterexample.inputs,
        counterexample.node_faults,
        counterexample.plan,
        cache,
        incremental,
    )


# -- shrinking -------------------------------------------------------------


def shrink_counterexample(
    config: CampaignConfig,
    found: Counterexample,
    cache: BehaviorCache | None = None,
    incremental: IncrementalContext | None = None,
) -> tuple[Counterexample, int]:
    """Greedy delta debugging: repeatedly delete one fault atom or one
    faulty node while the spec still breaks; stop at a local minimum.

    Returns the minimal counterexample and the number of successful
    deletions.  The result is *1-minimal*: removing any single
    remaining fault makes the violation disappear.  A ``cache`` makes
    the re-executed overlap between shrink iterations (and the final
    replay) free; an ``incremental`` context makes even the *novel*
    candidates cheap — deleting one atom leaves every round before the
    atom's window byte-identical, so those rounds replay from the
    execution trie's snapshots.
    """
    shrink_t0 = perf_counter()
    current = found
    steps = 0
    progress = True
    while progress:
        progress = False
        for i in range(current.plan.size):
            candidate_plan = current.plan.without_atoms([i])
            _, verdict, _ = execute_attempt(
                config, current.inputs, current.node_faults, candidate_plan,
                cache, incremental,
            )
            if not verdict.ok:
                current = Counterexample(
                    inputs=current.inputs,
                    node_faults=current.node_faults,
                    plan=candidate_plan,
                    verdict=verdict,
                    attempt=current.attempt,
                )
                steps += 1
                progress = True
                obs.emit(
                    obs.SHRINK_STEP,
                    attempt=current.attempt,
                    deleted="atom",
                    atoms=current.plan.size,
                    nodes=len(current.node_faults),
                )
                break
        if progress:
            continue
        for i in range(len(current.node_faults)):
            candidate_nodes = (
                current.node_faults[:i] + current.node_faults[i + 1 :]
            )
            _, verdict, _ = execute_attempt(
                config, current.inputs, candidate_nodes, current.plan, cache,
                incremental,
            )
            if not verdict.ok:
                current = Counterexample(
                    inputs=current.inputs,
                    node_faults=candidate_nodes,
                    plan=current.plan,
                    verdict=verdict,
                    attempt=current.attempt,
                )
                steps += 1
                progress = True
                obs.emit(
                    obs.SHRINK_STEP,
                    attempt=current.attempt,
                    deleted="node",
                    atoms=current.plan.size,
                    nodes=len(current.node_faults),
                )
                break
    obs.observe_span("campaign.shrink", perf_counter() - shrink_t0)
    return (current, steps)


# -- the campaign ----------------------------------------------------------


@dataclass
class SearchStats:
    """Out-parameter collecting the optimization machinery a campaign
    actually used, so callers (``repro campaign --cache-stats``) can
    print hit/miss counters afterwards.  Deliberately **not** part of
    :class:`CampaignResult`: results stay byte-identical with and
    without the optimizations, counters don't.
    """

    cache: BehaviorCache | None = None
    orbit_index: OrbitIndex | None = None
    incremental: IncrementalContext | None = None

    def describe(self) -> str:
        """Render the ``--cache-stats`` block.

        Since the observability subsystem landed, the counters are
        folded into a :class:`~repro.obs.MetricsRegistry` (the live
        one when telemetry is on, a throwaway otherwise) and rendered
        from its gauges — same strings as before, one source of truth.
        """
        from ..obs import MetricsRegistry, describe_search_stats, get_registry

        registry = get_registry()
        if registry is None:
            registry = MetricsRegistry()
        return describe_search_stats(registry, self)


def _sample_attempt(
    config: CampaignConfig, attempt: int
) -> tuple[tuple[NodeFault, ...], FaultPlan, dict[NodeId, Any]]:
    """The deterministic sample for one attempt index.

    One private rng stream per attempt (seeded by ``(seed, attempt)``),
    so any attempt can be regenerated in isolation — the property the
    parallel driver and the replayer both rely on.  Draw order (node
    faults, then plan, then inputs) is part of the format and must not
    change.
    """
    rng = random.Random(f"{config.seed}:{attempt}")
    node_faults = _sample_node_faults(config, attempt, rng)
    plan = sample_fault_plan(
        config.graph,
        config.rounds,
        config.max_link_faults,
        rng,
        kinds=config.link_kinds,
        seed=config.seed,
        value_pool=config.value_pool,
    )
    inputs = {
        u: rng.choice(config.value_pool)
        for u in sorted(config.graph.nodes, key=repr)
    }
    return (node_faults, plan, inputs)


def _finish_campaign(
    config: CampaignConfig,
    attempt: int,
    cache: BehaviorCache | None,
    incremental: IncrementalContext | None = None,
) -> CampaignResult:
    """Shrink and replay the violation at ``attempt`` (known to break).

    Always re-executes the real attempt — even when orbit dedup only
    reused a verdict bit for it — so the found/shrunk counterexamples
    and the trace come from an actual run of *this* configuration.
    """
    node_faults, plan, inputs = _sample_attempt(config, attempt)
    _, verdict, _ = execute_attempt(
        config, inputs, node_faults, plan, cache, incremental
    )
    found = Counterexample(
        inputs=inputs,
        node_faults=node_faults,
        plan=plan,
        verdict=verdict,
        attempt=attempt,
    )
    shrunk, steps = shrink_counterexample(config, found, cache, incremental)
    _, _, trace = replay_counterexample(config, shrunk, cache, incremental)
    return CampaignResult(
        config=config,
        attempts=attempt,
        found=found,
        shrunk=shrunk,
        shrink_steps=steps,
        injection_trace=trace,
    )


def run_campaign(
    config: CampaignConfig,
    jobs: int = 1,
    cache: BehaviorCache | None = None,
    memoize: bool = True,
    orbit_dedup: bool = False,
    incremental: "IncrementalContext | bool | None" = None,
    stats: SearchStats | None = None,
    store: Shard | None = None,
) -> CampaignResult:
    """Sample attempts under the combined budget until a spec violation
    appears (then shrink it) or the attempt budget is exhausted.

    ``jobs > 1`` fans attempt evaluation across a process pool in
    batches; the smallest violating attempt index wins, so the result
    (including the shrunk counterexample and its trace) is identical
    to the serial scan.  ``cache`` (created fresh when ``memoize`` and
    not supplied) memoizes every execution by content — pass your own
    :class:`~repro.runtime.memo.BehaviorCache` to read hit/miss
    statistics afterwards, or ``memoize=False`` to measure uncached
    cost.

    ``orbit_dedup=True`` executes one representative scenario per
    automorphism orbit and maps the spec's ok-bit back to the orbit's
    other members (sound for node-symmetric device factories; see the
    module docstring).  ``incremental`` (``True`` for a fresh context,
    or a shared :class:`~repro.runtime.incremental.IncrementalContext`)
    replays shared round prefixes from snapshots.  Neither changes the
    result.  Pass a :class:`SearchStats` as ``stats`` to receive the
    cache/orbit/trie objects for counter inspection afterwards.

    ``store`` (a :class:`~repro.analysis.runstore.Shard`, usually
    obtained via :func:`campaign_store_key`) journals every completed
    attempt's verdict — plus its run-scope events when telemetry is on
    — and skips attempts already journaled by an earlier, interrupted
    process.  Resumed runs replay the journaled events, so results,
    witnesses, traces and ``run.*`` metrics are byte-identical to an
    uninterrupted run (checkpoint reuse facts are host-scope only).
    """
    if cache is None and memoize:
        cache = BehaviorCache()
    if isinstance(incremental, bool):
        incremental = IncrementalContext() if incremental else None
    orbit_index = OrbitIndex(config.graph) if orbit_dedup else None
    if stats is not None:
        stats.cache = cache
        stats.orbit_index = orbit_index
        stats.incremental = incremental
    if jobs > 1:
        return _run_campaign_parallel(
            config, jobs, cache, orbit_index, incremental, store
        )
    orbit_ok: dict[str, bool] = {}
    obs_on = obs.is_enabled()

    def attempt_body(attempt: int) -> bool:
        """One attempt's deterministic work, emitting its run events."""
        node_faults, plan, inputs = _sample_attempt(config, attempt)
        if orbit_index is not None:
            key = orbit_index.canonical_key(
                inputs, node_faults, plan, config.value_pool
            )
            if orbit_index.record(key):
                obs.emit(obs.ORBIT_REUSE, attempt=attempt)
                return orbit_ok[key]
            _, verdict, _ = execute_attempt(
                config, inputs, node_faults, plan, cache, incremental
            )
            orbit_ok[key] = verdict.ok
            return verdict.ok
        _, verdict, _ = execute_attempt(
            config, inputs, node_faults, plan, cache, incremental
        )
        return verdict.ok

    for attempt in range(1, config.attempts + 1):
        item_key = f"attempt:{attempt}"
        record = store.get(item_key) if store is not None else None
        if obs_on:
            attempt_t0 = perf_counter()
            obs.emit(obs.ATTEMPT_START, attempt=attempt)
        if reusable(record):
            # Journaled by an earlier process: replay its recorded
            # run-scope events instead of re-executing, and rebuild the
            # orbit bookkeeping so later *fresh* attempts dedup exactly
            # as the uninterrupted run would have.
            ok = bool(record["ok"])
            obs.emit(obs.CHECKPOINT_REUSE, item=item_key)
            obs.replay(decode_payload(record.get("obs", ())))
            if orbit_index is not None:
                node_faults, plan, inputs = _sample_attempt(config, attempt)
                key = orbit_index.canonical_key(
                    inputs, node_faults, plan, config.value_pool
                )
                orbit_index.record(key)
                orbit_ok[key] = ok
        elif store is not None and obs_on:
            with obs.capture() as capsule:
                ok = attempt_body(attempt)
            payload = capsule.payload()
            obs.replay(payload)
            store.append(
                item_key,
                {
                    "ok": ok,
                    "obs": encode_payload(run_scope_payload(payload)),
                },
            )
        else:
            ok = attempt_body(attempt)
            if store is not None:
                store.append(item_key, {"ok": ok})
        if obs_on:
            obs.emit(obs.ATTEMPT_END, attempt=attempt, ok=ok)
            obs.observe_span("campaign.attempt", perf_counter() - attempt_t0)
        if not ok:
            if store is not None:
                store.sync()
            return _finish_campaign(config, attempt, cache, incremental)
    if store is not None:
        store.sync()
    return CampaignResult(
        config=config, attempts=config.attempts, found=None, shrunk=None
    )


def _run_campaign_parallel(
    config: CampaignConfig,
    jobs: int,
    cache: BehaviorCache | None,
    orbit_index: OrbitIndex | None = None,
    incremental: IncrementalContext | None = None,
    store: Shard | None = None,
) -> CampaignResult:
    """Parallel attempt scan: batches of indices fan out to workers,
    which return only ``(attempt, spec ok)`` — small, picklable, and
    free of the config's (unpicklable) device factory, which the
    forked children inherit by memory instead.  Shrinking stays in the
    parent, warmed by the parent-side cache.

    With orbit dedup, sampling and canonicalization happen in the
    parent; only one representative per unseen orbit is dispatched to
    the pool, and the ok-bits map back to every member in index order —
    so the first violating index is the same one the serial scan finds.

    A ``store`` shard filters journaled attempts out of the dispatch
    and journals fresh attempts as they merge (in index order, stopping
    at the first violation — exactly the set the serial scan would
    journal), with an fsync at each batch's merge point.  The journal
    key is the attempt index, so a run checkpointed at one ``--jobs``
    value resumes correctly at any other.
    """

    def probe(attempt: int) -> tuple[int, bool]:
        node_faults, plan, inputs = _sample_attempt(config, attempt)
        _, verdict, _ = execute_attempt(config, inputs, node_faults, plan)
        return (attempt, verdict.ok)

    def journal(item_key: str, ok: bool, payload: tuple) -> None:
        if store is None:
            return
        value: dict[str, Any] = {"ok": ok}
        if obs.is_enabled():
            value["obs"] = encode_payload(run_scope_payload(payload))
        store.append(item_key, value)

    runner = ParallelRunner(jobs)
    batch = max(4 * runner.jobs, 8)
    first_bad: int | None = None
    orbit_ok: dict[str, bool] = {}
    for lo in range(1, config.attempts + 1, batch):
        hi = min(lo + batch, config.attempts + 1)
        indices = range(lo, hi)
        records: dict[int, dict] = {}
        if store is not None:
            for attempt in indices:
                rec = store.get(f"attempt:{attempt}")
                if reusable(rec):
                    records[attempt] = rec  # type: ignore[assignment]
        if orbit_index is None:
            # Workers capture each attempt's telemetry; the parent
            # replays the payloads in index order, brackets them with
            # the attempt events, and — like the serial scan — stops
            # consuming at the first violation, discarding any events
            # from attempts the serial run would never have executed.
            pooled: dict[int, tuple[bool, tuple]] = {}
            for (attempt, ok), payload in runner.map_captured(
                probe, [a for a in indices if a not in records]
            ):
                pooled[attempt] = (ok, payload)
            for attempt in indices:
                item_key = f"attempt:{attempt}"
                obs.emit(obs.ATTEMPT_START, attempt=attempt)
                if attempt in records:
                    record = records[attempt]
                    ok = bool(record["ok"])
                    obs.emit(obs.CHECKPOINT_REUSE, item=item_key)
                    obs.replay(decode_payload(record.get("obs", ())))
                else:
                    ok, payload = pooled[attempt]
                    obs.replay(payload)
                    journal(item_key, ok, payload)
                obs.emit(obs.ATTEMPT_END, attempt=attempt, ok=ok)
                if not ok:
                    first_bad = attempt
                    break
        else:
            keys: dict[int, str] = {}
            representatives: list[int] = []
            dispatched: set[str] = set()
            for attempt in indices:
                node_faults, plan, inputs = _sample_attempt(config, attempt)
                key = orbit_index.canonical_key(
                    inputs, node_faults, plan, config.value_pool
                )
                keys[attempt] = key
                if attempt in records:
                    # A journaled attempt's verdict seeds its orbit, so
                    # fresh members of the same orbit are not
                    # re-dispatched — matching the uninterrupted run.
                    orbit_ok.setdefault(key, bool(records[attempt]["ok"]))
                    continue
                if key not in orbit_ok and key not in dispatched:
                    representatives.append(attempt)
                    dispatched.add(key)
            rep_payloads: dict[int, tuple] = {}
            for (attempt, ok), payload in runner.map_captured(
                probe, representatives
            ):
                orbit_ok[keys[attempt]] = ok
                rep_payloads[attempt] = payload
            for attempt in indices:
                item_key = f"attempt:{attempt}"
                obs.emit(obs.ATTEMPT_START, attempt=attempt)
                if attempt in records:
                    record = records[attempt]
                    ok = bool(record["ok"])
                    obs.emit(obs.CHECKPOINT_REUSE, item=item_key)
                    obs.replay(decode_payload(record.get("obs", ())))
                    orbit_index.record(keys[attempt])
                elif store is not None and obs.is_enabled():
                    # Capture the merge body so the journal records the
                    # same run events a serial execution of this attempt
                    # emits (the representative's payload, or the orbit
                    # reuse event).
                    with obs.capture() as capsule:
                        orbit_index.record(keys[attempt])
                        if attempt in rep_payloads:
                            obs.replay(rep_payloads[attempt])
                        else:
                            obs.emit(obs.ORBIT_REUSE, attempt=attempt)
                    payload = capsule.payload()
                    obs.replay(payload)
                    ok = orbit_ok[keys[attempt]]
                    journal(item_key, ok, payload)
                else:
                    orbit_index.record(keys[attempt])
                    if attempt in rep_payloads:
                        obs.replay(rep_payloads[attempt])
                    else:
                        obs.emit(obs.ORBIT_REUSE, attempt=attempt)
                    ok = orbit_ok[keys[attempt]]
                    journal(item_key, ok, ())
                obs.emit(obs.ATTEMPT_END, attempt=attempt, ok=ok)
                if not ok:
                    first_bad = attempt
                    break
        if store is not None:
            store.sync()
        if first_bad is not None:
            break
    if first_bad is None:
        return CampaignResult(
            config=config, attempts=config.attempts, found=None, shrunk=None
        )
    return _finish_campaign(config, first_bad, cache, incremental)


# -- graceful degradation --------------------------------------------------


@dataclass(frozen=True)
class FrontierRow:
    """One budget level of a degradation sweep."""

    link_budget: int
    attempts: int
    broken_conditions: tuple[str, ...]
    example: Counterexample | None

    def as_tuple(self) -> tuple:
        return (
            self.link_budget,
            self.attempts,
            ", ".join(self.broken_conditions) or "-",
        )


FRONTIER_HEADERS = ("links", "attempts", "first-broken conditions")


@dataclass(frozen=True)
class DegradationFrontier:
    """Where each spec clause first breaks as the link budget grows."""

    rows: tuple[FrontierRow, ...]
    first_break: Mapping[str, int | None]

    def describe(self) -> str:
        lines = []
        for condition in sorted(self.first_break):
            budget = self.first_break[condition]
            if budget is None:
                lines.append(f"{condition}: never broken within the sweep")
            else:
                lines.append(f"{condition}: first broken at {budget} links")
        return "\n".join(lines)


def degradation_frontier(
    config: CampaignConfig,
    max_link_faults: int | None = None,
    attempts_per_level: int | None = None,
    jobs: int = 1,
    cache: BehaviorCache | None = None,
    orbit_dedup: bool = False,
    incremental: "IncrementalContext | bool | None" = None,
    store: Shard | None = None,
) -> DegradationFrontier:
    """Sweep the link budget 0..max and report, per spec clause, the
    smallest budget at which a campaign finds a violation of it.

    Budget levels are independent campaigns, so ``jobs > 1`` evaluates
    them across a process pool; rows come back in budget order and the
    ``first_break`` fold runs over them exactly as the serial loop
    did, so the frontier is identical either way.  ``orbit_dedup`` and
    ``incremental`` are forwarded to every level's campaign (results
    unchanged; see :func:`run_campaign`).

    A ``store`` shard (see :func:`frontier_store_key`) journals each
    completed budget level — row, shrunk example, and run-scope events
    — so an interrupted sweep resumes from the first unfinished level
    with byte-identical output.
    """
    max_links = (
        config.max_link_faults if max_link_faults is None else max_link_faults
    )
    attempts = (
        config.attempts if attempts_per_level is None else attempts_per_level
    )

    def level_row(budget: int) -> FrontierRow:
        probe_t0 = perf_counter()
        level = CampaignConfig(
            graph=config.graph,
            device_factory=config.device_factory,
            rounds=config.rounds,
            max_node_faults=config.max_node_faults,
            max_link_faults=budget,
            attempts=attempts,
            seed=config.seed,
            value_pool=config.value_pool,
            link_kinds=config.link_kinds,
            spec=config.spec,
        )
        result = run_campaign(
            level,
            cache=cache,
            orbit_dedup=orbit_dedup,
            incremental=incremental,
        )
        broken: tuple[str, ...] = ()
        if result.broken:
            assert result.shrunk is not None
            broken = tuple(
                dict.fromkeys(
                    v.condition for v in result.shrunk.verdict.violations
                )
            )
        obs.emit(
            obs.FRONTIER_LEVEL,
            budget=budget,
            attempts=attempts,
            broken=", ".join(broken) or "-",
        )
        obs.observe_span("frontier.probe", perf_counter() - probe_t0)
        return FrontierRow(
            link_budget=budget,
            attempts=attempts,
            broken_conditions=broken,
            example=result.shrunk,
        )

    runner = ParallelRunner(jobs)
    rows = journaled_map(
        runner,
        level_row,
        range(max_links + 1),
        store,
        key_fn=lambda budget: f"level:{budget}",
        encode=_frontier_row_to_jsonable,
        decode=lambda data: _frontier_row_from_jsonable(data, config.graph),
    )
    first_break: dict[str, int | None] = dict.fromkeys(SPEC_CONDITIONS)
    for row in rows:
        for condition in row.broken_conditions:
            if first_break.get(condition) is None:
                first_break[condition] = row.link_budget
    return DegradationFrontier(
        rows=tuple(rows), first_break=first_break
    )


# -- persistence (one-command reproduction) --------------------------------


def counterexample_to_dict(ce: Counterexample) -> dict[str, Any]:
    return {
        "attempt": ce.attempt,
        "inputs": [[str(u), v] for u, v in sorted(
            ce.inputs.items(), key=lambda kv: str(kv[0])
        )],
        "node_faults": [
            {"node": str(nf.node), "kind": nf.kind, "key": nf.key}
            for nf in ce.node_faults
        ],
        "plan": ce.plan.to_dict(),
        "verdict": ce.verdict.describe(),
    }


def counterexample_from_dict(
    data: dict[str, Any], graph: CommunicationGraph
) -> Counterexample:
    by_name = {str(u): u for u in graph.nodes}
    inputs = {by_name[name]: value for name, value in data["inputs"]}
    node_faults = tuple(
        NodeFault(
            node=by_name[nf["node"]], kind=nf["kind"], key=nf["key"]
        )
        for nf in data["node_faults"]
    )
    plan = FaultPlan.from_dict(data["plan"], graph)
    return Counterexample(
        inputs=inputs,
        node_faults=node_faults,
        plan=plan,
        verdict=SpecVerdict(),
        attempt=data.get("attempt", 0),
    )


def _frontier_row_to_jsonable(row: FrontierRow) -> dict[str, Any]:
    """A lossless JSON form of one frontier row (for run-store
    journaling) — including the shrunk example's verdict, which
    :func:`counterexample_to_dict` alone keeps only as prose."""
    data: dict[str, Any] = {
        "links": row.link_budget,
        "attempts": row.attempts,
        "broken": list(row.broken_conditions),
        "example": None,
    }
    if row.example is not None:
        example = counterexample_to_dict(row.example)
        example["violations"] = [
            {
                "condition": v.condition,
                "detail": v.detail,
                "nodes": [str(n) for n in v.nodes],
            }
            for v in row.example.verdict.violations
        ]
        data["example"] = example
    return data


def _frontier_row_from_jsonable(
    data: dict[str, Any], graph: CommunicationGraph
) -> FrontierRow:
    """Inverse of :func:`_frontier_row_to_jsonable`."""
    example = None
    if data.get("example") is not None:
        example = counterexample_from_dict(data["example"], graph)
        by_name = {str(u): u for u in graph.nodes}
        verdict = SpecVerdict(
            tuple(
                Violation(
                    v["condition"],
                    v["detail"],
                    tuple(by_name[name] for name in v["nodes"]),
                )
                for v in data["example"].get("violations", ())
            )
        )
        example = replace(example, verdict=verdict)
    return FrontierRow(
        link_budget=data["links"],
        attempts=data["attempts"],
        broken_conditions=tuple(data["broken"]),
        example=example,
    )


def _frontier_to_jsonable(frontier: DegradationFrontier) -> dict[str, Any]:
    return {
        "first_break": dict(frontier.first_break),
        "rows": [
            {
                "links": row.link_budget,
                "attempts": row.attempts,
                "broken": list(row.broken_conditions),
            }
            for row in frontier.rows
        ],
    }


__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "Counterexample",
    "DEFAULT_LINK_KINDS",
    "DegradationFrontier",
    "FRONTIER_HEADERS",
    "FrontierRow",
    "NodeFault",
    "SearchStats",
    "campaign_store_key",
    "counterexample_from_dict",
    "counterexample_to_dict",
    "degradation_frontier",
    "execute_attempt",
    "frontier_store_key",
    "replay_counterexample",
    "run_campaign",
    "sample_fault_plan",
    "shrink_counterexample",
]
