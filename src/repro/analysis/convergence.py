"""Convergence measurement for iterative agreement protocols.

[DLPSW] proves iterated f-trimmed averaging contracts the spread of
correct values by a constant factor per round; [MS] proves the
fault-tolerant midpoint halves it.  These helpers measure the factor
empirically for any device family built on one-value-per-round
exchange, under a configurable adversary — used by the convergence
benchmarks and usable against new fusion rules.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from ..graphs.graph import CommunicationGraph, NodeId
from ..runtime.sync.device import SyncDevice
from ..runtime.sync.executor import run
from ..runtime.sync.system import make_system


@dataclass(frozen=True)
class ConvergenceCurve:
    """Honest-value spread as a function of rounds."""

    rounds: tuple[int, ...]
    spreads: tuple[float, ...]

    def contraction_factors(self) -> list[float]:
        """Per-step spread ratios (``spread[i+1] / spread[i]``), with
        zero spreads propagated as 0."""
        factors = []
        for before, after in zip(self.spreads, self.spreads[1:]):
            factors.append(0.0 if before == 0 else after / before)
        return factors

    def worst_factor(self) -> float:
        factors = self.contraction_factors()
        return max(factors) if factors else 0.0

    def rows(self) -> list[tuple[int, float]]:
        return list(zip(self.rounds, self.spreads))


def spread(values: Sequence[float]) -> float:
    vals = list(values)
    return max(vals) - min(vals) if vals else 0.0


def measure_convergence(
    graph: CommunicationGraph,
    device_builder: Callable[[int], Mapping[NodeId, SyncDevice]],
    inputs: Mapping[NodeId, float],
    honest: Sequence[NodeId],
    adversary_builder: Callable[[], Mapping[NodeId, SyncDevice]] | None = None,
    max_rounds: int = 6,
) -> ConvergenceCurve:
    """Run the protocol for 1..max_rounds rounds; record honest spread.

    ``device_builder(rounds)`` returns the honest assignment configured
    for that round budget; ``adversary_builder()`` returns replacements
    for the faulty nodes (fresh per run, so adversaries may be
    stateful).
    """
    rounds_axis = []
    spreads = []
    for rounds in range(1, max_rounds + 1):
        devices = dict(device_builder(rounds))
        if adversary_builder is not None:
            devices.update(adversary_builder())
        behavior = run(make_system(graph, devices, dict(inputs)), rounds)
        decisions = [behavior.decision(u) for u in honest]
        if any(d is None for d in decisions):
            raise ValueError(
                f"honest nodes undecided after {rounds} rounds"
            )
        rounds_axis.append(rounds)
        spreads.append(spread(decisions))
    return ConvergenceCurve(tuple(rounds_axis), tuple(spreads))


def theoretical_dlpsw_factor(n: int, f: int) -> float:
    """[DLPSW]'s single-round contraction for their ``f,k``-averaging
    function with ``n`` values: ``1 / (⌊(n - 2f - 1) / f⌋ + 1)``.

    The plain trimmed mean implemented here can have weaker individual
    rounds against adaptive injections but matches the bound
    cumulatively — the convergence benchmark measures both."""
    if f < 1:
        return 0.0
    return 1.0 / ((n - 2 * f - 1) // f + 1)
