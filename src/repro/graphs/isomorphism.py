"""Graph isomorphism for small graphs (backtracking with degree
pruning).

The paper's figures claim specific *shapes* for its coverings — the
double cover of the triangle "is" the hexagon, the double cover of the
diamond "is" the 8-ring.  This module lets tests assert those claims
literally instead of checking proxy properties (degree sequences,
connectivity).  Exponential worst case; intended for the tens-of-nodes
graphs this library works with.
"""

from __future__ import annotations

from collections.abc import Mapping

from .graph import CommunicationGraph, NodeId


def find_isomorphism(
    first: CommunicationGraph, second: CommunicationGraph
) -> dict[NodeId, NodeId] | None:
    """A node bijection preserving adjacency, or ``None``."""
    if len(first) != len(second):
        return None
    if len(first.edges) != len(second.edges):
        return None
    degrees_first = sorted(first.degree(u) for u in first.nodes)
    degrees_second = sorted(second.degree(u) for u in second.nodes)
    if degrees_first != degrees_second:
        return None

    # Order first's nodes to fail fast: highest degree first, then by
    # connectivity to already-placed nodes.
    order: list[NodeId] = []
    placed: set[NodeId] = set()
    remaining = set(first.nodes)
    while remaining:
        best = max(
            remaining,
            key=lambda u: (
                sum(1 for v in first.neighbors(u) if v in placed),
                first.degree(u),
                str(u),
            ),
        )
        order.append(best)
        placed.add(best)
        remaining.discard(best)

    by_degree: dict[int, list[NodeId]] = {}
    for v in second.nodes:
        by_degree.setdefault(second.degree(v), []).append(v)

    mapping: dict[NodeId, NodeId] = {}
    used: set[NodeId] = set()

    def compatible(u: NodeId, v: NodeId) -> bool:
        for neighbor in first.neighbors(u):
            if neighbor in mapping:
                if not second.has_edge(v, mapping[neighbor]):
                    return False
        # Non-adjacency must be preserved too (same edge count makes
        # one direction sufficient, but checking both prunes earlier).
        for placed_u, placed_v in mapping.items():
            if first.has_edge(u, placed_u) != second.has_edge(v, placed_v):
                return False
        return True

    def backtrack(index: int) -> bool:
        if index == len(order):
            return True
        u = order[index]
        for v in by_degree.get(first.degree(u), []):
            if v in used or not compatible(u, v):
                continue
            mapping[u] = v
            used.add(v)
            if backtrack(index + 1):
                return True
            del mapping[u]
            used.discard(v)
        return False

    return dict(mapping) if backtrack(0) else None


def is_isomorphic(
    first: CommunicationGraph, second: CommunicationGraph
) -> bool:
    return find_isomorphism(first, second) is not None


def verify_isomorphism(
    first: CommunicationGraph,
    second: CommunicationGraph,
    mapping: Mapping[NodeId, NodeId],
) -> bool:
    """Check that a claimed bijection is adjacency-preserving."""
    if set(mapping) != set(first.nodes):
        return False
    if set(mapping.values()) != set(second.nodes):
        return False
    for u1 in first.nodes:
        for u2 in first.nodes:
            if u1 == u2:
                continue
            if first.has_edge(u1, u2) != second.has_edge(
                mapping[u1], mapping[u2]
            ):
                return False
    return True
