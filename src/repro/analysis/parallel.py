"""Deterministic parallel drivers for campaigns and sweeps.

Every unit of work this repo fans out — a campaign attempt, a sweep
point, a degradation-frontier budget level — is already deterministic
given its index and a seed.  That makes parallelism *embarrassingly*
safe: evaluate items in any order, merge results back **in item
order**, and the outcome is byte-identical to the serial run.  This
module supplies the one primitive everything else needs:

:class:`ParallelRunner` — an ordered ``map`` over a process pool, with
a serial fallback whenever the platform cannot fork, the pool cannot
be built, or ``jobs <= 1``.

Design notes
------------
* **Fork, not spawn.**  Work functions are closures over configs that
  hold device-factory lambdas; those never survive pickling.  With the
  ``fork`` start method the closure is *inherited* by the children via
  the parent's memory image — only the items (ints, small tuples) and
  the results cross the pipe, so work functions stay arbitrary.  The
  module-level :func:`_call` trampoline is what actually gets pickled
  (by name), and it reads the closure from :data:`_WORK`, set in the
  parent immediately before the pool forks.
* **Results must be picklable.**  Callers return value objects
  (verdict tuples, rows, counterexamples) — never configs carrying
  lambdas.
* **Determinism.**  ``map`` preserves item order (``Pool.map``), so
  "first violation" style reductions in the caller see the same order
  serial execution produced.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

from .. import obs

T = TypeVar("T")
R = TypeVar("R")

logger = logging.getLogger(__name__)

#: The current work closure, inherited by forked workers.  Only ever
#: set in the parent, immediately before a pool is created.
_WORK: Callable[[Any], Any] | None = None


def _call(item: Any) -> Any:
    """Module-level trampoline (picklable by name) around :data:`_WORK`."""
    assert _WORK is not None, "worker forked before _WORK was set"
    return _WORK(item)


def _call_captured(item: Any) -> tuple[Any, tuple]:
    """Trampoline that also captures the item's telemetry.

    Forked workers inherit the parent's enabled telemetry; the capture
    sink redirects the item's events into a picklable capsule that
    rides back over the result pipe alongside the result, so the
    parent can replay them in item order.
    """
    assert _WORK is not None, "worker forked before _WORK was set"
    with obs.capture() as capsule:
        result = _WORK(item)
    return result, capsule.payload()


def fork_available() -> bool:
    """True when the ``fork`` start method exists (Linux, most Unix)."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def available_parallelism() -> int:
    """Best-effort count of usable cores."""
    return os.cpu_count() or 1


class ParallelRunner:
    """An ordered parallel ``map`` with a serial fallback.

    ``jobs <= 1`` (or no fork support, a single-core box, or a pool
    failure) degrades to a plain in-process loop — same results, same
    order.  ``jobs > 1`` on a multi-core machine fans items over a
    fork-based process pool.  On one core the pool is pure overhead
    (fork + pipe costs with zero concurrency — the recorded bench run
    measured 0.14x), so it is skipped, with the reason logged once.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self.fallback_reason: str | None = None
        if self.jobs <= 1:
            self.fallback_reason = f"jobs={self.jobs} requests no parallelism"
        elif not fork_available():
            self.fallback_reason = "fork start method unavailable"
        elif available_parallelism() <= 1:
            self.fallback_reason = (
                f"only {available_parallelism()} CPU core available; "
                "a process pool would add overhead without concurrency"
            )
        if self.fallback_reason is not None and self.jobs > 1:
            logger.info(
                "ParallelRunner falling back to serial: %s",
                self.fallback_reason,
            )

    @property
    def parallel(self) -> bool:
        return self.fallback_reason is None

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results in item order.

        ``fn`` may be any callable (closures welcome — see module
        docstring); items and results must be picklable when running
        parallel.
        """
        work: Sequence[T] = list(items)
        if not self.parallel or len(work) <= 1:
            return [fn(item) for item in work]
        if obs.is_enabled():
            # Replay each worker's captured events in item order — the
            # merged stream is byte-identical to the serial run's.
            captured = self._pool_map(_call_captured, fn, work)
            results = []
            for result, payload in captured:
                obs.replay(payload)
                results.append(result)
            return results
        return self._pool_map(_call, fn, work)

    def map_captured(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> list[tuple[R, tuple]]:
        """Like :meth:`map`, but return ``(result, telemetry payload)``
        pairs *without* replaying the payloads.

        For callers whose serial semantics stop consuming results early
        (first-violation reductions): they replay payloads themselves,
        in item order, exactly as far as the serial run would have
        executed.  Payloads are empty when telemetry is disabled.
        """
        work: Sequence[T] = list(items)
        if not self.parallel or len(work) <= 1:
            out: list[tuple[R, tuple]] = []
            for item in work:
                with obs.capture() as capsule:
                    result = fn(item)
                out.append((result, capsule.payload()))
            return out
        return self._pool_map(_call_captured, fn, work)

    def _pool_map(
        self,
        trampoline: Callable[[Any], Any],
        fn: Callable[[T], Any],
        work: Sequence[T],
    ) -> list[Any]:
        global _WORK
        previous = _WORK
        _WORK = fn
        processes = min(self.jobs, len(work))
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=processes) as pool:
                obs.emit(obs.WORKER_POOL, processes=processes, items=len(work))
                results = pool.map(trampoline, work)
                obs.emit(obs.WORKER_MERGE, items=len(results))
                return results
        except (OSError, ValueError) as exc:  # pool could not be built
            logger.info(
                "ParallelRunner falling back to serial: pool failed (%s)",
                exc,
            )
            if trampoline is _call_captured:
                out = []
                for item in work:
                    with obs.capture() as capsule:
                        result = fn(item)
                    out.append((result, capsule.payload()))
                return out
            return [fn(item) for item in work]
        finally:
            _WORK = previous


__all__ = [
    "ParallelRunner",
    "available_parallelism",
    "fork_available",
]
