"""Node connectivity, from scratch — with cached flow analytics.

The paper's bounds are stated in terms of the *connectivity* of the
communication graph: the minimum number of nodes whose removal
disconnects it.  We compute it with Menger's theorem: the minimum
``s``–``t`` vertex cut equals the maximum number of internally
vertex-disjoint ``s``–``t`` paths, found by unit-capacity max-flow on
the split-node digraph.  Global connectivity uses Even's reduction,
which needs only ``O(n)`` pairwise computations instead of all pairs.

Every public function here is **memoized** at two levels: on the graph
instance (graphs are immutable, so a flow result is valid forever) and
in a small content-keyed global table, so sweep drivers that rebuild
``complete_graph(n)`` fresh at every point still reuse the max-flow
work of earlier points.  Mutable results (cut sets, path lists) are
copied on every return, so callers can scribble on them without
corrupting the cache.  :func:`analytics_stats` exposes hit/miss
counters; :func:`clear_analytics` resets the global table (tests).

Cross-checked against ``networkx.node_connectivity`` in the test suite.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Any, Callable

from .graph import CommunicationGraph, GraphError, NodeId

#: Content-keyed results shared across equal-but-distinct graph
#: instances.  Bounded LRU; entries are tiny (ints, frozensets).
_GLOBAL_ANALYTICS: OrderedDict[tuple, Any] = OrderedDict()
_GLOBAL_ANALYTICS_MAX = 1024
_STATS = {"hits": 0, "misses": 0}


def _graph_content_key(graph: CommunicationGraph) -> tuple:
    """A canonical, hashable key for the graph's shape (cached on the
    instance — computing it is O(n + m), trivial next to a max-flow)."""
    cache = graph.analytics_cache()
    key = cache.get("content_key")
    if key is None:
        key = (
            tuple(graph.nodes),
            tuple(sorted(graph.edges, key=repr)),
        )
        cache["content_key"] = key
    return key


def _cached(
    graph: CommunicationGraph, op: tuple, compute: Callable[[], Any]
) -> Any:
    """Two-level memo: per-instance dict first, then the global
    content-keyed LRU, then compute."""
    local = graph.analytics_cache()
    if op in local:
        _STATS["hits"] += 1
        return local[op]
    global_key = (_graph_content_key(graph), op)
    if global_key in _GLOBAL_ANALYTICS:
        _STATS["hits"] += 1
        _GLOBAL_ANALYTICS.move_to_end(global_key)
        value = _GLOBAL_ANALYTICS[global_key]
        local[op] = value
        return value
    _STATS["misses"] += 1
    value = compute()
    local[op] = value
    _GLOBAL_ANALYTICS[global_key] = value
    while len(_GLOBAL_ANALYTICS) > _GLOBAL_ANALYTICS_MAX:
        _GLOBAL_ANALYTICS.popitem(last=False)
    return value


def analytics_stats() -> dict[str, int]:
    """Hit/miss counters of the connectivity analytics caches."""
    return {
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "global_entries": len(_GLOBAL_ANALYTICS),
    }


def clear_analytics() -> None:
    """Drop the global table and reset counters (per-instance caches
    die with their graphs)."""
    _GLOBAL_ANALYTICS.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


def min_vertex_cut(
    graph: CommunicationGraph, source: NodeId, target: NodeId
) -> set[NodeId]:
    """A minimum set of nodes (excluding endpoints) separating two nodes.

    Raises :class:`GraphError` if the nodes are adjacent or identical
    (no vertex cut exists in those cases).
    """
    if source == target:
        raise GraphError("source and target must differ")
    if graph.has_edge(source, target):
        raise GraphError("no vertex cut separates adjacent nodes")

    def compute() -> frozenset[NodeId]:
        flow = _SplitNodeFlow(graph, source, target)
        flow.run()
        return frozenset(flow.min_cut_nodes())

    return set(_cached(graph, ("min_vertex_cut", source, target), compute))


def local_connectivity(
    graph: CommunicationGraph, source: NodeId, target: NodeId
) -> int:
    """Maximum number of internally vertex-disjoint ``s``–``t`` paths."""
    if source == target:
        raise GraphError("source and target must differ")
    if graph.has_edge(source, target):
        # Adjacent nodes: one direct path plus disjoint paths avoiding
        # the direct edge; by convention (and to match networkx) this is
        # unbounded for the cut formulation, so callers skip this case.
        raise GraphError("local connectivity of adjacent nodes is unbounded")
    return _cached(
        graph,
        ("local_connectivity", source, target),
        lambda: _SplitNodeFlow(graph, source, target).run(),
    )


def node_connectivity(graph: CommunicationGraph) -> int:
    """The connectivity ``c(G)``: minimum nodes whose removal disconnects.

    Uses Even's algorithm: fix a minimum-degree node ``v``; the answer is
    the minimum of ``κ(v, w)`` over non-neighbors ``w`` of ``v`` and
    ``κ(x, y)`` over non-adjacent pairs of neighbors of ``v``, capped by
    the minimum degree.  A complete graph on ``n`` nodes has
    connectivity ``n - 1`` by convention.
    """
    n = len(graph)
    if n == 0:
        raise GraphError("connectivity of the empty graph is undefined")
    return _cached(
        graph, ("node_connectivity",), lambda: _node_connectivity(graph)
    )


def _node_connectivity(graph: CommunicationGraph) -> int:
    n = len(graph)
    if n == 1:
        return 0
    if not graph.is_connected():
        return 0
    if graph.is_complete():
        return n - 1

    pivot = min(graph.nodes, key=graph.degree)
    best = graph.degree(pivot)
    pivot_neighbors = graph.neighbors(pivot)
    neighbor_set = set(pivot_neighbors)

    for w in graph.nodes:
        if w == pivot or w in neighbor_set:
            continue
        best = min(best, local_connectivity(graph, pivot, w))
        if best == 0:
            return 0
    for i, x in enumerate(pivot_neighbors):
        for y in pivot_neighbors[i + 1 :]:
            if not graph.has_edge(x, y):
                best = min(best, local_connectivity(graph, x, y))
                if best == 0:
                    return 0
    return best


def global_min_cut(graph: CommunicationGraph) -> set[NodeId]:
    """A minimum vertex cut of the whole graph.

    Returns an empty set for disconnected graphs.  Raises
    :class:`GraphError` for complete graphs, which have no vertex cut.
    """
    if not graph.is_connected():
        return set()
    if graph.is_complete():
        raise GraphError("complete graphs have no vertex cut")
    best_cut: set[NodeId] | None = None
    pivot = min(graph.nodes, key=graph.degree)
    neighbor_set = set(graph.neighbors(pivot))
    candidates: list[tuple[NodeId, NodeId]] = [
        (pivot, w)
        for w in graph.nodes
        if w != pivot and w not in neighbor_set
    ]
    pivot_neighbors = graph.neighbors(pivot)
    candidates.extend(
        (x, y)
        for i, x in enumerate(pivot_neighbors)
        for y in pivot_neighbors[i + 1 :]
        if not graph.has_edge(x, y)
    )
    for s, t in candidates:
        cut = min_vertex_cut(graph, s, t)
        if best_cut is None or len(cut) < len(best_cut):
            best_cut = cut
    assert best_cut is not None  # non-complete connected graph has a cut
    return best_cut


def vertex_disjoint_paths(
    graph: CommunicationGraph, source: NodeId, target: NodeId
) -> list[list[NodeId]]:
    """A maximum collection of internally vertex-disjoint paths.

    Adjacent endpoints are allowed: the direct edge contributes the
    two-node path, and the remaining paths are computed on the graph
    without that edge.  Used by the Dolev-relay protocol, which routes
    messages over ``2f + 1`` disjoint paths.
    """
    if source == target:
        raise GraphError("source and target must differ")

    def compute() -> tuple[tuple[NodeId, ...], ...]:
        direct: list[list[NodeId]] = []
        working = graph
        if graph.has_edge(source, target):
            direct.append([source, target])
            keep = [
                (u, v)
                for (u, v) in graph.edges
                if {u, v} != {source, target} and _ordered(graph, u, v)
            ]
            working = CommunicationGraph(graph.nodes, keep)
        flow = _SplitNodeFlow(working, source, target)
        flow.run()
        return tuple(tuple(p) for p in direct + flow.disjoint_paths())

    cached = _cached(
        graph, ("vertex_disjoint_paths", source, target), compute
    )
    return [list(path) for path in cached]


def _ordered(graph: CommunicationGraph, u: NodeId, v: NodeId) -> bool:
    order = {node: i for i, node in enumerate(graph.nodes)}
    return order[u] < order[v]


class _SplitNodeFlow:
    """Unit-capacity max-flow on the split-node digraph.

    Every node ``v`` other than the endpoints becomes ``v_in -> v_out``
    with capacity one; every directed edge ``(u, v)`` becomes
    ``u_out -> v_in`` with capacity one.  Max-flow = max number of
    internally vertex-disjoint paths; saturated split arcs reachable
    from the residual source frontier give the minimum vertex cut.
    """

    def __init__(
        self, graph: CommunicationGraph, source: NodeId, target: NodeId
    ) -> None:
        self.graph = graph
        self.source = source
        self.target = target
        # Arc representation: adjacency of arc indices; arcs stored as
        # (head, capacity); reverse arc is index ^ 1.
        self._head: list[int] = []
        self._cap: list[int] = []
        self._initial_cap: list[int] = []
        self._adj: dict[int, list[int]] = {}
        self._vertex_ids: dict[tuple[NodeId, str], int] = {}
        self._build()

    def _vid(self, node: NodeId, side: str) -> int:
        key = (node, side)
        if key not in self._vertex_ids:
            self._vertex_ids[key] = len(self._vertex_ids)
            self._adj[self._vertex_ids[key]] = []
        return self._vertex_ids[key]

    def _add_arc(self, u: int, v: int, cap: int) -> None:
        self._adj[u].append(len(self._head))
        self._head.append(v)
        self._cap.append(cap)
        self._initial_cap.append(cap)
        self._adj[v].append(len(self._head))
        self._head.append(u)
        self._cap.append(0)
        self._initial_cap.append(0)

    def _build(self) -> None:
        g = self.graph
        # Edge arcs get effectively infinite capacity so that minimum
        # cuts consist of split (node) arcs only; n suffices as
        # "infinite" because the vertex connectivity is below n.
        infinite = len(g) + 1
        for node in g.nodes:
            if node in (self.source, self.target):
                # Endpoints are not split (they may not be cut).
                vid = self._vid(node, "both")
                self._vertex_ids[(node, "in")] = vid
                self._vertex_ids[(node, "out")] = vid
            else:
                self._add_arc(self._vid(node, "in"), self._vid(node, "out"), 1)
        for u, v in g.edges:
            self._add_arc(self._vid(u, "out"), self._vid(v, "in"), infinite)

    def run(self) -> int:
        """Edmonds–Karp; returns the max-flow value."""
        s = self._vertex_ids[(self.source, "out")]
        t = self._vertex_ids[(self.target, "in")]
        flow = 0
        while True:
            parent_arc = self._bfs(s, t)
            if parent_arc is None:
                return flow
            # Unit capacities: each augmenting path carries one unit.
            v = t
            while v != s:
                arc = parent_arc[v]
                self._cap[arc] -= 1
                self._cap[arc ^ 1] += 1
                v = self._head[arc ^ 1]
            flow += 1

    def _bfs(self, s: int, t: int) -> dict[int, int] | None:
        parent_arc: dict[int, int] = {}
        queue = deque([s])
        seen = {s}
        while queue:
            u = queue.popleft()
            for arc in self._adj[u]:
                v = self._head[arc]
                if self._cap[arc] > 0 and v not in seen:
                    seen.add(v)
                    parent_arc[v] = arc
                    if v == t:
                        return parent_arc
                    queue.append(v)
        return None

    def _residual_reachable(self) -> set[int]:
        s = self._vertex_ids[(self.source, "out")]
        seen = {s}
        queue = deque([s])
        while queue:
            u = queue.popleft()
            for arc in self._adj[u]:
                v = self._head[arc]
                if self._cap[arc] > 0 and v not in seen:
                    seen.add(v)
                    queue.append(v)
        return seen

    def min_cut_nodes(self) -> set[NodeId]:
        """Nodes whose split arcs cross the residual cut (call after run)."""
        reach = self._residual_reachable()
        cut: set[NodeId] = set()
        for node in self.graph.nodes:
            if node in (self.source, self.target):
                continue
            vin = self._vertex_ids[(node, "in")]
            vout = self._vertex_ids[(node, "out")]
            if vin in reach and vout not in reach:
                cut.add(node)
        return cut

    def disjoint_paths(self) -> list[list[NodeId]]:
        """Decompose the (unit) flow into vertex-disjoint paths."""
        out_of: dict[int, NodeId] = {}
        for (node, side), vid in self._vertex_ids.items():
            if side in ("out", "both"):
                out_of[vid] = node
        # Build successor map from flow-carrying edge arcs.
        successor: dict[NodeId, list[NodeId]] = {}
        for u, v in self.graph.edges:
            uid = self._vertex_ids[(u, "out")]
            vid = self._vertex_ids[(v, "in")]
            if uid == vid:
                continue
            for arc in self._adj[uid]:
                if (
                    self._head[arc] == vid
                    and arc % 2 == 0
                    and self._initial_cap[arc] - self._cap[arc] > 0
                ):
                    flow = self._initial_cap[arc] - self._cap[arc]
                    successor.setdefault(u, []).extend([v] * flow)
        paths: list[list[NodeId]] = []
        starts = list(successor.get(self.source, []))
        for first in starts:
            path = [self.source, first]
            while path[-1] != self.target:
                nxt = successor[path[-1]].pop(0)
                path.append(nxt)
            paths.append(path)
        return paths
