"""Phase-king Byzantine agreement (Berman–Garay–Perry family).

A polynomial-message alternative to EIG: ``f + 1`` phases of two
rounds each.  In each phase every node broadcasts its preference and
takes the majority; the phase's *king* then broadcasts its own
preference, which nodes adopt unless their majority was overwhelming
(``> n/2 + f``).  Any phase whose king is correct aligns all correct
nodes, and an aligned system stays aligned; with ``f + 1`` phases some
king is correct.

This simple two-round variant requires ``n > 4f`` (the three-round
variant achieves ``n > 3f``; EIG already witnesses tightness of the
paper's bound, so we keep the textbook version).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice


class PhaseKingDevice(SyncDevice):
    """One node's phase-king state machine (binary values)."""

    def __init__(
        self, my_id: NodeId, all_ids: Sequence[NodeId], max_faults: int
    ) -> None:
        if my_id not in all_ids:
            raise GraphError("my_id must appear in the roster")
        self.my_id = my_id
        self.all_ids = tuple(all_ids)
        self.f = max_faults
        self.n = len(all_ids)
        self.phases = max_faults + 1
        self.total_rounds = 2 * self.phases

    def king_of_phase(self, phase: int) -> NodeId:
        return self.all_ids[phase % self.n]

    # State: (preference, majority, multiplicity, decided)

    def init_state(self, ctx: NodeContext) -> State:
        return (1 if ctx.input else 0, None, 0, None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        preference, majority, _mult, _decided = state
        if round_index >= self.total_rounds:
            return {}
        phase, step = divmod(round_index, 2)
        if step == 0:
            return {port: preference for port in ctx.ports}
        if self.king_of_phase(phase) == self.my_id:
            return {port: majority for port in ctx.ports}
        return {}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        preference, majority, mult, decided = state
        if round_index >= self.total_rounds:
            return state
        phase, step = divmod(round_index, 2)
        if step == 0:
            votes = [preference]
            votes.extend(
                1 if inbox.get(port) else 0 for port in ctx.ports
            )
            ones = sum(votes)
            zeros = len(votes) - ones
            majority = 1 if ones >= zeros else 0
            mult = max(ones, zeros)
            return (preference, majority, mult, decided)
        king = self.king_of_phase(phase)
        if king == self.my_id:
            king_value = majority
        else:
            raw = inbox.get(king)
            king_value = 1 if raw else 0
        if mult > self.n // 2 + self.f:
            preference = majority
        else:
            preference = king_value
        if phase == self.phases - 1:
            decided = preference
        return (preference, majority, mult, decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[3]


def phase_king_devices(
    graph: CommunicationGraph, max_faults: int
) -> dict[NodeId, PhaseKingDevice]:
    """A phase-king device per node of a complete graph (n > 4f)."""
    if not graph.is_complete():
        raise GraphError("phase king requires a complete graph")
    if len(graph) <= 4 * max_faults:
        raise GraphError(
            f"this phase-king variant requires n > 4f; got n = {len(graph)}"
        )
    roster = tuple(graph.nodes)
    return {u: PhaseKingDevice(u, roster, max_faults) for u in graph.nodes}
