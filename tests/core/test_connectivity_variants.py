"""Connectivity bounds for (ε,δ,γ)-agreement and clock sync — the
remaining 'follows as for Byzantine agreement' cases, executable."""

import pytest

from repro.core import (
    SynchronizationSetting,
    refute_clock_sync_connectivity,
    refute_epsilon_delta_connectivity,
)
from repro.graphs import CoveringError, complete_graph, diamond, ring
from repro.protocols import (
    LowerEnvelopeClockDevice,
    MedianDevice,
    MidpointDevice,
)
from repro.runtime.timed import LinearClock

LOWER = LinearClock(1.0, 0.0)


def clock_setting(alpha=0.1):
    return SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(1.2, 0.0),
        lower=LOWER,
        upper=LinearClock(1.0, 2.0),
        alpha=alpha,
        t_prime=1.0,
    )


class TestEpsilonDeltaConnectivity:
    def test_median_on_diamond(self):
        g = diamond()
        witness = refute_epsilon_delta_connectivity(
            g,
            {u: MedianDevice() for u in g.nodes},
            max_faults=1,
            epsilon=0.25,
            delta=1.0,
            gamma=1.0,
            rounds=3,
        )
        assert witness.found
        # The drift appears across copies: B scenarios break.
        assert any(c.label.startswith("B") for c in witness.violated)

    def test_midpoint_on_six_ring(self):
        g = ring(6)  # n adequate, κ = 2 inadequate
        witness = refute_epsilon_delta_connectivity(
            g,
            {u: MidpointDevice() for u in g.nodes},
            max_faults=1,
            epsilon=0.4,
            delta=1.0,
            gamma=0.5,
            rounds=4,
        )
        assert witness.found

    def test_epsilon_above_half_delta_rejected(self):
        g = diamond()
        with pytest.raises(ValueError):
            refute_epsilon_delta_connectivity(
                g,
                {u: MidpointDevice() for u in g.nodes},
                max_faults=1,
                epsilon=0.5,
                delta=1.0,
                gamma=0.5,
                rounds=3,
            )

    def test_adequate_graph_rejected(self):
        g = complete_graph(4)
        with pytest.raises(CoveringError):
            refute_epsilon_delta_connectivity(
                g,
                {u: MedianDevice() for u in g.nodes},
                max_faults=1,
                epsilon=0.2,
                delta=1.0,
                gamma=1.0,
                rounds=2,
            )

    def test_chain_is_linked(self):
        g = diamond()
        witness = refute_epsilon_delta_connectivity(
            g,
            {u: MedianDevice() for u in g.nodes},
            max_faults=1,
            epsilon=0.25,
            delta=1.0,
            gamma=1.0,
            rounds=3,
        )
        assert len(witness.links) >= len(witness.checked) - 2


class TestClockSyncConnectivity:
    def test_trivial_synchronizer_on_diamond(self):
        g = diamond()
        witness = refute_clock_sync_connectivity(
            g,
            {u: (lambda: LowerEnvelopeClockDevice(LOWER)) for u in g.nodes},
            max_faults=1,
            setting=clock_setting(),
        )
        assert witness.found
        # The trivial device keeps zero intra-copy skew (A scenarios
        # pass) but misses the margin on every cross-copy B scenario.
        violated_labels = {c.label for c in witness.violated}
        assert all(label.startswith("B") for label in violated_labels)
        assert len(violated_labels) == witness.extra["k"] + 1

    def test_nu_trace_spans_copies(self):
        g = diamond()
        witness = refute_clock_sync_connectivity(
            g,
            {u: (lambda: LowerEnvelopeClockDevice(LOWER)) for u in g.nodes},
            max_faults=1,
            setting=clock_setting(alpha=0.2),
        )
        trace = witness.extra["nu_trace"]
        assert len(trace) == witness.extra["k"] + 1
        # The trivial synchronizer never accumulates ν.
        assert all(abs(row["nu_min"]) < 1e-6 for row in trace)
