"""HOTPATH — compiled plans, memoization and parallel drivers.

This bench times the PR-2 performance layers against their
"before" shapes while asserting the invariant that makes them safe:
identical output.

* plan vs reference: :func:`repro.runtime.sync.executor.run` (compiled
  hot path) against :func:`repro.testing.reference_sync_run` (the old
  interpretive loop, kept verbatim as an oracle), same behavior.
* memoized campaign: a shrink-heavy campaign with and without a
  :class:`~repro.runtime.memo.BehaviorCache`, same result.
* parallel campaign: ``jobs=2`` against serial, byte-identical JSON.

The timing deltas land in ``BENCH_runtime.json`` via
``scripts/bench_snapshot.py``; here the benchmark fixture records them
for local comparison runs.
"""

import json

from conftest import report

from repro.analysis.campaign import CampaignConfig, run_campaign
from repro.analysis.witness_io import campaign_to_dict
from repro.graphs import complete_graph
from repro.protocols import MajorityVoteDevice
from repro.runtime.memo import BehaviorCache
from repro.runtime.plan import compile_sync_plan
from repro.runtime.sync.executor import run
from repro.runtime.sync.system import make_system
from repro.testing import reference_sync_run

ROUNDS = 6


def _system(n=6):
    g = complete_graph(n)
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    inputs = {u: i % 2 for i, u in enumerate(g.nodes)}
    return make_system(g, devices, inputs)


def _campaign_config(attempts=60):
    return CampaignConfig(
        graph=complete_graph(4),
        device_factory=lambda g: {u: MajorityVoteDevice() for u in g.nodes},
        rounds=3,
        max_node_faults=0,
        max_link_faults=3,
        attempts=attempts,
        seed=0,
    )


def test_compiled_executor_matches_reference(benchmark):
    system = _system()
    expected = reference_sync_run(system, ROUNDS)
    compile_sync_plan(system)  # pay compilation up front, as run() does
    behavior = benchmark(lambda: run(system, ROUNDS))
    report(
        "HOTPATH: compiled executor, K6 majority",
        f"{ROUNDS} rounds over {len(system.graph.edges)} edges; "
        "output equals the interpretive reference executor",
    )
    assert behavior == expected


def test_reference_executor_baseline(benchmark):
    """The 'before' leg: same workload through the interpretive loop."""
    system = _system()
    behavior = benchmark(lambda: reference_sync_run(system, ROUNDS))
    assert behavior == run(system, ROUNDS)


def test_memoized_campaign_matches_unmemoized(benchmark):
    config = _campaign_config()
    cold = run_campaign(config, memoize=False)

    def warmed():
        cache = BehaviorCache()
        first = run_campaign(config, cache=cache)
        again = run_campaign(config, cache=cache)
        return first, again, cache

    first, again, cache = benchmark(warmed)
    report(
        "HOTPATH: memoized campaign-shrink",
        f"{cold.describe()}\n{cache.describe()}",
    )
    assert first == cold
    assert again == cold
    assert cache.hits > 0


def test_parallel_campaign_identical_to_serial(benchmark):
    config = _campaign_config()
    serial = run_campaign(config, jobs=1)
    parallel = benchmark(lambda: run_campaign(config, jobs=2))
    s = json.dumps(campaign_to_dict(serial), sort_keys=True)
    p = json.dumps(campaign_to_dict(parallel), sort_keys=True)
    report(
        "HOTPATH: parallel campaign (jobs=2)",
        f"serial == parallel: {s == p}; {parallel.describe()}",
    )
    assert s == p
