"""The master report: run every theorem's engine once and tabulate.

``python -m repro report`` executes all eleven results (five theorems,
two bounds each where applicable, plus the corollaries) against their
default candidate devices and prints one line per result — the whole
paper, reproduced in one command.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from ..core import (
    SynchronizationSetting,
    corollary_12_linear_envelope,
    corollary_13_diverging_linear,
    corollary_14_offset_clocks,
    corollary_15_logarithmic,
    refute_clock_sync,
    refute_clock_sync_connectivity,
    refute_connectivity,
    refute_epsilon_delta,
    refute_epsilon_delta_connectivity,
    refute_firing_squad,
    refute_firing_squad_connectivity,
    refute_node_bound,
    refute_simple_connectivity,
    refute_simple_node_bound,
    refute_weak_agreement,
    refute_weak_agreement_connectivity,
)
from ..graphs import diamond, triangle
from ..protocols import (
    ExchangeOnceWeakDevice,
    LowerEnvelopeClockDevice,
    MajorityVoteDevice,
    MedianDevice,
    MidpointDevice,
    RelayFireDevice,
)
from ..runtime.timed import LinearClock
from .tables import format_table

_LOWER = LinearClock(1.0, 0.0)


def _clock_setting() -> SynchronizationSetting:
    return SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(1.2, 0.0),
        lower=_LOWER,
        upper=LinearClock(1.0, 2.0),
        alpha=0.1,
        t_prime=1.0,
    )


@dataclass(frozen=True)
class ReportLine:
    result: str
    construction: str
    verdict: str


def _summarize(witness) -> str:
    broken = witness.violated
    if not broken:
        return "NO WITNESS (unexpected!)"
    conditions = sorted(
        {v.condition for c in broken for v in c.verdict.violations}
    )
    return (
        f"witness: {len(broken)}/{len(witness.checked)} behaviors violate "
        f"{'/'.join(conditions)}"
    )


def _entries() -> list[tuple[str, str, Callable[[], object]]]:
    tri = triangle()
    dia = diamond()
    majority = {u: MajorityVoteDevice() for u in tri.nodes}
    majority_dia = {u: MajorityVoteDevice() for u in dia.nodes}
    midpoint = {u: MidpointDevice() for u in tri.nodes}
    midpoint_dia = {u: MidpointDevice() for u in dia.nodes}
    median = {u: MedianDevice() for u in tri.nodes}
    median_dia = {u: MedianDevice() for u in dia.nodes}
    weak_fac = {
        u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0)) for u in tri.nodes
    }
    weak_fac_dia = {
        u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0)) for u in dia.nodes
    }
    fire_fac = {u: (lambda: RelayFireDevice(fire_at=2.5)) for u in tri.nodes}
    fire_fac_dia = {
        u: (lambda: RelayFireDevice(fire_at=3.5)) for u in dia.nodes
    }
    clock_fac = {
        u: (lambda: LowerEnvelopeClockDevice(_LOWER)) for u in tri.nodes
    }
    clock_fac_dia = {
        u: (lambda: LowerEnvelopeClockDevice(_LOWER)) for u in dia.nodes
    }
    setting = _clock_setting()
    return [
        ("Thm 1 (nodes)", "hexagon cover of the triangle",
         lambda: refute_node_bound(tri, majority, 1, 3)),
        ("Thm 1 (connectivity)", "8-ring cover of the diamond",
         lambda: refute_connectivity(dia, majority_dia, 1, 4)),
        ("Thm 2 (nodes)", "4k-ring, Bounded-Delay Locality",
         lambda: refute_weak_agreement(weak_fac, 1.0, 3.0)),
        ("Thm 2 (connectivity)", "cyclic cover of the diamond",
         lambda: refute_weak_agreement_connectivity(
             dia, weak_fac_dia, 1, 1.0, 3.0)),
        ("Thm 4 (nodes)", "4k-ring, FIRE wave",
         lambda: refute_firing_squad(fire_fac, 1.0, 3.0)),
        ("Thm 4 (connectivity)", "cyclic cover of the diamond",
         lambda: refute_firing_squad_connectivity(
             dia, fire_fac_dia, 1, 1.0, 4.0)),
        ("Thm 5 (nodes)", "hexagon cover, real inputs",
         lambda: refute_simple_node_bound(tri, midpoint, 1, 3)),
        ("Thm 5 (connectivity)", "8-ring cover, real inputs",
         lambda: refute_simple_connectivity(dia, midpoint_dia, 1, 4)),
        ("Thm 6 (nodes)", "(k+2)-ring, Lemma 7 drift",
         lambda: refute_epsilon_delta(median, 0.25, 1.0, 1.0, 3)),
        ("Thm 6 (connectivity)", "cyclic (k+2)-fold cover (ε < δ/2)",
         lambda: refute_epsilon_delta_connectivity(
             dia, median_dia, 1, 0.25, 1.0, 1.0, 3)),
        ("Thm 8 (nodes)", "ring of clocks q·h⁻ⁱ, Lemmas 9–11",
         lambda: refute_clock_sync(clock_fac, setting)),
        ("Thm 8 (connectivity)", "cyclic cover of clocked diamonds",
         lambda: refute_clock_sync_connectivity(
             dia, clock_fac_dia, 1, setting)),
        ("Cor 12", "linear envelopes",
         lambda: corollary_12_linear_envelope(clock_fac).witness),
        ("Cor 13", "p=t, q=rt, l=at+b",
         lambda: corollary_13_diverging_linear(clock_fac).witness),
        ("Cor 14", "p=t, q=t+c, l=at+b",
         lambda: corollary_14_offset_clocks(clock_fac).witness),
        ("Cor 15", "p=t, q=rt, l=log₂", _corollary_15),
    ]


def _corollary_15():
    from ..core.corollaries import Log2Envelope

    log_lower = Log2Envelope(shift=1.0)
    factories = {
        u: (lambda: LowerEnvelopeClockDevice(log_lower))
        for u in triangle().nodes
    }
    return corollary_15_logarithmic(factories).witness


def full_report() -> list[ReportLine]:
    """Run every engine; return one line per paper result."""
    lines = []
    for result, construction, runner in _entries():
        witness = runner()
        lines.append(
            ReportLine(
                result=result,
                construction=construction,
                verdict=_summarize(witness),
            )
        )
    return lines


def render_report(lines: list[ReportLine] | None = None) -> str:
    lines = lines if lines is not None else full_report()
    return format_table(
        ("result", "construction", "engine verdict"),
        [(line.result, line.construction, line.verdict) for line in lines],
        "FLM 1985, reproduced: every impossibility executed",
    )
