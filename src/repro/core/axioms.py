"""Executable checks of the paper's four axioms (Section 2, 4, 7).

The impossibility engines are only as trustworthy as the operational
models' claim to satisfy the axioms.  These functions put that claim
under test for *specific systems*: each takes concrete devices and
exercises the axiom's defining property, returning ``True`` (or
raising with a precise account of the discrepancy).  The test suite
runs them across device families; users can run them against their own
devices before trusting a witness.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.graph import NodeId
from ..runtime.sync.adversary import ReplayDevice
from ..runtime.sync.executor import run
from ..runtime.sync.system import SyncSystem
from ..runtime.timed.clocks import ClockFunction
from ..runtime.timed.executor import run_timed
from ..runtime.timed.system import TimedSystem


class AxiomViolation(AssertionError):
    """An operational model failed an axiom check — the engines'
    conclusions would be unsound for these devices."""


def check_locality_axiom(
    system: SyncSystem, subsystem: tuple[NodeId, ...], rounds: int
) -> bool:
    """Locality: replacing everything *outside* a subsystem with a
    replay of its recorded inedge border leaves the subsystem's
    scenario identical.

    This is precisely the move every covering argument makes; checking
    it here for the user's own devices validates the machinery for
    them.
    """
    behavior = run(system, rounds)
    inside = set(subsystem)
    replacements = {}
    for w in system.graph.nodes:
        if w in inside:
            continue
        scripts = {
            system.port(w, g): behavior.edge(w, g)
            for g in system.graph.neighbors(w)
            if g in inside
        }
        replacements[w] = ReplayDevice(scripts)
    replayed = run(system.with_devices(replacements), rounds)
    original_scenario = behavior.scenario(subsystem)
    replayed_scenario = replayed.scenario(subsystem)
    if not original_scenario.core_equal(replayed_scenario):
        raise AxiomViolation(
            "Locality failed: identical inedge borders produced different "
            f"scenarios on {sorted(map(str, subsystem))} — the devices are "
            "not deterministic functions of their local view"
        )
    return True


def check_fault_axiom(
    system_one: SyncSystem,
    system_two: SyncSystem,
    node: NodeId,
    rounds: int,
) -> bool:
    """Fault: a single device can exhibit, in one behavior, edge
    behaviors recorded from *different* system behaviors.

    Runs both systems, splits ``node``'s outedges between them, builds
    ``F_A(E_1, ..., E_d)``, and verifies each outedge reproduces its
    source behavior exactly.
    """
    behavior_one = run(system_one, rounds)
    behavior_two = run(system_two, rounds)
    neighbors = system_one.graph.neighbors(node)
    if tuple(system_two.graph.neighbors(node)) != tuple(neighbors):
        raise AxiomViolation(
            "Fault check needs the node to have the same ports in both "
            "systems"
        )
    scripts = {}
    sources = {}
    for index, neighbor in enumerate(neighbors):
        source = behavior_one if index % 2 == 0 else behavior_two
        scripts[system_one.port(node, neighbor)] = source.edge(node, neighbor)
        sources[neighbor] = source
    masquerade = run(
        system_one.with_devices({node: ReplayDevice(scripts)}), rounds
    )
    for neighbor, source in sources.items():
        if masquerade.edge(node, neighbor) != source.edge(node, neighbor):
            raise AxiomViolation(
                f"Fault failed: outedge ({node!r}, {neighbor!r}) did not "
                "reproduce its recorded behavior"
            )
    return True


def check_bounded_delay_locality(
    build_system,
    far_node: NodeId,
    changed_node: NodeId,
    distance: int,
    delta: float,
    horizon: float,
    variations: tuple[Any, Any] = (0, 1),
) -> bool:
    """Bounded-Delay Locality: changing an input ``distance`` hops away
    cannot affect a node's behavior before ``distance * delta``.

    ``build_system(input_value)`` must return a timed system where
    ``changed_node`` carries the given input.
    """
    first = run_timed(build_system(variations[0]), horizon)
    second = run_timed(build_system(variations[1]), horizon)
    boundary = distance * delta
    probe = boundary - min(delta / 2, boundary / 2)
    if not first.node(far_node).prefix_equal(
        second.node(far_node), through=probe
    ):
        raise AxiomViolation(
            f"Bounded-Delay Locality failed: {far_node!r} observed a "
            f"change {distance} hops away before {boundary} time units"
        )
    return True


def check_scaling_axiom(
    system: TimedSystem,
    h: ClockFunction,
    horizon: float,
    time_tolerance: float = 1e-9,
) -> bool:
    """Scaling: running ``Sh`` equals scaling the behavior of ``S``.

    Requires clock-mode delays (real-time delays genuinely break the
    axiom — the paper's own caveat)."""
    base = run_timed(system, horizon)
    scaled = run_timed(system.scaled(h), h.inverse()(horizon))
    h_inv = h.inverse()
    for u in system.graph.nodes:
        base_events = [
            e for e in base.node(u).events if e.time <= horizon + 1e-12
        ]
        scaled_events = list(scaled.node(u).events)
        if len(base_events) != len(scaled_events):
            raise AxiomViolation(
                f"Scaling failed at {u!r}: event counts differ "
                f"({len(base_events)} vs {len(scaled_events)})"
            )
        for a, b in zip(base_events, scaled_events):
            if a.kind != b.kind or a.payload != b.payload:
                raise AxiomViolation(
                    f"Scaling failed at {u!r}: event content differs"
                )
            if abs(b.time - h_inv(a.time)) > time_tolerance:
                raise AxiomViolation(
                    f"Scaling failed at {u!r}: event at {a.time} mapped to "
                    f"{b.time}, expected {h_inv(a.time)}"
                )
    return True


def check_determinism_everywhere(
    systems: Mapping[str, SyncSystem], rounds: int
) -> bool:
    """One behavior per system: re-run each and compare traces."""
    from ..runtime.sync.executor import check_determinism

    for label, system in systems.items():
        if not check_determinism(system, rounds):
            raise AxiomViolation(f"system {label!r} is nondeterministic")
    return True
