"""The continuous-time model: hardware clocks, δ-delay messaging, and
the Bounded-Delay Locality / Scaling axioms."""

from .adversary import TimedCrashDevice, TimedReplayDevice, TimedSilentDevice
from .behavior import (
    TimedBehavior,
    TimedEdgeBehavior,
    TimedEvent,
    TimedNodeBehavior,
    events_equal,
)
from .clocks import (
    ClockError,
    ClockFunction,
    ComposedClock,
    LinearClock,
    PowerClock,
    compose,
    drift_map,
    identity,
    verify_clock_order,
)
from .device import (
    DeviceApi,
    DeviceFactory,
    LogicalClockFn,
    TimedContext,
    TimedDevice,
)
from .executor import TimedExecutionError, run_timed
from .system import (
    TimedNodeAssignment,
    TimedSystem,
    install_in_covering_timed,
    make_timed_system,
)

__all__ = [
    "ClockError",
    "ClockFunction",
    "ComposedClock",
    "DeviceApi",
    "DeviceFactory",
    "LinearClock",
    "LogicalClockFn",
    "PowerClock",
    "TimedBehavior",
    "TimedContext",
    "TimedCrashDevice",
    "TimedDevice",
    "TimedEdgeBehavior",
    "TimedEvent",
    "TimedExecutionError",
    "TimedNodeAssignment",
    "TimedNodeBehavior",
    "TimedReplayDevice",
    "TimedSilentDevice",
    "TimedSystem",
    "compose",
    "drift_map",
    "events_equal",
    "identity",
    "install_in_covering_timed",
    "make_timed_system",
    "run_timed",
    "verify_clock_order",
]
