"""FloodSet consensus under crash faults — the Fault axiom's foil.

The paper closes by crediting its bounds to "the uncertainty introduced
by the presence of Byzantine faults": the Fault axiom's masquerade is
what powers every covering argument.  Weaken the failure model to
*crashes* (a faulty node behaves honestly until it stops, possibly
mid-round) and the bounds collapse: FloodSet reaches agreement on any
complete graph with ``n >= f + 1`` nodes in ``f + 1`` rounds — three
nodes, one crash, no problem, exactly where Theorem 1 forbids a
Byzantine-tolerant solution.

Each round every node broadcasts the set of input values it has seen;
after ``f + 1`` rounds at least one round was crash-free, so all
correct nodes hold the same set and decide by the same rule (min, with
a default for the empty set).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice


class FloodSetDevice(SyncDevice):
    """Crash-tolerant consensus by value-set flooding."""

    def __init__(self, max_faults: int, default: Any = 0) -> None:
        if max_faults < 0:
            raise GraphError("max_faults must be non-negative")
        self.f = max_faults
        self.rounds = max_faults + 1
        self.default = default

    # State: (seen_values, decided)

    def init_state(self, ctx: NodeContext) -> State:
        return (frozenset({ctx.input}), None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        seen, _decided = state
        if round_index >= self.rounds:
            return {}
        payload = tuple(sorted(seen, key=repr))
        return {port: payload for port in ctx.ports}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        seen, decided = state
        if round_index >= self.rounds:
            return state
        merged = set(seen)
        for payload in inbox.values():
            if isinstance(payload, tuple):
                merged.update(payload)
        seen = frozenset(merged)
        if round_index == self.rounds - 1:
            decided = (
                min(seen, key=repr) if seen else self.default
            )
        return (seen, decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[1]


def floodset_devices(
    graph: CommunicationGraph, max_faults: int, default: Any = 0
) -> dict[NodeId, FloodSetDevice]:
    """FloodSet devices; requires only ``n >= f + 1`` on a complete
    graph — far below the Byzantine ``3f + 1``, because crash faults
    cannot masquerade (no Fault axiom, no covering argument)."""
    if not graph.is_complete():
        raise GraphError("FloodSet assumes a complete graph")
    if len(graph) < max_faults + 1:
        raise GraphError("need at least f + 1 nodes")
    return {u: FloodSetDevice(max_faults, default) for u in graph.nodes}
