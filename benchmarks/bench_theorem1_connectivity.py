"""T1b — Theorem 1, connectivity bound (Section 3.2).

Regenerates: the diamond + eight-ring covering figures, the scenario
chain S1/S2/S3, and a sweep over circulant graphs showing the 2f+1
connectivity threshold.
"""

from conftest import report

from repro.analysis import (
    SWEEP_HEADERS,
    connectivity_sweep,
    diamond_figure,
    eight_ring_figure,
    format_table,
)
from repro.core import refute_connectivity
from repro.graphs import diamond, node_connectivity, ring, wheel
from repro.protocols import MajorityVoteDevice


def test_diamond_chain(benchmark):
    g = diamond()
    assert node_connectivity(g) == 2  # < 2f+1 = 3
    devices = {u: MajorityVoteDevice() for u in g.nodes}

    witness = benchmark(
        lambda: refute_connectivity(g, devices, max_faults=1, rounds=4)
    )

    assert witness.found
    assert len(witness.checked) == 3
    assert [c.label for c in witness.violated] == ["E2"]
    report(
        "T1b: connectivity bound (diamond, κ=2, f=1)",
        "\n".join(
            [diamond_figure(), "", eight_ring_figure(), "", witness.describe()]
        ),
    )


def test_node_rich_but_cut_poor(benchmark):
    # Plenty of nodes (6 >= 3f+1) but a ring has connectivity 2.
    g = ring(6)
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    witness = benchmark(
        lambda: refute_connectivity(g, devices, max_faults=1, rounds=4)
    )
    assert witness.found


def test_wheel_two_faults(benchmark):
    g = wheel(6)  # n = 7 >= 7, κ = 3 < 5 = 2f+1 for f = 2
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    witness = benchmark(
        lambda: refute_connectivity(g, devices, max_faults=2, rounds=4)
    )
    assert witness.found


def test_connectivity_sweep(benchmark):
    rows = benchmark(lambda: connectivity_sweep(max_faults=1, n_nodes=8))
    table = format_table(
        SWEEP_HEADERS,
        [r.as_tuple() for r in rows],
        "Connectivity sweep on 8-node circulants (f = 1)",
    )
    report("T1b: threshold sweep", table)
    for row in rows:
        if row.connectivity < 3:
            assert "IMPOSSIBLE" in row.outcome
        else:
            assert "DELIVERED" in row.outcome
