"""Covering-map tests: verification and the paper's constructions."""

import pytest

from repro.graphs import (
    CommunicationGraph,
    CoveringError,
    CoveringMap,
    complete_graph,
    connectivity_double_cover,
    cut_partition_for_connectivity,
    diamond,
    hexagon_cover_of_triangle,
    is_covering,
    node_bound_double_cover,
    partition_for_node_bound,
    ring,
    ring_cover_of_triangle,
    triangle,
)


class TestVerification:
    def test_hexagon_is_covering(self):
        cm = hexagon_cover_of_triangle()
        assert len(cm.cover) == 6
        assert set(cm.fiber("a")) == {"u", "x"}

    def test_identity_is_covering(self):
        g = triangle()
        cm = CoveringMap(g, g, {u: u for u in g.nodes})
        assert cm("a") == "a"

    def test_bad_map_rejected(self):
        g = triangle()
        square = ring(4)
        phi = {"r0": "a", "r1": "b", "r2": "a", "r3": "b"}
        # Square covers the two-path a-b only if neighbor sets match;
        # against the triangle the c-neighbor is missing.
        assert not is_covering(square, g, phi)

    def test_incomplete_phi_rejected(self):
        g = triangle()
        with pytest.raises(CoveringError):
            CoveringMap(g, g, {"a": "a"})

    def test_non_injective_on_neighbors_rejected(self):
        base = CommunicationGraph(["a", "b"], [("a", "b")])
        cover = ring(4)
        phi = {"r0": "a", "r1": "b", "r2": "a", "r3": "b"}
        # r0's neighbors r1, r3 both map to b: fine (b has one neighbor
        # in base? a has only neighbor b) -> not injective on neighbors.
        assert not is_covering(cover, base, phi)

    def test_lift_neighbor(self):
        cm = hexagon_cover_of_triangle()
        assert cm.lift_neighbor("u", "b") == "v"
        assert cm.lift_neighbor("u", "c") == "z"

    def test_is_isomorphism_on(self):
        cm = hexagon_cover_of_triangle()
        assert cm.is_isomorphism_on(["v", "w"])
        assert cm.is_isomorphism_on(["w", "x"])
        # Two nodes in the same fiber are not an isomorphic image.
        assert not cm.is_isomorphism_on(["u", "x"])


class TestRingCover:
    def test_sizes(self):
        cm = ring_cover_of_triangle(12)
        assert len(cm.cover) == 12
        assert all(len(cm.fiber(w)) == 4 for w in cm.base.nodes)

    def test_bad_sizes_rejected(self):
        with pytest.raises(CoveringError):
            ring_cover_of_triangle(7)
        with pytest.raises(CoveringError):
            ring_cover_of_triangle(3)


class TestNodeBoundCover:
    def test_triangle_gives_hexagon(self):
        g = triangle()
        dc = node_bound_double_cover(g, {"a"}, {"b"}, {"c"})
        assert len(dc.covering.cover) == 6
        # The cover is a single 6-cycle: every node has degree 2 and it
        # is connected.
        cover = dc.covering.cover
        assert all(cover.degree(u) == 2 for u in cover.nodes)
        assert cover.is_connected()

    def test_general_partition(self):
        g = complete_graph(6)
        a, b, c = partition_for_node_bound(g, max_faults=2)
        assert all(1 <= len(part) <= 2 for part in (a, b, c))
        dc = node_bound_double_cover(g, a, b, c)
        assert len(dc.covering.cover) == 12

    def test_partition_rejects_adequate_graph(self):
        with pytest.raises(CoveringError):
            partition_for_node_bound(complete_graph(4), max_faults=1)


class TestConnectivityCover:
    def test_diamond_gives_eight_ring(self):
        g = diamond()
        side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(g, 1)
        assert len(cut_b) == 1 and len(cut_d) == 1
        dc = connectivity_double_cover(g, cut_b, cut_d, side_a, side_c)
        cover = dc.covering.cover
        assert len(cover) == 8
        assert all(cover.degree(u) == 2 for u in cover.nodes)
        assert cover.is_connected()

    def test_cut_disconnects(self):
        g = diamond()
        side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(g, 1)
        removed = cut_b | cut_d
        start = next(iter(side_a))
        reach = g.reachable_from(start, removed=removed)
        assert not reach & side_c

    def test_adequate_graph_rejected(self):
        with pytest.raises(CoveringError):
            cut_partition_for_connectivity(complete_graph(4), 1)

    def test_cut_of_size_one(self):
        # Barbell: two triangles joined through one node.
        g = CommunicationGraph(
            ["a", "b", "h", "x", "y"],
            [
                ("a", "b"),
                ("a", "h"),
                ("b", "h"),
                ("h", "x"),
                ("h", "y"),
                ("x", "y"),
            ],
        )
        side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(g, 1)
        assert len(cut_d) == 1 and len(cut_b) == 1
        dc = connectivity_double_cover(g, cut_b, cut_d, side_a, side_c)
        assert len(dc.covering.cover) == 10
