"""Byzantine agreement on sparse graphs: EIG over Dolev relay.

Dolev's theorem (the paper's reference [D]) says Byzantine agreement
is solvable iff ``n >= 3f + 1`` *and* ``c(G) >= 2f + 1`` — the exact
pair of bounds FLM proves necessary.  This module supplies the
sufficiency half for arbitrary adequate graphs: it runs any
complete-graph agreement device (EIG by default) on a graph of
connectivity ``2f + 1`` by expanding each logical round into enough
physical rounds to relay every logical message over ``2f + 1``
vertex-disjoint paths, taking majorities at the receiving end.

At most ``f`` faulty nodes corrupt at most ``f`` of the ``2f + 1``
paths between correct nodes, so every correct-to-correct logical
message is delivered intact; faulty senders remain exactly as harmful
as they are on the complete graph, which EIG already tolerates.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.connectivity import vertex_disjoint_paths
from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice
from .eig import EIGDevice

Path = tuple[NodeId, ...]
RoutingTable = dict[tuple[NodeId, NodeId], tuple[Path, ...]]


def build_routing(
    graph: CommunicationGraph, max_faults: int
) -> tuple[RoutingTable, int]:
    """``2f + 1`` vertex-disjoint paths for every ordered node pair,
    plus the physical-round span one logical round needs."""
    needed = 2 * max_faults + 1
    routing: RoutingTable = {}
    span = 1
    nodes = list(graph.nodes)
    for i, s in enumerate(nodes):
        for t in nodes[i + 1 :]:
            paths = vertex_disjoint_paths(graph, s, t)
            if len(paths) < needed:
                raise GraphError(
                    f"only {len(paths)} disjoint paths between {s!r} and "
                    f"{t!r}; need {needed} (κ >= 2f + 1)"
                )
            chosen = tuple(tuple(p) for p in paths[:needed])
            routing[(s, t)] = chosen
            routing[(t, s)] = tuple(tuple(reversed(p)) for p in chosen)
            span = max(span, max(len(p) - 1 for p in chosen))
    return routing, span


class RelayedAgreementDevice(SyncDevice):
    """Runs a complete-graph device over disjoint-path relays.

    Each logical round occupies ``span`` physical rounds: the logical
    messages are injected on every path in the first physical round,
    forwarded hop by hop, and folded into the logical inbox (majority
    per source) at the end of the span.
    """

    def __init__(
        self,
        my_id: NodeId,
        inner: SyncDevice,
        roster: tuple[NodeId, ...],
        routing: RoutingTable,
        span: int,
        logical_rounds: int,
    ) -> None:
        self.my_id = my_id
        self.inner = inner
        self.roster = tuple(roster)
        self.peers = tuple(u for u in roster if u != my_id)
        self.routing = routing
        self.span = span
        self.logical_rounds = logical_rounds

    def _inner_ctx(self, ctx: NodeContext) -> NodeContext:
        return NodeContext(ports=self.peers, input=ctx.input)

    # State: (inner_state, pending, collected)
    #   pending:   tuple of (next_hop, packet) to transmit next round
    #   collected: tuple of ((source, path_id), value) for this span

    def init_state(self, ctx: NodeContext) -> State:
        inner_state = self.inner.init_state(self._inner_ctx(ctx))
        return (inner_state, (), ())

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        inner_state, pending, _collected = state
        logical, sub = divmod(round_index, self.span)
        out: dict[PortLabel, list] = {}
        if sub == 0 and logical < self.logical_rounds:
            inner_out = self.inner.send(
                self._inner_ctx(ctx), inner_state, logical
            )
            for peer, value in inner_out.items():
                for path_id, path in enumerate(
                    self.routing[(self.my_id, peer)]
                ):
                    packet = ("pkt", logical, self.my_id, peer, path_id, 1, value)
                    out.setdefault(path[1], []).append(packet)
        for next_hop, packet in pending:
            out.setdefault(next_hop, []).append(packet)
        return {port: tuple(msgs) for port, msgs in out.items()}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        inner_state, _pending, collected = state
        logical, sub = divmod(round_index, self.span)
        new_pending: list[tuple[NodeId, Any]] = []
        collected = list(collected)
        for sender, bundle in sorted(
            inbox.items(), key=lambda kv: str(kv[0])
        ):
            if not isinstance(bundle, tuple):
                continue
            for packet in bundle:
                parsed = self._parse(packet, sender, logical)
                if parsed is None:
                    continue
                source, target, path_id, hop, value = parsed
                path = self.routing[(source, target)][path_id]
                if target == self.my_id and hop == len(path) - 1:
                    key = (source, path_id)
                    if all(k != key for k, _ in collected):
                        collected.append((key, value))
                elif hop + 1 < len(path):
                    forwarded = (
                        "pkt", logical, source, target, path_id, hop + 1,
                        value,
                    )
                    new_pending.append((path[hop + 1], forwarded))
        if sub == self.span - 1 and logical < self.logical_rounds:
            inner_inbox = {
                peer: self._fold(collected, peer) for peer in self.peers
            }
            inner_state = self.inner.transition(
                self._inner_ctx(ctx), inner_state, logical, inner_inbox
            )
            collected = []
            new_pending = []
        return (inner_state, tuple(new_pending), tuple(collected))

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return self.inner.choose(self._inner_ctx(ctx), state[0])

    # -- helpers -----------------------------------------------------------

    def _parse(self, packet: Any, sender: NodeId, logical: int):
        if not (
            isinstance(packet, tuple)
            and len(packet) == 7
            and packet[0] == "pkt"
        ):
            return None
        _tag, pkt_logical, source, target, path_id, hop, value = packet
        if pkt_logical != logical:
            return None  # stale or premature
        paths = self.routing.get((source, target))
        if paths is None or not isinstance(path_id, int):
            return None
        if not 0 <= path_id < len(paths):
            return None
        path = paths[path_id]
        if not isinstance(hop, int) or not 1 <= hop < len(path):
            return None
        if path[hop] != self.my_id or path[hop - 1] != sender:
            return None
        return source, target, path_id, hop, value

    def _fold(self, collected, peer: NodeId) -> Any:
        """Majority over the per-path copies of one source's message
        (keyed by repr, so unhashable garbage cannot crash the fold)."""
        values = [v for (source, _pid), v in collected if source == peer]
        if not values:
            return None
        tally: dict[str, tuple[int, Any]] = {}
        for v in values:
            key = repr(v)
            count, _ = tally.get(key, (0, v))
            tally[key] = (count + 1, v)
        best = max(count for count, _ in tally.values())
        winners = [v for count, v in tally.values() if count == best]
        return winners[0] if len(winners) == 1 else None


def sparse_agreement_devices(
    graph: CommunicationGraph, max_faults: int, default: Any = 0
) -> tuple[dict[NodeId, RelayedAgreementDevice], int]:
    """EIG-over-relay devices for an adequate (possibly sparse) graph.

    Returns the devices and the number of *physical* rounds to run
    (``(f + 1) · span``).
    """
    n = len(graph)
    if n < 3 * max_faults + 1:
        raise GraphError(f"need n >= 3f+1 = {3 * max_faults + 1}")
    routing, span = build_routing(graph, max_faults)
    roster = tuple(graph.nodes)
    logical_rounds = max_faults + 1
    devices = {
        u: RelayedAgreementDevice(
            my_id=u,
            inner=EIGDevice(u, roster, max_faults, default),
            roster=roster,
            routing=routing,
            span=span,
            logical_rounds=logical_rounds,
        )
        for u in roster
    }
    return devices, logical_rounds * span
