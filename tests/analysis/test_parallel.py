"""Parallel drivers must be invisible: identical results at any jobs.

Every parallel entry point (``run_campaign``, ``degradation_frontier``,
the sweeps, and indexed ``search_agreement_attacks``) merges worker
results deterministically, so ``jobs=N`` output is byte-identical to
the serial scan.  These tests pin that contract, serializing results
to sorted JSON where a serializer exists.
"""

import json

from repro.analysis.adversary_search import search_agreement_attacks
from repro.analysis.campaign import (
    CampaignConfig,
    degradation_frontier,
    run_campaign,
)
from repro.analysis.parallel import (
    ParallelRunner,
    available_parallelism,
    fork_available,
)
from repro.analysis.sweep import connectivity_sweep, node_bound_sweep
from repro.analysis.witness_io import campaign_to_dict
from repro.graphs.builders import complete_graph
from repro.protocols.eig import eig_devices
from repro.protocols.naive import MajorityVoteDevice


def _naive_factory(graph):
    return {u: MajorityVoteDevice() for u in graph.nodes}


def _eig_factory(graph):
    return dict(eig_devices(graph, 1))


def _as_json(result):
    return json.dumps(campaign_to_dict(result), sort_keys=True)


class TestParallelRunner:
    def test_serial_fallback_preserves_order(self):
        runner = ParallelRunner(1)
        assert not runner.parallel
        assert runner.map(lambda x: x * x, [3, 1, 2]) == [9, 1, 4]

    def test_parallel_map_preserves_order(self):
        runner = ParallelRunner(2)
        items = list(range(10))
        assert runner.map(lambda x: x + 1, items) == [x + 1 for x in items]

    def test_empty_and_singleton_inputs(self):
        assert ParallelRunner(4).map(lambda x: x, []) == []
        assert ParallelRunner(4).map(lambda x: -x, [7]) == [-7]

    def test_available_parallelism_positive(self):
        assert available_parallelism() >= 1
        assert isinstance(fork_available(), bool)


class TestCampaignParallelEquivalence:
    def _config(self, factory, attempts, seed, links=2):
        return CampaignConfig(
            graph=complete_graph(4),
            device_factory=factory,
            rounds=3,
            attempts=attempts,
            seed=seed,
            max_link_faults=links,
        )

    def test_breaking_campaign_identical_across_jobs(self):
        config = self._config(_naive_factory, attempts=40, seed=11)
        serial = run_campaign(config, jobs=1)
        parallel = run_campaign(config, jobs=2)
        assert serial.broken and parallel.broken
        assert _as_json(serial) == _as_json(parallel)

    def test_surviving_campaign_identical_across_jobs(self):
        # EIG tolerates the sampled link faults at this tiny budget.
        config = self._config(_eig_factory, attempts=6, seed=5, links=1)
        serial = run_campaign(config, jobs=1)
        parallel = run_campaign(config, jobs=2)
        assert _as_json(serial) == _as_json(parallel)

    def test_frontier_identical_across_jobs(self):
        config = self._config(_naive_factory, attempts=12, seed=3)
        serial = degradation_frontier(
            config, max_link_faults=2, attempts_per_level=12
        )
        parallel = degradation_frontier(
            config, max_link_faults=2, attempts_per_level=12, jobs=2
        )
        assert serial == parallel


class TestSweepParallelEquivalence:
    def test_node_bound_sweep(self):
        assert node_bound_sweep((1,)) == node_bound_sweep((1,), jobs=2)

    def test_connectivity_sweep(self):
        assert connectivity_sweep() == connectivity_sweep(jobs=2)


class TestAdversarySearchParallelEquivalence:
    def test_indexed_results_identical_across_jobs(self):
        g = complete_graph(4)
        serial = search_agreement_attacks(
            g, _naive_factory, 1, 3, attempts=30, seed=2, jobs=1
        )
        parallel = search_agreement_attacks(
            g, _naive_factory, 1, 3, attempts=30, seed=2, jobs=2
        )
        assert serial == parallel
        assert serial.broken  # majority vote falls quickly

    def test_legacy_stream_untouched_by_default(self):
        # jobs=None keeps the historical single-stream sampling; its
        # draws differ from indexed mode but remain self-consistent.
        g = complete_graph(4)
        first = search_agreement_attacks(
            g, _naive_factory, 1, 3, attempts=30, seed=2
        )
        second = search_agreement_attacks(
            g, _naive_factory, 1, 3, attempts=30, seed=2
        )
        assert first == second


class TestAvailableParallelism:
    def test_prefers_scheduling_affinity(self, monkeypatch):
        import os

        # cgroup/affinity-restricted container: the scheduler allows 2
        # cores even though the machine reports many more.
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 5})
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert available_parallelism() == 2

    def test_falls_back_to_cpu_count_without_affinity_api(
        self, monkeypatch
    ):
        import os

        def no_affinity(pid):
            raise AttributeError("sched_getaffinity")

        monkeypatch.setattr(os, "sched_getaffinity", no_affinity)
        monkeypatch.setattr(os, "cpu_count", lambda: 3)
        assert available_parallelism() == 3

    def test_empty_affinity_mask_still_positive(self, monkeypatch):
        import os

        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: set())
        assert available_parallelism() == 1


def _forced_pool_runner(jobs=2):
    """A runner that uses the fork pool even on a 1-core CI box."""
    import pytest

    if not fork_available():
        pytest.skip("fork start method unavailable")
    runner = ParallelRunner(jobs)
    runner.fallback_reason = None
    return runner


class TestWorkerFaultTolerance:
    def test_worker_only_crash_is_retried_serially(self):
        import os

        from repro.analysis.parallel import ItemError  # noqa: F401

        parent = os.getpid()

        def flaky(x):
            if os.getpid() != parent:
                raise RuntimeError("worker exploded")
            return x * 2

        runner = _forced_pool_runner()
        # Every item fails in its worker; the serial retries in the
        # parent succeed, so the map completes with full results.
        assert runner.map(flaky, [1, 2, 3]) == [2, 4, 6]

    def test_deterministic_failure_raises_item_error_with_identity(self):
        from repro.analysis.parallel import ItemError

        def bad(x):
            if x == 7:
                raise ValueError("cannot handle seven")
            return x

        runner = _forced_pool_runner()
        import pytest

        with pytest.raises(ItemError) as excinfo:
            runner.map(bad, [5, 7, 9])
        err = excinfo.value
        assert err.index == 1
        assert err.item == 7
        assert "#1" in str(err) and "7" in str(err)
        assert isinstance(err.__cause__, ValueError)

    def test_item_error_preserves_worker_capsule(self):
        from repro import obs
        from repro.analysis.parallel import ItemError

        def emits_then_dies(x):
            obs.emit(obs.ROUND_START, round=x)
            raise RuntimeError("post-emit crash")

        runner = _forced_pool_runner()
        import pytest

        obs.enable()
        try:
            with pytest.raises(ItemError) as excinfo:
                runner.map(emits_then_dies, [10, 11])
        finally:
            obs.reset()
        payload = excinfo.value.payload
        assert (obs.ROUND_START, (("round", 10),)) in payload

    def test_retry_keeps_campaign_identical_to_healthy_run(self):
        import os

        parent = os.getpid()

        def worker_hostile_factory(graph):
            # Dies in every forked worker (simulating an OOM-killed
            # child) but works in the parent, so each attempt fails in
            # the pool and succeeds on its serial retry.
            if os.getpid() != parent:
                raise RuntimeError("worker lost")
            return {u: MajorityVoteDevice() for u in graph.nodes}

        def config(factory):
            return CampaignConfig(
                graph=complete_graph(4),
                device_factory=factory,
                rounds=3,
                attempts=40,
                seed=11,
                max_link_faults=2,
            )

        golden = run_campaign(config(_naive_factory))
        crashed = run_campaign(config(worker_hostile_factory), jobs=2)
        assert golden.broken and crashed.broken
        # The configs differ only by factory identity; compare the
        # parts of the serialized result that don't embed it.
        g, c = campaign_to_dict(golden), campaign_to_dict(crashed)
        assert g == c
