"""Execution metrics: message counts, traffic volume, decision rounds.

The classical cost story behind the paper's bounds: EIG is optimally
resilient (``n = 3f + 1``) but exchanges messages exponential in
``f``; phase king is polynomial but needs ``n > 4f``; relaying over
disjoint paths multiplies traffic by ``2f + 1``.  These helpers
measure all of that from recorded behaviors.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.graph import NodeId
from ..runtime.sync.behavior import SyncBehavior


def _payload_size(message) -> int:
    """A crude, deterministic size measure (characters of repr)."""
    return len(repr(message))


@dataclass(frozen=True)
class RunMetrics:
    """Aggregate cost of one synchronous run."""

    rounds: int
    messages: int
    traffic: int  # sum of payload sizes
    max_message: int
    decision_rounds: dict[NodeId, int | None]

    @property
    def last_decision_round(self) -> int | None:
        values = [r for r in self.decision_rounds.values() if r is not None]
        return max(values) if values else None


def measure(behavior: SyncBehavior) -> RunMetrics:
    """Message/traffic metrics of a recorded behavior (``None``
    payloads are silence, not messages)."""
    messages = 0
    traffic = 0
    max_message = 0
    for edge_behavior in behavior.edge_behaviors.values():
        for message in edge_behavior.messages:
            if message is None:
                continue
            messages += 1
            size = _payload_size(message)
            traffic += size
            max_message = max(max_message, size)
    return RunMetrics(
        rounds=behavior.rounds,
        messages=messages,
        traffic=traffic,
        max_message=max_message,
        decision_rounds={
            u: nb.decided_at for u, nb in behavior.node_behaviors.items()
        },
    )


def compare(metrics: dict[str, RunMetrics]) -> list[tuple]:
    """Rows (label, rounds, messages, traffic, max message, decided-by)
    for :func:`repro.analysis.tables.format_table`."""
    return [
        (
            label,
            m.rounds,
            m.messages,
            m.traffic,
            m.max_message,
            m.last_decision_round,
        )
        for label, m in metrics.items()
    ]


COMPARE_HEADERS = (
    "protocol",
    "rounds",
    "messages",
    "traffic (chars)",
    "max msg",
    "decided by round",
)
