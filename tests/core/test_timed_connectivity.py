"""Connectivity bounds for weak agreement and the firing squad — the
cyclic m-fold cover construction."""

import pytest

from repro.core import (
    refute_firing_squad_connectivity,
    refute_weak_agreement_connectivity,
)
from repro.graphs import (
    connectivity_cyclic_cover,
    cut_partition_for_connectivity,
    cyclic_cover,
    diamond,
    is_covering,
    ring,
    verify_covering,
)
from repro.protocols import ExchangeOnceWeakDevice, RelayFireDevice


class TestCyclicCover:
    def test_diamond_stretches_into_long_cycle(self):
        g = diamond()
        side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(g, 1)
        cover = connectivity_cyclic_cover(
            g, cut_b, cut_d, side_a, side_c, copies=6
        )
        assert cover.fold == 6
        assert len(cover.covering.cover) == 24
        verify_covering(
            cover.covering.cover, cover.covering.base, cover.covering.phi
        )

    def test_two_copies_match_double_cover_shape(self):
        g = diamond()
        side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(g, 1)
        cover = connectivity_cyclic_cover(
            g, cut_b, cut_d, side_a, side_c, copies=2
        )
        cg = cover.covering.cover
        # The double cover of the diamond is the 8-ring.
        assert len(cg) == 8
        assert all(cg.degree(u) == 2 for u in cg.nodes)
        assert cg.is_connected()

    def test_generic_cyclic_cover_is_covering(self):
        g = ring(5)
        crossed = [("r0", "r1")]
        cover = cyclic_cover(g, crossed, copies=4)
        assert is_covering(
            cover.covering.cover, cover.covering.base, cover.covering.phi
        )

    def test_copy_of_wraps(self):
        g = ring(5)
        cover = cyclic_cover(g, [("r0", "r1")], copies=3)
        assert cover.copy_of("r0", 3) == cover.copy_of("r0", 0)

    def test_minimum_copies(self):
        from repro.graphs import CoveringError

        with pytest.raises(CoveringError):
            cyclic_cover(ring(5), [("r0", "r1")], copies=1)


class TestWeakConnectivity:
    def test_diamond_refuted(self):
        g = diamond()
        witness = refute_weak_agreement_connectivity(
            g,
            {u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0)) for u in g.nodes},
            max_faults=1,
            delta=1.0,
            decision_deadline=3.0,
        )
        assert witness.found
        assert witness.extra["copies"] == 4 * witness.extra["k"]
        # Middles of the two halves decide their half's value.
        by_copy = {}
        for row in witness.extra["middles"]:
            by_copy.setdefault(row["copy"], set()).add(row["decision"])
        k = witness.extra["k"]
        assert by_copy[k] == {1}
        assert by_copy[3 * k] == {0}

    def test_ring_of_six_refuted(self):
        # n = 6 >= 3f+1 but κ = 2 < 3: inadequate only by connectivity.
        g = ring(6)
        witness = refute_weak_agreement_connectivity(
            g,
            {u: (lambda: ExchangeOnceWeakDevice(decide_at=3.0)) for u in g.nodes},
            max_faults=1,
            delta=1.0,
            decision_deadline=4.0,
        )
        assert witness.found

    def test_violations_at_half_boundaries(self):
        g = diamond()
        witness = refute_weak_agreement_connectivity(
            g,
            {u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0)) for u in g.nodes},
            max_faults=1,
            delta=1.0,
            decision_deadline=3.0,
        )
        assert 1 <= len(witness.violated) <= 6


class TestFiringSquadConnectivity:
    def test_diamond_refuted(self):
        g = diamond()
        witness = refute_firing_squad_connectivity(
            g,
            {u: (lambda: RelayFireDevice(fire_at=3.5)) for u in g.nodes},
            max_faults=1,
            delta=1.0,
            fire_deadline=4.0,
        )
        assert witness.found
        k = witness.extra["k"]
        fire_by_copy = {}
        for row in witness.extra["middles"]:
            fire_by_copy.setdefault(row["copy"], set()).add(row["fire_time"])
        assert fire_by_copy[k] == {witness.extra["fire_time"]}
        assert witness.extra["fire_time"] not in fire_by_copy[3 * k]
