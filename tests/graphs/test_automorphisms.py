"""Automorphism groups and orbit canonicalization.

The group computation is cross-checked against known orders; the
orbit keys are checked *semantically* — applying any automorphism to a
fault plan must not change its canonical key, and name-sensitive
scenarios must refuse to collapse with anything but themselves.
"""

import random

import pytest

from repro.graphs import CommunicationGraph
from repro.graphs.automorphisms import (
    OrbitIndex,
    apply_automorphism,
    automorphism_count,
    automorphism_group,
    node_orbits,
    scenario_is_name_sensitive,
)
from repro.graphs.builders import (
    complete_graph,
    diamond,
    line,
    ring,
    star,
    triangle,
    wheel,
)
from repro.runtime.faults import FaultPlan, LinkFault, Partition


class TestGroupOrders:
    """|Aut| of standard graphs is textbook material."""

    @pytest.mark.parametrize(
        "graph,order",
        [
            (triangle(), 6),           # S_3
            (complete_graph(4), 24),   # S_4
            (ring(5), 10),             # dihedral D_5
            (ring(6), 12),             # dihedral D_6
            (diamond(), 8),            # a 4-cycle here: dihedral D_4
            (star(4), 24),             # S_4 on the leaves
            (line(3), 2),              # flip
            (wheel(5), 10),            # D_5 fixing the hub
        ],
    )
    def test_known_orders(self, graph, order):
        assert automorphism_count(graph) == order

    def test_identity_always_present(self):
        group, exact = automorphism_group(ring(4))
        assert exact
        identity = {u: u for u in ring(4).nodes}
        assert identity in group

    def test_group_is_closed_under_composition(self):
        graph = complete_graph(3)
        group, exact = automorphism_group(graph)
        assert exact
        members = {tuple(sorted(g.items())) for g in group}
        for a in group:
            for b in group:
                composed = {u: a[b[u]] for u in graph.nodes}
                assert tuple(sorted(composed.items())) in members

    def test_every_member_preserves_adjacency(self):
        graph = wheel(6)
        group, _ = automorphism_group(graph)
        for sigma in group:
            for u, v in graph.edges:
                assert graph.has_edge(sigma[u], sigma[v])

    def test_asymmetric_graph_has_trivial_group(self):
        # A path with one pendant off an interior node: no symmetry.
        g = CommunicationGraph(
            ["a", "b", "c", "d", "e"],
            [("a", "b"), ("b", "c"), ("c", "d"), ("b", "e"), ("e", "d")],
        )
        # b has degree 3, uniquely; the rest are pinned by distances.
        assert automorphism_count(g) in (1, 2)

    def test_limit_reports_truncation(self):
        group, exact = automorphism_group(complete_graph(5), limit=10)
        assert not exact
        assert len(group) <= 10

    def test_memoized_on_instance(self):
        g = ring(5)
        first = automorphism_group(g)
        assert automorphism_group(g) is first


class TestNodeOrbits:
    def test_complete_graph_single_orbit(self):
        g = complete_graph(5)
        orbits = node_orbits(g)
        assert orbits == (frozenset(g.nodes),)

    def test_wheel_hub_is_fixed(self):
        g = wheel(5)
        orbits = set(node_orbits(g))
        assert frozenset(["hub"]) in orbits or any(
            len(o) == 1 for o in orbits
        )
        assert sum(len(o) for o in orbits) == len(g)

    def test_line_orbits_pair_endpoints(self):
        orbits = node_orbits(line(4))
        sizes = sorted(len(o) for o in orbits)
        assert sizes == [2, 2]


def _drop(edge, start=0, end=1):
    return LinkFault(edge=edge, kind="drop", start=start, end=end)


class TestOrbitKeys:
    def _key(self, index, inputs, plan, node_faults=(), pool=(0, 1)):
        return index.canonical_key(inputs, node_faults, plan, pool)

    def test_key_invariant_along_orbit(self):
        graph = complete_graph(4)
        index = OrbitIndex(graph)
        group, _ = automorphism_group(graph)
        rng = random.Random(0)
        for _ in range(10):
            u, v = rng.sample(list(graph.nodes), 2)
            plan = FaultPlan(link_faults=(_drop((u, v)),))
            inputs = {w: rng.choice((0, 1)) for w in graph.nodes}
            base = self._key(index, inputs, plan)
            for sigma in group:
                image_plan = apply_automorphism(plan, sigma)
                image_inputs = {sigma[w]: val for w, val in inputs.items()}
                assert self._key(index, image_inputs, image_plan) == base

    def test_distinct_orbits_get_distinct_keys(self):
        graph = ring(6)
        index = OrbitIndex(graph)
        inputs = {u: 0 for u in graph.nodes}
        # A fault on one edge vs. faults on two adjacent edges cannot be
        # automorphic images of each other.
        one = FaultPlan(link_faults=(_drop(("r0", "r1")),))
        two = FaultPlan(
            link_faults=(_drop(("r0", "r1")), _drop(("r1", "r2")))
        )
        assert self._key(index, inputs, one) != self._key(index, inputs, two)

    def test_same_edge_fault_order_is_preserved(self):
        graph = complete_graph(3)
        index = OrbitIndex(graph)
        inputs = {u: 0 for u in graph.nodes}
        corrupt = LinkFault(edge=("n0", "n1"), kind="corrupt", start=0, end=1)
        drop = _drop(("n0", "n1"))
        a = FaultPlan(link_faults=(corrupt, drop))
        b = FaultPlan(link_faults=(drop, corrupt))
        # corrupt-then-drop drops the slot; drop-then-corrupt also drops
        # it, but the injector trace differs — the key must not conflate
        # differently-ordered same-edge sequences.
        assert self._key(index, inputs, a) != self._key(index, inputs, b)

    def test_partition_keys_are_order_insensitive(self):
        graph = ring(4)
        index = OrbitIndex(graph)
        inputs = {u: 0 for u in graph.nodes}
        p1 = Partition(edges=frozenset([("r0", "r1")]), start=0, end=1)
        p2 = Partition(edges=frozenset([("r2", "r3")]), start=0, end=1)
        a = FaultPlan(partitions=(p1, p2))
        b = FaultPlan(partitions=(p2, p1))
        assert self._key(index, inputs, a) == self._key(index, inputs, b)

    def test_record_counts_saved_runs(self):
        index = OrbitIndex(complete_graph(3))
        assert index.record("k") is False
        assert index.record("k") is True
        assert index.record("other") is False
        s = index.stats()
        assert s["scenarios_seen"] == 3
        assert s["orbits"] == 2
        assert s["orbits_collapsed"] == 1
        assert s["runs_saved"] == 1
        assert "orbit dedup" in index.describe()

    def test_large_group_degrades_to_identity(self):
        index = OrbitIndex(complete_graph(4), max_group=5)
        assert index.group_order == 1
        assert not index.exact
        inputs = {u: 0 for u in complete_graph(4).nodes}
        a = FaultPlan(link_faults=(_drop(("n0", "n1")),))
        b = FaultPlan(link_faults=(_drop(("n2", "n3")),))
        # Identity fallback: automorphic plans no longer share keys.
        assert self._key(index, inputs, a) != self._key(index, inputs, b)


class TestNameSensitivity:
    def test_plain_drop_is_name_free(self):
        plan = FaultPlan(link_faults=(_drop(("n0", "n1")),))
        assert not scenario_is_name_sensitive(plan)

    def test_node_faults_are_sensitive(self):
        plan = FaultPlan()
        assert scenario_is_name_sensitive(plan, node_faults=(object(),))

    def test_probabilistic_fault_is_sensitive(self):
        flaky = LinkFault(
            edge=("n0", "n1"), kind="drop", start=0, end=2, probability=0.5
        )
        assert scenario_is_name_sensitive(FaultPlan(link_faults=(flaky,)))

    def test_binary_pool_corruption_is_name_free(self):
        corrupt = LinkFault(edge=("n0", "n1"), kind="corrupt", start=0, end=1)
        plan = FaultPlan(link_faults=(corrupt,))
        assert not scenario_is_name_sensitive(plan, value_pool=(0, 1))
        assert scenario_is_name_sensitive(plan, value_pool=(0, 1, 2))

    def test_sensitive_scenarios_only_collapse_with_themselves(self):
        graph = complete_graph(3)
        index = OrbitIndex(graph)
        inputs = {u: 0 for u in graph.nodes}
        flaky = LinkFault(
            edge=("n0", "n1"), kind="drop", start=0, end=2, probability=0.5
        )
        relabeled = LinkFault(
            edge=("n1", "n2"), kind="drop", start=0, end=2, probability=0.5
        )
        k1 = index.canonical_key(inputs, (), FaultPlan(link_faults=(flaky,)))
        k2 = index.canonical_key(
            inputs, (), FaultPlan(link_faults=(relabeled,))
        )
        k1_again = index.canonical_key(
            inputs, (), FaultPlan(link_faults=(flaky,))
        )
        assert k1 != k2
        assert k1 == k1_again
