"""Unit tests of the naive devices (the engines' candidates)."""

import pytest

from repro.graphs import complete_graph, triangle
from repro.protocols import (
    EchoInputDevice,
    MajorityVoteDevice,
    MedianDevice,
    MidpointDevice,
    MinimumDevice,
)
from repro.runtime.sync import run, uniform_system


def decisions(device, inputs, rounds=2, graph=None):
    g = graph or triangle()
    input_map = dict(zip(g.nodes, inputs))
    behavior = run(uniform_system(g, device, input_map), rounds)
    return behavior.decisions()


class TestMajorityVote:
    def test_unanimous(self):
        assert set(decisions(MajorityVoteDevice(), (1, 1, 1)).values()) == {1}

    def test_majority_wins(self):
        result = decisions(MajorityVoteDevice(), (1, 1, 0))
        assert all(v == 1 for v in result.values())

    def test_tie_takes_default(self):
        g = complete_graph(4)
        result = decisions(
            MajorityVoteDevice(default=0), (1, 1, 0, 0), graph=g
        )
        assert set(result.values()) == {0}

    def test_decides_after_exchange_round(self):
        g = triangle()
        behavior = run(
            uniform_system(g, MajorityVoteDevice(), {"a": 1, "b": 1, "c": 0}),
            3,
        )
        assert all(
            behavior.node(u).decided_at == 1 for u in g.nodes
        )

    def test_multi_round_variant(self):
        device = MajorityVoteDevice(rounds=2)
        result = decisions(device, (1, 1, 0), rounds=3)
        assert all(v is not None for v in result.values())

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            MajorityVoteDevice(rounds=0)


class TestRealValuedDevices:
    def test_midpoint(self):
        result = decisions(MidpointDevice(), (0.0, 1.0, 0.4))
        assert all(v == pytest.approx(0.5) for v in result.values())

    def test_median(self):
        result = decisions(MedianDevice(), (0.0, 1.0, 0.4))
        assert all(v == pytest.approx(0.4) for v in result.values())

    def test_echo(self):
        result = decisions(EchoInputDevice(), (0.1, 0.2, 0.3))
        assert result["a"] == 0.1 and result["c"] == 0.3

    def test_minimum(self):
        result = decisions(MinimumDevice(), (3, 1, 2))
        assert set(result.values()) == {1}

    def test_midpoint_all_equal(self):
        result = decisions(MidpointDevice(), (0.7, 0.7, 0.7))
        assert all(v == pytest.approx(0.7) for v in result.values())


class TestPortDiscipline:
    def test_devices_only_use_known_ports(self):
        """A naive device on any topology addresses only its ports."""
        from repro.graphs import star

        g = star(4)
        result = decisions(MajorityVoteDevice(), (1, 0, 1, 0, 1), graph=g)
        assert all(v is not None for v in result.values())
