"""repro — an executable reproduction of Fischer, Lynch & Merritt,
"Easy Impossibility Proofs for Distributed Consensus Problems"
(PODC 1985).

The package turns the paper inside out: its abstract model
(communication graphs, devices, behaviors, scenarios, the Locality and
Fault axioms) becomes running code, and its impossibility *proofs*
become *engines* that take any concrete device implementation claimed
to solve Byzantine agreement, weak agreement, the Byzantine firing
squad, approximate agreement, or clock synchronization on an
inadequate graph (fewer than ``3f + 1`` nodes or connectivity below
``2f + 1``) and produce a counterexample execution.

Quickstart::

    from repro.graphs import triangle
    from repro.core import refute_node_bound
    from repro.protocols.naive import MajorityVoteDevice

    g = triangle()
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    witness = refute_node_bound(g, devices, max_faults=1, rounds=3)
    print(witness.describe())
"""

__version__ = "1.0.0"

from . import core, graphs, problems, protocols, runtime  # noqa: F401

__all__ = ["core", "graphs", "problems", "protocols", "runtime", "__version__"]
