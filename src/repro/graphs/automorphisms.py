"""Automorphism groups of communication graphs, and orbit
canonicalization of fault scenarios.

The paper compresses its arguments with symmetry: a covering map
identifies nodes that are locally indistinguishable, so one argument
covers a whole orbit of nodes at once.  The campaign/frontier/sweep
drivers can play the same trick operationally — most sampled
:class:`~repro.runtime.faults.FaultPlan` configurations are equivalent
under an automorphism of the communication graph, so executing one
representative per orbit and mapping the verdict back to every member
saves the bulk of the work on the symmetric graphs (``K_n``, rings,
circulants, covering graphs) this repo lives on.

Two layers:

* :func:`automorphism_group` — the full automorphism group, computed by
  equitable-partition refinement (1-WL color refinement) followed by
  class-respecting backtracking.  Exact for the ≤20-node graphs used
  here; a ``limit`` caps enumeration on pathologically symmetric inputs
  (``K_20`` has ``20!`` automorphisms), in which case the group is
  reported *truncated* and callers must fall back to identity-only
  dedup, which is always sound.
* :class:`OrbitIndex` — canonicalizes a campaign scenario (inputs +
  node faults + fault plan) to the lexicographically minimal image
  under the group, with hit counters (``orbits_collapsed``,
  ``runs_saved``).  Soundness guards are built in: scenarios whose
  outcome could depend on concrete node *names* (seeded per-node
  adversaries, corruption draws from pools with more than two values,
  probabilistic faults) canonicalize to themselves, so they only ever
  collapse with byte-identical scenarios.

Groups are memoized on the graph instance (see
:meth:`CommunicationGraph.analytics_cache`).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from ..runtime.faults import FaultPlan, LinkFault, Partition
from .graph import CommunicationGraph, NodeId

#: Default cap on group enumeration.  Large enough for every graph the
#: experiments use (|Aut(K_8)| = 40320), small enough that a runaway
#: backtrack on a huge complete graph stops early instead of hanging.
DEFAULT_GROUP_LIMIT = 50_000

Automorphism = dict[NodeId, NodeId]


def _refine_colors(graph: CommunicationGraph) -> dict[NodeId, int]:
    """Equitable-partition (1-WL) refinement: iteratively color nodes by
    (own color, sorted multiset of neighbor colors) until stable.  Two
    nodes in different color classes can never be exchanged by an
    automorphism."""
    colors: dict[NodeId, int] = {u: graph.degree(u) for u in graph.nodes}
    while True:
        signatures = {
            u: (colors[u], tuple(sorted(colors[v] for v in graph.neighbors(u))))
            for u in graph.nodes
        }
        palette = {sig: i for i, sig in enumerate(sorted(set(signatures.values())))}
        refined = {u: palette[signatures[u]] for u in graph.nodes}
        if refined == colors:
            return colors
        colors = refined


def automorphism_group(
    graph: CommunicationGraph, limit: int = DEFAULT_GROUP_LIMIT
) -> tuple[tuple[Automorphism, ...], bool]:
    """All adjacency-preserving node bijections of ``graph``.

    Returns ``(group, exact)``: the tuple of automorphisms (each a
    ``node -> node`` dict, identity included) and whether the
    enumeration is complete.  When more than ``limit`` automorphisms
    exist the search stops early and ``exact`` is ``False`` — callers
    needing soundness must then treat the group as unusable rather
    than partial (a partial group still yields sound but weaker
    canonical forms; :class:`OrbitIndex` keeps only exact groups to
    keep the reasoning simple).

    Memoized per graph instance and per ``limit``.
    """
    cache = graph.analytics_cache()
    key = ("automorphism_group", limit)
    hit = cache.get(key)
    if hit is not None:
        return hit

    nodes = list(graph.nodes)
    colors = _refine_colors(graph)
    by_color: dict[int, list[NodeId]] = {}
    for v in nodes:
        by_color.setdefault(colors[v], []).append(v)

    # Order nodes to fail fast: most-constrained color class first,
    # then maximize adjacency with already-placed nodes.
    order: list[NodeId] = []
    placed: set[NodeId] = set()
    remaining = set(nodes)
    while remaining:
        best = min(
            remaining,
            key=lambda u: (
                len(by_color[colors[u]]),
                -sum(1 for v in graph.neighbors(u) if v in placed),
                str(u),
            ),
        )
        order.append(best)
        placed.add(best)
        remaining.discard(best)

    group: list[Automorphism] = []
    mapping: Automorphism = {}
    used: set[NodeId] = set()
    exact = True

    def compatible(u: NodeId, v: NodeId) -> bool:
        for neighbor in graph.neighbors(u):
            if neighbor in mapping and not graph.has_edge(v, mapping[neighbor]):
                return False
        for placed_u, placed_v in mapping.items():
            if graph.has_edge(u, placed_u) != graph.has_edge(v, placed_v):
                return False
        return True

    def backtrack(index: int) -> bool:
        """Depth-first over class-respecting assignments; returns False
        to abort the whole search once ``limit`` is exceeded."""
        nonlocal exact
        if index == len(order):
            group.append(dict(mapping))
            if len(group) > limit:
                exact = False
                group.pop()
                return False
            return True
        u = order[index]
        for v in by_color[colors[u]]:
            if v in used or not compatible(u, v):
                continue
            mapping[u] = v
            used.add(v)
            keep_going = backtrack(index + 1)
            del mapping[u]
            used.discard(v)
            if not keep_going:
                return False
        return True

    backtrack(0)
    result = (tuple(group), exact)
    cache[key] = result
    return result


def automorphism_count(graph: CommunicationGraph) -> int:
    """|Aut(G)| (exact for graphs within the enumeration limit)."""
    group, exact = automorphism_group(graph)
    if not exact:
        raise ValueError("automorphism group exceeds the enumeration limit")
    return len(group)


def node_orbits(graph: CommunicationGraph) -> tuple[frozenset[NodeId], ...]:
    """The node orbits under the automorphism group, in canonical
    (sorted-representative) order.  Falls back to refinement classes if
    the group is truncated (coarser, still sound as an upper bound on
    symmetry is never claimed)."""
    group, exact = automorphism_group(graph)
    if exact:
        seen: set[NodeId] = set()
        orbits: list[frozenset[NodeId]] = []
        for u in graph.nodes:
            if u in seen:
                continue
            orbit = frozenset(sigma[u] for sigma in group)
            seen |= orbit
            orbits.append(orbit)
        return tuple(orbits)
    colors = _refine_colors(graph)
    by_color: dict[int, set[NodeId]] = {}
    for u in graph.nodes:
        by_color.setdefault(colors[u], set()).add(u)
    return tuple(
        frozenset(members)
        for _, members in sorted(by_color.items())
    )


# -- orbit canonicalization of fault scenarios ------------------------------


def _apply_to_plan(plan: FaultPlan, sigma: Automorphism) -> FaultPlan:
    """The image of a fault plan under an automorphism: every edge
    endpoint is relabeled; windows, kinds and parameters are carried
    unchanged."""
    link_faults = tuple(
        LinkFault(
            edge=(sigma[f.edge[0]], sigma[f.edge[1]]),
            kind=f.kind,
            start=f.start,
            end=f.end,
            delay=f.delay,
            burst=f.burst,
            period=f.period,
            probability=f.probability,
        )
        for f in plan.link_faults
    )
    partitions = tuple(
        Partition(
            edges=frozenset((sigma[u], sigma[v]) for (u, v) in p.edges),
            start=p.start,
            end=p.end,
        )
        for p in plan.partitions
    )
    return FaultPlan(
        link_faults=link_faults,
        partitions=partitions,
        seed=plan.seed,
        corrupt_pool=plan.corrupt_pool,
    )


def apply_automorphism(
    plan: FaultPlan, sigma: Mapping[NodeId, NodeId]
) -> FaultPlan:
    """Public wrapper around plan relabeling (used by tests to check
    that orbit keys are invariant along orbits)."""
    return _apply_to_plan(plan, dict(sigma))


def _relabeled_plan_tokens(
    names: Mapping[NodeId, str],
    link_atoms: Sequence[tuple],
    part_atoms: Sequence[tuple],
) -> tuple:
    """Canonical serialization of a plan's atoms under a node renaming.

    The injector applies multiple faults on the *same* edge in plan
    order (a corrupt-then-drop is not a drop-then-corrupt), so the
    per-edge fault sequence is kept in order; only the order *across*
    edges — which the injector never observes, per-edge slots being
    independent — is sorted away.  Partition activation is an
    order-insensitive ``any()``, so partitions sort freely.
    """
    by_edge: dict[tuple[str, str], list[tuple]] = {}
    for u, v, params in link_atoms:
        by_edge.setdefault((names[u], names[v]), []).append(params)
    links = tuple(
        sorted((edge, tuple(seq)) for edge, seq in by_edge.items())
    )
    cuts = tuple(
        sorted(
            (
                tuple(sorted((names[u], names[v]) for (u, v) in edges)),
                start,
                end,
            )
            for edges, start, end in part_atoms
        )
    )
    return (links, cuts)


def scenario_is_name_sensitive(
    plan: FaultPlan,
    node_faults: Sequence[Any] = (),
    value_pool: Sequence[Any] = (0, 1),
) -> bool:
    """Could executing a relabeled copy of this scenario produce a
    different verdict than the original?

    Three (conservative) reasons to say yes:

    * **node faults** — seeded adversary devices draw their private
      randomness from keys that embed the node name and consume it in
      neighbor order, neither of which survives relabeling;
    * **corruption with a rich pool** — replacement values are drawn
      from an rng keyed by the edge *name* whenever more than one
      replacement is possible (with a binary pool the replacement is
      forced and name-independent);
    * **probabilistic faults** — the per-slot coin is keyed by the
      edge name.

    Name-sensitive scenarios still dedup — but only against
    byte-identical copies of themselves (the identity automorphism),
    which is trivially sound.
    """
    if node_faults:
        return True
    distinct = len(set(map(repr, value_pool)))
    for fault in plan.link_faults:
        if fault.probability < 1.0:
            return True
        if fault.kind == "corrupt" and distinct > 2:
            return True
    return False


class OrbitIndex:
    """Canonical keys for campaign scenarios under graph symmetry.

    One index serves one graph; :meth:`canonical_key` maps a scenario
    (inputs, node faults, fault plan) to a string key equal for every
    scenario in the same automorphism orbit.  The campaign engine
    executes the first scenario of each orbit and reuses its verdict
    for the rest; :meth:`stats` reports how much that saved.

    A scenario flagged by :func:`scenario_is_name_sensitive` keys to
    its identity form, so it can only collapse with exact duplicates.
    When the graph's group exceeds ``limit`` (astronomically symmetric
    inputs) the index degrades the same way for *every* scenario —
    still sound, never wrong, just less effective.
    """

    def __init__(
        self,
        graph: CommunicationGraph,
        limit: int = DEFAULT_GROUP_LIMIT,
        max_group: int = 5_000,
    ) -> None:
        self.graph = graph
        group, exact = automorphism_group(graph, limit=limit)
        # Canonicalization applies every group element to every
        # scenario; past a few thousand elements that costs more than
        # the execution it saves, so degrade to identity-only.
        if exact and len(group) <= max_group:
            self.group: tuple[Automorphism, ...] = group
            self.exact = True
        else:
            identity = {u: u for u in graph.nodes}
            self.group = (identity,)
            self.exact = False
        # Canonicalization works on string node names; resolving each
        # sigma to a name map once keeps the per-scenario loop to tuple
        # building and comparisons.
        self._names: tuple[dict[NodeId, str], ...] = tuple(
            {u: str(v) for u, v in sigma.items()} for sigma in self.group
        )
        self._identity_names: dict[NodeId, str] = {
            u: str(u) for u in graph.nodes
        }
        self.scenarios_seen = 0
        self.runs_saved = 0
        self._members: dict[str, int] = {}
        # Input vectors are drawn from a small pool and repeat heavily
        # across attempts; their stage-1 minimization (the loop over
        # the whole group) is cached per distinct vector.
        self._input_stage: dict[tuple, tuple] = {}

    @property
    def group_order(self) -> int:
        return len(self.group)

    def canonical_key(
        self,
        inputs: Mapping[NodeId, Any],
        node_faults: Sequence[Any],
        plan: FaultPlan,
        value_pool: Sequence[Any] = (0, 1),
    ) -> str:
        """The orbit-canonical key of one fully specified scenario.

        Lexicographically minimal ``(inputs, plan)`` form over the
        group, computed in two stages: minimize the relabeled input
        vector first, then relabel the plan only under the
        automorphisms achieving that minimum (usually a handful —
        inputs break most of the symmetry)."""
        input_items = tuple((u, repr(v)) for u, v in inputs.items())
        link_atoms = tuple(
            (
                f.edge[0],
                f.edge[1],
                (f.kind, f.start, f.end, f.delay, f.burst, f.period,
                 f.probability),
            )
            for f in plan.link_faults
        )
        part_atoms = tuple(
            (tuple(p.edges), p.start, p.end) for p in plan.partitions
        )
        suffix = (
            tuple((str(nf.node), nf.kind, nf.key) for nf in node_faults),
            plan.seed,
            tuple(repr(v) for v in plan.corrupt_pool),
        )
        if len(self.group) == 1 or scenario_is_name_sensitive(
            plan, node_faults, value_pool
        ):
            names = self._identity_names
            form = (
                tuple(sorted((names[u], rv) for u, rv in input_items)),
                _relabeled_plan_tokens(names, link_atoms, part_atoms),
            )
            return repr((form, suffix))
        staged = self._input_stage.get(input_items)
        if staged is None:
            best_inputs = None
            stabilizer: list[dict[NodeId, str]] = []
            for names in self._names:
                form = tuple(sorted((names[u], rv) for u, rv in input_items))
                if best_inputs is None or form < best_inputs:
                    best_inputs = form
                    stabilizer = [names]
                elif form == best_inputs:
                    stabilizer.append(names)
            staged = (best_inputs, tuple(stabilizer))
            self._input_stage[input_items] = staged
        best_inputs, stabilizer = staged
        # Plan tokens only see the names of nodes the plan touches, so
        # stabilizer elements agreeing on those nodes are redundant
        # (with uniform inputs the stabilizer is the whole group, but a
        # one-edge plan has few distinct restrictions).
        plan_nodes = tuple(
            dict.fromkeys(
                node
                for u, v, _ in link_atoms
                for node in (u, v)
            )
        ) + tuple(
            dict.fromkeys(
                node
                for edges, _, _ in part_atoms
                for (u, v) in edges
                for node in (u, v)
            )
        )
        best_plan = None
        seen_restrictions: set[tuple[str, ...]] = set()
        for names in stabilizer:
            restriction = tuple(names[u] for u in plan_nodes)
            if restriction in seen_restrictions:
                continue
            seen_restrictions.add(restriction)
            form = _relabeled_plan_tokens(names, link_atoms, part_atoms)
            if best_plan is None or form < best_plan:
                best_plan = form
        return repr(((best_inputs, best_plan), suffix))

    def record(self, key: str) -> bool:
        """Note one scenario keyed ``key``; returns True if an earlier
        scenario already occupies the orbit (i.e. this run is saved)."""
        self.scenarios_seen += 1
        count = self._members.get(key, 0)
        self._members[key] = count + 1
        if count:
            self.runs_saved += 1
            return True
        return False

    def stats(self) -> dict[str, int]:
        collapsed = sum(1 for c in self._members.values() if c > 1)
        return {
            "group_order": self.group_order,
            "exact_group": int(self.exact),
            "scenarios_seen": self.scenarios_seen,
            "orbits": len(self._members),
            "orbits_collapsed": collapsed,
            "runs_saved": self.runs_saved,
        }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"orbit dedup: |Aut|={s['group_order']}"
            f"{'' if s['exact_group'] else ' (identity fallback)'}, "
            f"{s['scenarios_seen']} scenarios -> {s['orbits']} orbits, "
            f"{s['orbits_collapsed']} collapsed, "
            f"{s['runs_saved']} runs saved"
        )


__all__ = [
    "DEFAULT_GROUP_LIMIT",
    "OrbitIndex",
    "apply_automorphism",
    "automorphism_count",
    "automorphism_group",
    "node_orbits",
    "scenario_is_name_sensitive",
]
