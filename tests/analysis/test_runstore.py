"""The run store: atomic writes, torn-tail journals, resume metadata."""

import json
import os

import pytest

from repro import obs
from repro.analysis.parallel import ParallelRunner
from repro.analysis.runstore import (
    RunStore,
    RunStoreError,
    Shard,
    atomic_write_text,
    decode_payload,
    encode_payload,
    journaled_map,
    reusable,
    run_scope_payload,
)


class TestAtomicWriteText:
    def test_writes_and_returns_path(self, tmp_path):
        path = atomic_write_text(tmp_path / "out.json", '{"a": 1}')
        assert path.read_text() == '{"a": 1}'

    def test_replaces_existing_content(self, tmp_path):
        target = tmp_path / "out.json"
        target.write_text("old")
        atomic_write_text(target, "new")
        assert target.read_text() == "new"

    def test_no_temp_files_left_behind(self, tmp_path):
        atomic_write_text(tmp_path / "out.json", "x")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["out.json"]

    def test_failed_write_leaves_no_droppings(self, tmp_path):
        with pytest.raises(TypeError):
            atomic_write_text(tmp_path / "out.json", object())  # not str
        assert list(tmp_path.iterdir()) == []


class TestShard:
    def test_append_and_get(self, tmp_path):
        with Shard(tmp_path / "s.jsonl") as shard:
            shard.append("a", {"ok": True})
            shard.append("b", {"ok": False})
            assert shard.get("a") == {"ok": True}
            assert shard.get("missing") is None
            assert len(shard) == 2

    def test_reload_from_disk(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with Shard(path) as shard:
            shard.append("a", {"ok": True})
        reloaded = Shard(path)
        assert reloaded.get("a") == {"ok": True}
        assert reloaded.keys() == ["a"]

    def test_last_record_wins(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with Shard(path) as shard:
            shard.append("a", {"ok": True})
            shard.append("a", {"ok": False})
        assert Shard(path).get("a") == {"ok": False}

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with Shard(path) as shard:
            shard.append("a", {"ok": True})
            shard.append("b", {"ok": True})
        # Simulate a crash mid-append: the final line is truncated.
        text = path.read_text()
        path.write_text(text + '{"k": "c", "v": {"ok"')
        survivor = Shard(path)
        assert survivor.get("a") == {"ok": True}
        assert survivor.get("b") == {"ok": True}
        assert survivor.get("c") is None

    def test_mid_file_garbage_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        lines = [
            json.dumps({"k": "a", "v": {"ok": True}}),
            "definitely not json",
            json.dumps({"k": "b", "v": {"ok": True}}),
        ]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(RunStoreError, match="corrupt journal"):
            Shard(path)

    def test_non_record_final_line_is_torn_tail(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text(
            json.dumps({"k": "a", "v": {}}) + "\n" + json.dumps(["list"])
        )
        assert Shard(path).keys() == ["a"]

    def test_append_after_reload_appends(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with Shard(path) as shard:
            shard.append("a", {"ok": True})
        with Shard(path) as shard:
            shard.append("b", {"ok": False})
        assert len(path.read_text().splitlines()) == 2
        assert len(Shard(path)) == 2


class TestRunStore:
    def test_meta_round_trip(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.write_meta("campaign", 7, {"attempts": 10})
        meta = store.read_meta()
        assert meta["command"] == "campaign"
        assert meta["seed"] == 7
        assert meta["args"] == {"attempts": 10}

    def test_missing_store_without_create(self, tmp_path):
        with pytest.raises(RunStoreError, match="no run store"):
            RunStore(tmp_path / "nowhere", create=False)

    def test_missing_meta_is_clear(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with pytest.raises(RunStoreError, match="not a run store"):
            store.read_meta()

    def test_corrupt_meta_is_clear(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.meta_path.write_text('{"format": "repro-runsto')
        with pytest.raises(RunStoreError, match="corrupt or truncated"):
            store.read_meta()

    def test_foreign_format_rejected(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.meta_path.write_text(json.dumps({"format": "other/9"}))
        with pytest.raises(RunStoreError, match="is not repro-runstore"):
            store.read_meta()

    def test_shards_live_under_shard_dir(self, tmp_path):
        store = RunStore(tmp_path / "store")
        with store.shard("abc123") as shard:
            shard.append("x", {})
        assert (tmp_path / "store" / "shards" / "abc123.jsonl").exists()

    def test_runstore_error_is_value_error(self):
        # The CLI maps ValueError to a one-line `error: ...` exit.
        assert issubclass(RunStoreError, ValueError)


class TestPayloadRoundTrip:
    PAYLOAD = (
        ("round_start", (("round", 1),)),
        ("cache_hit", (("cache", "behavior"), ("op", "sync-run"))),
        ("round_end", (("round", 1),)),
    )

    def test_encode_decode_inverse(self):
        data = json.loads(json.dumps(encode_payload(self.PAYLOAD)))
        assert decode_payload(data) == self.PAYLOAD

    def test_run_scope_strips_host_events(self):
        kept = run_scope_payload(self.PAYLOAD)
        assert [kind for kind, _ in kept] == ["round_start", "round_end"]

    def test_reusable_rules(self):
        assert not reusable(None)
        assert reusable({"ok": True})  # telemetry off: no payload needed
        obs.enable()
        try:
            assert not reusable({"ok": True})
            assert reusable({"ok": True, "obs": []})
        finally:
            obs.reset()


class TestJournaledMap:
    def test_without_shard_is_plain_map(self):
        calls = []

        def fn(x):
            calls.append(x)
            return x * x

        out = journaled_map(
            ParallelRunner(1), fn, [1, 2, 3], None,
            key_fn=str, encode=lambda r: {"r": r}, decode=lambda d: d["r"],
        )
        assert out == [1, 4, 9]
        assert calls == [1, 2, 3]

    def test_journaled_items_skip_execution(self, tmp_path):
        calls = []

        def fn(x):
            calls.append(x)
            return x * x

        def run(shard):
            return journaled_map(
                ParallelRunner(1), fn, [1, 2, 3], shard,
                key_fn=str,
                encode=lambda r: {"v": r},
                decode=lambda d: d["v"],
            )

        path = tmp_path / "s.jsonl"
        with Shard(path) as shard:
            first = run(shard)
        calls.clear()
        with Shard(path) as shard:
            second = run(shard)
        assert first == second == [1, 4, 9]
        assert calls == []  # everything came from the journal

    def test_partial_journal_executes_only_the_rest(self, tmp_path):
        calls = []

        def fn(x):
            calls.append(x)
            return -x

        path = tmp_path / "s.jsonl"
        with Shard(path) as shard:
            shard.append("2", {"r": {"v": -2}})
            out = journaled_map(
                ParallelRunner(1), fn, [1, 2, 3], shard,
                key_fn=str,
                encode=lambda r: {"v": r},
                decode=lambda d: d["v"],
            )
        assert out == [-1, -2, -3]
        assert calls == [1, 3]

    def test_fsync_every_bounds_unsynced_appends(self, tmp_path):
        from repro.analysis import runstore

        synced = []
        shard = Shard(tmp_path / "s.jsonl")
        original = os.fsync
        try:
            os.fsync = lambda fd: synced.append(fd)
            for i in range(runstore.FSYNC_EVERY + 1):
                shard.append(str(i), {})
        finally:
            os.fsync = original
        shard.close()
        assert synced  # at least one periodic fsync fired
