"""Corollaries 12–15, executable.

Each corollary instantiates Theorem 8's engine with a specific family
of clock and envelope functions and reports the *unbeatable constant*:
the trivial, communication-free synchronization ``l(q(t)) - l(p(t))``
that no device family can improve by any ``α > 0`` in an inadequate
graph.

* Corollary 12 — linear envelope synchronization ([DHS]): linear
  clocks and envelopes; synchronizing to within a constant is
  impossible.
* Corollary 13 — ``p = t``, ``q = rt``, ``l = at + b``: nothing beats
  ``a·r·t - a·t`` (growing skew).
* Corollary 14 — ``p = t``, ``q = t + c``, ``l = at + b``: nothing
  beats the constant ``a·c``.
* Corollary 15 — ``p = t``, ``q = rt``, ``l = log₂``: nothing beats
  the constant ``log₂(r)`` (the paper's remark that diverging linear
  clocks *can* be synchronized to within a constant via logarithmic
  logical clocks — but no better).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from ..graphs.graph import NodeId
from ..runtime.timed.clocks import ClockFunction, LinearClock
from ..runtime.timed.device import DeviceFactory
from .clock_sync import SynchronizationSetting, refute_clock_sync
from .witness import ImpossibilityWitness


@dataclass(frozen=True)
class Log2Envelope:
    """``t ↦ log₂(t + shift)``; the small shift keeps it finite at 0."""

    shift: float = 1.0

    def __call__(self, t: float) -> float:
        return math.log2(t + self.shift)


@dataclass(frozen=True)
class CorollaryOutcome:
    """A corollary's instantiation plus its engine run."""

    name: str
    setting: SynchronizationSetting
    unbeatable_skew_description: str
    witness: ImpossibilityWitness

    def trivial_skew_at(self, t: float) -> float:
        return self.setting.lower(self.setting.q(t)) - self.setting.lower(
            self.setting.p(t)
        )


def corollary_12_linear_envelope(
    factories: Mapping[NodeId, DeviceFactory],
    rate: float = 1.25,
    a: float = 1.0,
    b: float = 0.0,
    c: float = 1.0,
    d: float = 3.0,
    alpha: float = 0.125,
    t_prime: float = 1.0,
) -> CorollaryOutcome:
    """Linear clocks ``p=t, q=rt`` and envelopes ``l=at+b, u=ct+d``."""
    setting = SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(rate, 0.0),
        lower=LinearClock(a, b),
        upper=LinearClock(c, d),
        alpha=alpha,
        t_prime=t_prime,
    )
    witness = refute_clock_sync(factories, setting)
    return CorollaryOutcome(
        name="Corollary 12 (linear envelope synchronization)",
        setting=setting,
        unbeatable_skew_description=(
            f"a·(r-1)·t = {a * (rate - 1):.4g}·t — no constant bound exists"
        ),
        witness=witness,
    )


def corollary_13_diverging_linear(
    factories: Mapping[NodeId, DeviceFactory],
    rate: float = 1.25,
    a: float = 1.0,
    b: float = 0.0,
    alpha: float = 0.125,
    t_prime: float = 1.0,
    upper: ClockFunction | None = None,
) -> CorollaryOutcome:
    """``p=t, q=rt, l=at+b``: cannot beat ``art - at`` by any constant."""
    setting = SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(rate, 0.0),
        lower=LinearClock(a, b),
        upper=upper or LinearClock(a, b + 5.0),
        alpha=alpha,
        t_prime=t_prime,
    )
    witness = refute_clock_sync(factories, setting)
    return CorollaryOutcome(
        name="Corollary 13 (p=t, q=rt, l=at+b)",
        setting=setting,
        unbeatable_skew_description=f"a·r·t - a·t with a={a}, r={rate}",
        witness=witness,
    )


def corollary_14_offset_clocks(
    factories: Mapping[NodeId, DeviceFactory],
    offset: float = 0.5,
    a: float = 2.0,
    b: float = 0.0,
    alpha: float = 0.125,
    t_prime: float = 1.0,
) -> CorollaryOutcome:
    """``p=t, q=t+c, l=at+b``: cannot synchronize closer than ``a·c``."""
    setting = SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(1.0, offset),
        lower=LinearClock(a, b),
        upper=LinearClock(a, b + 4.0 * a * offset),
        alpha=alpha,
        t_prime=t_prime,
    )
    witness = refute_clock_sync(factories, setting)
    return CorollaryOutcome(
        name="Corollary 14 (p=t, q=t+c, l=at+b)",
        setting=setting,
        unbeatable_skew_description=(
            f"the constant a·c = {a * offset:.4g}"
        ),
        witness=witness,
    )


def corollary_15_logarithmic(
    factories: Mapping[NodeId, DeviceFactory],
    rate: float = 2.0,
    alpha: float = 0.125,
    t_prime: float = 4.0,
) -> CorollaryOutcome:
    """``p=t, q=rt, l=log₂``: cannot beat the constant ``log₂ r``.

    This is the sharp end of the paper's observation that running
    logical clocks logarithmically turns diverging linear clocks into
    constant skew — and that this constant is optimal.
    """
    lower = Log2Envelope(shift=1.0)
    upper = Log2Envelope(shift=64.0)
    setting = SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(rate, 0.0),
        lower=lower,
        upper=upper,
        alpha=alpha,
        t_prime=t_prime,
    )
    witness = refute_clock_sync(factories, setting)
    return CorollaryOutcome(
        name="Corollary 15 (p=t, q=rt, l=log2)",
        setting=setting,
        unbeatable_skew_description=(
            f"≈ the constant log₂(r) = {math.log2(rate):.4g}"
        ),
        witness=witness,
    )


def trivial_skew_table(
    outcome: CorollaryOutcome, times: tuple[float, ...] = (1.0, 2.0, 5.0, 10.0)
) -> list[tuple[float, float]]:
    """(t, trivial skew l(q(t)) - l(p(t))) pairs — the optimum curve."""
    return [(t, outcome.trivial_skew_at(t)) for t in times]


__all__ = [
    "CorollaryOutcome",
    "Log2Envelope",
    "corollary_12_linear_envelope",
    "corollary_13_diverging_linear",
    "corollary_14_offset_clocks",
    "corollary_15_logarithmic",
    "trivial_skew_table",
]
