"""Dolev relay over vertex-disjoint paths and Dolev–Strong
authenticated agreement — the connectivity bound's and the Fault
axiom's positive counterparts."""

import pytest

from repro.graphs import (
    GraphError,
    circulant,
    complete_graph,
    ring,
    triangle,
    wheel,
)
from repro.problems import ByzantineAgreementSpec
from repro.protocols import (
    authenticated_consensus_devices,
    relay_devices,
    transmission_rounds,
)
from repro.runtime.sync import (
    RandomLiarDevice,
    SilentDevice,
    TwoFacedDevice,
    make_system,
    run,
)

SPEC = ByzantineAgreementSpec()


class TestRelay:
    def _transmit(self, graph, source, target, value, faulty=()):
        devices = dict(relay_devices(graph, source, target, max_faults=1))
        for node, bad in dict(faulty).items():
            assert node not in (source, target)
            devices[node] = bad
        inputs = {u: value if u == source else None for u in graph.nodes}
        system = make_system(graph, devices, inputs)
        rounds = transmission_rounds(graph, source, target, 1) + 1
        behavior = run(system, rounds)
        return behavior.decision(target)

    def test_clean_transmission_on_k5(self):
        g = complete_graph(5)
        assert self._transmit(g, "n0", "n4", "payload") == "payload"

    def test_tolerates_one_corrupting_intermediary(self):
        # Circulant on 7 nodes with offsets {1,2}: connectivity 4 >= 3.
        g = circulant(7, [1, 2])
        source, target = "c0", "c3"
        for bad_node in ("c1", "c2"):
            value = self._transmit(
                g, source, target, 42, faulty={bad_node: RandomLiarDevice(1)}
            )
            assert value == 42

    def test_tolerates_silent_intermediary(self):
        g = wheel(6)
        value = self._transmit(
            g, "w0", "w3", "m", faulty={"whub": SilentDevice()}
        )
        assert value == "m"

    def test_insufficient_connectivity_rejected(self):
        with pytest.raises(GraphError):
            relay_devices(ring(6), "r0", "r3", max_faults=1)

    def test_two_faults_need_five_paths(self):
        g = circulant(11, [1, 2])  # connectivity 4 < 5
        with pytest.raises(GraphError):
            relay_devices(g, "c0", "c5", max_faults=2)
        g5 = circulant(11, [1, 2, 3])  # connectivity 6 >= 5
        devices = relay_devices(g5, "c0", "c5", max_faults=2)
        assert len(devices) == 11


class TestAuthenticated:
    def _consensus(self, n, f, inputs, faulty=()):
        g = complete_graph(n)
        devices = dict(authenticated_consensus_devices(g, f))
        for node, bad in dict(faulty).items():
            devices[node] = bad
        input_map = {u: inputs[i] for i, u in enumerate(g.nodes)}
        system = make_system(g, devices, input_map)
        behavior = run(system, f + 1)
        correct = [u for u in g.nodes if u not in dict(faulty)]
        return (
            SPEC.check(input_map, behavior.decisions(), correct),
            behavior,
            correct,
        )

    def test_three_nodes_one_fault_succeeds(self):
        """The headline: signatures beat the 3f+1 bound — agreement on
        the *triangle* with a (non-forging) Byzantine node."""
        verdict, _, _ = self._consensus(
            3, 1, (1, 1, 0), faulty={"n2": SilentDevice()}
        )
        assert verdict.ok, verdict.describe()

    def test_three_nodes_two_faced_general(self):
        g = complete_graph(3)
        honest = authenticated_consensus_devices(g, 1)
        # The faulty node runs one honest persona toward each neighbor;
        # both personas sign with n2's own key only - no forgery.
        two_faced = TwoFacedDevice(
            face_one=honest["n2"], face_two=honest["n2"], ports_for_one=["n0"]
        )
        verdict, _, _ = self._consensus(
            3, 1, (1, 1, 0), faulty={"n2": two_faced}
        )
        assert verdict.ok, verdict.describe()

    def test_fault_free_validity(self):
        verdict, behavior, correct = self._consensus(3, 1, (1, 1, 1))
        assert verdict.ok
        assert all(behavior.decision(u) == 1 for u in correct)

    def test_four_nodes_liar(self):
        verdict, _, _ = self._consensus(
            4, 1, (0, 0, 0, 1), faulty={"n3": RandomLiarDevice(5)}
        )
        assert verdict.ok

    def test_triangle_is_inadequate_yet_auth_works(self):
        from repro.graphs import is_inadequate

        assert is_inadequate(triangle(), 1)
        verdict, _, _ = self._consensus(
            3, 1, (0, 0, 1), faulty={"n2": SilentDevice()}
        )
        assert verdict.ok
