"""Compiled execution plans for both runtimes.

The interpretive executors resolve the same questions over and over:
*which device runs at node ``u``? what are its port labels? which edge
does its ``i``-th port feed? which clock does it read?*  None of the
answers change between rounds (or events) — they are fixed the moment
a :class:`~repro.runtime.sync.system.SyncSystem` or
:class:`~repro.runtime.timed.system.TimedSystem` is built.  This
module resolves them **once per system** into flat, precomputed
structures, so the executors' hot loops touch only local tuples and
dict lookups:

* :func:`compile_sync_plan` → :class:`SyncPlan`: per node, the device,
  its (single, shared) :class:`NodeContext`, the valid-port set for
  send validation, the ``(edge, port label)`` routing table for the
  send phase and the ``(port label, edge)`` inbox template for the
  receive phase.
* :func:`compile_timed_plan` → :class:`TimedPlan`: per node, the
  context, hardware clock (plus its lazily computed inverse), the
  ``port label → neighbor`` map, and the global ``edge → receiver
  port`` table.

Plans are pure *data*; execution stays in the executors
(:func:`repro.runtime.sync.executor.execute_plan` runs a
:class:`SyncPlan`, and the timed ``_Run`` reads a :class:`TimedPlan`).
A plan never caches per-run state — timed device *instances* in
particular are still created fresh for every run — so executing the
same plan twice yields the same behavior, byte for byte, exactly as
re-running the system did before compilation existed.

Compilation is memoized on the system instance itself (systems are
frozen; the plan is stashed in ``__dict__`` the same way
``functools.cached_property`` does), so repeated ``run()`` calls on
one system — the campaign shrinker's bread and butter — compile once.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING, Any, Mapping

from ..graphs.graph import DirectedEdge, NodeId

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from .sync.behavior import SyncBehavior
    from .sync.device import NodeContext, PortLabel, SyncDevice
    from .sync.system import SyncSystem
    from .timed.clocks import ClockFunction
    from .timed.device import TimedContext
    from .timed.system import TimedSystem
    from .faults import SyncFaultInjector

_SYNC_PLAN_ATTR = "_compiled_sync_plan"
_TIMED_PLAN_ATTR = "_compiled_timed_plan"


# -- synchronous plans -----------------------------------------------------


@dataclass(frozen=True)
class CompiledSyncNode:
    """Everything the round loop needs about one node, pre-resolved.

    ``out_routes`` lists ``(edge, port label)`` in the graph's neighbor
    order — the exact order the interpretive executor visited — and
    ``in_routes`` lists ``(port label at this node, inedge)`` in
    in-neighbor order, so the inbox dict is built with identical keys
    and insertion order.
    """

    node: NodeId
    device: "SyncDevice"
    ctx: "NodeContext"
    valid_ports: frozenset
    out_routes: tuple[tuple[DirectedEdge, Any], ...]
    in_routes: tuple[tuple[Any, DirectedEdge], ...]


@dataclass(frozen=True)
class SyncPlan:
    """A compiled synchronous system: flat per-node tables plus the
    edge list, ready for the tight loop in ``execute_plan``."""

    system: "SyncSystem"
    nodes: tuple[CompiledSyncNode, ...]
    edges: tuple[DirectedEdge, ...]

    @property
    def graph(self):
        return self.system.graph

    def run(
        self, rounds: int, injector: "SyncFaultInjector | None" = None
    ) -> "SyncBehavior":
        """Execute this plan (delegates to the synchronous executor)."""
        from .sync.executor import execute_plan

        return execute_plan(self, rounds, injector)


def compile_sync_plan(system: "SyncSystem") -> SyncPlan:
    """Compile (and memoize on the system) a :class:`SyncPlan`.

    The same system object always returns the same plan object; systems
    derived via ``with_devices`` / ``with_inputs`` are new objects and
    compile their own plans.
    """
    cached = system.__dict__.get(_SYNC_PLAN_ATTR)
    if cached is not None:
        return cached
    graph = system.graph
    compiled = []
    for u in graph.nodes:
        assignment = system.assignments[u]
        ctx = assignment.context()
        ports = assignment.port_of_neighbor
        out_routes = tuple(
            ((u, v), ports[v]) for v in graph.neighbors(u)
        )
        in_routes = tuple(
            (ports[v], (v, u)) for v in graph.in_neighbors(u)
        )
        compiled.append(
            CompiledSyncNode(
                node=u,
                device=assignment.device,
                ctx=ctx,
                valid_ports=frozenset(ctx.ports),
                out_routes=out_routes,
                in_routes=in_routes,
            )
        )
    plan = SyncPlan(
        system=system, nodes=tuple(compiled), edges=tuple(graph.edges)
    )
    # Frozen dataclasses forbid setattr; writing through __dict__ is the
    # same trick functools.cached_property uses.
    system.__dict__[_SYNC_PLAN_ATTR] = plan
    return plan


# -- timed plans -----------------------------------------------------------


@dataclass(frozen=True)
class CompiledTimedNode:
    """Per-node tables for the discrete-event loop: the context and
    clock are resolved once instead of once per event."""

    node: NodeId
    rank: int
    ctx: "TimedContext"
    clock: "ClockFunction"
    neighbor_of_port: Mapping

    @cached_property
    def clock_inverse(self) -> "ClockFunction":
        """The clock's functional inverse, computed on first use (some
        exotic clocks may not implement ``inverse`` and are only an
        error if a device actually sets a timer through them)."""
        return self.clock.inverse()


@dataclass(frozen=True)
class TimedPlan:
    """A compiled timed system: per-node tables plus the global
    ``directed edge → receiver port`` map (``(u, v) → v``'s label for
    ``u``), which the interpretive executor re-derived on every send."""

    system: "TimedSystem"
    by_node: Mapping[NodeId, CompiledTimedNode]
    receiver_port: Mapping[DirectedEdge, Any]

    @property
    def graph(self):
        return self.system.graph


def compile_timed_plan(system: "TimedSystem") -> TimedPlan:
    """Compile (and memoize on the system) a :class:`TimedPlan`.

    Device *factories* are deliberately not called here: timed device
    instances are stateful per run and must stay per-run.
    """
    cached = system.__dict__.get(_TIMED_PLAN_ATTR)
    if cached is not None:
        return cached
    graph = system.graph
    by_node = {}
    receiver_port: dict[DirectedEdge, Any] = {}
    for rank, u in enumerate(graph.nodes):
        assignment = system.assignments[u]
        by_node[u] = CompiledTimedNode(
            node=u,
            rank=rank,
            ctx=assignment.context(),
            clock=assignment.clock,
            neighbor_of_port=dict(assignment.neighbor_of_port),
        )
        for v in graph.in_neighbors(u):
            receiver_port[(v, u)] = assignment.port_of_neighbor[v]
    plan = TimedPlan(
        system=system, by_node=by_node, receiver_port=receiver_port
    )
    system.__dict__[_TIMED_PLAN_ATTR] = plan
    return plan


__all__ = [
    "CompiledSyncNode",
    "CompiledTimedNode",
    "SyncPlan",
    "TimedPlan",
    "compile_sync_plan",
    "compile_timed_plan",
]
