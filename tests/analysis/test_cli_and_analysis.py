"""CLI and analysis-layer tests."""

import pytest

from repro.analysis import (
    SWEEP_HEADERS,
    connectivity_sweep,
    diamond_figure,
    eight_ring_figure,
    format_table,
    hexagon_figure,
    node_bound_sweep,
    ring_figure,
    triangle_figure,
    witness_chain_figure,
)
from repro.cli import build_parser, main, parse_graph
from repro.graphs import GraphError, ring_cover_of_triangle


class TestTables:
    def test_basic_rendering(self):
        out = format_table(("a", "bb"), [(1, 2.34567), (None, True)])
        lines = out.splitlines()
        assert lines[0].startswith("a")
        assert "2.346" in out
        assert "—" in out and "yes" in out

    def test_title(self):
        out = format_table(("x",), [(1,)], title="T")
        assert out.splitlines()[0] == "T"


class TestDiagrams:
    def test_static_figures_nonempty(self):
        for figure in (
            triangle_figure(),
            hexagon_figure(),
            diamond_figure(),
            eight_ring_figure(),
        ):
            assert figure.strip()

    def test_ring_figure(self):
        cm = ring_cover_of_triangle(6)
        inputs = {u: i for i, u in enumerate(cm.cover.nodes)}
        fig = ring_figure(cm, inputs)
        assert "A" in fig and "B" in fig and "C" in fig
        assert "wraps" in fig

    def test_chain_figure(self):
        fig = witness_chain_figure(["E1", "E2", "E3"], ["c", "a"])
        assert fig == "E1 --[c]-- E2 --[a]-- E3"


class TestSweeps:
    def test_node_sweep_shape(self):
        rows = node_bound_sweep((1,))
        assert [r.n_nodes for r in rows] == [3, 4, 5]
        assert "IMPOSSIBLE" in rows[0].outcome
        assert "SOLVED" in rows[1].outcome

    def test_connectivity_sweep_shape(self):
        rows = connectivity_sweep(1)
        assert len(rows) == 3
        assert len(SWEEP_HEADERS) == len(rows[0].as_tuple())


class TestCLI:
    def test_parse_graph_families(self):
        assert len(parse_graph("triangle")) == 3
        assert len(parse_graph("complete:5")) == 5
        assert len(parse_graph("ring:6")) == 6
        assert len(parse_graph("wheel:5")) == 6
        assert len(parse_graph("circulant:7:1,2")) == 7

    def test_parse_graph_rejects_garbage(self):
        with pytest.raises(GraphError):
            parse_graph("torus:3")
        with pytest.raises(GraphError):
            parse_graph("complete:xyz")

    def test_classify_command(self, capsys):
        assert main(["classify", "--graph", "triangle", "--faults", "1"]) == 0
        assert "INADEQUATE" in capsys.readouterr().out

    def test_refute_byzantine_command(self, capsys):
        assert main(["refute", "byzantine"]) == 0
        out = capsys.readouterr().out
        assert "VIOLATED" in out and "chain links" in out

    def test_refute_connectivity_command(self, capsys):
        assert main(["refute", "connectivity", "--graph", "diamond"]) == 0
        assert "VIOLATED" in capsys.readouterr().out

    def test_refute_eps_delta_command(self, capsys):
        assert main(["refute", "eps-delta"]) == 0
        assert "VIOLATED" in capsys.readouterr().out

    def test_demo_eig_command(self, capsys):
        assert main(["demo", "eig", "--graph", "complete:4"]) == 0
        assert "all conditions satisfied" in capsys.readouterr().out

    def test_demo_sparse_command(self, capsys):
        code = main(
            ["demo", "sparse", "--graph", "circulant:7:1,2", "--faults", "1"]
        )
        assert code == 0

    def test_sweep_command(self, capsys):
        assert main(["sweep", "nodes", "--faults", "1"]) == 0
        out = capsys.readouterr().out
        assert "IMPOSSIBLE" in out and "SOLVED" in out

    def test_error_exit_code(self, capsys):
        assert main(["classify", "--graph", "nope"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parser_help_mentions_problems(self):
        parser = build_parser()
        assert parser.prog == "repro"


class TestMasterReport:
    @pytest.mark.slow
    def test_full_report_all_witnessed(self):
        from repro.analysis.report import full_report

        lines = full_report()
        assert len(lines) == 16
        assert all("witness:" in line.verdict for line in lines)
        results = {line.result for line in lines}
        for theorem in ("Thm 1", "Thm 2", "Thm 4", "Thm 5", "Thm 6", "Thm 8"):
            assert any(r.startswith(theorem) for r in results)

    @pytest.mark.slow
    def test_report_command(self, capsys):
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "FLM 1985, reproduced" in out
        assert "Cor 15" in out


class TestCLIWitnessOptions:
    def test_refute_verbose(self, capsys):
        assert main(["refute", "byzantine", "--verbose"]) == 0
        out = capsys.readouterr().out
        assert "full trace" in out

    def test_refute_json(self, tmp_path, capsys):
        target = tmp_path / "witness.json"
        assert main(["refute", "byzantine", "--json", str(target)]) == 0
        import json

        data = json.loads(target.read_text())
        assert data["found"] is True

    def test_refute_weak_command(self, capsys):
        assert main(["refute", "weak"]) == 0
        assert "weak-agreement" in capsys.readouterr().out

    def test_refute_firing_command(self, capsys):
        assert main(["refute", "firing"]) == 0
        assert "firing-squad" in capsys.readouterr().out


class TestAttackAndCampaignCommands:
    def test_attack_command_breaks_naive(self, capsys):
        assert main(
            ["attack", "--protocol", "naive", "--graph", "complete:4",
             "--faults", "1", "--attempts", "50"]
        ) == 0
        assert "broken" in capsys.readouterr().out

    def test_attack_seed_changes_search(self, capsys):
        main(["attack", "--attempts", "50"])
        first = capsys.readouterr().out
        main(["--seed", "1", "attack", "--attempts", "50"])
        second = capsys.readouterr().out
        main(["attack", "--attempts", "50"])
        again = capsys.readouterr().out
        assert first == again  # same seed reproduces exactly
        assert first != second

    def test_campaign_command_breaks_naive(self, capsys):
        assert main(
            ["campaign", "--protocol", "naive", "--graph", "complete:4",
             "--links", "2", "--attempts", "60", "--verbose"]
        ) == 0
        out = capsys.readouterr().out
        assert "broken" in out and "shrunk" in out

    def test_campaign_eig_survives(self, capsys):
        assert main(
            ["campaign", "--protocol", "eig", "--graph", "complete:4",
             "--faults", "1", "--links", "0", "--attempts", "20"]
        ) == 0
        assert "survived" in capsys.readouterr().out

    def test_campaign_json_then_replay(self, tmp_path, capsys):
        target = tmp_path / "campaign.json"
        assert main(
            ["campaign", "--protocol", "naive", "--graph", "complete:4",
             "--links", "2", "--attempts", "60", "--json", str(target)]
        ) == 0
        capsys.readouterr()
        assert main(
            ["campaign", "--protocol", "naive", "--graph", "complete:4",
             "--replay", str(target)]
        ) == 0
        assert "replayed" in capsys.readouterr().out

    def test_campaign_frontier(self, capsys):
        assert main(
            ["campaign", "--protocol", "naive", "--graph", "complete:4",
             "--links", "1", "--attempts", "40", "--frontier"]
        ) == 0
        out = capsys.readouterr().out
        assert "graceful degradation" in out
        assert "agreement" in out


class TestOptimizationFlags:
    def test_campaign_cache_stats(self, capsys):
        assert main(
            ["campaign", "--protocol", "eig", "--graph", "complete:4",
             "--faults", "0", "--links", "1", "--attempts", "30",
             "--orbit-dedup", "--incremental", "--cache-stats"]
        ) == 0
        out = capsys.readouterr().out
        assert "orbit dedup" in out
        assert "incremental execution" in out
        assert "cache:" in out

    def test_campaign_flags_do_not_change_output(self, capsys):
        args = ["campaign", "--protocol", "naive", "--graph", "complete:4",
                "--links", "2", "--attempts", "40"]
        assert main(args) == 0
        plain = capsys.readouterr().out
        assert main(args + ["--orbit-dedup", "--incremental"]) == 0
        optimized = capsys.readouterr().out
        assert plain == optimized

    def test_attack_cache_stats(self, capsys):
        assert main(
            ["attack", "--protocol", "naive", "--graph", "complete:4",
             "--faults", "1", "--attempts", "40", "--cache-stats"]
        ) == 0
        assert "cache:" in capsys.readouterr().out

    def test_frontier_cache_stats(self, capsys):
        assert main(
            ["campaign", "--protocol", "naive", "--graph", "complete:4",
             "--links", "1", "--attempts", "20", "--frontier",
             "--cache-stats", "--orbit-dedup", "--incremental"]
        ) == 0
        out = capsys.readouterr().out
        assert "graceful degradation" in out
        assert "cache:" in out
