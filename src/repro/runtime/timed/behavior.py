"""Recorded behaviors for the continuous-time model.

Following Section 4's refinement of the model, behaviors are mappings
from ``[0, ∞)`` to states.  Operationally a node's state between
events is constant, so we record the *event list*: start, receives,
timers, sends, decisions, FIRE, and logical-clock updates, each
timestamped with real time.  Two behaviors are identical through time
``t`` iff their event prefixes up to ``t`` are equal — the form in
which the Bounded-Delay Locality axiom and Lemma 3 are checked.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from ...graphs.graph import CommunicationGraph, DirectedEdge, GraphError, NodeId
from .clocks import ClockFunction
from .device import LogicalClockFn


@dataclass(frozen=True)
class TimedEvent:
    """One observable event at a node."""

    time: float
    kind: str  # start | receive | timer | send | decide | fire | logical
    payload: Any = None

    def shifted(self, fn) -> "TimedEvent":
        """The same event at time ``fn(time)`` (used for scaling)."""
        return TimedEvent(time=fn(self.time), kind=self.kind, payload=self.payload)


def events_equal(
    first: TimedEvent, second: TimedEvent, time_tolerance: float = 0.0
) -> bool:
    """Structural equality with optional time tolerance (scaled
    comparisons accumulate floating-point error)."""
    return (
        first.kind == second.kind
        and first.payload == second.payload
        and abs(first.time - second.time) <= time_tolerance
    )


def payloads_close(first: Any, second: Any, tolerance: float) -> bool:
    """Structural payload comparison with float tolerance.

    Needed when comparing a scaled reconstruction against the original
    run: message payloads that carry clock readings differ in the last
    ulps because the scaled clocks are composed differently.
    """
    if isinstance(first, float) and isinstance(second, (int, float)):
        scale = max(1.0, abs(first), abs(float(second)))
        return abs(first - float(second)) <= tolerance * scale
    if isinstance(second, float) and isinstance(first, int):
        return payloads_close(float(first), second, tolerance)
    if isinstance(first, (tuple, list)) and isinstance(second, (tuple, list)):
        return len(first) == len(second) and all(
            payloads_close(a, b, tolerance) for a, b in zip(first, second)
        )
    if isinstance(first, dict) and isinstance(second, dict):
        return set(first) == set(second) and all(
            payloads_close(v, second[k], tolerance) for k, v in first.items()
        )
    if callable(first) and callable(second):
        # Logical-clock functions: fresh instances differ by identity;
        # engines verify logical readings numerically instead.
        return True
    return bool(first == second)


@dataclass(frozen=True)
class TimedNodeBehavior:
    """Event trace of one node over a run, plus derived observables."""

    events: tuple[TimedEvent, ...]
    decision: Any | None = None
    decision_time: float | None = None
    fire_time: float | None = None
    clock: ClockFunction | None = None
    logical_segments: tuple[tuple[float, LogicalClockFn], ...] = ()

    def prefix(self, through: float) -> tuple[TimedEvent, ...]:
        """Events with time at most ``through``."""
        return tuple(e for e in self.events if e.time <= through + 1e-12)

    def prefix_equal(
        self,
        other: "TimedNodeBehavior",
        through: float,
        time_tolerance: float = 0.0,
    ) -> bool:
        """Identical behaviors through time ``through`` (Lemma 3's
        notion)."""
        mine = self.prefix(through)
        theirs = other.prefix(through)
        if len(mine) != len(theirs):
            return False
        return all(
            events_equal(a, b, time_tolerance) for a, b in zip(mine, theirs)
        )

    def logical_value(self, t: float) -> float:
        """The logical clock reading at real time ``t``:
        the active logical function applied to the hardware clock."""
        if self.clock is None:
            raise GraphError("node has no hardware clock")
        active: LogicalClockFn | None = None
        for start, fn in self.logical_segments:
            if start <= t + 1e-12:
                active = fn
            else:
                break
        if active is None:
            # Before any logical-clock definition the logical clock
            # reads the hardware clock.
            return self.clock(t)
        return active(self.clock(t))


@dataclass(frozen=True)
class TimedEdgeBehavior:
    """All messages sent over one directed edge: (send_time, message,
    arrival_time) triples in send order."""

    sends: tuple[tuple[float, Any, float], ...] = ()

    def through(self, time: float) -> "TimedEdgeBehavior":
        return TimedEdgeBehavior(
            tuple(s for s in self.sends if s[0] <= time + 1e-12)
        )

    def messages(self) -> tuple[Any, ...]:
        return tuple(m for _, m, _ in self.sends)


@dataclass(frozen=True)
class TimedBehavior:
    """The full recorded behavior of a timed system."""

    graph: CommunicationGraph
    horizon: float
    node_behaviors: Mapping[NodeId, TimedNodeBehavior] = field(
        default_factory=dict
    )
    edge_behaviors: Mapping[DirectedEdge, TimedEdgeBehavior] = field(
        default_factory=dict
    )

    def node(self, u: NodeId) -> TimedNodeBehavior:
        return self.node_behaviors[u]

    def edge(self, u: NodeId, v: NodeId) -> TimedEdgeBehavior:
        return self.edge_behaviors[(u, v)]

    def decisions(self) -> dict[NodeId, Any | None]:
        return {u: b.decision for u, b in self.node_behaviors.items()}

    def fire_times(self) -> dict[NodeId, float | None]:
        return {u: b.fire_time for u, b in self.node_behaviors.items()}

    def max_decision_time(self, nodes: Iterable[NodeId] | None = None) -> float:
        """Largest decision time among the given (default: all) nodes;
        ``inf`` if any of them never decided."""
        nodes = list(nodes) if nodes is not None else list(self.graph.nodes)
        worst = 0.0
        for u in nodes:
            t = self.node_behaviors[u].decision_time
            if t is None:
                return math.inf
            worst = max(worst, t)
        return worst
