"""Section 3's closing remark: nondeterministic algorithms cannot
guarantee agreement either — refuted resolution by resolution."""

from repro.core.nondeterminism import (
    SeededOracle,
    refute_nondeterministic,
)
from repro.graphs import triangle
from repro.runtime.sync import FunctionDevice


def coin_flip_family(oracle: SeededOracle):
    """A 'randomized' agreement attempt: gossip once; on a mixed view,
    decide by the oracle's coin instead of a fixed default."""

    def init(ctx):
        return ((), None)

    def send(ctx, state, r):
        if r == 0:
            return {p: ctx.input for p in ctx.ports}
        return {}

    def transition(ctx, state, r, inbox):
        seen, decided = state
        if r == 0:
            seen = tuple(
                sorted(inbox.items(), key=lambda kv: str(kv[0]))
            )
            values = {ctx.input, *(v for _, v in seen if v is not None)}
            if len(values) == 1:
                decided = ctx.input
            else:
                decided = oracle.coin(("mixed-view", ctx.input, seen))
        return (seen, decided)

    def choose(ctx, state):
        return state[1]

    device = FunctionDevice(init, send, transition, choose)
    return {u: device for u in triangle().nodes}


class TestOracle:
    def test_oracle_is_deterministic(self):
        oracle = SeededOracle(7)
        assert oracle.choice("k", (0, 1, 2)) == oracle.choice("k", (0, 1, 2))

    def test_different_keys_vary(self):
        oracle = SeededOracle(7)
        picks = {oracle.coin(i) for i in range(32)}
        assert picks == {0, 1}

    def test_different_seeds_vary(self):
        values = {SeededOracle(s).coin("x") for s in range(32)}
        assert values == {0, 1}


class TestNondeterministicRefutation:
    def test_every_resolution_is_refuted(self):
        witnesses = refute_nondeterministic(
            triangle(),
            coin_flip_family,
            max_faults=1,
            rounds=2,
            oracle_seeds=range(12),
        )
        assert len(witnesses) == 12
        assert all(w.found for w in witnesses)

    def test_witnesses_can_differ_across_resolutions(self):
        witnesses = refute_nondeterministic(
            triangle(),
            coin_flip_family,
            max_faults=1,
            rounds=2,
            oracle_seeds=range(12),
        )
        broken_labels = {
            tuple(c.label for c in w.violated) for w in witnesses
        }
        # Different coins break the chain in different places; at least
        # the engine must not be trivially insensitive to the oracle.
        assert broken_labels  # non-empty; usually more than one pattern
