"""Convergence measurement vs [DLPSW]'s theoretical contraction."""

import pytest

from repro.analysis.convergence import (
    measure_convergence,
    spread,
    theoretical_dlpsw_factor,
)
from repro.graphs import complete_graph
from repro.protocols import dlpsw_devices
from repro.runtime.sync import RandomLiarDevice


class TestSpread:
    def test_basic(self):
        assert spread([0.0, 0.3, 1.0]) == pytest.approx(1.0)
        assert spread([]) == 0.0


class TestTheoreticalFactor:
    def test_known_values(self):
        # n = 3f+1: floor((f)/f)+1 = 2 -> factor 1/2.
        assert theoretical_dlpsw_factor(4, 1) == pytest.approx(0.5)
        assert theoretical_dlpsw_factor(7, 2) == pytest.approx(0.5)
        # Larger n converges faster per round.
        assert theoretical_dlpsw_factor(10, 1) < 0.2


class TestMeasuredConvergence:
    def _curve(self, n, f, with_liar=True):
        g = complete_graph(n)
        nodes = list(g.nodes)
        honest = nodes[: n - f] if with_liar else nodes
        inputs = {u: i / (n - 1) for i, u in enumerate(nodes)}

        def adversary():
            return {
                nodes[-1 - i]: RandomLiarDevice(
                    i, value_pool=(-10.0, 10.0)
                )
                for i in range(f)
            }

        return measure_convergence(
            g,
            lambda rounds: dlpsw_devices(g, f, rounds),
            inputs,
            honest,
            adversary_builder=adversary if with_liar else None,
            max_rounds=5,
        )

    def test_spread_is_monotone_decreasing(self):
        curve = self._curve(4, 1)
        for before, after in zip(curve.spreads, curve.spreads[1:]):
            assert after <= before + 1e-12

    def test_contracts_every_round(self):
        curve = self._curve(7, 2)
        assert curve.worst_factor() < 1.0

    def test_cumulative_contraction_beats_theory(self):
        """[DLPSW]'s per-round bound is for their f,k-averaging
        function; the plain trimmed mean can have weaker single rounds
        but its cumulative contraction comfortably beats the bound."""
        curve = self._curve(7, 2)
        bound = theoretical_dlpsw_factor(7, 2)
        rounds = len(curve.spreads) - 1
        cumulative = curve.spreads[-1] / curve.spreads[0]
        assert cumulative <= bound ** (rounds / 2) + 1e-9

    def test_fault_free_collapses_immediately(self):
        # With no faults, trimming 1 of 4 leaves everyone averaging the
        # same middle pair: spread 0 after a single round.
        curve = self._curve(4, 1, with_liar=False)
        assert curve.spreads[0] == pytest.approx(0.0)

    def test_rows_align(self):
        curve = self._curve(4, 1)
        rows = curve.rows()
        assert rows[0][0] == 1 and len(rows) == 5

    def test_undecided_raises(self):
        g = complete_graph(4)
        inputs = {u: 0.0 for u in g.nodes}
        with pytest.raises(ValueError):
            measure_convergence(
                g,
                # Configured for 10 rounds but run fewer: no decision.
                lambda rounds: dlpsw_devices(g, 1, rounds + 1),
                inputs,
                list(g.nodes),
                max_rounds=2,
            )

    def test_inexact_midpoint_halves(self):
        g = complete_graph(4)
        nodes = list(g.nodes)
        inputs = {u: i / 3 for i, u in enumerate(nodes)}

        def builder(rounds):
            from repro.protocols.inexact_ms import InexactAgreementDevice

            return {
                u: InexactAgreementDevice(1, rounds) for u in g.nodes
            }

        curve = measure_convergence(
            g, builder, inputs, nodes, max_rounds=4
        )
        assert curve.worst_factor() <= 0.5 + 1e-9
