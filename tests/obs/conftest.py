import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _reset_telemetry():
    """Telemetry is process-global; never leak it across tests."""
    obs.reset()
    yield
    obs.reset()
