"""Parameter sweeps around the paper's thresholds.

The headline experiments: sweep ``n`` (or the connectivity ``κ``)
across the ``3f + 1`` (or ``2f + 1``) boundary, running a matching
protocol on the adequate side and the impossibility engine on the
inadequate side.  The result rows show the sharp threshold the paper
proves — protocol success at exactly ``3f + 1`` / ``2f + 1`` and an
engine-constructed counterexample one step below.

Sweep points are independent deterministic runs, so both sweeps take
``jobs=N`` to fan points across a process pool
(:class:`~repro.analysis.parallel.ParallelRunner`); rows are merged in
point order, so parallel output is identical to serial.  Both sweeps
also accept a run-store shard (``store=``; see
:func:`sweep_store_key`): completed points are journaled as they merge
and an interrupted sweep resumes from the first unfinished point with
byte-identical rows and traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from .. import obs
from ..runtime.memo import json_fingerprint
from .parallel import ParallelRunner
from .runstore import Shard, journaled_map

from ..core.byzantine import refute_connectivity, refute_node_bound
from ..graphs.adequacy import classify
from ..graphs.builders import circulant, complete_graph
from ..graphs.connectivity import node_connectivity
from ..graphs.graph import CommunicationGraph
from ..problems.byzantine import ByzantineAgreementSpec
from ..protocols.eig import eig_devices
from ..protocols.naive import MajorityVoteDevice
from ..runtime.sync.adversary import RandomLiarDevice
from ..runtime.sync.executor import run
from ..runtime.sync.system import make_system

_SPEC = ByzantineAgreementSpec()


@dataclass(frozen=True)
class SweepRow:
    """One sweep point: a graph size/shape against a fault budget."""

    n_nodes: int
    connectivity: int
    max_faults: int
    adequate: bool
    outcome: str
    detail: str

    def as_tuple(self) -> tuple[Any, ...]:
        return (
            self.n_nodes,
            self.connectivity,
            self.max_faults,
            self.adequate,
            self.outcome,
            self.detail,
        )


def _run_protocol_point(
    graph: CommunicationGraph, max_faults: int, seed: int = 0
) -> SweepRow:
    """Adequate point: run EIG under a Byzantine liar adversary."""
    devices = dict(eig_devices(graph, max_faults))
    nodes = list(graph.nodes)
    faulty = nodes[-max_faults:] if max_faults else []
    for i, node in enumerate(faulty):
        devices[node] = RandomLiarDevice(seed + i)
    inputs = {u: (1 if i % 2 else 0) for i, u in enumerate(nodes)}
    behavior = run(make_system(graph, devices, inputs), max_faults + 1)
    correct = [u for u in nodes if u not in faulty]
    verdict = _SPEC.check(inputs, behavior.decisions(), correct)
    report = classify(graph, max_faults)
    return SweepRow(
        n_nodes=len(graph),
        connectivity=report.connectivity,
        max_faults=max_faults,
        adequate=report.adequate,
        outcome="protocol SOLVED" if verdict.ok else "protocol FAILED",
        detail=(
            f"EIG, {max_faults + 1} rounds, {len(faulty)} Byzantine"
            if verdict.ok
            else verdict.describe()
        ),
    )


def _run_engine_point(
    graph: CommunicationGraph, max_faults: int, by: str, rounds: int = 4
) -> SweepRow:
    """Inadequate point: the engine constructs the counterexample."""
    devices = {u: MajorityVoteDevice() for u in graph.nodes}
    if by == "nodes":
        witness = refute_node_bound(
            graph, devices, max_faults, rounds, require_violation=False
        )
    else:
        witness = refute_connectivity(
            graph, devices, max_faults, rounds, require_violation=False
        )
    report = classify(graph, max_faults)
    violated = witness.violated
    conditions = sorted(
        {v.condition for c in violated for v in c.verdict.violations}
    )
    return SweepRow(
        n_nodes=len(graph),
        connectivity=report.connectivity,
        max_faults=max_faults,
        adequate=report.adequate,
        outcome="IMPOSSIBLE (witness found)" if violated else "no witness!?",
        detail=(
            f"violated {'/'.join(conditions)} in "
            f"{', '.join(c.label for c in violated)}"
        ),
    )


def sweep_store_key(
    dimension: str, faults: "int | list[int] | tuple[int, ...]",
    n_nodes: int = 8,
) -> str:
    """Content fingerprint naming a sweep's run-store shard.

    Covers the sweep dimension and the knobs that determine its point
    list (``faults`` is the value list for the node sweep, a single
    budget for the connectivity sweep), so one store directory can hold
    checkpoints for many sweeps.
    """
    if isinstance(faults, tuple):
        faults = list(faults)
    return json_fingerprint(
        {
            "kind": "sweep",
            "dimension": dimension,
            "faults": faults,
            "n_nodes": n_nodes,
        }
    )


def _row_to_jsonable(row: SweepRow) -> dict[str, Any]:
    return {
        "n_nodes": row.n_nodes,
        "connectivity": row.connectivity,
        "max_faults": row.max_faults,
        "adequate": row.adequate,
        "outcome": row.outcome,
        "detail": row.detail,
    }


def _row_from_jsonable(data: dict[str, Any]) -> SweepRow:
    return SweepRow(**data)


def _node_bound_point(point: tuple[int, int]) -> SweepRow:
    """Evaluate one (f, n) point (module-level: picklable by name)."""
    f, n = point
    graph = complete_graph(n)
    if n <= 3 * f:
        row = _run_engine_point(graph, f, by="nodes")
    else:
        row = _run_protocol_point(graph, f)
    _emit_sweep_point("node-bound", row)
    return row


def node_bound_sweep(
    max_faults_values: tuple[int, ...] = (1, 2),
    jobs: int = 1,
    store: Shard | None = None,
) -> list[SweepRow]:
    """Sweep ``n`` across ``3f + 1`` on complete graphs (TIGHT-N)."""
    points = [
        (f, n)
        for f in max_faults_values
        for n in range(3, 3 * f + 3)
    ]
    return journaled_map(
        ParallelRunner(jobs),
        _node_bound_point,
        points,
        store,
        key_fn=lambda point: f"point:{point!r}",
        encode=_row_to_jsonable,
        decode=_row_from_jsonable,
    )


def _connectivity_point(point: tuple[tuple[int, ...], int, int]) -> SweepRow:
    """Evaluate one (offsets, f, n) circulant point."""
    offsets, max_faults, n_nodes = point
    graph = circulant(n_nodes, list(offsets))
    kappa = node_connectivity(graph)
    if kappa < 2 * max_faults + 1:
        row = _run_engine_point(graph, max_faults, by="connectivity")
    else:
        # Adequate by connectivity; for a full protocol run we also
        # need n >= 3f+1, which holds here.
        row = _relay_point(graph, max_faults)
    _emit_sweep_point("connectivity", row)
    return row


def _emit_sweep_point(sweep: str, row: SweepRow) -> None:
    obs.emit(
        obs.SWEEP_POINT,
        sweep=sweep,
        n=row.n_nodes,
        connectivity=row.connectivity,
        f=row.max_faults,
        adequate=row.adequate,
        outcome=row.outcome,
    )


def connectivity_sweep(
    max_faults: int = 1,
    n_nodes: int = 8,
    jobs: int = 1,
    store: Shard | None = None,
) -> list[SweepRow]:
    """Sweep connectivity across ``2f + 1`` on circulant graphs
    (TIGHT-K).  Circulants with offsets ``1..k`` have connectivity
    ``2k``; adding the half-way chord raises it further."""
    points = [
        ((1,), max_faults, n_nodes),
        ((1, 2), max_faults, n_nodes),
        ((1, 2, 3), max_faults, n_nodes),
    ]
    return journaled_map(
        ParallelRunner(jobs),
        _connectivity_point,
        points,
        store,
        key_fn=lambda point: f"point:{point!r}",
        encode=_row_to_jsonable,
        decode=_row_from_jsonable,
    )


def _relay_point(graph: CommunicationGraph, max_faults: int) -> SweepRow:
    from ..protocols.dolev_relay import relay_devices, transmission_rounds

    nodes = list(graph.nodes)
    source, target = nodes[0], nodes[len(nodes) // 2]
    devices = dict(relay_devices(graph, source, target, max_faults))
    intermediaries = [u for u in nodes if u not in (source, target)]
    for i in range(max_faults):
        devices[intermediaries[i]] = RandomLiarDevice(31 + i)
    inputs = {u: ("MSG" if u == source else None) for u in nodes}
    rounds = transmission_rounds(graph, source, target, max_faults) + 1
    behavior = run(make_system(graph, devices, inputs), rounds)
    delivered = behavior.decision(target)
    report = classify(graph, max_faults)
    ok = delivered == "MSG"
    return SweepRow(
        n_nodes=len(graph),
        connectivity=report.connectivity,
        max_faults=max_faults,
        adequate=report.adequate,
        outcome="relay DELIVERED" if ok else "relay CORRUPTED",
        detail=f"{source}->{target} over 2f+1 disjoint paths",
    )


SWEEP_HEADERS = ("n", "κ", "f", "adequate", "outcome", "detail")
