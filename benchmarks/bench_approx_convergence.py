"""APPROX-POS — the positive side of Theorems 5/6 ([DLPSW], [MS]).

Regenerates: the convergence curve of iterated trimmed-mean averaging
(spread vs rounds, with Byzantine injection) and the round count the
Mahaney–Schneider midpoint needs to reach a target ε.
"""

from conftest import report

from repro.analysis import format_table
from repro.graphs import complete_graph
from repro.protocols import (
    dlpsw_devices,
    inexact_devices,
    rounds_for_target,
)
from repro.runtime.sync import RandomLiarDevice, make_system, run


def _spread_after(n, f, rounds, seed=3):
    g = complete_graph(n)
    devices = dict(dlpsw_devices(g, f, rounds))
    nodes = list(g.nodes)
    for i, node in enumerate(nodes[-f:]):
        devices[node] = RandomLiarDevice(
            seed + i, value_pool=(-50.0, 50.0, 0.0)
        )
    inputs = {u: i / (n - 1) for i, u in enumerate(nodes)}
    behavior = run(make_system(g, devices, inputs), rounds)
    honest = nodes[: n - f]
    decisions = [behavior.decision(u) for u in honest]
    return max(decisions) - min(decisions)


def test_convergence_curve(benchmark):
    def curve():
        return [(r, _spread_after(7, 2, r)) for r in (1, 2, 3, 4, 5, 6)]

    rows = benchmark(curve)
    report(
        "APPROX-POS: DLPSW trimmed-mean convergence (n=7, f=2, "
        "liars injecting ±50)",
        format_table(("rounds", "honest spread"), rows),
    )
    spreads = [s for _, s in rows]
    # Geometric-ish contraction: strictly decreasing and far below the
    # initial unit spread after six rounds.
    assert all(b <= a + 1e-12 for a, b in zip(spreads, spreads[1:]))
    assert spreads[-1] < 0.05


def test_validity_never_violated(benchmark):
    def check():
        g = complete_graph(4)
        devices = dict(dlpsw_devices(g, 1, 4))
        devices["n3"] = RandomLiarDevice(8, value_pool=(-1e6, 1e6))
        inputs = {"n0": 0.2, "n1": 0.5, "n2": 0.8, "n3": 0.0}
        behavior = run(make_system(g, devices, inputs), 4)
        return [behavior.decision(u) for u in ("n0", "n1", "n2")]

    decisions = benchmark(check)
    assert all(0.2 <= d <= 0.8 for d in decisions)


def test_inexact_agreement_round_budget(benchmark):
    epsilon, delta = 0.125, 1.0
    rounds = rounds_for_target(delta, epsilon)

    def once():
        g = complete_graph(4)
        devices = dict(inexact_devices(g, 1, epsilon, delta))
        devices["n3"] = RandomLiarDevice(4)
        inputs = {"n0": 0.0, "n1": 0.4, "n2": 1.0, "n3": 0.5}
        behavior = run(make_system(g, devices, inputs), rounds)
        decisions = [behavior.decision(u) for u in ("n0", "n1", "n2")]
        return max(decisions) - min(decisions)

    final_spread = benchmark(once)
    report(
        "APPROX-POS: MS inexact agreement",
        f"target ε = {epsilon}, δ = {delta}: {rounds} halving rounds; "
        f"achieved honest spread {final_spread:.4g}",
    )
    assert final_spread <= epsilon + 1e-9


def test_convergence_curve_via_library(benchmark):
    """Same experiment through the library's measurement API, compared
    against [DLPSW]'s theoretical contraction."""
    from repro.analysis import measure_convergence, theoretical_dlpsw_factor

    g = complete_graph(7)
    nodes = list(g.nodes)
    inputs = {u: i / 6 for i, u in enumerate(nodes)}

    def adversary():
        return {
            nodes[-1 - i]: RandomLiarDevice(i, value_pool=(-10.0, 10.0))
            for i in range(2)
        }

    curve = benchmark(
        lambda: measure_convergence(
            g,
            lambda rounds: dlpsw_devices(g, 2, rounds),
            inputs,
            nodes[:5],
            adversary_builder=adversary,
            max_rounds=5,
        )
    )
    bound = theoretical_dlpsw_factor(7, 2)
    report(
        "APPROX-POS: measured convergence curve",
        format_table(
            ("rounds", "honest spread"), curve.rows(),
            f"per-round [DLPSW] f,k-averaging bound: {bound}",
        ),
    )
    assert curve.worst_factor() < 1.0
    assert curve.spreads[-1] / curve.spreads[0] < bound
