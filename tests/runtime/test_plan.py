"""Golden-equivalence tests for compiled execution plans.

The compiled hot path (``compile_sync_plan`` + ``execute_plan``) must
be *observationally invisible*: byte-identical behaviors and injection
traces to the pre-compilation interpretive executor, which is kept
verbatim as :func:`repro.testing.reference_sync_run`.
"""

import pytest

from repro.graphs import triangle
from repro.graphs.builders import complete_graph, ring
from repro.protocols.naive import MajorityVoteDevice
from repro.runtime.faults import FaultPlan, LinkFault, SyncFaultInjector
from repro.runtime.plan import compile_sync_plan, compile_timed_plan
from repro.runtime.sync import (
    ExecutionError,
    FunctionDevice,
    check_determinism,
    make_system,
    run,
    uniform_system,
)
from repro.runtime.timed import LinearClock, make_timed_system, run_timed
from repro.runtime.timed.device import TimedDevice
from repro.testing import reference_sync_run


def _majority_system(n=4, rounds_input=None):
    g = complete_graph(n)
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    inputs = {u: i % 2 for i, u in enumerate(g.nodes)}
    return make_system(g, devices, inputs)


def _fault_plan(graph):
    nodes = list(graph.nodes)
    return FaultPlan(
        link_faults=(
            LinkFault(edge=(nodes[0], nodes[1]), kind="drop", start=0, end=2),
            LinkFault(
                edge=(nodes[1], nodes[2]), kind="corrupt", start=1, end=3
            ),
        ),
        seed=17,
    )


class TestSyncPlanEquivalence:
    def test_fault_free_matches_reference(self):
        system = _majority_system()
        assert run(system, 4) == reference_sync_run(system, 4)

    def test_zero_rounds_matches_reference(self):
        system = _majority_system()
        assert run(system, 0) == reference_sync_run(system, 0)

    @pytest.mark.parametrize("n", [3, 4, 6])
    def test_matches_reference_across_sizes(self, n):
        system = _majority_system(n)
        assert run(system, 3) == reference_sync_run(system, 3)

    def test_ring_matches_reference(self):
        g = ring(5)
        system = uniform_system(
            g,
            FunctionDevice(
                init=lambda ctx: (ctx.input,),
                send=lambda ctx, state, r: {p: state[-1] for p in ctx.ports},
                transition=lambda ctx, state, r, inbox: state
                + (tuple(sorted(map(repr, inbox.values()))),),
            ),
            {u: i for i, u in enumerate(g.nodes)},
        )
        assert run(system, 3) == reference_sync_run(system, 3)

    def test_fault_injected_matches_reference_including_trace(self):
        system = _majority_system()
        plan = _fault_plan(system.graph)
        i_planned = SyncFaultInjector(plan)
        i_reference = SyncFaultInjector(plan)
        planned = run(system, 4, injector=i_planned)
        reference = reference_sync_run(system, 4, injector=i_reference)
        assert planned == reference
        # The injector is consulted at exactly the same (edge, round)
        # points in the same order, so the traces are equal too.
        assert i_planned.trace == i_reference.trace

    def test_unknown_port_error_message_preserved(self):
        g = triangle()
        bad = FunctionDevice(
            init=lambda ctx: None,
            send=lambda ctx, state, r: {"no-such-port": 1},
            transition=lambda ctx, state, r, inbox: state,
        )
        system = uniform_system(g, bad, {u: 0 for u in g.nodes})
        with pytest.raises(ExecutionError, match="unknown port"):
            run(system, 1)
        with pytest.raises(ExecutionError, match="unknown port"):
            reference_sync_run(system, 1)

    def test_negative_rounds_rejected(self):
        system = _majority_system()
        with pytest.raises(ExecutionError, match="non-negative"):
            run(system, -1)


class TestSyncPlanCompilation:
    def test_plan_memoized_on_system(self):
        system = _majority_system()
        assert compile_sync_plan(system) is compile_sync_plan(system)

    def test_distinct_systems_get_distinct_plans(self):
        s1, s2 = _majority_system(), _majority_system()
        assert compile_sync_plan(s1) is not compile_sync_plan(s2)

    def test_plan_routes_cover_graph(self):
        system = _majority_system()
        plan = compile_sync_plan(system)
        g = system.graph
        assert set(plan.edges) == set(g.edges)
        out_edges = {e for cn in plan.nodes for (e, _) in cn.out_routes}
        in_edges = {e for cn in plan.nodes for (_, e) in cn.in_routes}
        assert out_edges == set(g.edges)
        assert in_edges == set(g.edges)

    def test_plan_run_matches_executor_run(self):
        system = _majority_system()
        plan = compile_sync_plan(system)
        assert plan.run(3) == run(system, 3)

    def test_check_determinism_on_compiled_plan(self):
        # check_determinism now doubles as a plan-layer self-check: it
        # compiles once and executes the same plan twice.
        check_determinism(_majority_system(), 3)


class _TimerDevice(TimedDevice):
    def __init__(self, at):
        self.at = at

    def on_start(self, ctx, api):
        for port in ctx.ports:
            api.send(port, ("hello", ctx.input))
        api.set_timer("wake", self.at)

    def on_message(self, ctx, api, port, message):
        pass

    def on_timer(self, ctx, api, name):
        api.decide((api.clock(), ctx.input))


class TestTimedPlan:
    def _system(self):
        g = triangle()
        return make_timed_system(
            g,
            {u: (lambda: _TimerDevice(3.0)) for u in g.nodes},
            {u: i for i, u in enumerate(g.nodes)},
            clocks={
                u: LinearClock(rate=1.0 + 0.1 * i, offset=0.5 * i)
                for i, u in enumerate(g.nodes)
            },
        )

    def test_timed_plan_memoized_on_system(self):
        system = self._system()
        assert compile_timed_plan(system) is compile_timed_plan(system)

    def test_timed_runs_are_deterministic_under_plan(self):
        system = self._system()
        b1 = run_timed(system, horizon=10.0)
        b2 = run_timed(system, horizon=10.0)
        assert b1 == b2
        # Devices still decide through their (skewed) hardware clocks.
        for u, decision in b1.decisions().items():
            assert decision is not None

    def test_receiver_port_table_matches_assignments(self):
        system = self._system()
        plan = compile_timed_plan(system)
        g = system.graph
        for u, v in g.edges:
            assert (
                plan.receiver_port[(u, v)]
                == system.assignments[v].port_of_neighbor[u]
            )
