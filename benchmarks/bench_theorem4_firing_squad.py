"""T4 — Theorem 4, Byzantine firing squad (Section 5).

Regenerates: the 4k-ring with half the nodes stimulated, the
fire-time profile around the ring (the FIRE wave breaking), and the
middle-pair indistinguishability check.
"""

from conftest import report

from repro.analysis import format_table
from repro.core import refute_firing_squad
from repro.core.firing_squad import fire_time_profile
from repro.graphs import triangle
from repro.protocols import CountdownFireDevice, RelayFireDevice


def _factories(factory):
    return {u: factory for u in triangle().nodes}


def test_relay_fire_refutation(benchmark):
    witness = benchmark(
        lambda: refute_firing_squad(
            _factories(lambda: RelayFireDevice(fire_at=2.5)),
            delta=1.0,
            fire_deadline=3.0,
        )
    )
    assert witness.found

    middles = format_table(
        ("ring node", "stimulated", "fire time"),
        [
            (m["node"], m["stimulated"], m["fire_time"])
            for m in witness.extra["middles"]
        ],
        "Middle pairs: stimulated middle fires at t, quiet middle does not",
    )
    profile = format_table(
        ("behavior", "fire times of the correct pair", "verdict"),
        [
            (
                label,
                ", ".join(f"{u}@{t}" for u, t in sorted(times.items())),
                "OK"
                if next(
                    c for c in witness.checked if c.label == label
                ).verdict.ok
                else "VIOLATED",
            )
            for label, times in fire_time_profile(witness)
        ],
        "The FIRE wave around the ring",
    )
    report("T4: Byzantine firing squad", middles + "\n\n" + profile)

    stim_times = {
        m["fire_time"] for m in witness.extra["middles"] if m["stimulated"]
    }
    quiet_times = {
        m["fire_time"]
        for m in witness.extra["middles"]
        if not m["stimulated"]
    }
    assert stim_times == {witness.extra["fire_time"]}
    assert witness.extra["fire_time"] not in quiet_times


def test_countdown_fire_refutation(benchmark):
    witness = benchmark(
        lambda: refute_firing_squad(
            _factories(lambda: CountdownFireDevice(fuse=3.0, delay=1.0)),
            delta=1.0,
            fire_deadline=4.0,
        )
    )
    assert witness.found
    benchmark.extra_info["ring_size"] = witness.extra["ring_size"]


def test_connectivity_variant_on_the_diamond(benchmark):
    """Theorem 4's connectivity bound via the cyclic cover of the
    diamond."""
    from repro.core import refute_firing_squad_connectivity
    from repro.graphs import diamond

    g = diamond()
    witness = benchmark(
        lambda: refute_firing_squad_connectivity(
            g,
            {u: (lambda: RelayFireDevice(fire_at=3.5)) for u in g.nodes},
            max_faults=1,
            delta=1.0,
            fire_deadline=4.0,
        )
    )
    assert witness.found
