"""DLPSW iterated averaging, Mahaney–Schneider inexact agreement, and
phase king — positive protocols on adequate graphs."""

import pytest

from repro.graphs import GraphError, complete_graph
from repro.problems import (
    ByzantineAgreementSpec,
    EpsilonDeltaGammaSpec,
    SimpleApproximateAgreementSpec,
)
from repro.protocols import (
    dlpsw_devices,
    fault_tolerant_midpoint,
    inexact_devices,
    phase_king_devices,
    rounds_for_target,
    trimmed_mean,
)
from repro.runtime.sync import RandomLiarDevice, SilentDevice, make_system, run


def spread(values):
    return max(values) - min(values)


class TestTrimmedMean:
    def test_basic(self):
        assert trimmed_mean([0.0, 1.0, 2.0, 100.0], 1) == pytest.approx(1.5)

    def test_requires_enough_values(self):
        with pytest.raises(GraphError):
            trimmed_mean([1.0, 2.0], 1)

    def test_midpoint(self):
        assert fault_tolerant_midpoint([0.0, 4.0, 10.0, 100.0], 1) == (
            pytest.approx(7.0)
        )


class TestDLPSW:
    def _run(self, n, f, rounds, inputs, faulty=()):
        g = complete_graph(n)
        devices = dict(dlpsw_devices(g, f, rounds))
        for node, bad in dict(faulty).items():
            devices[node] = bad
        input_map = {u: inputs[i] for i, u in enumerate(g.nodes)}
        system = make_system(g, devices, input_map)
        behavior = run(system, rounds)
        correct = [u for u in g.nodes if u not in dict(faulty)]
        return input_map, behavior, correct

    def test_contracts_without_faults(self):
        inputs, behavior, correct = self._run(4, 1, 3, (0.0, 0.3, 0.7, 1.0))
        verdict = SimpleApproximateAgreementSpec().check(
            inputs, behavior.decisions(), correct
        )
        assert verdict.ok, verdict.describe()

    def test_contracts_under_byzantine_fault(self):
        inputs, behavior, correct = self._run(
            4, 1, 4, (0.0, 0.5, 1.0, 0.0), faulty={"n3": RandomLiarDevice(2)}
        )
        decisions = [behavior.decision(u) for u in correct]
        assert spread(decisions) < spread([inputs[u] for u in correct])
        low = min(inputs[u] for u in correct)
        high = max(inputs[u] for u in correct)
        assert all(low <= d <= high for d in decisions)

    def test_convergence_is_geometric(self):
        rounds = 6
        inputs, behavior, correct = self._run(
            7, 2, rounds, (0.0, 0.1, 0.4, 0.6, 0.9, 1.0, 0.5),
            faulty={"n5": RandomLiarDevice(9), "n6": SilentDevice()},
        )
        decisions = [behavior.decision(u) for u in correct]
        # Five honest values, two trims; after six rounds the spread
        # should be far below the initial 1.0.
        assert spread(decisions) < 0.1

    def test_rejects_inadequate(self):
        with pytest.raises(GraphError):
            dlpsw_devices(complete_graph(3), 1, 2)


class TestInexact:
    def test_rounds_for_target(self):
        assert rounds_for_target(1.0, 0.25) == 2
        assert rounds_for_target(1.0, 1.0) == 1

    def test_achieves_epsilon_under_fault(self):
        epsilon, delta, gamma = 0.25, 1.0, 0.5
        g = complete_graph(4)
        devices = dict(inexact_devices(g, 1, epsilon, delta))
        devices["n3"] = RandomLiarDevice(4)
        inputs = {"n0": 0.0, "n1": 0.6, "n2": 1.0, "n3": 0.5}
        rounds = rounds_for_target(delta, epsilon)
        behavior = run(make_system(g, devices, inputs), rounds)
        verdict = EpsilonDeltaGammaSpec(epsilon, delta, gamma).check(
            inputs, behavior.decisions(), ["n0", "n1", "n2"]
        )
        assert verdict.ok, verdict.describe()


class TestPhaseKing:
    def _run(self, n, f, inputs, faulty=()):
        g = complete_graph(n)
        devices = dict(phase_king_devices(g, f))
        for node, bad in dict(faulty).items():
            devices[node] = bad
        input_map = {u: inputs[i] for i, u in enumerate(g.nodes)}
        behavior = run(make_system(g, devices, input_map), 2 * (f + 1))
        correct = [u for u in g.nodes if u not in dict(faulty)]
        return ByzantineAgreementSpec().check(
            input_map, behavior.decisions(), correct
        )

    @pytest.mark.parametrize(
        "inputs", [(1, 1, 1, 1, 1), (0, 0, 0, 0, 0), (1, 0, 1, 0, 1)]
    )
    def test_five_nodes_fault_free(self, inputs):
        assert self._run(5, 1, inputs).ok

    @pytest.mark.parametrize("bad", ["n0", "n4"], ids=["king-first", "late"])
    def test_five_nodes_one_liar(self, bad):
        verdict = self._run(
            5, 1, (1, 1, 0, 0, 1), faulty={bad: RandomLiarDevice(11)}
        )
        assert verdict.ok, verdict.describe()

    def test_nine_nodes_two_faults(self):
        verdict = self._run(
            9,
            2,
            (1, 0, 1, 0, 1, 0, 1, 0, 1),
            faulty={"n7": RandomLiarDevice(1), "n8": SilentDevice()},
        )
        assert verdict.ok, verdict.describe()

    def test_rejects_n_leq_4f(self):
        with pytest.raises(GraphError):
            phase_king_devices(complete_graph(4), 1)
