"""Trace export and run summaries.

Three consumers, one format:

* ``--trace FILE`` writes a JSONL trace: one ``meta`` line, the
  run-scope events in sequence order, then the ``run.*`` metric totals
  sorted by name.  Everything in the file is deterministic — host-scope
  events and wall times are excluded by design — so a campaign traced
  under ``--jobs 1`` and ``--jobs 4`` produces **byte-identical**
  files (golden-tested).
* ``--metrics`` prints a human-readable run summary: event counts by
  kind, the run metrics, then the host-side sections (cache luck, span
  wall times) clearly marked as process-local.
* ``repro profile {summary,events,metrics} FILE`` reads a trace back
  for retrospective inspection — hindsight as a subcommand.
"""

from __future__ import annotations

import json
from typing import Any, Iterator, TextIO

from . import events as ev
from .metrics import MetricsRegistry

TRACE_FORMAT = "repro-trace/1"


def _dump(record: dict[str, Any]) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def trace_lines() -> Iterator[str]:
    """The current telemetry state as JSONL lines (deterministic
    subset: run-scope events + run metrics)."""
    log = ev.get_log()
    registry = ev.get_registry()
    if log is None or registry is None:
        raise ValueError("telemetry was never enabled; nothing to export")
    run_events = log.events(scope="run")
    yield _dump(
        {
            "type": "meta",
            "format": TRACE_FORMAT,
            "events": len(run_events),
            "dropped": log.dropped,
        }
    )
    for event in run_events:
        yield _dump(event.to_jsonable())
    for name, value in registry.run_counters().items():
        yield _dump({"type": "metric", "name": name, "value": value})


def write_trace(path: str) -> int:
    """Write the current telemetry state to ``path`` as JSONL; returns
    the number of run-scope events written."""
    count = 0
    with open(path, "w") as fh:
        for line in trace_lines():
            fh.write(line + "\n")
            if '"type":"event"' in line:
                count += 1
    return count


def read_trace(path_or_file: str | TextIO) -> dict[str, Any]:
    """Parse a JSONL trace into ``{"meta": ..., "events": [...],
    "metrics": {name: value}}``.  Unknown record types are ignored
    (forward compatibility)."""
    if isinstance(path_or_file, str):
        with open(path_or_file) as fh:
            lines = fh.read().splitlines()
    else:
        lines = path_or_file.read().splitlines()
    meta: dict[str, Any] = {}
    events: list[dict[str, Any]] = []
    metrics: dict[str, Any] = {}
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"malformed trace line {lineno}: {exc}") from exc
        kind = record.get("type")
        if kind == "meta":
            meta = record
        elif kind == "event":
            events.append(record)
        elif kind == "metric":
            metrics[record["name"]] = record["value"]
    if meta.get("format") not in (TRACE_FORMAT,):
        raise ValueError(
            f"not a repro trace (format={meta.get('format')!r})"
        )
    return {"meta": meta, "events": events, "metrics": metrics}


# -- summaries --------------------------------------------------------------


def _counts_section(counts: dict[str, int], title: str) -> list[str]:
    lines = [title]
    if not counts:
        lines.append("  (none)")
        return lines
    width = max(len(k) for k in counts)
    for kind in sorted(counts):
        lines.append(f"  {kind:<{width}}  {counts[kind]}")
    return lines


def render_live_summary() -> str:
    """Summarize the live telemetry state: run section first, then the
    host-side (process-local, non-deterministic) sections."""
    log = ev.get_log()
    registry = ev.get_registry()
    tracer = ev.get_tracer()
    if log is None or registry is None:
        return "telemetry was never enabled"
    run_counts = {
        k: v for k, v in log.kind_counts.items() if k not in ev.HOST_KINDS
    }
    host_counts = {
        k: v for k, v in log.kind_counts.items() if k in ev.HOST_KINDS
    }
    lines = [
        "== telemetry summary ==",
        f"events: {log.seq} run + {log.host_seq} host recorded"
        + (f" ({log.dropped} dropped from the ring)" if log.dropped else ""),
    ]
    lines += _counts_section(run_counts, "run events by kind:")
    run_metrics = registry.run_counters()
    derived = {
        k: v
        for k, v in run_metrics.items()
        if not k.startswith("run.events.")
    }
    if derived:
        lines += _counts_section(
            {k: int(v) for k, v in derived.items()}, "run metrics:"
        )
    host = registry.snapshot(scope="host")
    if host_counts or host["gauges"]:
        lines.append("-- host (process-local, not part of the trace) --")
        if host_counts:
            lines += _counts_section(host_counts, "host events by kind:")
        if host["gauges"]:
            lines += _counts_section(
                {k: int(v) for k, v in host["gauges"].items()},
                "host gauges:",
            )
    if tracer is not None and tracer.aggregates:
        lines.append("-- spans (wall time, this process) --")
        lines.append(tracer.render())
    return "\n".join(lines)


def summarize_trace(path: str) -> str:
    """The ``repro profile summary`` view of a recorded trace."""
    trace = read_trace(path)
    events = trace["events"]
    counts: dict[str, int] = {}
    for event in events:
        counts[event["kind"]] = counts.get(event["kind"], 0) + 1
    meta = trace["meta"]
    lines = [
        f"trace: {path}",
        f"format: {meta.get('format')}; {meta.get('events', len(events))} "
        f"events ({meta.get('dropped', 0)} dropped)",
    ]
    lines += _counts_section(counts, "events by kind:")
    derived = {
        k: int(v)
        for k, v in sorted(trace["metrics"].items())
        if not k.startswith("run.events.")
    }
    if derived:
        lines += _counts_section(derived, "run metrics:")
    spans = [e for e in events if e["kind"] == ev.SPAN_START]
    if spans:
        span_counts: dict[str, int] = {}
        for s in spans:
            span_counts[s["name"]] = span_counts.get(s["name"], 0) + 1
        lines += _counts_section(span_counts, "spans by name:")
    return "\n".join(lines)


def format_events(
    path: str, kind: str | None = None, limit: int = 40, offset: int = 0
) -> str:
    """The ``repro profile events`` view: a filtered window of the
    event timeline."""
    trace = read_trace(path)
    events = trace["events"]
    if kind is not None:
        events = [e for e in events if e["kind"] == kind]
    window = events[offset : offset + limit] if limit else events[offset:]
    lines = []
    for event in window:
        fields = {
            k: v
            for k, v in sorted(event.items())
            if k not in ("type", "seq", "kind")
        }
        rendered = " ".join(f"{k}={v!r}" for k, v in fields.items())
        lines.append(f"#{event['seq']} {event['kind']} {rendered}".rstrip())
    shown = len(window)
    lines.append(
        f"({shown} of {len(events)} events"
        + (f" of kind {kind!r}" if kind else "")
        + ")"
    )
    return "\n".join(lines)


def format_metrics(path: str) -> str:
    """The ``repro profile metrics`` view: the trace's metric totals."""
    trace = read_trace(path)
    metrics = trace["metrics"]
    if not metrics:
        return "no metrics in trace"
    width = max(len(k) for k in metrics)
    return "\n".join(
        f"{name:<{width}}  {metrics[name]}" for name in sorted(metrics)
    )


def registry_from_trace(path: str) -> MetricsRegistry:
    """Rebuild a registry holding the trace's recorded metric totals."""
    registry = MetricsRegistry()
    for name, value in read_trace(path)["metrics"].items():
        registry.inc(name, value)
    return registry


__all__ = [
    "TRACE_FORMAT",
    "format_events",
    "format_metrics",
    "read_trace",
    "registry_from_trace",
    "render_live_summary",
    "summarize_trace",
    "trace_lines",
    "write_trace",
]
