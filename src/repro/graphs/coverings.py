"""Graph coverings (Section 2 of FLM 1985).

A graph ``S`` *covers* ``G`` when there is a map ``phi`` from nodes of
``S`` to nodes of ``G`` preserving "neighbors": ``phi`` restricted to
the neighbors of any node ``u`` of ``S`` is a bijection onto the
neighbors of ``phi(u)``.  Under such a map ``S`` looks locally like
``G`` — the lever every proof in the paper pulls.

This module provides:

* :class:`CoveringMap` — a verified covering with fiber lookups;
* the paper's concrete constructions:
  :func:`hexagon_cover_of_triangle` (Theorem 1 node bound, figure in
  §3.1), :func:`ring_cover_of_triangle` (Theorems 2/4/6/8 figures),
  :func:`node_bound_double_cover` (general ``n <= 3f`` case),
  :func:`connectivity_double_cover` (§3.2, general ``c(G) <= 2f`` case).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from .graph import CommunicationGraph, GraphError, NodeId


class CoveringError(GraphError):
    """Raised when a claimed covering map is not one."""


@dataclass(frozen=True)
class CoveringMap:
    """A verified covering ``phi : nodes(S) -> nodes(G)``.

    Construction validates the neighbor-preservation property and
    raises :class:`CoveringError` otherwise.
    """

    cover: CommunicationGraph
    base: CommunicationGraph
    phi: Mapping[NodeId, NodeId]

    def __post_init__(self) -> None:
        verify_covering(self.cover, self.base, self.phi)

    def __call__(self, node: NodeId) -> NodeId:
        return self.phi[node]

    def fiber(self, base_node: NodeId) -> tuple[NodeId, ...]:
        """All covering nodes mapping to ``base_node``."""
        if base_node not in self.base:
            raise GraphError(f"{base_node!r} not in base graph")
        return tuple(u for u in self.cover.nodes if self.phi[u] == base_node)

    def lift_neighbor(self, cover_node: NodeId, base_neighbor: NodeId) -> NodeId:
        """The unique neighbor of ``cover_node`` mapping to ``base_neighbor``.

        Well-defined exactly because ``phi`` preserves neighbors.
        """
        matches = [
            s
            for s in self.cover.neighbors(cover_node)
            if self.phi[s] == base_neighbor
        ]
        if len(matches) != 1:  # pragma: no cover - excluded by verification
            raise CoveringError(
                f"covering property broken at {cover_node!r}/{base_neighbor!r}"
            )
        return matches[0]

    def is_isomorphism_on(self, cover_nodes: Iterable[NodeId]) -> bool:
        """True if ``phi`` restricted to ``cover_nodes`` is a graph
        isomorphism onto the induced base subgraph.

        The impossibility engines require this of every scenario node
        set: the correct part of the constructed behavior of ``G`` must
        be literally the same wiring as the covering scenario.
        """
        nodes = list(cover_nodes)
        images = [self.phi[u] for u in nodes]
        if len(set(images)) != len(nodes):
            return False
        image_set = set(images)
        for u in nodes:
            mapped = {
                self.phi[v] for v in self.cover.neighbors(u) if v in set(nodes)
            }
            expected = {
                w
                for w in self.base.neighbors(self.phi[u])
                if w in image_set
            }
            if mapped != expected:
                return False
        return True


def verify_covering(
    cover: CommunicationGraph,
    base: CommunicationGraph,
    phi: Mapping[NodeId, NodeId],
) -> None:
    """Check the neighbor-preservation property; raise if violated."""
    for u in cover.nodes:
        if u not in phi:
            raise CoveringError(f"phi undefined at covering node {u!r}")
        if phi[u] not in base:
            raise CoveringError(f"phi({u!r}) = {phi[u]!r} not in base graph")
    for u in cover.nodes:
        images = [phi[v] for v in cover.neighbors(u)]
        expected = base.neighbors(phi[u])
        if len(images) != len(set(images)):
            raise CoveringError(
                f"phi not injective on neighbors of {u!r}: {images!r}"
            )
        if set(images) != set(expected):
            raise CoveringError(
                f"neighbors of {u!r} map to {sorted(map(repr, images))}, "
                f"expected {sorted(map(repr, expected))}"
            )


def is_covering(
    cover: CommunicationGraph,
    base: CommunicationGraph,
    phi: Mapping[NodeId, NodeId],
) -> bool:
    """Boolean form of :func:`verify_covering`."""
    try:
        verify_covering(cover, base, phi)
    except CoveringError:
        return False
    return True


# ---------------------------------------------------------------------------
# The paper's constructions
# ---------------------------------------------------------------------------


def hexagon_cover_of_triangle(
    triangle_graph: CommunicationGraph | None = None,
) -> CoveringMap:
    """The six-node double cover of the triangle from Section 3.1.

    Nodes ``u, v, w, x, y, z`` arranged in a ring, with
    ``phi(u) = phi(x) = a``, ``phi(v) = phi(y) = b``,
    ``phi(w) = phi(z) = c`` — exactly the paper's figure.
    """
    from .builders import triangle

    base = triangle_graph or triangle()
    a, b, c = base.nodes
    ring_nodes = ["u", "v", "w", "x", "y", "z"]
    edges = [
        ("u", "v"),
        ("v", "w"),
        ("w", "x"),
        ("x", "y"),
        ("y", "z"),
        ("z", "u"),
    ]
    cover = CommunicationGraph(ring_nodes, edges)
    phi = {"u": a, "v": b, "w": c, "x": a, "y": b, "z": c}
    return CoveringMap(cover, base, phi)


def ring_cover_of_triangle(
    n_nodes: int, triangle_graph: CommunicationGraph | None = None
) -> CoveringMap:
    """A ring of ``n_nodes`` (a multiple of 3, at least 6) covering the
    triangle: node ``i`` maps to the ``(i mod 3)``-th triangle node.

    This is the covering used for Theorems 2 and 4 (rings of ``4k``
    nodes) and, relabeled, for Theorems 6 and 8 (rings of ``k + 2``
    nodes).
    """
    from .builders import triangle

    if n_nodes < 6 or n_nodes % 3 != 0:
        raise CoveringError("ring cover of triangle needs n >= 6, n % 3 == 0")
    base = triangle_graph or triangle()
    letters = base.nodes
    nodes = [f"s{i}" for i in range(n_nodes)]
    edges = [(nodes[i], nodes[(i + 1) % n_nodes]) for i in range(n_nodes)]
    cover = CommunicationGraph(nodes, edges)
    phi = {nodes[i]: letters[i % 3] for i in range(n_nodes)}
    return CoveringMap(cover, base, phi)


def _copy_name(node: NodeId, copy: int) -> str:
    return f"{node}@{copy}"


@dataclass(frozen=True)
class DoubleCover:
    """A double cover built from two copies of the base graph with a set
    of base edges *crossed* between the copies.

    ``copies[i][v]`` names copy ``i`` of base node ``v``.
    """

    covering: CoveringMap
    copies: tuple[Mapping[NodeId, NodeId], Mapping[NodeId, NodeId]]

    def copy_of(self, base_node: NodeId, copy: int) -> NodeId:
        return self.copies[copy][base_node]


def double_cover(
    base: CommunicationGraph,
    crossed_edges: Iterable[tuple[NodeId, NodeId]],
) -> DoubleCover:
    """Two copies of ``base`` with the given undirected edges re-routed
    across the copies (``u@0 — v@1`` and ``u@1 — v@0`` instead of the
    in-copy edges).  Always a covering of ``base``.
    """
    crossed = {frozenset(e) for e in crossed_edges}
    for pair in crossed:
        u, v = tuple(pair)
        if not base.has_edge(u, v):
            raise CoveringError(f"crossed edge {u!r}-{v!r} not in base graph")
    copy0 = {v: _copy_name(v, 0) for v in base.nodes}
    copy1 = {v: _copy_name(v, 1) for v in base.nodes}
    nodes = [copy0[v] for v in base.nodes] + [copy1[v] for v in base.nodes]
    edges: list[tuple[NodeId, NodeId]] = []
    seen: set[frozenset[NodeId]] = set()
    for u, v in base.edges:
        key = frozenset((u, v))
        if key in seen:
            continue
        seen.add(key)
        if key in crossed:
            edges.append((copy0[u], copy1[v]))
            edges.append((copy1[u], copy0[v]))
        else:
            edges.append((copy0[u], copy0[v]))
            edges.append((copy1[u], copy1[v]))
    cover = CommunicationGraph(nodes, edges)
    phi = {copy0[v]: v for v in base.nodes}
    phi.update({copy1[v]: v for v in base.nodes})
    return DoubleCover(CoveringMap(cover, base, phi), (copy0, copy1))


@dataclass(frozen=True)
class CyclicCover:
    """An ``m``-fold cyclic cover: ``m`` copies of the base graph with
    a set of base edges re-routed from each copy to the next (mod m).

    ``copies[i][v]`` names copy ``i`` of base node ``v``.  The double
    cover is the special case ``m = 2``.
    """

    covering: CoveringMap
    copies: tuple[Mapping[NodeId, NodeId], ...]

    @property
    def fold(self) -> int:
        return len(self.copies)

    def copy_of(self, base_node: NodeId, copy: int) -> NodeId:
        return self.copies[copy % self.fold][base_node]


def cyclic_cover(
    base: CommunicationGraph,
    crossed_edges: Iterable[tuple[NodeId, NodeId]],
    copies: int,
) -> CyclicCover:
    """``copies`` copies of ``base``; each *crossed* edge ``(u, v)``
    becomes ``u@i — v@(i+1)`` instead of in-copy.  Always a covering.

    The orientation matters: crossing ``(u, v)`` sends ``u``'s side
    forward and ``v``'s side backward around the cycle of copies.  The
    timed connectivity engines use this to stretch an inadequate
    graph's cut into a long cycle that information crosses one copy
    per ``δ``.
    """
    if copies < 2:
        raise CoveringError("cyclic covers need at least two copies")
    crossed: dict[frozenset[NodeId], tuple[NodeId, NodeId]] = {}
    for u, v in crossed_edges:
        if not base.has_edge(u, v):
            raise CoveringError(f"crossed edge {u!r}-{v!r} not in base graph")
        crossed[frozenset((u, v))] = (u, v)
    copy_maps = [
        {v: f"{v}@{i}" for v in base.nodes} for i in range(copies)
    ]
    nodes = [copy_maps[i][v] for i in range(copies) for v in base.nodes]
    edges: list[tuple[NodeId, NodeId]] = []
    seen: set[frozenset[NodeId]] = set()
    for u, v in base.edges:
        key = frozenset((u, v))
        if key in seen:
            continue
        seen.add(key)
        if key in crossed:
            forward, _backward = crossed[key]
            if forward != u:
                u, v = v, u
            for i in range(copies):
                edges.append((copy_maps[i][u], copy_maps[(i + 1) % copies][v]))
        else:
            for i in range(copies):
                edges.append((copy_maps[i][u], copy_maps[i][v]))
    cover = CommunicationGraph(nodes, edges)
    phi = {
        copy_maps[i][v]: v for i in range(copies) for v in base.nodes
    }
    return CyclicCover(CoveringMap(cover, base, phi), tuple(copy_maps))


def connectivity_cyclic_cover(
    base: CommunicationGraph,
    cut_b: Iterable[NodeId],
    cut_d: Iterable[NodeId],
    side_a: Iterable[NodeId],
    side_c: Iterable[NodeId],
    copies: int,
) -> CyclicCover:
    """The §3.2 construction stretched to ``copies`` copies: cross every
    edge between ``side_a`` and ``cut_d``.  With ``copies = 2`` this is
    exactly :func:`connectivity_double_cover`'s graph."""
    b, d = set(cut_b), set(cut_d)
    a, c = set(side_a), set(side_c)
    _check_partition(base, (a, b, c, d))
    for u in a:
        for v in base.neighbors(u):
            if v in c:
                raise CoveringError(
                    f"edge {u!r}-{v!r} joins side_a to side_c; the cut "
                    "does not disconnect them"
                )
    crossed = [(u, v) for (u, v) in base.edges if u in a and v in d]
    if not crossed:
        raise CoveringError("no edges between side_a and cut_d")
    return cyclic_cover(base, crossed, copies)


def node_bound_double_cover(
    base: CommunicationGraph,
    part_a: Iterable[NodeId],
    part_b: Iterable[NodeId],
    part_c: Iterable[NodeId],
) -> DoubleCover:
    """The general Theorem 1 node-bound covering (Section 3.1).

    Given a partition of the base nodes into ``a``, ``b``, ``c``, build
    two copies of ``G`` and cross every edge between the ``a`` part and
    the ``c`` part.  For the triangle with singleton parts this is the
    hexagon of the paper's figure.
    """
    a, b, c = set(part_a), set(part_b), set(part_c)
    _check_partition(base, (a, b, c))
    crossed = [
        (u, v)
        for (u, v) in base.edges
        if (u in a and v in c)
    ]
    return double_cover(base, crossed)


def connectivity_double_cover(
    base: CommunicationGraph,
    cut_b: Iterable[NodeId],
    cut_d: Iterable[NodeId],
    side_a: Iterable[NodeId],
    side_c: Iterable[NodeId],
) -> DoubleCover:
    """The general Theorem 1 connectivity covering (Section 3.2).

    ``cut_b`` and ``cut_d`` together disconnect ``side_a`` from
    ``side_c``; the covering takes two copies of ``G`` and crosses every
    edge between ``side_a`` and ``cut_d``.  For the diamond graph with
    singleton sets this is the eight-node ring of the paper's figure.
    """
    b, d = set(cut_b), set(cut_d)
    a, c = set(side_a), set(side_c)
    _check_partition(base, (a, b, c, d))
    for u in a:
        for v in base.neighbors(u):
            if v in c:
                raise CoveringError(
                    f"edge {u!r}-{v!r} joins side_a to side_c; the cut "
                    "does not disconnect them"
                )
    crossed = [(u, v) for (u, v) in base.edges if u in a and v in d]
    if not crossed:
        raise CoveringError(
            "no edges between side_a and cut_d; choose a cut adjacent to "
            "the a side"
        )
    return double_cover(base, crossed)


def _check_partition(
    base: CommunicationGraph, parts: Sequence[set[NodeId]]
) -> None:
    union: set[NodeId] = set()
    for part in parts:
        if not part:
            raise CoveringError("every partition class must be nonempty")
        if part & union:
            raise CoveringError("partition classes must be disjoint")
        union |= part
    if union != set(base.nodes):
        raise CoveringError("partition must exhaust the node set")


def partition_for_node_bound(
    base: CommunicationGraph, max_faults: int
) -> tuple[set[NodeId], set[NodeId], set[NodeId]]:
    """Partition nodes into three classes of size between 1 and ``f``.

    Exists exactly when ``3 <= n <= 3f`` — i.e. when the graph is
    inadequate by node count; raises :class:`CoveringError` otherwise.
    """
    n = len(base)
    f = max_faults
    if n < 3:
        raise CoveringError("graphs are assumed to have at least three nodes")
    if n > 3 * f:
        raise CoveringError(f"n = {n} > 3f = {3 * f}: graph is not inadequate")
    nodes = list(base.nodes)
    size_a = min(f, n - 2)
    size_b = min(f, n - size_a - 1)
    size_c = n - size_a - size_b
    if size_c > f:  # pragma: no cover - impossible when n <= 3f
        raise CoveringError("cannot partition into classes of size <= f")
    return (
        set(nodes[:size_a]),
        set(nodes[size_a : size_a + size_b]),
        set(nodes[size_a + size_b :]),
    )


def cut_partition_for_connectivity(
    base: CommunicationGraph, max_faults: int
) -> tuple[set[NodeId], set[NodeId], set[NodeId], set[NodeId]]:
    """Find ``(side_a, cut_b, side_c, cut_d)`` for the §3.2 covering.

    Requires ``c(G) <= 2f``.  Splits a minimum vertex cut into two
    halves ``b`` and ``d`` of size at most ``f`` each, and the remainder
    into the component side ``a`` (containing a node whose removal of
    the cut separates) and everything else ``c``.

    To build the covering we need at least one edge between ``a`` and
    ``d``; since every cut node has neighbors on both sides of the cut
    (else it would not be needed in a *minimum* cut), we put into ``d``
    at least one cut node adjacent to ``a``.
    """
    from .connectivity import global_min_cut, node_connectivity

    f = max_faults
    kappa = node_connectivity(base)
    if kappa > 2 * f:
        raise CoveringError(
            f"connectivity {kappa} > 2f = {2 * f}: graph is not inadequate"
        )
    if base.is_complete():
        raise CoveringError(
            "complete graph has no vertex cut; a complete graph with "
            "connectivity <= 2f also has n <= 2f+1 <= 3f nodes — use the "
            "node-bound construction instead"
        )
    cut = global_min_cut(base)
    if not cut:
        # Disconnected graph: any single node on one side works as a
        # degenerate "cut" is empty — the caller should special-case
        # this; we refuse because the paper assumes connected graphs.
        raise CoveringError("graph is disconnected; cut construction void")
    remaining = [v for v in base.nodes if v not in cut]
    first = remaining[0]
    component = base.reachable_from(first, removed=cut)
    side_a = set(component)
    side_c = set(remaining) - side_a
    if not side_c:  # pragma: no cover - cannot happen for a true cut
        raise CoveringError("cut does not disconnect the graph")
    cut_list = sorted(cut, key=str)
    # Order the cut so nodes adjacent to side_a land in part d.
    adjacent_to_a = [v for v in cut_list if set(base.neighbors(v)) & side_a]
    not_adjacent = [v for v in cut_list if v not in adjacent_to_a]
    ordered = adjacent_to_a + not_adjacent
    half = (len(ordered) + 1) // 2
    cut_d = set(ordered[:half])
    cut_b = set(ordered[half:])
    if not cut_b:
        # Both halves must be nonempty for the partition.  A cut of size
        # one goes entirely into d; removing one extra node (from the
        # larger side) still disconnects a from c, so borrow it for b.
        if len(cut_d) >= 2:
            mover = next(iter(cut_d - set(adjacent_to_a[:1])))
            cut_d.discard(mover)
            cut_b.add(mover)
        elif len(side_c) >= 2:
            mover = sorted(side_c, key=str)[0]
            side_c.discard(mover)
            cut_b.add(mover)
        elif len(side_a) >= 2:
            # Keep side_a adjacent to cut_d: remove a node that is not
            # the last one adjacent to d, if possible.
            candidates = sorted(side_a, key=str)
            d_adjacent = [
                v for v in candidates if set(base.neighbors(v)) & cut_d
            ]
            mover = next(
                (v for v in candidates if v not in d_adjacent[:1]),
                candidates[0],
            )
            side_a.discard(mover)
            cut_b.add(mover)
        else:  # pragma: no cover - n >= 3 guarantees a side of size >= 2
            raise CoveringError("graph too small to split the cut")
    if len(cut_b) > f or len(cut_d) > f:
        raise CoveringError("could not split the cut into halves of size <= f")
    return side_a, cut_b, side_c, cut_d
