"""Unit tests of the covering-argument machinery itself."""

import pytest

from repro.core import (
    CoveringArgumentError,
    build_base_behavior,
    connectivity_scenarios,
    node_bound_scenarios,
    run_scenario_chain,
    shared_links,
)
from repro.graphs import (
    connectivity_double_cover,
    diamond,
    hexagon_cover_of_triangle,
    node_bound_double_cover,
    triangle,
)
from repro.protocols import MajorityVoteDevice
from repro.runtime.sync import install_in_covering, run


def hexagon_setup():
    g = triangle()
    dc = node_bound_double_cover(g, {"a"}, {"b"}, {"c"})
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    cover_inputs = {dc.copy_of(v, 0): 0 for v in g.nodes}
    cover_inputs.update({dc.copy_of(v, 1): 1 for v in g.nodes})
    cover_system = install_in_covering(dc.covering, devices, cover_inputs)
    return g, dc, devices, cover_system


class TestScenarioSets:
    def test_node_bound_scenarios_shape(self):
        _, dc, _, _ = hexagon_setup()
        sets = node_bound_scenarios(dc, {"a"}, {"b"}, {"c"})
        assert len(sets) == 3
        # Consecutive sets overlap in exactly one covering node.
        assert len(set(sets[0]) & set(sets[1])) == 1
        assert len(set(sets[1]) & set(sets[2])) == 1
        assert not set(sets[0]) & set(sets[2])

    def test_connectivity_scenarios_shape(self):
        from repro.graphs import cut_partition_for_connectivity

        g = diamond()
        side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(g, 1)
        dc = connectivity_double_cover(g, cut_b, cut_d, side_a, side_c)
        sets = connectivity_scenarios(dc, side_a, cut_b, side_c, cut_d)
        assert len(sets) == 3
        assert len(sets[0]) == 3 and len(sets[1]) == 3 and len(sets[2]) == 3


class TestBuildBaseBehavior:
    def test_correct_nodes_match_scenario_images(self):
        g, dc, devices, cover_system = hexagon_setup()
        cover_behavior = run(cover_system, 2)
        scenario = node_bound_scenarios(dc, {"a"}, {"b"}, {"c"})[0]
        constructed = build_base_behavior(
            dc.covering, cover_system, cover_behavior, scenario, devices
        )
        assert constructed.correct_nodes == frozenset({"b", "c"})
        assert constructed.faulty_nodes == frozenset({"a"})
        assert constructed.inputs == {"b": 0, "c": 0}

    def test_behavior_matches_covering_exactly(self):
        g, dc, devices, cover_system = hexagon_setup()
        cover_behavior = run(cover_system, 2)
        scenario = node_bound_scenarios(dc, {"a"}, {"b"}, {"c"})[1]
        constructed = build_base_behavior(
            dc.covering, cover_system, cover_behavior, scenario, devices
        )
        # E2 realizes {c@0, a@1}: decisions equal the covering's.
        assert constructed.behavior.decision("c") == cover_behavior.decision(
            dc.copy_of("c", 0)
        )
        assert constructed.behavior.decision("a") == cover_behavior.decision(
            dc.copy_of("a", 1)
        )

    def test_non_isomorphic_scenario_rejected(self):
        g, dc, devices, cover_system = hexagon_setup()
        cover_behavior = run(cover_system, 2)
        # Two covering nodes of the SAME fiber are not an isomorphic
        # image of any base subgraph.
        with pytest.raises(CoveringArgumentError):
            build_base_behavior(
                dc.covering,
                cover_system,
                cover_behavior,
                [dc.copy_of("a", 0), dc.copy_of("a", 1)],
                devices,
            )

    def test_works_with_plain_covering_map(self):
        """The machinery accepts any CoveringMap, not only the double
        covers — e.g. the handwritten hexagon."""
        cm = hexagon_cover_of_triangle()
        devices = {u: MajorityVoteDevice() for u in cm.base.nodes}
        cover_inputs = {u: 0 for u in ("u", "v", "w")}
        cover_inputs.update({u: 1 for u in ("x", "y", "z")})
        cover_system = install_in_covering(cm, devices, cover_inputs)
        cover_behavior = run(cover_system, 2)
        constructed = build_base_behavior(
            cm, cover_system, cover_behavior, ["v", "w"], devices
        )
        assert constructed.correct_nodes == frozenset({"b", "c"})


class TestChain:
    def test_run_scenario_chain_links(self):
        g, dc, devices, cover_system = hexagon_setup()
        chain = run_scenario_chain(
            dc.covering,
            cover_system,
            devices,
            node_bound_scenarios(dc, {"a"}, {"b"}, {"c"}),
            rounds=2,
        )
        assert [c.label for c in chain.constructed] == ["E1", "E2", "E3"]
        assert [link.node for link in chain.links] == ["c", "a"]

    def test_shared_links_empty_without_overlap(self):
        g, dc, devices, cover_system = hexagon_setup()
        chain = run_scenario_chain(
            dc.covering,
            cover_system,
            devices,
            node_bound_scenarios(dc, {"a"}, {"b"}, {"c"}),
            rounds=2,
        )
        links = shared_links(
            dc.covering, chain.constructed[0], chain.constructed[2]
        )
        assert links == []
