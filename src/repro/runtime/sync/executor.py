"""The synchronous executor.

Runs a :class:`~repro.runtime.sync.system.SyncSystem` for a fixed
number of rounds and records the full system behavior.  The executor
is the operational guarantee behind the paper's axioms:

* **Locality** holds because a node's next state is computed from its
  device, its input, its port labels and the messages on its inedges —
  nothing else is ever passed in.
* **Determinism** (one behavior per system) holds because devices are
  required to be pure; :func:`check_determinism` re-runs a system and
  compares traces.

Since PR 2 the executor runs **compiled plans**
(:mod:`repro.runtime.plan`): :func:`run` compiles the system once —
device objects, contexts, valid-port sets, ``(edge, port)`` routing
tables, inbox templates — and :func:`execute_plan` is the tight loop
over those flat structures.  The observable behavior is byte-identical
to the pre-plan interpretive loop (kept as
:func:`repro.testing.reference_sync_run` and differentially tested);
the fault injector still interposes on every per-edge slot between the
send and receive phases, in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Any

from ... import obs
from ...graphs.graph import DirectedEdge, NodeId
from ..faults import SyncFaultInjector
from ..plan import SyncPlan, compile_sync_plan
from .behavior import EdgeBehavior, NodeBehavior, SyncBehavior
from .device import NodeContext, SyncDevice
from .system import SyncSystem


class ExecutionError(RuntimeError):
    """Raised when a device misbehaves structurally (bad port label,
    changed decision, ...)."""


@dataclass
class _NodeRun:
    states: list[Any]
    decision: Any | None = None
    decided_at: int | None = None

    def observe_choice(
        self, device: SyncDevice, ctx: NodeContext, round_index: int, node: NodeId
    ) -> None:
        value = device.choose(ctx, self.states[-1])
        if value is None:
            return
        if self.decision is None:
            self.decision = value
            self.decided_at = round_index
        elif self.decision != value:
            raise ExecutionError(
                f"device at {node!r} changed its decision from "
                f"{self.decision!r} to {value!r} at round {round_index}"
            )


def execute_plan(
    plan: SyncPlan,
    rounds: int,
    injector: SyncFaultInjector | None = None,
) -> SyncBehavior:
    """Execute a compiled plan for ``rounds`` rounds.

    This is the hot path: everything per-node and per-edge was resolved
    at compile time, so each round is two flat passes over the compiled
    node tuple.  Executing the same plan twice yields equal behaviors
    (plans carry no per-run state).
    """
    if rounds < 0:
        raise ExecutionError("rounds must be non-negative")
    compiled = plan.nodes
    runs: list[_NodeRun] = []
    for cn in compiled:
        state = cn.device.init_state(cn.ctx)
        node_run = _NodeRun(states=[state])
        runs.append(node_run)
        node_run.observe_choice(cn.device, cn.ctx, 0, cn.node)

    edge_messages: dict[DirectedEdge, list[Any]] = {
        edge: [] for edge in plan.edges
    }

    # Telemetry is hoisted to one boolean per call; when off, the only
    # per-round cost below is this flag check (the per-edge loops are
    # untouched).
    obs_on = obs.is_enabled()

    for round_index in range(rounds):
        if obs_on:
            round_t0 = perf_counter()
            obs.emit(obs.ROUND_START, round=round_index)
            trace_mark = (
                len(injector.trace.records) if injector is not None else 0
            )

        # Phase 1: every node emits this round's messages.
        outboxes: dict[DirectedEdge, Any] = {}
        for cn, node_run in zip(compiled, runs):
            out = cn.device.send(cn.ctx, node_run.states[-1], round_index)
            valid_ports = cn.valid_ports
            for label in out:
                if label not in valid_ports:
                    raise ExecutionError(
                        f"device at {cn.node!r} sent on unknown port {label!r}"
                    )
            for edge, label in cn.out_routes:
                message = out.get(label)
                if injector is not None:
                    message = injector.deliver(edge, round_index, message)
                outboxes[edge] = message
                edge_messages[edge].append(message)

        if obs_on:
            # Delivery/injection events are emitted in sorted-edge
            # order, not routing order: compiled routing follows
            # frozenset iteration, which is hash-dependent and so not
            # stable across interpreter processes.
            for edge in sorted(outboxes, key=repr):
                obs.emit(
                    obs.MESSAGE_DELIVERY,
                    round=round_index,
                    src=str(edge[0]),
                    dst=str(edge[1]),
                    empty=outboxes[edge] is None,
                )
            injected = 0
            if injector is not None:
                fresh = injector.trace.records[trace_mark:]
                injected = len(fresh)
                for rec in sorted(
                    fresh, key=lambda r: (repr(r.edge), r.action, r.time)
                ):
                    obs.emit(
                        obs.FAULT_INJECTION,
                        round=round_index,
                        src=str(rec.edge[0]),
                        dst=str(rec.edge[1]),
                        action=rec.action,
                        time=rec.time,
                    )

        # Phase 2: every node consumes its inbox and moves.
        for cn, node_run in zip(compiled, runs):
            inbox = {
                label: outboxes[edge] for label, edge in cn.in_routes
            }
            state = cn.device.transition(
                cn.ctx, node_run.states[-1], round_index, inbox
            )
            node_run.states.append(state)
            node_run.observe_choice(cn.device, cn.ctx, round_index + 1, cn.node)

        if obs_on:
            obs.emit(
                obs.ROUND_END,
                round=round_index,
                messages=len(outboxes),
                injected=injected,
            )
            obs.observe_span("executor.round", perf_counter() - round_t0)

    node_behaviors = {
        cn.node: NodeBehavior(
            states=tuple(r.states),
            decision=r.decision,
            decided_at=r.decided_at,
        )
        for cn, r in zip(compiled, runs)
    }
    edge_behaviors = {
        edge: EdgeBehavior(tuple(msgs)) for edge, msgs in edge_messages.items()
    }
    return SyncBehavior(
        graph=plan.graph,
        rounds=rounds,
        node_behaviors=node_behaviors,
        edge_behaviors=edge_behaviors,
    )


def run(
    system: SyncSystem,
    rounds: int,
    injector: SyncFaultInjector | None = None,
) -> SyncBehavior:
    """Execute ``system`` for ``rounds`` rounds; return its behavior.

    Compiles the system to a :class:`~repro.runtime.plan.SyncPlan`
    (memoized on the system object, so repeated runs compile once) and
    executes it.  With an ``injector`` (see :mod:`repro.runtime.faults`)
    every per-edge message slot is passed through the injector between
    the send and receive phases; edge behaviors then record what the
    channel *delivered*, and the injector's trace records what it did.
    Without one, the code path is the classic reliable-channel
    executor, byte-for-byte.
    """
    return execute_plan(compile_sync_plan(system), rounds, injector)


def check_determinism(system: SyncSystem, rounds: int) -> bool:
    """Run the system twice — through one shared compiled plan — and
    compare traces.

    A ``True`` result is necessary (not sufficient) evidence that the
    devices are pure, i.e. that the system has the single behavior the
    paper's model demands.  Because both runs execute the *same*
    :class:`~repro.runtime.plan.SyncPlan`, this doubles as the plan
    layer's self-check: a plan that accumulated per-run state (or a
    compilation step that consulted mutable device state) would make
    the two executions diverge here.
    """
    plan = compile_sync_plan(system)
    first = execute_plan(plan, rounds)
    second = execute_plan(plan, rounds)
    return (
        dict(first.node_behaviors) == dict(second.node_behaviors)
        and dict(first.edge_behaviors) == dict(second.edge_behaviors)
    )
