"""TOPO — topology design and broadcast substrates.

Practical corollaries of the bounds:

* Harary graphs `H_{2f+1, n}` are the minimum-wiring adequate
  topologies; EIG-over-relay reaches agreement on them while the
  engine refutes one notch below.
* Bracha reliable broadcast realizes the 3f+1 threshold through quorum
  intersection rather than information gathering.
"""

import math

import pytest
from conftest import report

from repro.analysis import format_table
from repro.core import refute_connectivity
from repro.graphs import (
    cheapest_adequate_graph,
    harary_graph,
    node_connectivity,
)
from repro.problems import ByzantineAgreementSpec
from repro.protocols import (
    MajorityVoteDevice,
    reliable_broadcast_devices,
    sparse_agreement_devices,
)
from repro.runtime.sync import RandomLiarDevice, ReplayDevice, make_system, run

SPEC = ByzantineAgreementSpec()


def test_harary_price_list(benchmark):
    def build():
        rows = []
        for f in (1, 2, 3):
            n = 3 * f + 1
            g = cheapest_adequate_graph(n, f)
            rows.append(
                (
                    f,
                    n,
                    node_connectivity(g),
                    len(g.undirected_edges),
                    math.ceil((2 * f + 1) * n / 2),
                )
            )
        return rows

    rows = benchmark(build)
    report(
        "TOPO: minimum wiring for adequacy",
        format_table(
            ("f", "n", "κ achieved", "links", "theoretical min"), rows
        ),
    )
    for _f, _n, kappa, links, optimal in rows:
        assert links == optimal
        assert kappa >= 2 * _f + 1


def test_agreement_on_cheapest_topology(benchmark):
    g = cheapest_adequate_graph(7, 1)

    def once():
        devices, rounds = sparse_agreement_devices(g, 1)
        devices = dict(devices)
        devices[g.nodes[-1]] = RandomLiarDevice(7)
        inputs = {u: i % 2 for i, u in enumerate(g.nodes)}
        behavior = run(make_system(g, devices, inputs), rounds)
        correct = list(g.nodes[:-1])
        return SPEC.check(inputs, behavior.decisions(), correct)

    verdict = benchmark(once)
    assert verdict.ok


def test_one_notch_below_is_refuted(benchmark):
    g = harary_graph(2, 7)  # κ = 2 < 3 = 2f+1
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    witness = benchmark(
        lambda: refute_connectivity(g, devices, 1, rounds=4)
    )
    assert witness.found


@pytest.mark.parametrize("n,f", [(4, 1), (7, 2)])
def test_reliable_broadcast_at_threshold(benchmark, n, f):
    from repro.graphs import complete_graph

    g = complete_graph(n)

    def once():
        devices, rounds = reliable_broadcast_devices(g, "n0", f)
        devices = dict(devices)
        for i in range(f):
            devices[f"n{n - 1 - i}"] = RandomLiarDevice(i)
        inputs = {u: ("V" if u == "n0" else None) for u in g.nodes}
        behavior = run(make_system(g, devices, inputs), rounds)
        return [
            behavior.decision(f"n{i}") for i in range(n - f)
        ]

    accepted = benchmark(once)
    assert set(accepted) == {"V"}


def test_equivocating_sender_consistency(benchmark):
    from repro.graphs import complete_graph

    g = complete_graph(4)

    def once():
        devices, rounds = reliable_broadcast_devices(g, "n0", 1)
        devices = dict(devices)
        devices["n0"] = ReplayDevice(
            {
                "n1": [("SEND", "X")],
                "n2": [("SEND", "Y")],
                "n3": [("SEND", "X")],
            }
        )
        inputs = {u: None for u in g.nodes}
        behavior = run(make_system(g, devices, inputs), rounds)
        return [behavior.decision(f"n{i}") for i in (1, 2, 3)]

    accepted = benchmark(once)
    non_null = {v for v in accepted if v is not None}
    assert len(non_null) <= 1
