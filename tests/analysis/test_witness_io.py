"""Witness serialization round-trips through JSON."""

import json

from repro.analysis.witness_io import save_witness, witness_to_dict
from repro.core import refute_node_bound, refute_weak_agreement
from repro.graphs import triangle
from repro.protocols import ExchangeOnceWeakDevice, MajorityVoteDevice


def sync_witness():
    g = triangle()
    return refute_node_bound(
        g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=3
    )


class TestWitnessToDict:
    def test_structure(self):
        data = witness_to_dict(sync_witness())
        assert data["problem"] == "byzantine-agreement"
        assert data["found"] is True
        assert len(data["behaviors"]) == 3
        labels = [b["label"] for b in data["behaviors"]]
        assert labels == ["E1", "E2", "E3"]
        violated = [b for b in data["behaviors"] if not b["ok"]]
        assert violated and violated[0]["violations"]

    def test_json_safe(self):
        data = witness_to_dict(sync_witness(), include_traces=True)
        text = json.dumps(data)  # must not raise
        assert "message_traces" in text

    def test_timed_witness_serializes(self):
        g = triangle()
        witness = refute_weak_agreement(
            {u: (lambda: ExchangeOnceWeakDevice(2.0)) for u in g.nodes},
            delta=1.0,
            decision_deadline=3.0,
        )
        data = witness_to_dict(witness)
        json.dumps(data)
        assert data["extra"]["k"] == witness.extra["k"]

    def test_links_present(self):
        data = witness_to_dict(sync_witness())
        assert data["links"][0]["between"] == ["E1", "E2"]


class TestSaveWitness:
    def test_writes_file(self, tmp_path):
        path = save_witness(sync_witness(), tmp_path / "w.json")
        loaded = json.loads(path.read_text())
        assert loaded["max_faults"] == 1
        assert loaded["graph"]["nodes"] == ["a", "b", "c"]
