"""The synchronous executor.

Runs a :class:`~repro.runtime.sync.system.SyncSystem` for a fixed
number of rounds and records the full system behavior.  The executor
is the operational guarantee behind the paper's axioms:

* **Locality** holds because a node's next state is computed from its
  device, its input, its port labels and the messages on its inedges —
  nothing else is ever passed in.
* **Determinism** (one behavior per system) holds because devices are
  required to be pure; :func:`check_determinism` re-runs a system and
  compares traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ...graphs.graph import DirectedEdge, NodeId
from ..faults import SyncFaultInjector
from .behavior import EdgeBehavior, NodeBehavior, SyncBehavior
from .device import NodeContext, SyncDevice
from .system import SyncSystem


class ExecutionError(RuntimeError):
    """Raised when a device misbehaves structurally (bad port label,
    changed decision, ...)."""


@dataclass
class _NodeRun:
    states: list[Any]
    decision: Any | None = None
    decided_at: int | None = None

    def observe_choice(
        self, device: SyncDevice, ctx: NodeContext, round_index: int, node: NodeId
    ) -> None:
        value = device.choose(ctx, self.states[-1])
        if value is None:
            return
        if self.decision is None:
            self.decision = value
            self.decided_at = round_index
        elif self.decision != value:
            raise ExecutionError(
                f"device at {node!r} changed its decision from "
                f"{self.decision!r} to {value!r} at round {round_index}"
            )


def run(
    system: SyncSystem,
    rounds: int,
    injector: SyncFaultInjector | None = None,
) -> SyncBehavior:
    """Execute ``system`` for ``rounds`` rounds; return its behavior.

    With an ``injector`` (see :mod:`repro.runtime.faults`) every
    per-edge message slot is passed through the injector between the
    send and receive phases; edge behaviors then record what the
    channel *delivered*, and the injector's trace records what it did.
    Without one, the code path is the classic reliable-channel
    executor, byte-for-byte.
    """
    if rounds < 0:
        raise ExecutionError("rounds must be non-negative")
    graph = system.graph
    contexts = {u: system.context(u) for u in graph.nodes}
    runs: dict[NodeId, _NodeRun] = {}
    for u in graph.nodes:
        device = system.device(u)
        state = device.init_state(contexts[u])
        node_run = _NodeRun(states=[state])
        runs[u] = node_run
        node_run.observe_choice(device, contexts[u], 0, u)

    edge_messages: dict[DirectedEdge, list[Any]] = {
        edge: [] for edge in graph.edges
    }

    for round_index in range(rounds):
        # Phase 1: every node emits this round's messages.
        outboxes: dict[DirectedEdge, Any] = {}
        for u in graph.nodes:
            device = system.device(u)
            ctx = contexts[u]
            out = device.send(ctx, runs[u].states[-1], round_index)
            valid_ports = set(ctx.ports)
            for label in out:
                if label not in valid_ports:
                    raise ExecutionError(
                        f"device at {u!r} sent on unknown port {label!r}"
                    )
            for neighbor in graph.neighbors(u):
                label = system.port(u, neighbor)
                message = out.get(label)
                if injector is not None:
                    message = injector.deliver(
                        (u, neighbor), round_index, message
                    )
                outboxes[(u, neighbor)] = message
                edge_messages[(u, neighbor)].append(message)

        # Phase 2: every node consumes its inbox and moves.
        for u in graph.nodes:
            device = system.device(u)
            ctx = contexts[u]
            inbox = {
                system.port(u, neighbor): outboxes[(neighbor, u)]
                for neighbor in graph.in_neighbors(u)
            }
            state = device.transition(
                ctx, runs[u].states[-1], round_index, inbox
            )
            runs[u].states.append(state)
            runs[u].observe_choice(device, ctx, round_index + 1, u)

    node_behaviors = {
        u: NodeBehavior(
            states=tuple(r.states),
            decision=r.decision,
            decided_at=r.decided_at,
        )
        for u, r in runs.items()
    }
    edge_behaviors = {
        edge: EdgeBehavior(tuple(msgs)) for edge, msgs in edge_messages.items()
    }
    return SyncBehavior(
        graph=graph,
        rounds=rounds,
        node_behaviors=node_behaviors,
        edge_behaviors=edge_behaviors,
    )


def check_determinism(system: SyncSystem, rounds: int) -> bool:
    """Run the system twice and compare traces.

    A ``True`` result is necessary (not sufficient) evidence that the
    devices are pure, i.e. that the system has the single behavior the
    paper's model demands.
    """
    first = run(system, rounds)
    second = run(system, rounds)
    return (
        dict(first.node_behaviors) == dict(second.node_behaviors)
        and dict(first.edge_behaviors) == dict(second.edge_behaviors)
    )
