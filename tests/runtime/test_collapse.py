"""Footnote 3's quotient construction: collapsing subsystems into
supernodes preserves behaviors exactly."""

import pytest

from repro.graphs import GraphError, complete_graph
from repro.protocols import MajorityVoteDevice, eig_devices
from repro.runtime.sync import make_system, run
from repro.runtime.sync.collapse import (
    GroupDevice,
    collapse_system,
    verify_collapse,
)


def build_k6_system():
    g = complete_graph(6)
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    inputs = {u: (1 if i % 2 else 0) for i, u in enumerate(g.nodes)}
    return make_system(g, devices, inputs)


PARTITION = [("n0", "n1"), ("n2", "n3"), ("n4", "n5")]


class TestCollapse:
    def test_quotient_graph_is_triangle_shaped(self):
        system = build_k6_system()
        quotient, member_of = collapse_system(system, PARTITION)
        assert len(quotient.graph) == 3
        assert quotient.graph.is_complete()
        assert member_of["n0"] == member_of["n1"] == "group0"

    def test_projection_is_exact(self):
        """The paper's claim: behaviors of S' are the subsystem
        behaviors of S."""
        system = build_k6_system()
        quotient, _ = collapse_system(system, PARTITION)
        original = run(system, 3)
        collapsed = run(quotient, 3)
        order = {
            f"group{i}": list(part) for i, part in enumerate(PARTITION)
        }
        assert verify_collapse(original, collapsed, order)

    def test_member_decisions_recoverable(self):
        system = build_k6_system()
        quotient, _ = collapse_system(system, PARTITION)
        original = run(system, 2)
        collapsed = run(quotient, 2)
        device = quotient.device("group0")
        assert isinstance(device, GroupDevice)
        final = collapsed.node("group0").states[-1]
        for member in ("n0", "n1"):
            assert device.member_decision(final, member) == (
                original.decision(member)
            )

    def test_group_choose_aggregates(self):
        system = build_k6_system()
        quotient, _ = collapse_system(system, PARTITION)
        collapsed = run(quotient, 2)
        decision = collapsed.decision("group0")
        assert decision is not None
        assert dict(decision).keys() == {"n0", "n1"}

    def test_eig_survives_collapse(self):
        """Even a protocol as stateful as EIG projects exactly."""
        g = complete_graph(6)
        system = make_system(
            g,
            eig_devices(g, 1),
            {u: i % 2 for i, u in enumerate(g.nodes)},
        )
        quotient, _ = collapse_system(system, PARTITION)
        original = run(system, 2)
        collapsed = run(quotient, 2)
        order = {
            f"group{i}": list(part) for i, part in enumerate(PARTITION)
        }
        assert verify_collapse(original, collapsed, order)

    def test_bad_partition_rejected(self):
        system = build_k6_system()
        with pytest.raises(GraphError):
            collapse_system(system, [("n0",), ("n1",)])
        with pytest.raises(GraphError):
            collapse_system(
                system, [("n0", "n1"), ("n1", "n2"), ("n3", "n4", "n5")]
            )


class TestFootnote3Reduction:
    """The alternative proof of the general node bound: if agreement
    worked on K6 with f = 2, collapsing pairs would give agreement on
    the triangle with f = 1 — and the triangle engine refutes THAT."""

    def test_collapsed_devices_are_refutable_on_the_triangle(self):
        from repro.core import refute_node_bound
        from repro.graphs import triangle

        k6 = complete_graph(6)
        base_system = make_system(
            k6,
            {u: MajorityVoteDevice() for u in k6.nodes},
            {u: 0 for u in k6.nodes},
        )
        quotient, _ = collapse_system(base_system, PARTITION)
        # Rename the quotient supernodes onto the triangle and hand the
        # GroupDevices to the f = 1 engine as candidate devices.  The
        # group input is a pair of member inputs; use pairs everywhere.
        from repro.runtime.sync.collapse import PortRenamedDevice

        tri = triangle()
        names = {"group0": "a", "group1": "b", "group2": "c"}
        devices = {}
        for group, node in names.items():
            rename = {
                other: names[other]
                for other in quotient.graph.neighbors(group)
            }
            devices[node] = PortRenamedDevice(
                quotient.device(group), rename
            )
        witness = refute_node_bound(
            tri,
            devices,
            max_faults=1,
            rounds=3,
            inputs=((0, 0), (1, 1)),
        )
        assert witness.found
