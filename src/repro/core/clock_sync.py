"""Theorem 8 and Corollaries 12–15, executable: nontrivial clock
synchronization is impossible in inadequate graphs under the Scaling
axiom.

The construction (Section 7): with ``h = p⁻¹ ∘ q`` (so ``h(t) >= t``),
build a ring of ``k + 2`` nodes covering the triangle, node ``i``
running its device on hardware clock ``q ∘ h⁻ⁱ`` — each node slow
relative to one neighbor and fast relative to the other.  For each
``0 <= i <= k`` the two-node scenario ``S_i`` *scaled by* ``hⁱ`` has
clocks exactly ``(q, p)``, so by the Fault and Scaling axioms it is a
correct behavior of the triangle (Lemma 9) and must satisfy the
agreement and validity conditions.  Evaluated at the common real time
``t'' = h^k(t')`` those conditions telescope (Lemmas 10–11):

    ν_i  :=  C_i(t'') - l(D_i(t''))   satisfies   ν_1 >= 0,
    ν_{i+1} >= ν_i + α,

forcing ``C_{k+1}(t'') >= l(p(t')) + k·α``, while validity in the
scaled ``S_k`` caps it at ``u(q(t'))``.  Choosing ``k`` with
``l(p(t')) + k·α > u(q(t'))`` makes the conditions unsatisfiable, so
for any concrete devices at least one scaled scenario violates its
condition — the witness.

The engine also *executes* Lemma 9 for selected scenarios: it re-runs
the triangle with clocks ``(q, p)``, the third node replaying the
time-scaled recorded border, and verifies the correct nodes' event
traces and logical readings reproduce the covering's (scaled) —
checking the Scaling axiom rather than assuming it.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping
from dataclasses import dataclass
from typing import Any

from ..graphs.builders import triangle
from ..graphs.coverings import ring_cover_of_triangle
from ..graphs.graph import CommunicationGraph, NodeId
from ..problems.clock_sync import ClockSyncSpec
from ..problems.spec import SpecVerdict, Violation
from ..runtime.timed.clocks import (
    ClockFunction,
    compose,
    drift_map,
    verify_clock_order,
)
from ..runtime.timed.device import DeviceFactory
from ..runtime.timed.executor import run_timed
from ..runtime.timed.system import install_in_covering_timed
from .timed_argument import build_base_behavior_timed
from .witness import CheckedBehavior, ImpossibilityWitness

Envelope = Callable[[float], float]


@dataclass(frozen=True)
class _ScenarioStub:
    """Checked-scenario record for the witness (the full construction
    is only materialized for the indices in ``verify_indices``)."""

    label: str
    scenario_nodes: tuple[NodeId, ...]
    correct_nodes: frozenset[NodeId]
    faulty_nodes: frozenset[NodeId]


@dataclass(frozen=True)
class SynchronizationSetting:
    """The Section 7 problem instance: correct clocks run at ``p`` or
    ``q``; logical clocks must stay within envelopes ``[l, u]`` and
    agree within ``l(q(t)) - l(p(t)) - α`` from ``t'`` on."""

    p: ClockFunction
    q: ClockFunction
    lower: Envelope
    upper: Envelope
    alpha: float
    t_prime: float

    def spec(self) -> ClockSyncSpec:
        return ClockSyncSpec(
            p=self.p,
            q=self.q,
            lower=self.lower,
            upper=self.upper,
            alpha=self.alpha,
            t_prime=self.t_prime,
        )


def choose_k(setting: SynchronizationSetting) -> int:
    """The smallest ``k > 2`` with ``l(p(t')) + k·α > u(q(t'))`` and
    ``k + 2`` divisible by three."""
    gap = setting.upper(setting.q(setting.t_prime)) - setting.lower(
        setting.p(setting.t_prime)
    )
    k = max(3, int(gap / setting.alpha) + 1)
    while (k + 2) % 3 != 0 or setting.lower(
        setting.p(setting.t_prime)
    ) + k * setting.alpha <= setting.upper(setting.q(setting.t_prime)):
        k += 1
    return k


def refute_clock_sync(
    factories: Mapping[NodeId, DeviceFactory],
    setting: SynchronizationSetting,
    delay: float = 0.125,
    base: CommunicationGraph | None = None,
    verify_indices: tuple[int, ...] = (0, 1),
    require_violation: bool = True,
    tolerance: float = 1e-7,
) -> ImpossibilityWitness:
    """Refute claimed synchronization devices for the triangle.

    ``delay`` is the message delay in *sender-clock units* (the
    clock-mode delay policy keeps the Scaling axiom intact).
    ``verify_indices`` selects which scaled scenarios additionally get
    the full Lemma 9 reconstruction-and-comparison treatment.
    """
    base = base or triangle()
    verify_clock_order(setting.p, setting.q)
    h = drift_map(setting.p, setting.q)
    k = choose_k(setting)
    covering = ring_cover_of_triangle(k + 2, base)
    ring_nodes = covering.cover.nodes

    clocks = {
        node: compose(setting.q, h.iterate(-i))
        for i, node in enumerate(ring_nodes)
    }
    cover_inputs = {node: None for node in ring_nodes}
    cover_system = install_in_covering_timed(
        covering,
        factories,
        cover_inputs,
        delay=delay,
        delay_mode="clock",
        cover_clocks=clocks,
    )
    t_double_prime = h.iterate(k)(setting.t_prime)
    horizon = t_double_prime * 1.05 + 1.0
    cover_behavior = run_timed(cover_system, horizon)

    spec = setting.spec()
    logical = {
        node: cover_behavior.node(node).logical_value for node in ring_nodes
    }
    hardware_at = {
        node: clocks[node](t_double_prime) for node in ring_nodes
    }

    checked: list[CheckedBehavior] = []
    nu_trace: list[dict[str, Any]] = []
    for i in range(k + 1):
        lo, hi = ring_nodes[i], ring_nodes[i + 1]
        violations: list[Violation] = []
        # Agreement in the scaled scenario S_i · hⁱ at scaled time
        # h⁻ⁱ(t'') >= t', expressed at unscaled time t'':
        # the bound telescopes to l(D_i(t'')) - l(D_{i+1}(t'')) - α.
        scale = max(1.0, abs(hardware_at[lo]), abs(hardware_at[hi]))
        tol = tolerance * scale
        bound = (
            setting.lower(hardware_at[lo])
            - setting.lower(hardware_at[hi])
            - setting.alpha
        )
        skew = abs(logical[lo](t_double_prime) - logical[hi](t_double_prime))
        if skew > bound + tol:
            violations.append(
                Violation(
                    "agreement",
                    f"|C_{lo} - C_{hi}| = {skew:.6g} > "
                    f"l(q)-l(p)-α = {bound:.6g} at t'' = "
                    f"{t_double_prime:.6g} (scaled scenario S_{i}·h^{i})",
                    (covering(lo), covering(hi)),
                )
            )
        # Validity in the same scaled scenario at the same instant:
        # l(p(s)) <= C <= u(q(s)) with p(s) = D_{i+1}(t''),
        # q(s) = D_i(t'').
        low = setting.lower(hardware_at[hi])
        high = setting.upper(hardware_at[lo])
        for node in (lo, hi):
            value = logical[node](t_double_prime)
            if value < low - tol or value > high + tol:
                violations.append(
                    Violation(
                        "validity",
                        f"C_{node}(t'') = {value:.6g} outside the scaled "
                        f"envelope [{low:.6g}, {high:.6g}]",
                        (covering(node),),
                    )
                )
        correct = frozenset({covering(lo), covering(hi)})
        checked.append(
            CheckedBehavior(
                constructed=_ScenarioStub(
                    label=f"S{i}",
                    scenario_nodes=(lo, hi),
                    correct_nodes=correct,
                    faulty_nodes=frozenset(base.nodes) - correct,
                ),
                verdict=SpecVerdict(tuple(violations)),
            )
        )
        nu_trace.append(
            {
                "i": i,
                "node": lo,
                "logical": logical[lo](t_double_prime),
                "nu": logical[lo](t_double_prime)
                - setting.lower(hardware_at[lo]),
                "agreement_bound": bound,
                "skew": skew,
            }
        )
    last = ring_nodes[k + 1]
    nu_trace.append(
        {
            "i": k + 1,
            "node": last,
            "logical": logical[last](t_double_prime),
            "nu": logical[last](t_double_prime)
            - setting.lower(hardware_at[last]),
            "agreement_bound": None,
            "skew": None,
        }
    )

    # The operational Lemma 9 reconstruction re-runs the triangle from
    # real time 0, so it applies exactly to scenarios whose scaling map
    # fixes 0 (always true for i = 0; true for all i when the clocks
    # are multiplicative, e.g. q = rt).  For additive clocks
    # (q = t + c) the scaled behavior starts before time 0 and only the
    # unscaled scenario is reconstructed — the numeric checks above
    # still cover every scenario.
    scaling_checks = []
    skipped_scaling: list[int] = []
    for i in verify_indices:
        if not 0 <= i <= k:
            continue
        if abs(h.iterate(-i)(0.0)) > 1e-9:
            skipped_scaling.append(i)
            continue
        scaling_checks.append(
            _verify_scaled_scenario(
                covering, cover_system, cover_behavior, factories, setting,
                h, i,
            )
        )

    witness = ImpossibilityWitness(
        problem="clock-synchronization",
        bound=f"3f+1 nodes (Scaling axiom; k = {k})",
        graph=base,
        max_faults=1,
        checked=tuple(checked),
        extra={
            "k": k,
            "t_prime": setting.t_prime,
            "t_double_prime": t_double_prime,
            "nu_trace": nu_trace,
            "upper_cap": setting.upper(setting.q(setting.t_prime)),
            "lower_base": setting.lower(setting.p(setting.t_prime)),
            "scaling_checks": scaling_checks,
            "scaling_checks_skipped": skipped_scaling,
        },
    )
    if require_violation:
        witness.require_found()
    return witness


def _verify_scaled_scenario(
    covering,
    cover_system,
    cover_behavior,
    factories,
    setting: SynchronizationSetting,
    h: ClockFunction,
    index: int,
) -> dict[str, Any]:
    """Execute Lemma 9 for one scenario: reconstruct ``S_i · hⁱ`` as a
    real run of the triangle with clocks ``(q, p)`` and a time-scaled
    replaying fault, and compare behaviors and logical readings."""
    ring_nodes = covering.cover.nodes
    lo, hi = ring_nodes[index], ring_nodes[index + 1]
    h_back = h.iterate(-index)
    base_clocks = {covering(lo): setting.q, covering(hi): setting.p}
    constructed = build_base_behavior_timed(
        covering,
        cover_system,
        cover_behavior,
        [lo, hi],
        factories,
        label=f"S{index}-scaled",
        time_map=h_back,
        base_clocks=base_clocks,
        time_tolerance=1e-6,
    )
    # Logical readings must agree at sampled scaled times.
    samples = []
    s_t = h_back(cover_behavior.horizon)
    for fraction in (0.25, 0.5, 0.9):
        s = setting.t_prime + fraction * max(s_t - setting.t_prime, 0.0)
        for ring_node in (lo, hi):
            base_node = covering(ring_node)
            original = cover_behavior.node(ring_node).logical_value(
                h.iterate(index)(s)
            )
            reconstructed = constructed.behavior.node(
                base_node
            ).logical_value(s)
            samples.append(
                {
                    "scaled_time": s,
                    "node": base_node,
                    "covering_logical": original,
                    "reconstructed_logical": reconstructed,
                    "match": abs(original - reconstructed)
                    <= 1e-6 * max(1.0, abs(original)),
                }
            )
    return {
        "index": index,
        "correct": sorted(map(str, constructed.correct_nodes)),
        "samples": samples,
        "all_match": all(s["match"] for s in samples),
    }
