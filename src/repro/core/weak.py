"""Theorem 2, executable: weak agreement is impossible in inadequate
graphs under the Bounded-Delay Locality axiom.

The construction (Section 4): measure ``t'``, the decision deadline of
the candidate devices in the two all-correct, all-same-input behaviors
of the triangle; pick ``k > t'/δ`` (a multiple of 3); build the ring of
``4k`` nodes covering the triangle with one half input 1 and the other
half input 0; run it once.

* **Lemma 3** (verified, not assumed): nodes at ring-distance ``>= k``
  from the opposite input region behave identically to the all-0 (or
  all-1) triangle run through time ``k·δ > t'`` — so the middle of each
  half decides its own half's value.
* Every adjacent pair of ring nodes is, by the Fault axiom, a pair of
  correct nodes in a correct behavior of the triangle, so agreement
  must hold around the whole ring — yet the two halves decided
  differently.  The engine finds the boundary pair(s) whose correct
  behavior of ``G`` violates agreement (or the choice condition).
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from dataclasses import dataclass

from ..graphs.builders import triangle
from ..graphs.coverings import ring_cover_of_triangle
from ..graphs.graph import CommunicationGraph, NodeId
from ..problems.byzantine import WeakAgreementSpec
from ..problems.spec import SpecVerdict, Violation
from ..runtime.timed.device import DeviceFactory
from ..runtime.timed.executor import run_timed
from ..runtime.timed.system import install_in_covering_timed, make_timed_system
from .timed_argument import TimedArgumentError, build_base_behavior_timed
from .witness import CheckedBehavior, ImpossibilityWitness

_SPEC = WeakAgreementSpec()


@dataclass(frozen=True)
class _AllCorrectStub:
    """Stands in for a constructed behavior when the violation already
    appears in an all-correct run (no covering needed)."""

    label: str
    scenario_nodes: tuple[NodeId, ...]
    correct_nodes: frozenset[NodeId]
    faulty_nodes: frozenset[NodeId] = frozenset()


def ring_parameter(t_prime: float, delta: float) -> int:
    """The paper's ``k``: a multiple of 3 strictly exceeding ``t'/δ``."""
    k = max(3, math.floor(t_prime / delta) + 1)
    while k % 3 != 0:
        k += 1
    return k


def refute_weak_agreement(
    factories: Mapping[NodeId, DeviceFactory],
    delta: float,
    decision_deadline: float,
    base: CommunicationGraph | None = None,
    horizon_slack: float = 2.0,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Refute claimed weak-agreement devices for the triangle.

    Parameters
    ----------
    factories:
        Device factory per triangle node.
    delta:
        The minimum (here: exact) message delay — the Bounded-Delay
        Locality constant.
    decision_deadline:
        The claimed bound on decision time in all-correct, same-input
        behaviors; if the devices miss it there, that is already a
        choice-condition violation and the witness is immediate.
    """
    base = base or triangle()
    # Step 1: the two all-correct reference behaviors.
    run0 = run_timed(
        make_timed_system(
            base, factories, {u: 0 for u in base.nodes}, delay=delta
        ),
        horizon=decision_deadline,
    )
    run1 = run_timed(
        make_timed_system(
            base, factories, {u: 1 for u in base.nodes}, delay=delta
        ),
        horizon=decision_deadline,
    )
    for label, reference, value in (("all-0", run0, 0), ("all-1", run1, 1)):
        verdict = _SPEC.check(
            {u: value for u in base.nodes},
            reference.decisions(),
            base.nodes,
            all_correct=True,
        )
        if not verdict.ok:
            return ImpossibilityWitness(
                problem="weak-agreement",
                bound="3f+1 nodes",
                graph=base,
                max_faults=1,
                checked=(
                    CheckedBehavior(
                        constructed=_AllCorrectStub(
                            label=label,
                            scenario_nodes=tuple(base.nodes),
                            correct_nodes=frozenset(base.nodes),
                        ),
                        verdict=verdict,
                    ),
                ),
                extra={"stage": "all-correct reference runs"},
            )

    t_prime = max(run0.max_decision_time(), run1.max_decision_time())
    k = ring_parameter(t_prime, delta)
    ring_size = 4 * k
    covering = ring_cover_of_triangle(ring_size, base)
    ring_nodes = covering.cover.nodes
    cover_inputs = {
        node: 1 if index < 2 * k else 0
        for index, node in enumerate(ring_nodes)
    }
    cover_system = install_in_covering_timed(
        covering, factories, cover_inputs, delay=delta
    )
    horizon = max(k * delta, t_prime) * horizon_slack
    cover_behavior = run_timed(cover_system, horizon)

    # Step 2: Lemma 3, checked operationally — the middles of the two
    # halves are prefix-identical to the all-correct references through
    # t' < k·δ, hence decide their half's value.
    lemma3 = []
    for index, reference, expected in (
        (k - 1, run1, 1),
        (k, run1, 1),
        (3 * k - 1, run0, 0),
        (3 * k, run0, 0),
    ):
        node = ring_nodes[index]
        same = cover_behavior.node(node).prefix_equal(
            reference.node(covering(node)), through=t_prime
        )
        if not same:
            raise TimedArgumentError(
                f"Lemma 3 failed at ring node {node!r}: behavior differs "
                "from the all-correct reference before information could "
                "arrive — candidate devices are nondeterministic"
            )
        lemma3.append(
            {
                "node": node,
                "distance_to_other_half": k,
                "identical_through": t_prime,
                "decides": cover_behavior.node(node).decision,
                "expected": expected,
            }
        )

    # Step 3: every adjacent pair is a correct behavior of G.
    checked: list[CheckedBehavior] = []
    for i in range(ring_size):
        pair = [ring_nodes[i], ring_nodes[(i + 1) % ring_size]]
        constructed = build_base_behavior_timed(
            covering,
            cover_system,
            cover_behavior,
            pair,
            factories,
            label=f"E{i}",
        )
        verdict = _SPEC.check(
            constructed.inputs,
            constructed.decisions(),
            constructed.correct_nodes,
            all_correct=False,
        )
        checked.append(CheckedBehavior(constructed=constructed, verdict=verdict))

    witness = ImpossibilityWitness(
        problem="weak-agreement",
        bound=f"3f+1 nodes (Bounded-Delay Locality, δ={delta})",
        graph=base,
        max_faults=1,
        checked=tuple(checked),
        extra={
            "t_prime": t_prime,
            "k": k,
            "ring_size": ring_size,
            "lemma3": lemma3,
        },
    )
    if require_violation:
        witness.require_found()
    return witness


def agreement_frontier(witness: ImpossibilityWitness) -> list[str]:
    """The labels of the boundary behaviors where agreement breaks —
    the ring positions where 1-deciders meet 0-deciders."""
    return [
        checked.label
        for checked in witness.violated
        if any(
            v.condition == "agreement" for v in checked.verdict.violations
        )
    ]


__all__ = [
    "agreement_frontier",
    "refute_weak_agreement",
    "ring_parameter",
    "SpecVerdict",
    "Violation",
]
