#!/usr/bin/env python3
"""The adversary lab: attacking protocols from both directions.

The paper's engines give *constructive* impossibility — they build the
adversary.  On the possible side, we can only search: this example
throws hundreds of randomized Byzantine strategies at protocols and
reads the results next to the theory.

  1. Randomized search cannot break EIG at n = 3f + 1 (theory says the
     bounds are tight; the search agrees).
  2. The same search demolishes naive majority voting in seconds.
  3. The engine then does what no random search can: it *derives* the
     adversary for the triangle, and we print the traitor's complete
     message transcript — the masquerade the Fault axiom bottles.
  4. Cost dashboard: what the surviving protocols pay (messages,
     traffic, rounds), including Bracha reliable broadcast.

Run:  python examples/adversary_lab.py
"""

from repro.analysis import format_table
from repro.analysis.adversary_search import search_agreement_attacks
from repro.analysis.metrics import COMPARE_HEADERS, compare, measure
from repro.core import refute_node_bound
from repro.graphs import complete_graph, triangle
from repro.protocols import (
    MajorityVoteDevice,
    authenticated_consensus_devices,
    eig_devices,
    reliable_broadcast_devices,
)
from repro.runtime.sync import make_system, run


def search_both_sides() -> None:
    print("=" * 72)
    print("1 & 2. Randomized adversary search: EIG vs naive majority")
    print("=" * 72)
    eig_result = search_agreement_attacks(
        complete_graph(4),
        lambda g: eig_devices(g, 1),
        max_faults=1,
        rounds=2,
        attempts=200,
        seed=42,
    )
    naive_result = search_agreement_attacks(
        complete_graph(4),
        lambda g: {u: MajorityVoteDevice() for u in g.nodes},
        max_faults=1,
        rounds=1,
        attempts=200,
        seed=42,
    )
    rows = [
        ("EIG (n=4, f=1)", eig_result.describe()),
        ("1-round majority (n=4)", naive_result.describe()),
    ]
    print(format_table(("protocol", "search outcome"), rows))
    assert not eig_result.broken and naive_result.broken
    print()


def derive_the_adversary() -> None:
    print("=" * 72)
    print("3. The engine derives the traitor (no search needed)")
    print("=" * 72)
    g = triangle()
    witness = refute_node_bound(
        g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=2
    )
    broken = witness.violated[0]
    traitor = next(iter(broken.constructed.faulty_nodes))
    print(
        f"In {broken.label}, node {traitor} masquerades.  Its transcript "
        "(replayed from the covering run):"
    )
    rows = []
    for (u, v), edge in sorted(
        broken.constructed.behavior.edge_behaviors.items(),
        key=lambda kv: (str(kv[0][0]), str(kv[0][1])),
    ):
        if u == traitor:
            rows.append((f"{u} → {v}", *map(repr, edge.messages)))
    print(
        format_table(
            ("edge", *(f"round {r}" for r in range(len(rows[0]) - 1))), rows
        )
    )
    print(f"result: {broken.verdict.describe()}")
    print()


def cost_dashboard() -> None:
    print("=" * 72)
    print("4. What the survivors pay")
    print("=" * 72)
    metrics = {}
    k4 = complete_graph(4)
    inputs = {u: i % 2 for i, u in enumerate(k4.nodes)}
    metrics["EIG"] = measure(
        run(make_system(k4, eig_devices(k4, 1), inputs), 2)
    )
    metrics["Dolev-Strong (signed)"] = measure(
        run(make_system(k4, authenticated_consensus_devices(k4, 1), inputs), 2)
    )
    rb_devices, rb_rounds = reliable_broadcast_devices(k4, "n0", 1)
    rb_inputs = {u: ("V" if u == "n0" else None) for u in k4.nodes}
    metrics["Bracha broadcast"] = measure(
        run(make_system(k4, rb_devices, rb_inputs), rb_rounds)
    )
    print(format_table(COMPARE_HEADERS, compare(metrics)))


if __name__ == "__main__":
    search_both_sides()
    derive_the_adversary()
    cost_dashboard()
