"""EXT — the paper's remarks and footnotes, executed.

* Footnote 3: the general node bound by *reduction* — collapse K6 into
  a supernode triangle and refute the collapsed devices with the f = 1
  engine.
* Section 3's closing remark: nondeterministic algorithms, refuted
  resolution by resolution.
"""

from conftest import report

from repro.analysis import format_table
from repro.core import refute_node_bound
from repro.core.nondeterminism import refute_nondeterministic
from repro.graphs import complete_graph, triangle
from repro.protocols import MajorityVoteDevice
from repro.runtime.sync import (
    FunctionDevice,
    PortRenamedDevice,
    collapse_system,
    make_system,
)

PARTITION = [("n0", "n1"), ("n2", "n3"), ("n4", "n5")]


def test_footnote3_reduction(benchmark):
    """K6/f=2 agreement refuted via the collapsed triangle and the
    f = 1 engine — the paper's alternative proof strategy."""

    def reduce_and_refute():
        k6 = complete_graph(6)
        base_system = make_system(
            k6,
            {u: MajorityVoteDevice() for u in k6.nodes},
            {u: 0 for u in k6.nodes},
        )
        quotient, _ = collapse_system(base_system, PARTITION)
        names = {"group0": "a", "group1": "b", "group2": "c"}
        devices = {}
        for group, node in names.items():
            rename = {
                other: names[other]
                for other in quotient.graph.neighbors(group)
            }
            devices[node] = PortRenamedDevice(quotient.device(group), rename)
        return refute_node_bound(
            triangle(), devices, 1, rounds=3, inputs=((0, 0), (1, 1))
        )

    witness = benchmark(reduce_and_refute)
    assert witness.found
    report(
        "EXT: footnote 3 — K6 (f=2) refuted through the collapsed triangle",
        witness.describe(),
    )


def coin_family(oracle):
    def init(ctx):
        return ((), None)

    def send(ctx, state, r):
        return {p: ctx.input for p in ctx.ports} if r == 0 else {}

    def transition(ctx, state, r, inbox):
        seen, decided = state
        if r == 0:
            seen = tuple(sorted(inbox.items(), key=lambda kv: str(kv[0])))
            values = {ctx.input, *(v for _, v in seen if v is not None)}
            decided = (
                ctx.input
                if len(values) == 1
                else oracle.coin(("mixed", ctx.input, seen))
            )
        return (seen, decided)

    device = FunctionDevice(init, send, transition, lambda ctx, s: s[1])
    return {u: device for u in triangle().nodes}


def test_nondeterministic_agreement_refuted(benchmark):
    witnesses = benchmark(
        lambda: refute_nondeterministic(
            triangle(), coin_family, max_faults=1, rounds=2,
            oracle_seeds=range(8),
        )
    )
    assert all(w.found for w in witnesses)
    rows = [
        (seed, ", ".join(c.label for c in w.violated))
        for seed, w in enumerate(witnesses)
    ]
    report(
        "EXT: nondeterministic coin-flip agreement, refuted per resolution",
        format_table(("oracle seed", "violated behaviors"), rows),
    )


def test_crash_faults_collapse_the_bound(benchmark):
    """The Fault axiom isolated: crash-only faults admit consensus on
    the very triangle where Byzantine agreement is impossible."""
    from repro.graphs import complete_graph
    from repro.problems import ByzantineAgreementSpec
    from repro.protocols import floodset_devices
    from repro.runtime.sync import CrashDevice, make_system, run

    g = complete_graph(3)

    def once():
        devices = dict(floodset_devices(g, 1))
        devices["n2"] = CrashDevice(devices["n2"], crash_round=0)
        inputs = {"n0": 1, "n1": 0, "n2": 1}
        behavior = run(make_system(g, devices, inputs), 2)
        return ByzantineAgreementSpec().check(
            inputs, behavior.decisions(), ["n0", "n1"]
        )

    verdict = benchmark(once)
    rows = [
        ("Byzantine fault (Fault axiom holds)", "IMPOSSIBLE — Theorem 1"),
        ("crash fault (no masquerade)", "FloodSet agrees in f+1 rounds"),
    ]
    report(
        "EXT: the Fault axiom isolated (n = 3, f = 1)",
        format_table(("failure model", "outcome"), rows),
    )
    assert verdict.ok
