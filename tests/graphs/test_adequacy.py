"""Tests of the adequate/inadequate classification."""

import pytest

from repro.graphs import (
    GraphError,
    classify,
    complete_graph,
    diamond,
    is_adequate,
    is_inadequate,
    max_tolerable_faults,
    required_connectivity,
    required_nodes,
    ring,
    triangle,
    wheel,
)


class TestBounds:
    def test_required_nodes(self):
        assert required_nodes(1) == 4
        assert required_nodes(2) == 7

    def test_required_connectivity(self):
        assert required_connectivity(1) == 3
        assert required_connectivity(3) == 7

    def test_zero_faults_rejected(self):
        with pytest.raises(GraphError):
            required_nodes(0)


class TestClassification:
    def test_triangle_inadequate_for_one_fault(self):
        assert is_inadequate(triangle(), 1)

    def test_k4_adequate_for_one_fault(self):
        assert is_adequate(complete_graph(4), 1)

    def test_diamond_inadequate_by_connectivity(self):
        report = classify(diamond(), 1)
        assert report.enough_nodes
        assert not report.enough_connectivity
        assert not report.adequate

    def test_k7_adequate_for_two_faults(self):
        assert is_adequate(complete_graph(7), 2)

    def test_k6_inadequate_for_two_faults(self):
        report = classify(complete_graph(6), 2)
        assert not report.enough_nodes

    def test_ring_always_inadequate(self):
        # Rings have connectivity 2 < 3 = 2f+1 for any f >= 1.
        assert is_inadequate(ring(10), 1)

    def test_describe_mentions_both_conditions(self):
        text = classify(triangle(), 1).describe()
        assert "3f+1" in text and "2f+1" in text
        assert "INADEQUATE" in text

    def test_tiny_graph_rejected(self):
        from repro.graphs import CommunicationGraph

        g = CommunicationGraph(["a", "b"], [("a", "b")])
        with pytest.raises(GraphError):
            classify(g, 1)


class TestMaxTolerableFaults:
    def test_complete_graphs(self):
        assert max_tolerable_faults(complete_graph(4)) == 1
        assert max_tolerable_faults(complete_graph(7)) == 2
        assert max_tolerable_faults(complete_graph(10)) == 3

    def test_node_rich_but_connectivity_poor(self):
        # Wheel on 9 rim nodes: n = 10 allows f = 3 by nodes, but the
        # connectivity is only 3, allowing f = 1.
        assert max_tolerable_faults(wheel(9)) == 1

    def test_triangle_tolerates_nothing(self):
        assert max_tolerable_faults(triangle()) == 0
