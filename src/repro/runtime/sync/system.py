"""Synchronous systems: a communication graph plus, at every node, a
device, an input, and a port labeling.

The *port labeling* is the mechanism that makes covering-graph
installation work.  A device addresses its links through local labels;
on a base graph the default labeling names each port after the actual
neighbor, while :func:`install_in_covering` labels a covering node's
ports after the *images* of its neighbors under the covering map.  The
two systems are then indistinguishable from inside any device — which
is the operational content of the paper's "S looks locally like G".
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass
from functools import cached_property
from typing import Any

from ...graphs.coverings import CoveringMap
from ...graphs.graph import CommunicationGraph, GraphError, NodeId
from .device import NodeContext, PortLabel, SyncDevice


@dataclass(frozen=True)
class NodeAssignment:
    """Device, input and port labeling for one node."""

    device: SyncDevice
    input: Any
    port_of_neighbor: Mapping[NodeId, PortLabel]

    def context(self) -> NodeContext:
        return NodeContext(
            ports=tuple(self.port_of_neighbor.values()), input=self.input
        )

    @cached_property
    def neighbor_of_port(self) -> Mapping[PortLabel, NodeId]:
        """The reverse of ``port_of_neighbor``, built once per
        assignment (port labels are distinct, enforced by the system)."""
        return {
            port: neighbor
            for neighbor, port in self.port_of_neighbor.items()
        }


@dataclass(frozen=True)
class SyncSystem:
    """A fully specified synchronous system (graph + assignments)."""

    graph: CommunicationGraph
    assignments: Mapping[NodeId, NodeAssignment]

    def __post_init__(self) -> None:
        for u in self.graph.nodes:
            if u not in self.assignments:
                raise GraphError(f"node {u!r} has no assignment")
            assignment = self.assignments[u]
            labeled = set(assignment.port_of_neighbor)
            actual = set(self.graph.neighbors(u))
            if labeled != actual:
                raise GraphError(
                    f"port labeling of {u!r} covers {sorted(map(str, labeled))}, "
                    f"expected {sorted(map(str, actual))}"
                )
            labels = list(assignment.port_of_neighbor.values())
            if len(set(labels)) != len(labels):
                raise GraphError(f"port labels of {u!r} are not distinct")

    def device(self, u: NodeId) -> SyncDevice:
        return self.assignments[u].device

    def input(self, u: NodeId) -> Any:
        return self.assignments[u].input

    def context(self, u: NodeId) -> NodeContext:
        return self.assignments[u].context()

    def port(self, u: NodeId, neighbor: NodeId) -> PortLabel:
        """The label node ``u`` uses for its link to ``neighbor``."""
        return self.assignments[u].port_of_neighbor[neighbor]

    def neighbor_of_port(self, u: NodeId, label: PortLabel) -> NodeId:
        """The neighbor behind one of ``u``'s port labels (O(1): the
        reverse map is cached per assignment)."""
        try:
            return self.assignments[u].neighbor_of_port[label]
        except KeyError:
            raise GraphError(
                f"node {u!r} has no port labeled {label!r}"
            ) from None

    def with_devices(
        self, replacements: Mapping[NodeId, SyncDevice]
    ) -> "SyncSystem":
        """A copy with some nodes' devices replaced (inputs and port
        labels unchanged).  Used to inject faulty devices."""
        new_assignments = dict(self.assignments)
        for u, device in replacements.items():
            old = new_assignments[u]
            new_assignments[u] = NodeAssignment(
                device=device,
                input=old.input,
                port_of_neighbor=old.port_of_neighbor,
            )
        return SyncSystem(self.graph, new_assignments)

    def with_inputs(self, replacements: Mapping[NodeId, Any]) -> "SyncSystem":
        """A copy with some nodes' inputs replaced."""
        new_assignments = dict(self.assignments)
        for u, value in replacements.items():
            old = new_assignments[u]
            new_assignments[u] = NodeAssignment(
                device=old.device,
                input=value,
                port_of_neighbor=old.port_of_neighbor,
            )
        return SyncSystem(self.graph, new_assignments)


def identity_ports(graph: CommunicationGraph, u: NodeId) -> dict[NodeId, PortLabel]:
    """The default labeling: each port named after the actual neighbor."""
    return {v: v for v in graph.neighbors(u)}


def make_system(
    graph: CommunicationGraph,
    devices: Mapping[NodeId, SyncDevice],
    inputs: Mapping[NodeId, Any],
) -> SyncSystem:
    """A system on ``graph`` with identity port labels."""
    assignments = {
        u: NodeAssignment(
            device=devices[u],
            input=inputs[u],
            port_of_neighbor=identity_ports(graph, u),
        )
        for u in graph.nodes
    }
    return SyncSystem(graph, assignments)


def uniform_system(
    graph: CommunicationGraph, device: SyncDevice, inputs: Mapping[NodeId, Any]
) -> SyncSystem:
    """A system running the same device everywhere."""
    return make_system(graph, {u: device for u in graph.nodes}, inputs)


def install_in_covering(
    covering: CoveringMap,
    base_devices: Mapping[NodeId, SyncDevice],
    cover_inputs: Mapping[NodeId, Any],
) -> SyncSystem:
    """Install base-graph devices in a covering graph (the paper's move).

    Every covering node ``u`` runs the device of its image
    ``phi(u)``, with ports labeled by the images of its neighbors —
    so from inside the device, node ``u`` is indistinguishable from
    ``phi(u)``.  Inputs are chosen per *covering* node (the
    constructions assign different inputs to different sheets).
    """
    base = covering.base
    for w in base.nodes:
        if w not in base_devices:
            raise GraphError(f"no device supplied for base node {w!r}")
    cover = covering.cover
    assignments = {}
    for u in cover.nodes:
        if u not in cover_inputs:
            raise GraphError(f"no input supplied for covering node {u!r}")
        # Order ports by the *base* node's neighbor order, so that the
        # i-th port of the covering node corresponds to the i-th port
        # of its image — the paper's "S looks locally like G" includes
        # the port ordering the Fault axiom speaks of.
        ports = {
            covering.lift_neighbor(u, w): w
            for w in base.neighbors(covering(u))
        }
        assignments[u] = NodeAssignment(
            device=base_devices[covering(u)],
            input=cover_inputs[u],
            port_of_neighbor=ports,
        )
    return SyncSystem(cover, assignments)
