#!/usr/bin/env python3
"""Quickstart: the paper's headline result in one page.

1. Byzantine agreement on the triangle (n = 3, f = 1) is impossible —
   the engine mechanically performs FLM's covering argument against a
   concrete majority-voting protocol and prints the contradiction.
2. One more node (n = 4 = 3f + 1) makes it possible — EIG agrees
   despite a Byzantine liar.

Run:  python examples/quickstart.py
"""

from repro.analysis import hexagon_figure, triangle_figure, witness_chain_figure
from repro.core import refute_node_bound
from repro.graphs import classify, complete_graph, triangle
from repro.problems import ByzantineAgreementSpec
from repro.protocols import MajorityVoteDevice, eig_devices
from repro.runtime.sync import RandomLiarDevice, make_system, run


def impossible_on_the_triangle() -> None:
    print("=" * 72)
    print("Part 1 — the triangle: n = 3 nodes, f = 1 fault")
    print("=" * 72)
    g = triangle()
    print(classify(g, max_faults=1).describe())
    print()
    print("Base graph G:")
    print(triangle_figure())
    print()
    print("Covering graph S (devices installed twice, inputs 0 / 1):")
    print(hexagon_figure())
    print()

    # Any concrete devices will do; here, honest majority voting.
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    witness = refute_node_bound(g, devices, max_faults=1, rounds=3)

    print("The engine ran S once, cut out three scenarios, and rebuilt")
    print("each as a correct behavior of G via the Fault axiom:")
    print()
    print(witness.describe())
    print()
    chain = witness_chain_figure(
        [c.label for c in witness.checked],
        [str(link.node) for link in witness.links],
    )
    print(f"Contradiction chain: {chain}")
    print()


def possible_on_k4() -> None:
    print("=" * 72)
    print("Part 2 — one more node: n = 4 = 3f + 1")
    print("=" * 72)
    g = complete_graph(4)
    print(classify(g, max_faults=1).describe())

    devices = dict(eig_devices(g, max_faults=1))
    devices["n3"] = RandomLiarDevice(seed=42)  # a Byzantine traitor
    inputs = {"n0": 1, "n1": 1, "n2": 1, "n3": 0}
    behavior = run(make_system(g, devices, inputs), rounds=2)

    verdict = ByzantineAgreementSpec().check(
        inputs, behavior.decisions(), correct=["n0", "n1", "n2"]
    )
    print()
    print(f"inputs:    {inputs}")
    print(f"decisions: {behavior.decisions()}")
    print(f"spec:      {verdict.describe()}")
    assert verdict.ok


if __name__ == "__main__":
    impossible_on_the_triangle()
    possible_on_k4()
    print("Done: impossibility at n = 3f, agreement at n = 3f + 1.")
