#!/usr/bin/env python3
"""Clock synchronization: the trivial optimum and why it is optimal.

Hardware clocks drift between rates p(t) = t and q(t) = 1.2·t.  Logical
clocks must stay inside an envelope and be closer together than the
hardware clocks are.

  1. On an adequate K4, fault-tolerant averaging beats the trivial
     lower-envelope skew, even with a two-faced Byzantine clock.
  2. On the triangle, Theorem 8's engine builds the ring of ever-slower
     clocks and shows ANY device family violates agreement or the
     envelope — and verifies the Scaling-axiom reconstruction (Lemma 9)
     by re-running scaled scenarios.
  3. Corollaries 13–15 tabulate the unbeatable skews for classic clock
     families — including log₂ logical clocks, which turn diverging
     clocks into constant (but never sub-log₂(r)) skew.

Run:  python examples/clock_synchronization.py
"""

from repro.analysis import format_table
from repro.core import (
    SynchronizationSetting,
    corollary_13_diverging_linear,
    corollary_14_offset_clocks,
    corollary_15_logarithmic,
    refute_clock_sync,
)
from repro.core.corollaries import Log2Envelope
from repro.graphs import complete_graph, triangle
from repro.protocols import (
    AveragingSyncDevice,
    ByzantineClockDevice,
    LowerEnvelopeClockDevice,
    max_logical_skew,
)
from repro.runtime.timed import LinearClock, make_timed_system, run_timed

LOWER = LinearClock(1.0, 0.0)


def averaging_on_k4() -> None:
    print("=" * 72)
    print("1. Adequate K4: averaging beats the trivial skew")
    print("=" * 72)
    g = complete_graph(4)
    clocks = {
        "n0": LinearClock(1.00, 0.0),
        "n1": LinearClock(1.07, 0.0),
        "n2": LinearClock(1.15, 0.0),
        "n3": LinearClock(1.20, 0.0),
    }
    delay = 0.125
    rows = []
    for label, factory in (
        ("trivial l(D(t))", lambda: LowerEnvelopeClockDevice(LOWER)),
        (
            "averaging (f=1 trim)",
            lambda: AveragingSyncDevice(LOWER, 2.0, delay, max_faults=1),
        ),
    ):
        factories = {u: factory for u in g.nodes}
        factories["n3"] = lambda: ByzantineClockDevice(2.0, spread=40.0)
        system = make_timed_system(
            g,
            factories,
            {u: None for u in g.nodes},
            delay=delay,
            delay_mode="clock",
            clocks=clocks,
        )
        behavior = run_timed(system, horizon=20.0)
        skew = max_logical_skew(behavior, ["n0", "n1", "n2"], (10.0, 20.0))
        rows.append((label, skew))
    print(
        format_table(
            ("strategy", "max honest skew by t=20"),
            rows,
            "three honest drifting clocks + one two-faced Byzantine clock",
        )
    )
    assert rows[1][1] < rows[0][1]
    print()


def impossibility_on_triangle() -> None:
    print("=" * 72)
    print("2. The triangle: no nontrivial synchronization (Theorem 8)")
    print("=" * 72)
    setting = SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(1.2, 0.0),
        lower=LOWER,
        upper=LinearClock(1.0, 2.0),
        alpha=0.05,
        t_prime=1.0,
    )
    factories = {
        u: (lambda: LowerEnvelopeClockDevice(LOWER))
        for u in triangle().nodes
    }
    witness = refute_clock_sync(factories, setting, verify_indices=(0, 1, 2))
    print(
        f"ring of k+2 = {witness.extra['k'] + 2} nodes, clocks q·h^-i; "
        f"checked at t'' = {witness.extra['t_double_prime']:.4g}"
    )
    print(
        f"violated scaled scenarios: {len(witness.violated)} of "
        f"{len(witness.checked)}"
    )
    checks = witness.extra["scaling_checks"]
    print(
        "Lemma 9 (Scaling axiom) reconstructions verified: "
        f"{[c['all_match'] for c in checks]}"
    )
    print()


def corollary_table() -> None:
    print("=" * 72)
    print("3. Corollaries 13–15: the unbeatable skews")
    print("=" * 72)
    rows = []
    linear_factories = {
        u: (lambda: LowerEnvelopeClockDevice(LOWER))
        for u in triangle().nodes
    }
    log_lower = Log2Envelope(shift=1.0)
    log_factories = {
        u: (lambda: LowerEnvelopeClockDevice(log_lower))
        for u in triangle().nodes
    }
    for outcome in (
        corollary_13_diverging_linear(linear_factories),
        corollary_14_offset_clocks(linear_factories),
        corollary_15_logarithmic(log_factories),
    ):
        rows.append(
            (
                outcome.name,
                outcome.unbeatable_skew_description,
                outcome.trivial_skew_at(1.0),
                outcome.trivial_skew_at(10.0),
                len(outcome.witness.violated),
            )
        )
    print(
        format_table(
            (
                "corollary",
                "optimum (engine-certified)",
                "skew @ t=1",
                "skew @ t=10",
                "violations found",
            ),
            rows,
        )
    )


if __name__ == "__main__":
    averaging_on_k4()
    impossibility_on_triangle()
    corollary_table()
