"""Inexact agreement after Mahaney–Schneider [MS], the positive
counterpart of Theorem 6's (ε, δ, γ)-agreement.

The fault-tolerant midpoint: each round a node collects all values,
discards the ``f`` lowest and ``f`` highest, and moves to the midpoint
of the surviving range.  With ``n >= 3f + 1`` this contracts the
spread of correct values by a factor of 2 per round while never
leaving the correct range (γ-validity with γ as small as you like),
so ``⌈log₂(δ/ε)⌉`` rounds achieve (ε, δ, γ)-agreement for any
``ε < δ`` — on *adequate* graphs.  Theorem 6's engine shows the same
task is impossible with three nodes and one fault.
"""

from __future__ import annotations

import math
from collections.abc import Mapping
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice


def fault_tolerant_midpoint(values: list[float], trim: int) -> float:
    """Midpoint of the range surviving f-trimming."""
    if len(values) <= 2 * trim:
        raise GraphError("not enough values to trim")
    kept = sorted(values)[trim : len(values) - trim]
    return (kept[0] + kept[-1]) / 2.0


def rounds_for_target(delta: float, epsilon: float) -> int:
    """Rounds of halving needed to bring a spread of δ below ε."""
    if epsilon >= delta:
        return 1
    return max(1, math.ceil(math.log2(delta / epsilon)))


class InexactAgreementDevice(SyncDevice):
    """Mahaney–Schneider-style iterated fault-tolerant midpoint."""

    def __init__(self, max_faults: int, rounds: int) -> None:
        if rounds < 1:
            raise GraphError("need at least one round")
        self.f = max_faults
        self.rounds = rounds

    def init_state(self, ctx: NodeContext) -> State:
        return (float(ctx.input), None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        value, _decided = state
        if round_index >= self.rounds:
            return {}
        return {port: value for port in ctx.ports}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        value, decided = state
        if round_index >= self.rounds:
            return state
        pool = [value]
        for port in ctx.ports:
            raw = inbox.get(port)
            pool.append(float(raw) if isinstance(raw, (int, float)) else value)
        value = fault_tolerant_midpoint(pool, self.f)
        if round_index == self.rounds - 1:
            decided = value
        return (value, decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[1]


def inexact_devices(
    graph: CommunicationGraph,
    max_faults: int,
    epsilon: float,
    delta: float,
) -> dict[NodeId, InexactAgreementDevice]:
    """Devices achieving (ε, δ, γ)-agreement on an adequate complete
    graph, for any positive γ."""
    if not graph.is_complete():
        raise GraphError("this implementation assumes a complete graph")
    if len(graph) < 3 * max_faults + 1:
        raise GraphError(
            f"inexact agreement requires n >= 3f+1 = {3 * max_faults + 1}"
        )
    rounds = rounds_for_target(delta, epsilon)
    return {
        u: InexactAgreementDevice(max_faults, rounds) for u in graph.nodes
    }
