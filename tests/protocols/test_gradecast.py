"""Gradecast: graded consistency under honest and equivocating
dealers."""

import pytest

from repro.graphs import GraphError, complete_graph
from repro.protocols.gradecast import gradecast_devices
from repro.runtime.sync import (
    RandomLiarDevice,
    ReplayDevice,
    SilentDevice,
    make_system,
    run,
)


def gradecast(n, f, dealer_value, faulty=(), dealer="n0"):
    g = complete_graph(n)
    devices, rounds = gradecast_devices(g, dealer, f)
    devices = dict(devices)
    for node, bad in dict(faulty).items():
        devices[node] = bad
    inputs = {u: (dealer_value if u == dealer else None) for u in g.nodes}
    behavior = run(make_system(g, devices, inputs), rounds)
    correct = [u for u in g.nodes if u not in dict(faulty)]
    return {u: behavior.decision(u) for u in correct}


class TestHonestDealer:
    def test_everyone_grade_two(self):
        outputs = gradecast(4, 1, "V")
        assert set(outputs.values()) == {("V", 2)}

    def test_with_lying_bystander(self):
        outputs = gradecast(4, 1, 9, faulty={"n3": RandomLiarDevice(2)})
        assert set(outputs.values()) == {(9, 2)}

    def test_with_silent_bystander_k7(self):
        outputs = gradecast(
            7, 2, "x",
            faulty={"n5": SilentDevice(), "n6": RandomLiarDevice(8)},
        )
        assert set(outputs.values()) == {("x", 2)}


class TestFaultyDealer:
    def _graded_consistency(self, outputs):
        """If anyone has grade 2, all have the same value, grade >= 1."""
        values = list(outputs.values())
        if any(grade == 2 for _, grade in values):
            top = {v for v, g in values if g == 2}
            assert len(top) == 1
            (winner,) = top
            assert all(v == winner and g >= 1 for v, g in values)
        graded = {v for v, g in values if g >= 1}
        assert len(graded) <= 1  # soundness

    def test_silent_dealer_grades_zero(self):
        outputs = gradecast(4, 1, None, faulty={"n0": SilentDevice()})
        assert set(outputs.values()) == {(None, 0)}

    @pytest.mark.parametrize(
        "faces",
        [
            ("X", "X", "Y"),
            ("X", "Y", "Y"),
            ("X", "Y", None),
            ("X", "X", "X"),
        ],
    )
    def test_equivocating_dealer_graded_consistency(self, faces):
        scripts = {}
        for peer, face in zip(("n1", "n2", "n3"), faces):
            if face is not None:
                scripts[peer] = [("DEAL", face)]
        outputs = gradecast(4, 1, None, faulty={"n0": ReplayDevice(scripts)})
        self._graded_consistency(outputs)


class TestGuards:
    def test_rejects_inadequate(self):
        with pytest.raises(GraphError):
            gradecast_devices(complete_graph(3), "n0", 1)

    def test_rejects_unknown_dealer(self):
        with pytest.raises(GraphError):
            gradecast_devices(complete_graph(4), "zz", 1)
