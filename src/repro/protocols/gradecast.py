"""Gradecast (graded broadcast), after Feldman–Micali.

A dealer distributes a value; each node outputs a pair
``(value, grade)`` with grade ∈ {0, 1, 2} such that, with ``f``
Byzantine nodes and ``n >= 3f + 1``:

* graded consistency — if any correct node outputs grade 2, every
  correct node outputs the same value with grade >= 1;
* soundness — correct nodes with grade >= 1 agree on the value;
* validity — a correct dealer's value is output by all correct nodes
  with grade 2.

Grades let higher-level protocols distinguish "everyone saw this" from
"someone saw this" — the stepping stone from broadcast to agreement.
Three synchronous rounds: DEAL, ECHO, VOTE.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice


class GradecastDevice(SyncDevice):
    """One node's role in a single gradecast instance."""

    def __init__(
        self, my_id: NodeId, dealer: NodeId, n_nodes: int, max_faults: int
    ) -> None:
        if n_nodes < 3 * max_faults + 1:
            raise GraphError("gradecast requires n >= 3f+1")
        self.my_id = my_id
        self.dealer = dealer
        self.n = n_nodes
        self.f = max_faults
        self.rounds = 3

    # State: (dealt, echoes, votes, output)
    # echoes / votes: tuples of (peer, value); output: (value, grade).

    def init_state(self, ctx: NodeContext) -> State:
        return (None, (), (), None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        dealt, echoes, _votes, _output = state
        out: dict[PortLabel, Message] = {}
        if round_index == 0 and self.my_id == self.dealer:
            for port in ctx.ports:
                out[port] = ("DEAL", ctx.input)
        elif round_index == 1 and dealt is not None:
            for port in ctx.ports:
                out[port] = ("ECHO", dealt)
        elif round_index == 2:
            majority = self._echo_majority(echoes, dealt)
            if majority is not None:
                for port in ctx.ports:
                    out[port] = ("VOTE", majority)
        return out

    def _count(self, observations, value) -> int:
        return sum(1 for _, v in observations if v == value)

    def _echo_majority(self, echoes, dealt) -> Any | None:
        """A value echoed by at least n - f nodes (self included)."""
        pool = list(echoes)
        if dealt is not None:
            pool.append((self.my_id, dealt))
        for value in sorted({v for _, v in pool}, key=repr):
            if self._count(pool, value) >= self.n - self.f:
                return value
        return None

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        dealt, echoes, votes, output = state
        echoes = list(echoes)
        votes = list(votes)
        for peer, message in sorted(
            inbox.items(), key=lambda kv: str(kv[0])
        ):
            if not (isinstance(message, tuple) and len(message) == 2):
                continue
            kind, value = message
            if kind == "DEAL" and peer == self.dealer and round_index == 0:
                if dealt is None:
                    dealt = value
            elif kind == "ECHO" and round_index == 1:
                if all(p != peer for p, _ in echoes):
                    echoes.append((peer, value))
            elif kind == "VOTE" and round_index == 2:
                if all(p != peer for p, _ in votes):
                    votes.append((peer, value))
        if self.my_id == self.dealer and round_index == 0:
            dealt = ctx.input
        if round_index == 2 and output is None:
            pool = list(votes)
            own_vote = self._echo_majority(echoes, dealt)
            if own_vote is not None:
                pool.append((self.my_id, own_vote))
            output = self._grade(pool)
        return (dealt, tuple(echoes), tuple(votes), output)

    def _grade(self, vote_pool) -> tuple[Any, int]:
        best_value, best_count = None, 0
        for value in sorted({v for _, v in vote_pool}, key=repr):
            count = self._count(vote_pool, value)
            if count > best_count:
                best_value, best_count = value, count
        if best_count >= self.n - self.f:
            return (best_value, 2)
        if best_count >= self.f + 1:
            return (best_value, 1)
        return (None, 0)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[3]


def gradecast_devices(
    graph: CommunicationGraph, dealer: NodeId, max_faults: int
) -> tuple[dict[NodeId, GradecastDevice], int]:
    """Gradecast devices plus the round count (always 3)."""
    if not graph.is_complete():
        raise GraphError("this implementation assumes a complete graph")
    if dealer not in graph:
        raise GraphError(f"dealer {dealer!r} not in graph")
    devices = {
        u: GradecastDevice(u, dealer, len(graph), max_faults)
        for u in graph.nodes
    }
    return devices, 3
