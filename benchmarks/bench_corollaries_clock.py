"""C12–15 — the clock synchronization corollaries (Section 7.1).

Regenerates: one table per corollary family, reporting the
engine-certified unbeatable skew: linear-envelope (C12), diverging
linear clocks (C13, growing skew), offset clocks (C14, constant a·c),
and logarithmic logical clocks (C15, constant log₂ r).
"""

import math

from conftest import report

from repro.analysis import format_table
from repro.core import (
    corollary_12_linear_envelope,
    corollary_13_diverging_linear,
    corollary_14_offset_clocks,
    corollary_15_logarithmic,
)
from repro.core.corollaries import Log2Envelope, trivial_skew_table
from repro.graphs import triangle
from repro.protocols import LowerEnvelopeClockDevice
from repro.runtime.timed import LinearClock

LINEAR = LinearClock(1.0, 0.0)
LOG = Log2Envelope(shift=1.0)


def _factories(lower):
    return {
        u: (lambda: LowerEnvelopeClockDevice(lower))
        for u in triangle().nodes
    }


def test_corollary_12(benchmark):
    out = benchmark(lambda: corollary_12_linear_envelope(_factories(LINEAR)))
    assert out.witness.found
    report(
        "C12: linear envelope synchronization",
        format_table(
            ("t", "unbeatable skew"),
            trivial_skew_table(out),
            out.unbeatable_skew_description,
        ),
    )
    skews = dict(trivial_skew_table(out))
    assert skews[10.0] > skews[1.0]  # no constant bound exists


def test_corollary_13(benchmark):
    out = benchmark(
        lambda: corollary_13_diverging_linear(_factories(LINEAR), rate=1.25)
    )
    assert out.witness.found
    assert out.trivial_skew_at(4.0) == 4.0 * 0.25  # a·(r-1)·t


def test_corollary_14(benchmark):
    out = benchmark(
        lambda: corollary_14_offset_clocks(
            _factories(LINEAR), offset=0.5, a=2.0
        )
    )
    assert out.witness.found
    # The optimum is the CONSTANT a·c = 1.0 at every time.
    for t in (1.0, 3.0, 10.0):
        assert abs(out.trivial_skew_at(t) - 1.0) < 1e-9


def test_corollary_15(benchmark):
    out = benchmark(
        lambda: corollary_15_logarithmic(_factories(LOG), rate=2.0)
    )
    assert out.witness.found
    # log2 logical clocks flatten diverging clocks to ~log2(r) skew.
    late = out.trivial_skew_at(500.0)
    assert abs(late - math.log2(2.0)) < 0.02
    report(
        "C15: logarithmic logical clocks",
        format_table(
            ("t", "trivial skew -> log2(r) = 1"),
            trivial_skew_table(out, (1.0, 10.0, 100.0, 500.0)),
            out.unbeatable_skew_description,
        ),
    )
