"""Candidate devices for the timed problems — refutation targets for
Theorems 2, 4 and 8, and building blocks for the positive protocols.

All of them are honest, deterministic, and perfectly reasonable; on
adequate graphs (or with weaker fault models) variants of these ideas
work.  The engines show they cannot work on inadequate graphs.
"""

from __future__ import annotations

from collections.abc import Hashable
from dataclasses import dataclass
from typing import Any

from ..runtime.timed.device import DeviceApi, Message, PortLabel, TimedContext, TimedDevice


class ExchangeOnceWeakDevice(TimedDevice):
    """Weak-agreement attempt: broadcast the input at time 0; at clock
    time ``decide_at`` decide the input if every neighbor reported the
    same value, else a default.

    ``decide_at`` must exceed the message delay so reports arrive.
    """

    def __init__(self, decide_at: float, default: int = 0) -> None:
        self.decide_at = decide_at
        self.default = default
        self._reports: dict[PortLabel, Any] = {}

    def on_start(self, ctx: TimedContext, api: DeviceApi) -> None:
        for port in ctx.ports:
            api.send(port, ("value", ctx.input))
        api.set_timer("decide", self.decide_at)

    def on_message(
        self, ctx: TimedContext, api: DeviceApi, port: PortLabel, message: Message
    ) -> None:
        kind, value = message
        if kind == "value" and port not in self._reports:
            self._reports[port] = value

    def on_timer(self, ctx: TimedContext, api: DeviceApi, name: Hashable) -> None:
        if name != "decide":
            return
        unanimous = all(
            self._reports.get(port) == ctx.input for port in ctx.ports
        ) and len(self._reports) == len(ctx.ports)
        api.decide(ctx.input if unanimous else self.default)


class AlarmWeakDevice(TimedDevice):
    """A two-phase weak-agreement attempt: broadcast the input; if any
    disagreement or silence is observed by ``alarm_at``, broadcast an
    alarm; decide at ``decide_at``: the input if no alarm was seen or
    raised, else the default.

    This is the natural fix to :class:`ExchangeOnceWeakDevice` — tell
    everyone you saw trouble before anyone commits.  With a positive
    minimum delay it still cannot work on inadequate graphs, which is
    exactly Theorem 2's point (and why the paper's footnote-4 protocol
    needs delays *not* bounded away from zero).
    """

    def __init__(
        self, alarm_at: float, decide_at: float, default: int = 0
    ) -> None:
        if decide_at <= alarm_at:
            raise ValueError("decide_at must come after alarm_at")
        self.alarm_at = alarm_at
        self.decide_at = decide_at
        self.default = default
        self._reports: dict[PortLabel, Any] = {}
        self._alarmed = False

    def on_start(self, ctx: TimedContext, api: DeviceApi) -> None:
        for port in ctx.ports:
            api.send(port, ("value", ctx.input))
        api.set_timer("alarm", self.alarm_at)
        api.set_timer("decide", self.decide_at)

    def on_message(self, ctx, api, port, message) -> None:
        kind, value = message
        if kind == "value" and port not in self._reports:
            self._reports[port] = value
        elif kind == "alarm":
            self._alarmed = True

    def on_timer(self, ctx, api, name) -> None:
        if name == "alarm":
            trouble = self._alarmed or any(
                self._reports.get(port) != ctx.input for port in ctx.ports
            )
            if trouble:
                self._alarmed = True
                for port in ctx.ports:
                    api.send(port, ("alarm", None))
        elif name == "decide":
            api.decide(self.default if self._alarmed else ctx.input)


class RelayFireDevice(TimedDevice):
    """Firing-squad attempt: on stimulus, broadcast GO and fire at the
    fixed clock time ``fire_at``; on hearing GO, fire at ``fire_at``
    too.  ``fire_at`` must exceed the network diameter times the delay
    so GO reaches everyone in all-correct behaviors."""

    def __init__(self, fire_at: float) -> None:
        self.fire_at = fire_at
        self._armed = False

    def _arm(self, api: DeviceApi) -> None:
        if self._armed:
            return
        self._armed = True
        if api.clock() >= self.fire_at:
            # Heard GO too late for the rendezvous (cannot happen in an
            # all-correct triangle run; on larger views it can): fire
            # immediately — better late than never, though simultaneity
            # is lost, which is the point.
            api.fire()
        else:
            api.set_timer("fire", self.fire_at)

    def on_start(self, ctx: TimedContext, api: DeviceApi) -> None:
        if ctx.input == 1:
            for port in ctx.ports:
                api.send(port, "GO")
            self._arm(api)

    def on_message(self, ctx, api, port, message) -> None:
        if message == "GO":
            for out in ctx.ports:
                if out != port:
                    api.send(out, "GO")
            self._arm(api)

    def on_timer(self, ctx, api, name) -> None:
        if name == "fire":
            api.fire()


class CountdownFireDevice(TimedDevice):
    """A subtler firing-squad attempt: GO messages carry a countdown so
    late hearers still fire at stimulus-time + ``fuse`` — provided the
    delay is *exactly* δ, which our model grants.  Works in all-correct
    behaviors of any graph with diameter · δ < fuse; still impossible
    to make Byzantine-proof on inadequate graphs."""

    def __init__(self, fuse: float, delay: float) -> None:
        self.fuse = fuse
        self.delay = delay
        self._armed = False

    def _arm(self, api: DeviceApi, remaining: float) -> None:
        if self._armed:
            return
        self._armed = True
        if remaining <= 0:
            api.fire()
        else:
            api.set_timer("fire", api.clock() + remaining)

    def on_start(self, ctx, api) -> None:
        if ctx.input == 1:
            for port in ctx.ports:
                api.send(port, ("GO", self.fuse - self.delay))
            self._arm(api, self.fuse)

    def on_message(self, ctx, api, port, message) -> None:
        kind, remaining = message
        if kind != "GO":
            return
        if not self._armed:
            for out in ctx.ports:
                api.send(out, ("GO", remaining - self.delay))
            self._arm(api, remaining)

    def on_timer(self, ctx, api, name) -> None:
        if name == "fire":
            api.fire()


@dataclass
class LowerEnvelopeClockDevice(TimedDevice):
    """The trivial synchronizer: run the logical clock at the lower
    envelope of the hardware clock, ``C(t) = l(D(t))``, with no
    communication.  Achieves skew exactly ``l(q(t)) - l(p(t))`` —
    which Theorem 8 proves is unbeatable in inadequate graphs."""

    lower: Any  # Envelope: Callable[[float], float]

    def on_start(self, ctx: TimedContext, api: DeviceApi) -> None:
        api.set_logical(self.lower)


class ExchangeMidpointClockDevice(TimedDevice):
    """A communicating synchronizer: broadcast the hardware reading at
    clock time ``exchange_at``; once all neighbors reported, shift the
    logical clock by the mean observed offset (compensating the known
    clock-units delay), then apply the lower envelope.

    On adequate graphs with honest neighbors this genuinely tightens
    the skew; the Theorem 8 engine shows it cannot survive the
    covering-ring adversary.
    """

    def __init__(self, lower, exchange_at: float, delay: float) -> None:
        self.lower = lower
        self.exchange_at = exchange_at
        self.delay = delay
        self._offsets: list[float] = []
        self._expected = 0

    def on_start(self, ctx: TimedContext, api: DeviceApi) -> None:
        self._expected = len(ctx.ports)
        api.set_logical(self.lower)
        api.set_timer("exchange", self.exchange_at)

    def on_timer(self, ctx, api, name) -> None:
        if name == "exchange":
            reading = api.clock()
            for port in ctx.ports:
                api.send(port, ("reading", reading))

    def on_message(self, ctx, api, port, message) -> None:
        kind, remote_reading = message
        if kind != "reading":
            return
        # The sender stamped its clock at send; our clock advanced by
        # `delay` clock units in transit under clock-mode delays only
        # if rates matched — use the naive estimate anyway (devices
        # may be wrong; they may not be lucky).
        local_estimate = api.clock() - self.delay
        self._offsets.append(remote_reading - local_estimate)
        if len(self._offsets) == self._expected:
            mean_offset = sum(self._offsets) / (len(self._offsets) + 1)
            lower = self.lower
            api.set_logical(lambda c, d=mean_offset: lower(c + d))
