"""Unit tests for the problem specification checkers."""

import pytest

from repro.problems import (
    ByzantineAgreementSpec,
    EpsilonDeltaGammaSpec,
    FiringSquadSpec,
    SimpleApproximateAgreementSpec,
    WeakAgreementSpec,
)


class TestByzantineSpec:
    spec = ByzantineAgreementSpec()

    def test_clean_pass(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 1, "c": 1},
            decisions={"a": 1, "b": 1, "c": 1},
            correct=["a", "b", "c"],
        )
        assert verdict.ok

    def test_agreement_violation(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 0},
            decisions={"a": 1, "b": 0},
            correct=["a", "b"],
        )
        assert not verdict.ok
        assert verdict.violations[0].condition == "agreement"

    def test_validity_violation(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 1},
            decisions={"a": 0, "b": 0},
            correct=["a", "b"],
        )
        conditions = {v.condition for v in verdict.violations}
        assert "validity" in conditions

    def test_mixed_inputs_allow_any_common_value(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 0},
            decisions={"a": 0, "b": 0},
            correct=["a", "b"],
        )
        assert verdict.ok

    def test_termination_violation(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 1},
            decisions={"a": 1, "b": None},
            correct=["a", "b"],
        )
        conditions = {v.condition for v in verdict.violations}
        assert "termination" in conditions

    def test_faulty_nodes_ignored(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 1, "c": 0},
            decisions={"a": 1, "b": 1, "c": 0},
            correct=["a", "b"],
        )
        assert verdict.ok


class TestWeakSpec:
    spec = WeakAgreementSpec()

    def test_validity_only_when_all_correct(self):
        inputs = {"a": 1, "b": 1}
        decisions = {"a": 0, "b": 0}
        with_fault = self.spec.check(
            inputs, decisions, correct=["a", "b"], all_correct=False
        )
        assert with_fault.ok
        without_fault = self.spec.check(
            inputs, decisions, correct=["a", "b"], all_correct=True
        )
        assert not without_fault.ok

    def test_agreement_always_binds(self):
        verdict = self.spec.check(
            {"a": 1, "b": 0},
            {"a": 1, "b": 0},
            correct=["a", "b"],
            all_correct=False,
        )
        assert not verdict.ok


class TestSimpleApproximateSpec:
    spec = SimpleApproximateAgreementSpec()

    def test_outputs_must_contract(self):
        verdict = self.spec.check(
            inputs={"a": 0.0, "b": 1.0},
            decisions={"a": 0.0, "b": 1.0},
            correct=["a", "b"],
        )
        assert not verdict.ok
        assert verdict.violations[0].condition == "agreement"

    def test_contraction_passes(self):
        verdict = self.spec.check(
            inputs={"a": 0.0, "b": 1.0},
            decisions={"a": 0.4, "b": 0.6},
            correct=["a", "b"],
        )
        assert verdict.ok

    def test_equal_inputs_demand_equal_outputs(self):
        verdict = self.spec.check(
            inputs={"a": 0.5, "b": 0.5},
            decisions={"a": 0.5, "b": 0.500001},
            correct=["a", "b"],
        )
        assert not verdict.ok

    def test_validity_range(self):
        verdict = self.spec.check(
            inputs={"a": 0.2, "b": 0.4},
            decisions={"a": 0.5, "b": 0.3},
            correct=["a", "b"],
        )
        conditions = {v.condition for v in verdict.violations}
        assert "validity" in conditions


class TestEpsilonDeltaGammaSpec:
    def test_requires_positive_parameters(self):
        with pytest.raises(ValueError):
            EpsilonDeltaGammaSpec(0, 1, 1)

    def test_input_promise_enforced(self):
        spec = EpsilonDeltaGammaSpec(0.5, 1.0, 1.0)
        with pytest.raises(ValueError):
            spec.check(
                {"a": 0.0, "b": 2.0}, {"a": 0.0, "b": 2.0}, ["a", "b"]
            )

    def test_agreement_epsilon(self):
        spec = EpsilonDeltaGammaSpec(0.5, 1.0, 1.0)
        verdict = spec.check(
            {"a": 0.0, "b": 1.0}, {"a": 0.0, "b": 1.0}, ["a", "b"]
        )
        assert not verdict.ok
        assert verdict.violations[0].condition == "agreement"

    def test_validity_gamma(self):
        spec = EpsilonDeltaGammaSpec(0.5, 1.0, 0.25)
        verdict = spec.check(
            {"a": 0.0, "b": 0.5}, {"a": 0.9, "b": 0.9}, ["a", "b"]
        )
        conditions = {v.condition for v in verdict.violations}
        assert "validity" in conditions

    def test_echo_passes_when_epsilon_geq_delta(self):
        spec = EpsilonDeltaGammaSpec(1.0, 1.0, 0.5)
        verdict = spec.check(
            {"a": 0.0, "b": 1.0}, {"a": 0.0, "b": 1.0}, ["a", "b"]
        )
        assert verdict.ok


class TestFiringSquadSpec:
    spec = FiringSquadSpec()

    def test_simultaneous_fire_passes(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 0, "c": 0},
            fire_times={"a": 3.0, "b": 3.0, "c": 3.0},
            correct=["a", "b", "c"],
            all_correct=True,
        )
        assert verdict.ok

    def test_straggler_violates_agreement(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 0},
            fire_times={"a": 3.0, "b": 4.0},
            correct=["a", "b"],
            all_correct=False,
        )
        assert not verdict.ok
        assert verdict.violations[0].condition == "agreement"

    def test_never_firing_with_stimulus_violates_validity(self):
        verdict = self.spec.check(
            inputs={"a": 1, "b": 0},
            fire_times={"a": None, "b": None},
            correct=["a", "b"],
            all_correct=True,
        )
        assert not verdict.ok
        assert verdict.violations[0].condition == "validity"

    def test_firing_without_stimulus_violates_validity(self):
        verdict = self.spec.check(
            inputs={"a": 0, "b": 0},
            fire_times={"a": 1.0, "b": 1.0},
            correct=["a", "b"],
            all_correct=True,
        )
        assert not verdict.ok

    def test_silence_without_stimulus_passes(self):
        verdict = self.spec.check(
            inputs={"a": 0, "b": 0},
            fire_times={"a": None, "b": None},
            correct=["a", "b"],
            all_correct=True,
        )
        assert verdict.ok
