"""Operational models satisfying the paper's axioms.

:mod:`repro.runtime.sync`
    Synchronous rounds; satisfies the Locality and Fault axioms.
    Hosts Theorems 1, 5, 6 and the round-based protocols.

:mod:`repro.runtime.timed`
    Continuous time with a minimum message delay and hardware clocks;
    additionally satisfies the Bounded-Delay Locality and Scaling
    axioms.  Hosts Theorems 2, 4, 8.
"""
