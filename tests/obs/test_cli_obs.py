"""CLI surface: --trace / --metrics flags and the profile subcommand."""

from repro import obs
from repro.cli import main


class TestTraceFlag:
    def test_campaign_trace_and_metrics(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        code = main(
            [
                "campaign", "--protocol", "naive", "--graph", "complete:4",
                "--links", "2", "--attempts", "10",
                "--trace", path, "--metrics",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {path}" in out
        assert "== telemetry summary ==" in out
        trace = obs.read_trace(path)
        assert trace["meta"]["events"] > 0
        # the CLI resets global telemetry after the run
        assert not obs.is_enabled()
        assert obs.get_log() is None

    def test_trace_identical_across_jobs(self, tmp_path, capsys):
        paths = []
        for jobs in ("1", "4"):
            path = str(tmp_path / f"jobs{jobs}.jsonl")
            paths.append(path)
            assert main(
                [
                    "campaign", "--protocol", "naive",
                    "--graph", "complete:4", "--links", "2",
                    "--attempts", "10", "--jobs", jobs, "--trace", path,
                ]
            ) == 0
        a, b = (open(p).read() for p in paths)
        assert a == b

    def test_attack_and_sweep_accept_flags(self, tmp_path, capsys):
        trace = str(tmp_path / "a.jsonl")
        assert main(
            [
                "attack", "--protocol", "naive", "--graph", "complete:4",
                "--faults", "1", "--attempts", "5", "--trace", trace,
            ]
        ) == 0
        assert obs.read_trace(trace)["meta"]["events"] > 0
        assert main(["sweep", "nodes", "--faults", "1", "--metrics"]) == 0
        assert "run.sweep.points" in capsys.readouterr().out


class TestProfile:
    def _write_trace(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        main(
            [
                "campaign", "--protocol", "naive", "--graph", "complete:4",
                "--links", "2", "--attempts", "10", "--trace", path,
            ]
        )
        capsys.readouterr()
        return path

    def test_summary_events_metrics(self, tmp_path, capsys):
        path = self._write_trace(tmp_path, capsys)
        assert main(["profile", "summary", path]) == 0
        assert "events by kind:" in capsys.readouterr().out
        assert main(
            ["profile", "events", path, "--kind", "round_end", "--limit", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "round_end" in out and "(2 of" in out
        assert main(["profile", "metrics", path]) == 0
        assert "run.rounds.total" in capsys.readouterr().out

    def test_missing_file_is_a_cli_error(self, tmp_path, capsys):
        assert main(["profile", "summary", str(tmp_path / "no.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestCacheStatsMigration:
    def test_attack_cache_stats_rendered_from_registry(self, capsys):
        assert main(
            [
                "attack", "--protocol", "naive", "--graph", "complete:4",
                "--faults", "1", "--attempts", "5", "--cache-stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "hit rate" in out

    def test_campaign_cache_stats_rendered_from_registry(self, capsys):
        assert main(
            [
                "campaign", "--protocol", "naive", "--graph", "complete:4",
                "--links", "2", "--attempts", "10", "--cache-stats",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "cache:" in out and "hit rate" in out
