"""Connectivity bounds for the timed problems (Sections 4–5, general
case: "the connectivity bound follows as for Byzantine agreement").

For a graph with ``c(G) <= 2f``, split a cut into halves ``b, d`` and
stretch the §3.2 two-copy construction into a **cyclic m-fold cover**:
``m`` copies of ``G`` in a ring, every ``a``–``d`` edge re-routed to
the next copy.  Information crosses copy boundaries only over those
edges, so — with the Bounded-Delay Locality axiom — a copy at ring
distance ``k`` from the opposite-input region behaves like an
all-correct run of ``G`` through time ``k·δ``.  The agreement chain
then alternates around the ring of copies:

    A(i) = (a ∪ b ∪ c)@i        (the d half masquerades)
    B(i) = a@i ∪ (d ∪ c)@(i+1)  (the b half masquerades)

each a correct behavior of ``G`` sharing correct nodes with its
neighbors — while the two input halves of the ring are pinned to
different outcomes.  Somewhere the chain snaps; the engine returns the
snapped link.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..graphs.coverings import (
    CyclicCover,
    connectivity_cyclic_cover,
    cut_partition_for_connectivity,
)
from ..graphs.graph import CommunicationGraph, NodeId
from ..problems.byzantine import WeakAgreementSpec
from ..problems.firing_squad import FiringSquadSpec
from ..runtime.timed.device import DeviceFactory
from ..runtime.timed.executor import run_timed
from ..runtime.timed.system import install_in_covering_timed, make_timed_system
from .timed_argument import TimedArgumentError, build_base_behavior_timed
from .weak import _AllCorrectStub, ring_parameter
from .witness import CheckedBehavior, ImpossibilityWitness

_WEAK_SPEC = WeakAgreementSpec()
_FIRE_SPEC = FiringSquadSpec()


def _scenario_sets(
    cover: CyclicCover,
    side_a: set[NodeId],
    cut_b: set[NodeId],
    side_c: set[NodeId],
    cut_d: set[NodeId],
) -> list[tuple[str, list[NodeId]]]:
    sets = []
    m = cover.fold
    for i in range(m):
        a_i = [cover.copy_of(v, i) for v in sorted(side_a, key=str)]
        b_i = [cover.copy_of(v, i) for v in sorted(cut_b, key=str)]
        c_i = [cover.copy_of(v, i) for v in sorted(side_c, key=str)]
        c_next = [cover.copy_of(v, i + 1) for v in sorted(side_c, key=str)]
        d_next = [cover.copy_of(v, i + 1) for v in sorted(cut_d, key=str)]
        sets.append((f"A{i}", a_i + b_i + c_i))
        sets.append((f"B{i}", a_i + d_next + c_next))
    return sets


def _run_cyclic_construction(
    graph: CommunicationGraph,
    factories: Mapping[NodeId, DeviceFactory],
    max_faults: int,
    delta: float,
    copies_half: int,
    horizon: float,
):
    parts = cut_partition_for_connectivity(graph, max_faults)
    side_a, cut_b, side_c, cut_d = parts
    m = 2 * copies_half
    cover = connectivity_cyclic_cover(
        graph, cut_b, cut_d, side_a, side_c, copies=m
    )
    cover_inputs = {}
    for i in range(m):
        value = 1 if i < copies_half else 0
        for v in graph.nodes:
            cover_inputs[cover.copy_of(v, i)] = value
    cover_system = install_in_covering_timed(
        cover.covering, factories, cover_inputs, delay=delta
    )
    cover_behavior = run_timed(cover_system, horizon)
    return parts, cover, cover_system, cover_behavior


def _check_middles(
    cover: CyclicCover,
    cover_behavior,
    references: Mapping[int, object],
    graph: CommunicationGraph,
    through: float,
) -> list[dict]:
    """The bounded-delay indistinguishability step: every node of the
    middle copy of each half behaves like the all-correct reference."""
    middles = []
    for copy_index, reference in references.items():
        for v in graph.nodes:
            node = cover.copy_of(v, copy_index)
            if not cover_behavior.node(node).prefix_equal(
                reference.node(v), through=through
            ):
                raise TimedArgumentError(
                    f"indistinguishability failed at {node!r}: candidate "
                    "devices are nondeterministic"
                )
            middles.append(
                {
                    "node": node,
                    "copy": copy_index,
                    "decision": cover_behavior.node(node).decision,
                    "fire_time": cover_behavior.node(node).fire_time,
                }
            )
    return middles


def refute_weak_agreement_connectivity(
    graph: CommunicationGraph,
    factories: Mapping[NodeId, DeviceFactory],
    max_faults: int,
    delta: float,
    decision_deadline: float,
    horizon_slack: float = 2.0,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Theorem 2's connectivity bound: weak agreement is impossible
    with ``c(G) <= 2f`` under Bounded-Delay Locality."""
    run0 = run_timed(
        make_timed_system(
            graph, factories, {u: 0 for u in graph.nodes}, delay=delta
        ),
        horizon=decision_deadline,
    )
    run1 = run_timed(
        make_timed_system(
            graph, factories, {u: 1 for u in graph.nodes}, delay=delta
        ),
        horizon=decision_deadline,
    )
    for label, reference, value in (("all-0", run0, 0), ("all-1", run1, 1)):
        verdict = _WEAK_SPEC.check(
            {u: value for u in graph.nodes},
            reference.decisions(),
            graph.nodes,
            all_correct=True,
        )
        if not verdict.ok:
            return ImpossibilityWitness(
                problem="weak-agreement",
                bound="2f+1 connectivity",
                graph=graph,
                max_faults=max_faults,
                checked=(
                    CheckedBehavior(
                        constructed=_AllCorrectStub(
                            label=label,
                            scenario_nodes=tuple(graph.nodes),
                            correct_nodes=frozenset(graph.nodes),
                        ),
                        verdict=verdict,
                    ),
                ),
                extra={"stage": "all-correct reference runs"},
            )

    t_prime = max(run0.max_decision_time(), run1.max_decision_time())
    k = ring_parameter(t_prime, delta)
    copies_half = 2 * k
    horizon = max(k * delta, t_prime) * horizon_slack
    parts, cover, cover_system, cover_behavior = _run_cyclic_construction(
        graph, factories, max_faults, delta, copies_half, horizon
    )
    side_a, cut_b, side_c, cut_d = parts

    middles = _check_middles(
        cover, cover_behavior, {k: run1, 3 * k: run0}, graph, t_prime
    )
    checked = []
    for label, nodes in _scenario_sets(cover, side_a, cut_b, side_c, cut_d):
        constructed = build_base_behavior_timed(
            cover.covering, cover_system, cover_behavior, nodes, factories,
            label=label,
        )
        verdict = _WEAK_SPEC.check(
            constructed.inputs,
            constructed.decisions(),
            constructed.correct_nodes,
            all_correct=False,
        )
        checked.append(CheckedBehavior(constructed=constructed, verdict=verdict))

    witness = ImpossibilityWitness(
        problem="weak-agreement",
        bound=f"2f+1 connectivity (cyclic {2 * copies_half}-fold cover)",
        graph=graph,
        max_faults=max_faults,
        checked=tuple(checked),
        extra={
            "t_prime": t_prime,
            "k": k,
            "copies": 2 * copies_half,
            "middles": middles,
        },
    )
    if require_violation:
        witness.require_found()
    return witness


def refute_firing_squad_connectivity(
    graph: CommunicationGraph,
    factories: Mapping[NodeId, DeviceFactory],
    max_faults: int,
    delta: float,
    fire_deadline: float,
    horizon_slack: float = 2.0,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Theorem 4's connectivity bound, by the same cyclic construction."""
    stimulated = run_timed(
        make_timed_system(
            graph, factories, {u: 1 for u in graph.nodes}, delay=delta
        ),
        horizon=fire_deadline,
    )
    quiet = run_timed(
        make_timed_system(
            graph, factories, {u: 0 for u in graph.nodes}, delay=delta
        ),
        horizon=fire_deadline,
    )
    for label, reference, inputs in (
        ("all-stimulated", stimulated, {u: 1 for u in graph.nodes}),
        ("all-quiet", quiet, {u: 0 for u in graph.nodes}),
    ):
        verdict = _FIRE_SPEC.check(
            inputs, reference.fire_times(), graph.nodes, all_correct=True
        )
        if not verdict.ok:
            return ImpossibilityWitness(
                problem="byzantine-firing-squad",
                bound="2f+1 connectivity",
                graph=graph,
                max_faults=max_faults,
                checked=(
                    CheckedBehavior(
                        constructed=_AllCorrectStub(
                            label=label,
                            scenario_nodes=tuple(graph.nodes),
                            correct_nodes=frozenset(graph.nodes),
                        ),
                        verdict=verdict,
                    ),
                ),
                extra={"stage": "all-correct reference runs"},
            )

    t_fire = max(
        t for t in stimulated.fire_times().values() if t is not None
    )
    k = ring_parameter(t_fire, delta)
    copies_half = 2 * k
    horizon = max(k * delta, t_fire) * horizon_slack
    parts, cover, cover_system, cover_behavior = _run_cyclic_construction(
        graph, factories, max_faults, delta, copies_half, horizon
    )
    side_a, cut_b, side_c, cut_d = parts

    middles = _check_middles(
        cover, cover_behavior, {k: stimulated, 3 * k: quiet}, graph, t_fire
    )
    checked = []
    for label, nodes in _scenario_sets(cover, side_a, cut_b, side_c, cut_d):
        constructed = build_base_behavior_timed(
            cover.covering, cover_system, cover_behavior, nodes, factories,
            label=label,
        )
        verdict = _FIRE_SPEC.check(
            constructed.inputs,
            constructed.fire_times(),
            constructed.correct_nodes,
            all_correct=False,
        )
        checked.append(CheckedBehavior(constructed=constructed, verdict=verdict))

    witness = ImpossibilityWitness(
        problem="byzantine-firing-squad",
        bound=f"2f+1 connectivity (cyclic {2 * copies_half}-fold cover)",
        graph=graph,
        max_faults=max_faults,
        checked=tuple(checked),
        extra={
            "fire_time": t_fire,
            "k": k,
            "copies": 2 * copies_half,
            "middles": middles,
        },
    )
    if require_violation:
        witness.require_found()
    return witness


def refute_clock_sync_connectivity(
    graph: CommunicationGraph,
    factories: Mapping[NodeId, DeviceFactory],
    max_faults: int,
    setting,
    delay: float = 0.125,
    require_violation: bool = True,
    tolerance: float = 1e-7,
) -> ImpossibilityWitness:
    """Theorem 8's connectivity bound: nontrivial synchronization is
    impossible with ``c(G) <= 2f`` under the Scaling axiom.

    The triangle ring of ever-slower clocks becomes a chain of ``k+2``
    *copies* of ``G``, copy ``i`` running every hardware clock at
    ``q∘h⁻ⁱ``.  Scenario ``A(i)`` (one whole copy side) scaled by
    ``hⁱ`` has all clocks ``q``; scenario ``B(i)`` (straddling copies
    ``i`` and ``i+1``) has clocks ``(q, p)`` — both correct behaviors
    of ``G`` by the Fault and Scaling axioms.  The ν-telescoping of
    Lemmas 10–11 then runs copy by copy.
    """
    from ..problems.spec import SpecVerdict, Violation
    from ..runtime.timed.clocks import compose, drift_map, verify_clock_order
    from .clock_sync import choose_k

    verify_clock_order(setting.p, setting.q)
    h = drift_map(setting.p, setting.q)
    k = choose_k(setting)
    copies = k + 2
    side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(
        graph, max_faults
    )
    cover = connectivity_cyclic_cover(
        graph, cut_b, cut_d, side_a, side_c, copies=copies
    )
    copy_clock = [compose(setting.q, h.iterate(-i)) for i in range(copies)]
    cover_clocks = {}
    for i in range(copies):
        for v in graph.nodes:
            cover_clocks[cover.copy_of(v, i)] = copy_clock[i]
    cover_system = install_in_covering_timed(
        cover.covering,
        factories,
        {cover.copy_of(v, i): None for i in range(copies) for v in graph.nodes},
        delay=delay,
        delay_mode="clock",
        cover_clocks=cover_clocks,
    )
    t_double_prime = h.iterate(k)(setting.t_prime)
    horizon = t_double_prime * 1.05 + 1.0
    cover_behavior = run_timed(cover_system, horizon)

    def logical(copy_index, v):
        return cover_behavior.node(
            cover.copy_of(v, copy_index)
        ).logical_value(t_double_prime)

    def part_nodes(part, i):
        return [(v, i) for v in sorted(part, key=str)]

    checked = []
    nu_trace = []
    for i in range(k + 1):
        fast = copy_clock[i](t_double_prime)     # q at scaled time
        slow = copy_clock[i + 1](t_double_prime)  # p at scaled time
        scale = max(1.0, abs(fast), abs(slow))
        tol = tolerance * scale
        bound = setting.lower(fast) - setting.lower(slow) - setting.alpha
        low = setting.lower(slow)
        high = setting.upper(fast)

        scenarios = (
            (
                f"A{i}",
                part_nodes(side_a, i) + part_nodes(cut_b, i)
                + part_nodes(side_c, i),
                frozenset(side_a | cut_b | side_c),
                frozenset(cut_d),
            ),
            (
                f"B{i}",
                part_nodes(side_a, i) + part_nodes(cut_d, i + 1)
                + part_nodes(side_c, i + 1),
                frozenset(side_a | cut_d | side_c),
                frozenset(cut_b),
            ),
        )
        for label, members, correct, faulty in scenarios:
            violations = []
            values = {
                (v, ci): logical(ci, v) for (v, ci) in members
            }
            items = sorted(values.items(), key=lambda kv: str(kv[0]))
            for index, ((v1, c1), val1) in enumerate(items):
                for (v2, c2), val2 in items[index + 1:]:
                    if abs(val1 - val2) > bound + tol:
                        violations.append(
                            Violation(
                                "agreement",
                                f"|C_{v1}@{c1} - C_{v2}@{c2}| = "
                                f"{abs(val1 - val2):.6g} > {bound:.6g} at "
                                f"t'' (scaled scenario {label}·h^{i})",
                                (v1, v2),
                            )
                        )
                if val1 < low - tol or val1 > high + tol:
                    violations.append(
                        Violation(
                            "validity",
                            f"C_{v1}@{c1}(t'') = {val1:.6g} outside "
                            f"[{low:.6g}, {high:.6g}]",
                            (v1,),
                        )
                    )
            checked.append(
                CheckedBehavior(
                    constructed=_AllCorrectStub(
                        label=label,
                        scenario_nodes=tuple(
                            cover.copy_of(v, ci) for (v, ci) in members
                        ),
                        correct_nodes=correct,
                        faulty_nodes=faulty,
                    ),
                    verdict=SpecVerdict(tuple(violations)),
                )
            )
        nu_trace.append(
            {
                "copy": i,
                "min_logical": min(
                    logical(i, v) for v in graph.nodes
                ),
                "nu_min": min(logical(i, v) for v in graph.nodes)
                - setting.lower(copy_clock[i](t_double_prime)),
            }
        )

    witness = ImpossibilityWitness(
        problem="clock-synchronization",
        bound=f"2f+1 connectivity (cyclic {copies}-fold cover; k = {k})",
        graph=graph,
        max_faults=max_faults,
        checked=tuple(checked),
        extra={
            "k": k,
            "copies": copies,
            "t_double_prime": t_double_prime,
            "nu_trace": nu_trace,
        },
    )
    if require_violation:
        witness.require_found()
    return witness
