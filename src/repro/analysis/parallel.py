"""Deterministic parallel drivers for campaigns and sweeps.

Every unit of work this repo fans out — a campaign attempt, a sweep
point, a degradation-frontier budget level — is already deterministic
given its index and a seed.  That makes parallelism *embarrassingly*
safe: evaluate items in any order, merge results back **in item
order**, and the outcome is byte-identical to the serial run.  This
module supplies the one primitive everything else needs:

:class:`ParallelRunner` — an ordered ``map`` over a process pool, with
a serial fallback whenever the platform cannot fork, the pool cannot
be built, or ``jobs <= 1``.

Design notes
------------
* **Fork, not spawn.**  Work functions are closures over configs that
  hold device-factory lambdas; those never survive pickling.  With the
  ``fork`` start method the closure is *inherited* by the children via
  the parent's memory image — only the items (ints, small tuples) and
  the results cross the pipe, so work functions stay arbitrary.  The
  module-level :func:`_call` trampoline is what actually gets pickled
  (by name), and it reads the closure from :data:`_WORK`, set in the
  parent immediately before the pool forks.
* **Results must be picklable.**  Callers return value objects
  (verdict tuples, rows, counterexamples) — never configs carrying
  lambdas.
* **Determinism.**  ``map`` preserves item order (``Pool.map``), so
  "first violation" style reductions in the caller see the same order
  serial execution produced.
* **Per-item fault tolerance.**  A worker exception does not abort the
  whole map: the trampolines ship failures back as values (with the
  item's partially captured telemetry), and the parent re-executes the
  failed item serially.  Only when the serial retry *also* fails does
  the error surface — as an :class:`ItemError` carrying the item's
  index, the item itself, and the worker's captured event payload, so
  a post-mortem knows exactly which unit died and what it had logged.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
from collections.abc import Callable, Iterable, Sequence
from typing import Any, TypeVar

from .. import obs

T = TypeVar("T")
R = TypeVar("R")

logger = logging.getLogger(__name__)


class ItemError(RuntimeError):
    """One work item failed in a worker *and* in the serial retry.

    Carries the item's identity (``index`` into the mapped sequence and
    the ``item`` value itself — for campaigns that is the attempt index
    that seeds the failing scenario) plus ``payload``, the telemetry
    events the worker captured before dying, so the failure's partial
    trace is preserved rather than silently dropped.  The retry's
    exception is chained as ``__cause__``.
    """

    def __init__(
        self,
        index: int,
        item: Any,
        error: BaseException | str,
        payload: tuple = (),
    ) -> None:
        self.index = index
        self.item = item
        self.payload = payload
        super().__init__(
            f"work item #{index} ({item!r}) failed after serial retry: "
            f"{error}"
        )


#: The current work closure, inherited by forked workers.  Only ever
#: set in the parent, immediately before a pool is created.
_WORK: Callable[[Any], Any] | None = None


def _call(item: Any) -> tuple[bool, Any, str | None]:
    """Module-level trampoline (picklable by name) around :data:`_WORK`.

    Returns ``(ok, result, error)`` — exceptions become values so a
    crashing item neither aborts ``Pool.map`` nor loses its identity.
    """
    assert _WORK is not None, "worker forked before _WORK was set"
    try:
        return (True, _WORK(item), None)
    except Exception as exc:
        return (False, None, repr(exc))


def _call_captured(item: Any) -> tuple[bool, tuple[Any, tuple], str | None]:
    """Trampoline that also captures the item's telemetry.

    Forked workers inherit the parent's enabled telemetry; the capture
    sink redirects the item's events into a picklable capsule that
    rides back over the result pipe alongside the result, so the
    parent can replay them in item order.  On failure the partial
    capsule still rides back — post-mortem traces stay complete.
    """
    assert _WORK is not None, "worker forked before _WORK was set"
    with obs.capture() as capsule:
        try:
            result = _WORK(item)
        except Exception as exc:
            return (False, (None, capsule.payload()), repr(exc))
    return (True, (result, capsule.payload()), None)


def fork_available() -> bool:
    """True when the ``fork`` start method exists (Linux, most Unix)."""
    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - exotic platforms
        return False


def available_parallelism() -> int:
    """Best-effort count of cores *this process may actually use*.

    ``os.cpu_count()`` reports the machine's cores, which over-reports
    inside cgroup- or affinity-restricted environments (containers, CI
    runners pinned to one core) and would defeat the single-core
    serial-fallback guard below.  The scheduling affinity mask is the
    honest number where the platform exposes it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # macOS/Windows: no affinity API
        return os.cpu_count() or 1


class ParallelRunner:
    """An ordered parallel ``map`` with a serial fallback.

    ``jobs <= 1`` (or no fork support, a single-core box, or a pool
    failure) degrades to a plain in-process loop — same results, same
    order.  ``jobs > 1`` on a multi-core machine fans items over a
    fork-based process pool.  On one core the pool is pure overhead
    (fork + pipe costs with zero concurrency — the recorded bench run
    measured 0.14x), so it is skipped, with the reason logged once.

    A worker exception fails only its own item: the parent re-executes
    that item serially (see :func:`_call` / :meth:`_retry`), so one
    crashed or OOM-killed unit of work no longer aborts a campaign.
    """

    def __init__(self, jobs: int = 1) -> None:
        self.jobs = max(1, int(jobs))
        self.fallback_reason: str | None = None
        if self.jobs <= 1:
            self.fallback_reason = f"jobs={self.jobs} requests no parallelism"
        elif not fork_available():
            self.fallback_reason = "fork start method unavailable"
        elif available_parallelism() <= 1:
            self.fallback_reason = (
                f"only {available_parallelism()} CPU core available; "
                "a process pool would add overhead without concurrency"
            )
        if self.fallback_reason is not None and self.jobs > 1:
            logger.info(
                "ParallelRunner falling back to serial: %s",
                self.fallback_reason,
            )

    @property
    def parallel(self) -> bool:
        return self.fallback_reason is None

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item; results in item order.

        ``fn`` may be any callable (closures welcome — see module
        docstring); items and results must be picklable when running
        parallel.
        """
        work: Sequence[T] = list(items)
        if not self.parallel or len(work) <= 1:
            return [fn(item) for item in work]
        if obs.is_enabled():
            # Replay each worker's captured events in item order — the
            # merged stream is byte-identical to the serial run's.
            captured = self._pool_map(_call_captured, fn, work)
            results = []
            for result, payload in captured:
                obs.replay(payload)
                results.append(result)
            return results
        return self._pool_map(_call, fn, work)

    def map_captured(
        self, fn: Callable[[T], R], items: Iterable[T]
    ) -> list[tuple[R, tuple]]:
        """Like :meth:`map`, but return ``(result, telemetry payload)``
        pairs *without* replaying the payloads.

        For callers whose serial semantics stop consuming results early
        (first-violation reductions): they replay payloads themselves,
        in item order, exactly as far as the serial run would have
        executed.  Payloads are empty when telemetry is disabled.
        """
        work: Sequence[T] = list(items)
        if not self.parallel or len(work) <= 1:
            out: list[tuple[R, tuple]] = []
            for item in work:
                with obs.capture() as capsule:
                    result = fn(item)
                out.append((result, capsule.payload()))
            return out
        return self._pool_map(_call_captured, fn, work)

    def _retry(
        self,
        captured: bool,
        fn: Callable[[T], Any],
        item: T,
        index: int,
        error: str,
        worker_payload: tuple,
    ) -> Any:
        """Serially re-execute one item whose worker failed.

        A success replaces the failed result (re-captured from scratch,
        so the merged event stream is exactly what an all-healthy run
        produces — the worker's partial capsule is discarded).  A
        second failure raises :class:`ItemError`, preserving the
        worker's partial capsule for post-mortems.
        """
        logger.warning(
            "worker failed on item #%d (%r): %s; re-executing serially",
            index, item, error,
        )
        obs.emit(obs.WORKER_RETRY, index=index, error=error)
        try:
            if captured:
                with obs.capture() as capsule:
                    result = fn(item)
                return (result, capsule.payload())
            return fn(item)
        except Exception as exc:
            raise ItemError(index, item, exc, worker_payload) from exc

    def _pool_map(
        self,
        trampoline: Callable[[Any], Any],
        fn: Callable[[T], Any],
        work: Sequence[T],
    ) -> list[Any]:
        global _WORK
        previous = _WORK
        _WORK = fn
        captured = trampoline is _call_captured
        processes = min(self.jobs, len(work))
        try:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=processes) as pool:
                obs.emit(obs.WORKER_POOL, processes=processes, items=len(work))
                wrapped = pool.map(trampoline, work)
                obs.emit(obs.WORKER_MERGE, items=len(wrapped))
        except (OSError, ValueError) as exc:  # pool could not be built
            logger.info(
                "ParallelRunner falling back to serial: pool failed (%s)",
                exc,
            )
            if captured:
                out = []
                for item in work:
                    with obs.capture() as capsule:
                        result = fn(item)
                    out.append((result, capsule.payload()))
                return out
            return [fn(item) for item in work]
        finally:
            _WORK = previous
        results: list[Any] = []
        for index, (ok, value, error) in enumerate(wrapped):
            if ok:
                results.append(value)
                continue
            worker_payload = value[1] if captured and value else ()
            results.append(
                self._retry(
                    captured, fn, work[index], index, error or "unknown",
                    worker_payload,
                )
            )
        return results


__all__ = [
    "ItemError",
    "ParallelRunner",
    "available_parallelism",
    "fork_available",
]
