"""Unit tests of the timed covering-argument machinery."""

import pytest

from repro.core import (
    TimedArgumentError,
    build_base_behavior_timed,
)
from repro.graphs import ring_cover_of_triangle, triangle
from repro.protocols import ExchangeOnceWeakDevice
from repro.runtime.timed import (
    install_in_covering_timed,
    run_timed,
)


def ring_setup(delta=1.0, horizon=4.0):
    covering = ring_cover_of_triangle(12)
    factories = {
        u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0))
        for u in triangle().nodes
    }
    ring_nodes = covering.cover.nodes
    cover_inputs = {
        node: 1 if i < 6 else 0 for i, node in enumerate(ring_nodes)
    }
    cover_system = install_in_covering_timed(
        covering, factories, cover_inputs, delay=delta
    )
    cover_behavior = run_timed(cover_system, horizon)
    return covering, factories, cover_system, cover_behavior


class TestBuildTimedBaseBehavior:
    def test_two_correct_one_replay(self):
        covering, factories, cover_system, cover_behavior = ring_setup()
        nodes = covering.cover.nodes
        constructed = build_base_behavior_timed(
            covering, cover_system, cover_behavior, [nodes[2], nodes[3]],
            factories,
        )
        assert len(constructed.correct_nodes) == 2
        assert len(constructed.faulty_nodes) == 1

    def test_inputs_copied_from_cover(self):
        covering, factories, cover_system, cover_behavior = ring_setup()
        nodes = covering.cover.nodes
        constructed = build_base_behavior_timed(
            covering, cover_system, cover_behavior, [nodes[5], nodes[6]],
            factories,
        )
        # Node 5 has input 1, node 6 has input 0 (the half boundary).
        assert sorted(constructed.inputs.values()) == [0, 1]

    def test_decisions_match_covering(self):
        covering, factories, cover_system, cover_behavior = ring_setup()
        nodes = covering.cover.nodes
        constructed = build_base_behavior_timed(
            covering, cover_system, cover_behavior, [nodes[0], nodes[1]],
            factories,
        )
        for ring_node in (nodes[0], nodes[1]):
            base_node = covering(ring_node)
            assert (
                constructed.behavior.node(base_node).decision
                == cover_behavior.node(ring_node).decision
            )

    def test_same_fiber_scenario_rejected(self):
        covering, factories, cover_system, cover_behavior = ring_setup()
        nodes = covering.cover.nodes
        with pytest.raises(TimedArgumentError):
            build_base_behavior_timed(
                covering, cover_system, cover_behavior,
                [nodes[0], nodes[3]],  # both map to the same base node
                factories,
            )

    def test_time_map_shifts_replay(self):
        """A scaled reconstruction with h = 2t halves all event times."""
        covering, factories, cover_system, cover_behavior = ring_setup()
        nodes = covering.cover.nodes

        # Identity-clock devices are not time-invariant under scaling
        # (they set timers at fixed clock values = real values), so a
        # pure time_map without matching clock scaling must FAIL the
        # locality check — which is itself a meaningful property: the
        # engine notices that scaling without the Scaling axiom's
        # clock adjustment is unsound.
        with pytest.raises(TimedArgumentError):
            build_base_behavior_timed(
                covering,
                cover_system,
                cover_behavior,
                [nodes[0], nodes[1]],
                factories,
                time_map=lambda t: t / 2,
                time_tolerance=1e-9,
            )
