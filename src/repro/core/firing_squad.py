"""Theorem 4, executable: the Byzantine firing squad problem cannot be
solved in inadequate graphs under the Bounded-Delay Locality axiom.

Section 5's construction mirrors weak agreement: measure ``t``, the
fire time of the all-correct stimulated behavior; pick ``k >= t/δ`` (a
multiple of 3); run the ``4k``-ring cover with one half stimulated.
The stimulated middle fires at ``t`` (its view is identical to the
stimulated triangle run through ``k·δ >= t``), the unstimulated middle
does not (its view is identical to the quiet run), yet every adjacent
pair is a correct behavior of the triangle whose correct nodes must
fire simultaneously or not at all.  Somewhere around the ring that
breaks, and the engine returns the pair.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..graphs.builders import triangle
from ..graphs.coverings import ring_cover_of_triangle
from ..graphs.graph import CommunicationGraph, NodeId
from ..problems.firing_squad import FiringSquadSpec
from ..runtime.timed.device import DeviceFactory
from ..runtime.timed.executor import run_timed
from ..runtime.timed.system import install_in_covering_timed, make_timed_system
from .timed_argument import TimedArgumentError, build_base_behavior_timed
from .weak import _AllCorrectStub, ring_parameter
from .witness import CheckedBehavior, ImpossibilityWitness

_SPEC = FiringSquadSpec()


def refute_firing_squad(
    factories: Mapping[NodeId, DeviceFactory],
    delta: float,
    fire_deadline: float,
    base: CommunicationGraph | None = None,
    horizon_slack: float = 2.0,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Refute claimed firing-squad devices for the triangle.

    ``fire_deadline`` is the claimed bound on the fire time when the
    stimulus occurs and all nodes are correct; missing it (or firing
    without a stimulus) is already a validity violation.
    """
    base = base or triangle()
    stimulated = run_timed(
        make_timed_system(
            base, factories, {u: 1 for u in base.nodes}, delay=delta
        ),
        horizon=fire_deadline,
    )
    quiet = run_timed(
        make_timed_system(
            base, factories, {u: 0 for u in base.nodes}, delay=delta
        ),
        horizon=fire_deadline,
    )
    for label, reference, inputs in (
        ("all-stimulated", stimulated, {u: 1 for u in base.nodes}),
        ("all-quiet", quiet, {u: 0 for u in base.nodes}),
    ):
        verdict = _SPEC.check(
            inputs, reference.fire_times(), base.nodes, all_correct=True
        )
        if not verdict.ok:
            return ImpossibilityWitness(
                problem="byzantine-firing-squad",
                bound="3f+1 nodes",
                graph=base,
                max_faults=1,
                checked=(
                    CheckedBehavior(
                        constructed=_AllCorrectStub(
                            label=label,
                            scenario_nodes=tuple(base.nodes),
                            correct_nodes=frozenset(base.nodes),
                        ),
                        verdict=verdict,
                    ),
                ),
                extra={"stage": "all-correct reference runs"},
            )

    fire_times = [stimulated.node(u).fire_time for u in base.nodes]
    t_fire = max(fire_times)
    k = ring_parameter(t_fire, delta)  # k·δ > t ≥ the paper's k ≥ t/δ
    ring_size = 4 * k
    covering = ring_cover_of_triangle(ring_size, base)
    ring_nodes = covering.cover.nodes
    cover_inputs = {
        node: 1 if index < 2 * k else 0
        for index, node in enumerate(ring_nodes)
    }
    cover_system = install_in_covering_timed(
        covering, factories, cover_inputs, delay=delta
    )
    horizon = max(k * delta, t_fire) * horizon_slack
    cover_behavior = run_timed(cover_system, horizon)

    # The indistinguishability step, checked operationally.
    middles = []
    for index, reference in ((k - 1, stimulated), (k, stimulated),
                             (3 * k - 1, quiet), (3 * k, quiet)):
        node = ring_nodes[index]
        if not cover_behavior.node(node).prefix_equal(
            reference.node(covering(node)), through=t_fire
        ):
            raise TimedArgumentError(
                f"bounded-delay indistinguishability failed at {node!r}"
            )
        middles.append(
            {
                "node": node,
                "stimulated": cover_inputs[node] == 1,
                "fire_time": cover_behavior.node(node).fire_time,
            }
        )

    checked: list[CheckedBehavior] = []
    for i in range(ring_size):
        pair = [ring_nodes[i], ring_nodes[(i + 1) % ring_size]]
        constructed = build_base_behavior_timed(
            covering, cover_system, cover_behavior, pair, factories,
            label=f"E{i}",
        )
        verdict = _SPEC.check(
            constructed.inputs,
            constructed.fire_times(),
            constructed.correct_nodes,
            all_correct=False,
        )
        checked.append(
            CheckedBehavior(constructed=constructed, verdict=verdict)
        )

    witness = ImpossibilityWitness(
        problem="byzantine-firing-squad",
        bound=f"3f+1 nodes (Bounded-Delay Locality, δ={delta})",
        graph=base,
        max_faults=1,
        checked=tuple(checked),
        extra={
            "fire_time": t_fire,
            "k": k,
            "ring_size": ring_size,
            "middles": middles,
        },
    )
    if require_violation:
        witness.require_found()
    return witness


def fire_time_profile(witness: ImpossibilityWitness) -> list[tuple[str, dict]]:
    """Fire times of the correct pair in each constructed behavior —
    showing the FIRE wave break around the ring."""
    profile = []
    for checked in witness.checked:
        constructed = checked.constructed
        profile.append(
            (
                checked.label,
                {
                    str(u): constructed.behavior.node(u).fire_time
                    for u in constructed.correct_nodes
                },
            )
        )
    return profile

