"""Checkpointing must be invisible: resumed runs are byte-identical.

The contract under test: a campaign/frontier/sweep journaling to a run
store, interrupted at any point (journal truncation here, a literal
SIGKILL of the driver process in ``TestKillAndResume``) and resumed
against the same store, produces byte-identical results, witness
files, and exported telemetry traces to an uninterrupted run — for any
``--jobs`` value and with ``--orbit-dedup --incremental`` on.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import obs
from repro.analysis.campaign import (
    CampaignConfig,
    campaign_store_key,
    degradation_frontier,
    frontier_store_key,
    run_campaign,
)
from repro.analysis.runstore import RunStore
from repro.analysis.sweep import node_bound_sweep, sweep_store_key
from repro.analysis.witness_io import campaign_to_dict
from repro.graphs.builders import complete_graph
from repro.protocols.eig import eig_devices
from repro.protocols.naive import MajorityVoteDevice


def _naive_factory(graph):
    return {u: MajorityVoteDevice() for u in graph.nodes}


def _eig_factory(graph):
    return dict(eig_devices(graph, 1))


def _surviving_config():
    # EIG tolerates these tiny drop-only budgets: the campaign scans
    # every attempt, so the journal exercises the full span.
    return CampaignConfig(
        graph=complete_graph(4),
        device_factory=_eig_factory,
        rounds=2,
        max_link_faults=1,
        attempts=6,
        seed=5,
        link_kinds=("drop",),
    )


def _breaking_config():
    return CampaignConfig(
        graph=complete_graph(4),
        device_factory=_naive_factory,
        rounds=3,
        max_link_faults=2,
        attempts=40,
        seed=11,
    )


def _as_json(result):
    return json.dumps(campaign_to_dict(result), sort_keys=True)


def _run_traced(fn):
    """Run ``fn`` under fresh telemetry; return (result, trace lines)."""
    obs.enable()
    try:
        result = fn()
        return result, list(obs.trace_lines())
    finally:
        obs.reset()


def _truncate_journal(store_dir, key, keep):
    path = Path(store_dir) / "shards" / f"{key}.jsonl"
    lines = path.read_text().splitlines()
    assert len(lines) > keep, "journal too short to truncate meaningfully"
    # Leave a torn tail behind the kept prefix — the crash signature.
    path.write_text("\n".join(lines[:keep]) + '\n{"k": "attempt')
    return len(lines)


class TestCampaignResumeEquivalence:
    @pytest.mark.parametrize("jobs", [1, 4])
    @pytest.mark.parametrize("optimized", [False, True])
    def test_resumed_equals_uninterrupted(self, tmp_path, jobs, optimized):
        config = _surviving_config()
        kwargs = dict(
            jobs=jobs,
            orbit_dedup=optimized,
            incremental=True if optimized else None,
        )
        golden, golden_trace = _run_traced(lambda: run_campaign(config))
        key = campaign_store_key(config)

        with RunStore(tmp_path).shard(key) as shard:
            first, first_trace = _run_traced(
                lambda: run_campaign(config, store=shard, **kwargs)
            )
        total = _truncate_journal(tmp_path, key, keep=3)
        assert total == config.attempts
        with RunStore(tmp_path).shard(key) as shard:
            resumed, resumed_trace = _run_traced(
                lambda: run_campaign(config, store=shard, **kwargs)
            )

        assert _as_json(golden) == _as_json(first) == _as_json(resumed)
        assert golden_trace == first_trace == resumed_trace

    def test_breaking_campaign_resumes_to_same_counterexample(
        self, tmp_path
    ):
        config = _breaking_config()
        golden = run_campaign(config)
        assert golden.broken
        key = campaign_store_key(config)
        with RunStore(tmp_path).shard(key) as shard:
            first = run_campaign(config, store=shard)
        with RunStore(tmp_path).shard(key) as shard:
            resumed = run_campaign(config, store=shard)
        assert _as_json(golden) == _as_json(first) == _as_json(resumed)

    def test_checkpoint_reuse_events_are_host_scope(self, tmp_path):
        config = _surviving_config()
        key = campaign_store_key(config)
        with RunStore(tmp_path).shard(key) as shard:
            _run_traced(lambda: run_campaign(config, store=shard))
        obs.enable()
        try:
            with RunStore(tmp_path).shard(key) as shard:
                run_campaign(config, store=shard)
            counts = obs.get_log().kind_counts
            assert counts.get(obs.CHECKPOINT_REUSE, 0) == config.attempts
            # Reuse facts must never reach the exported trace.
            assert not any(
                f'"kind": "{obs.CHECKPOINT_REUSE}"' in line
                for line in obs.trace_lines()
            )
        finally:
            obs.reset()

    def test_telemetry_off_journal_not_reused_by_traced_resume(
        self, tmp_path
    ):
        # Records journaled without telemetry carry no event payload;
        # a traced resume must re-execute them to keep the trace whole.
        config = _surviving_config()
        key = campaign_store_key(config)
        with RunStore(tmp_path).shard(key) as shard:
            run_campaign(config, store=shard)  # telemetry off
        golden, golden_trace = _run_traced(lambda: run_campaign(config))
        with RunStore(tmp_path).shard(key) as shard:
            resumed, resumed_trace = _run_traced(
                lambda: run_campaign(config, store=shard)
            )
        assert _as_json(golden) == _as_json(resumed)
        assert golden_trace == resumed_trace


class TestFrontierResumeEquivalence:
    def test_resumed_frontier_identical(self, tmp_path):
        config = _breaking_config()
        golden, golden_trace = _run_traced(
            lambda: degradation_frontier(
                config, max_link_faults=2, attempts_per_level=12
            )
        )
        key = frontier_store_key(
            config, max_link_faults=2, attempts_per_level=12
        )
        with RunStore(tmp_path).shard(key) as shard:
            first, first_trace = _run_traced(
                lambda: degradation_frontier(
                    config, max_link_faults=2, attempts_per_level=12,
                    store=shard,
                )
            )
        # Drop the last journaled level; resume recomputes just it.
        path = tmp_path / "shards" / f"{key}.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")
        with RunStore(tmp_path).shard(key) as shard:
            resumed, resumed_trace = _run_traced(
                lambda: degradation_frontier(
                    config, max_link_faults=2, attempts_per_level=12,
                    store=shard,
                )
            )
        assert golden == first == resumed
        assert golden_trace == first_trace == resumed_trace


class TestSweepResumeEquivalence:
    def test_resumed_sweep_identical(self, tmp_path):
        golden, golden_trace = _run_traced(lambda: node_bound_sweep((1,)))
        key = sweep_store_key("nodes", [1])
        with RunStore(tmp_path).shard(key) as shard:
            first, first_trace = _run_traced(
                lambda: node_bound_sweep((1,), store=shard)
            )
        path = tmp_path / "shards" / f"{key}.jsonl"
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:1]) + "\n")
        with RunStore(tmp_path).shard(key) as shard:
            resumed, resumed_trace = _run_traced(
                lambda: node_bound_sweep((1,), store=shard)
            )
        assert golden == first == resumed
        assert golden_trace == first_trace == resumed_trace


class TestKillAndResume:
    """SIGKILL the driver mid-campaign, then ``repro resume``."""

    ARGS = [
        "--seed", "5", "campaign", "--protocol", "eig",
        "--graph", "complete:4", "--links", "1", "--kinds", "drop",
        "--rounds", "2", "--attempts", "600",
    ]

    def _env(self):
        env = dict(os.environ)
        root = Path(__file__).resolve().parents[2]
        env["PYTHONPATH"] = str(root / "src")
        return env

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        env = self._env()
        golden_json = tmp_path / "golden.json"
        golden_trace = tmp_path / "golden.trace"
        subprocess.run(
            [sys.executable, "-m", "repro", *self.ARGS,
             "--json", str(golden_json), "--trace", str(golden_trace)],
            check=True, env=env, cwd=tmp_path, capture_output=True,
        )

        store = tmp_path / "store"
        out_json = tmp_path / "out.json"
        out_trace = tmp_path / "out.trace"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *self.ARGS,
             "--json", str(out_json), "--trace", str(out_trace),
             "--checkpoint", str(store)],
            env=env, cwd=tmp_path,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        # Kill once a few attempts are journaled.  If the run finishes
        # first, resume still must reproduce the golden output.
        deadline = time.monotonic() + 60
        try:
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break
                shards = list((store / "shards").glob("*.jsonl")) if (
                    store / "shards"
                ).is_dir() else []
                if shards and len(
                    shards[0].read_text().splitlines()
                ) >= 3:
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.05)
            proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        resumed = subprocess.run(
            [sys.executable, "-m", "repro", "resume", str(store)],
            check=True, env=env, cwd=tmp_path, capture_output=True,
            text=True,
        )
        assert resumed.returncode == 0
        assert out_json.read_text() == golden_json.read_text()
        assert out_trace.read_bytes() == golden_trace.read_bytes()

    def test_resume_on_missing_store_is_clean_error(self, tmp_path):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "resume",
             str(tmp_path / "nowhere")],
            env=self._env(), cwd=tmp_path, capture_output=True, text=True,
        )
        assert result.returncode == 2
        assert result.stderr.startswith("error:")
