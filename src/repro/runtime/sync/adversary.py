"""Faulty devices for the synchronous model.

The star of this module is :class:`ReplayDevice`, the operational form
of the paper's **Fault axiom**: given recorded edge behaviors
``E_1 .. E_d`` (each the behavior of the i-th outedge of a node running
``A`` in *some* system behavior), there is a device ``F_A(E_1..E_d)``
whose outedges exhibit exactly those behaviors.  A replay device simply
plays back a prerecorded message sequence on each port, ignoring
everything it hears — the ultimate masquerade.

The remaining devices are garden-variety Byzantine adversaries used to
stress the positive protocols: crash, silence, random lies, and
two-faced equivocation.
"""

from __future__ import annotations

import random
from collections.abc import Mapping, Sequence
from typing import Any

from .behavior import EdgeBehavior
from .device import Message, NodeContext, PortLabel, State, SyncDevice


class ReplayDevice(SyncDevice):
    """The Fault-axiom device ``F_A(E_1, ..., E_d)``.

    Parameters
    ----------
    per_port:
        For each port label, the message sequence to play back (an
        :class:`EdgeBehavior` or plain sequence).  Ports not listed send
        nothing.  Beyond the end of a recorded sequence the device sends
        ``None``.
    """

    def __init__(
        self, per_port: Mapping[PortLabel, EdgeBehavior | Sequence[Message]]
    ) -> None:
        self._scripts: dict[PortLabel, tuple[Message, ...]] = {}
        for label, script in per_port.items():
            if isinstance(script, EdgeBehavior):
                self._scripts[label] = script.messages
            else:
                self._scripts[label] = tuple(script)

    def init_state(self, ctx: NodeContext) -> State:
        return ("replay",)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        out = {}
        for label in ctx.ports:
            script = self._scripts.get(label, ())
            if round_index < len(script):
                out[label] = script[round_index]
        return out

    def transition(self, ctx, state, round_index, inbox) -> State:
        return state

    def scripted_rounds(self) -> int:
        """Longest scripted port; useful for choosing run horizons."""
        return max((len(s) for s in self._scripts.values()), default=0)


class CrashDevice(SyncDevice):
    """Runs an underlying device faithfully, then crashes: after
    ``crash_round`` it sends nothing, forever."""

    def __init__(self, inner: SyncDevice, crash_round: int) -> None:
        self._inner = inner
        self._crash_round = crash_round

    def init_state(self, ctx: NodeContext) -> State:
        return self._inner.init_state(ctx)

    def send(self, ctx, state, round_index) -> Mapping[PortLabel, Message]:
        if round_index >= self._crash_round:
            return {}
        return self._inner.send(ctx, state, round_index)

    def transition(self, ctx, state, round_index, inbox) -> State:
        if round_index >= self._crash_round:
            return state
        return self._inner.transition(ctx, state, round_index, inbox)


class SilentDevice(SyncDevice):
    """Sends nothing, ever."""

    def init_state(self, ctx: NodeContext) -> State:
        return ("silent",)

    def send(self, ctx, state, round_index) -> dict[PortLabel, Message]:
        return {}

    def transition(self, ctx, state, round_index, inbox) -> State:
        return state


class RandomLiarDevice(SyncDevice):
    """Sends pseudo-random values drawn from a pool, independently per
    port and round.  Deterministic given the seed (so systems containing
    it still have a single behavior)."""

    def __init__(self, seed: int, value_pool: Sequence[Any] = (0, 1)) -> None:
        self._seed = seed
        self._pool = tuple(value_pool)

    def init_state(self, ctx: NodeContext) -> State:
        return ("liar", self._seed)

    def send(self, ctx, state, round_index) -> dict[PortLabel, Message]:
        out = {}
        for label in ctx.ports:
            rng = random.Random(f"{self._seed}:{round_index}:{label!r}")
            out[label] = rng.choice(self._pool)
        return out

    def transition(self, ctx, state, round_index, inbox) -> State:
        return state


class TwoFacedDevice(SyncDevice):
    """Equivocator: runs one honest device toward one subset of ports
    and another honest device toward the rest.

    This is the classic "traitorous general" that tells half the army
    attack and the other half retreat; it is the qualitative behavior
    the Fault axiom bottles and the covering constructions exploit.
    """

    def __init__(
        self,
        face_one: SyncDevice,
        face_two: SyncDevice,
        ports_for_one: Sequence[PortLabel],
    ) -> None:
        self._one = face_one
        self._two = face_two
        self._ports_one = frozenset(ports_for_one)

    def _split(self, ctx: NodeContext) -> tuple[NodeContext, NodeContext]:
        ports_one = tuple(p for p in ctx.ports if p in self._ports_one)
        ports_two = tuple(p for p in ctx.ports if p not in self._ports_one)
        return (
            NodeContext(ports=ports_one, input=ctx.input),
            NodeContext(ports=ports_two, input=ctx.input),
        )

    def init_state(self, ctx: NodeContext) -> State:
        ctx1, ctx2 = self._split(ctx)
        return (self._one.init_state(ctx1), self._two.init_state(ctx2))

    def send(self, ctx, state, round_index) -> dict[PortLabel, Message]:
        ctx1, ctx2 = self._split(ctx)
        out: dict[PortLabel, Message] = {}
        out.update(self._one.send(ctx1, state[0], round_index))
        out.update(self._two.send(ctx2, state[1], round_index))
        return out

    def transition(self, ctx, state, round_index, inbox) -> State:
        ctx1, ctx2 = self._split(ctx)
        inbox1 = {p: m for p, m in inbox.items() if p in self._ports_one}
        inbox2 = {p: m for p, m in inbox.items() if p not in self._ports_one}
        return (
            self._one.transition(ctx1, state[0], round_index, inbox1),
            self._two.transition(ctx2, state[1], round_index, inbox2),
        )


class DelayedEchoDevice(SyncDevice):
    """Echoes back whatever it heard last round on each port — a
    "confused but consistent" fault used in protocol stress tests."""

    def init_state(self, ctx: NodeContext) -> State:
        return {label: None for label in ctx.ports}

    def send(self, ctx, state, round_index) -> dict[PortLabel, Message]:
        return {label: state[label] for label in ctx.ports}

    def transition(self, ctx, state, round_index, inbox) -> State:
        return dict(inbox)
