"""Recorded behaviors and scenarios for the synchronous model.

The paper (Section 2) takes node and edge behaviors as primitives and
suggests "a finite or infinite sequence of states" as one concrete
interpretation; that is exactly what we record:

* a **node behavior** is the node's state sequence (one state per round
  boundary) together with its decision history;
* an **edge behavior** is the sequence of messages sent over one
  directed edge, one per round;
* a **system behavior** is the tuple of all node and edge behaviors;
* a **scenario** is the restriction of a system behavior to a subgraph:
  the behaviors of its nodes and of the edges between them.

Equality of behaviors is structural — two behaviors are "identical" in
the paper's sense iff ``==`` holds here.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from typing import Any

from ...graphs.graph import CommunicationGraph, DirectedEdge, GraphError, NodeId


@dataclass(frozen=True)
class NodeBehavior:
    """State trace and decision history of one node.

    ``states[r]`` is the state entering round ``r``; the final entry is
    the state after the last round.  ``decision`` is the first value
    other than ``None`` returned by CHOOSE, with ``decided_at`` the
    round after which it appeared (``None`` if never).
    """

    states: tuple[Any, ...]
    decision: Any | None = None
    decided_at: int | None = None

    @property
    def rounds(self) -> int:
        return len(self.states) - 1

    def prefix(self, rounds: int) -> "NodeBehavior":
        """The behavior through the first ``rounds`` rounds."""
        if rounds > self.rounds:
            raise GraphError(f"behavior has only {self.rounds} rounds")
        if self.decided_at is not None and self.decided_at <= rounds:
            return NodeBehavior(
                self.states[: rounds + 1], self.decision, self.decided_at
            )
        return NodeBehavior(self.states[: rounds + 1])


@dataclass(frozen=True)
class EdgeBehavior:
    """The message sequence sent over one directed edge, one per round."""

    messages: tuple[Any, ...]

    @property
    def rounds(self) -> int:
        return len(self.messages)

    def prefix(self, rounds: int) -> "EdgeBehavior":
        if rounds > self.rounds:
            raise GraphError(f"edge behavior has only {self.rounds} rounds")
        return EdgeBehavior(self.messages[:rounds])


@dataclass(frozen=True)
class Scenario:
    """The restriction of a system behavior to a set of nodes: their
    node behaviors plus the behaviors of edges *between* them.

    The inedge border (messages arriving from outside) is kept
    separately because it is the scenario's interface to the rest of
    the system: the Locality axiom says border + devices + inputs
    determine the scenario.
    """

    nodes: tuple[NodeId, ...]
    node_behaviors: Mapping[NodeId, NodeBehavior]
    edge_behaviors: Mapping[DirectedEdge, EdgeBehavior]
    border_behaviors: Mapping[DirectedEdge, EdgeBehavior]

    def renamed(self, mapping: Mapping[NodeId, NodeId]) -> "Scenario":
        """The same scenario with nodes renamed (e.g. by a covering map).

        Border edge sources outside the mapping keep their names.
        """

        def rn(u: NodeId) -> NodeId:
            return mapping.get(u, u)

        return Scenario(
            nodes=tuple(rn(u) for u in self.nodes),
            node_behaviors={rn(u): b for u, b in self.node_behaviors.items()},
            edge_behaviors={
                (rn(u), rn(v)): b for (u, v), b in self.edge_behaviors.items()
            },
            border_behaviors={
                (rn(u), rn(v)): b
                for (u, v), b in self.border_behaviors.items()
            },
        )

    def core_equal(self, other: "Scenario") -> bool:
        """Identity in the paper's sense: same node and internal edge
        behaviors (borders are the scenarios' inputs, not part of it)."""
        return (
            set(self.nodes) == set(other.nodes)
            and dict(self.node_behaviors) == dict(other.node_behaviors)
            and dict(self.edge_behaviors) == dict(other.edge_behaviors)
        )


@dataclass(frozen=True)
class SyncBehavior:
    """The (unique) behavior of a synchronous system: every node's state
    trace and every directed edge's message trace."""

    graph: CommunicationGraph
    rounds: int
    node_behaviors: Mapping[NodeId, NodeBehavior] = field(default_factory=dict)
    edge_behaviors: Mapping[DirectedEdge, EdgeBehavior] = field(
        default_factory=dict
    )

    def node(self, u: NodeId) -> NodeBehavior:
        return self.node_behaviors[u]

    def edge(self, u: NodeId, v: NodeId) -> EdgeBehavior:
        return self.edge_behaviors[(u, v)]

    def decision(self, u: NodeId) -> Any | None:
        return self.node_behaviors[u].decision

    def decisions(self) -> dict[NodeId, Any | None]:
        return {u: b.decision for u, b in self.node_behaviors.items()}

    def scenario(self, nodes: Iterable[NodeId]) -> Scenario:
        """The scenario of the induced subgraph on ``nodes``."""
        inside = list(dict.fromkeys(nodes))
        inside_set = set(inside)
        for u in inside:
            if u not in self.graph:
                raise GraphError(f"node {u!r} not in system graph")
        edge_behaviors = {
            (u, v): self.edge_behaviors[(u, v)]
            for (u, v) in self.graph.edges
            if u in inside_set and v in inside_set
        }
        border = {
            (u, v): self.edge_behaviors[(u, v)]
            for (u, v) in self.graph.inedge_border(inside_set)
        }
        return Scenario(
            nodes=tuple(inside),
            node_behaviors={u: self.node_behaviors[u] for u in inside},
            edge_behaviors=edge_behaviors,
            border_behaviors=border,
        )
