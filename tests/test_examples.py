"""Integration: every example script runs to completion and prints the
claims it advertises."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "VIOLATED" in out
        assert "impossibility at n = 3f, agreement at n = 3f + 1" in out

    def test_byzantine_generals(self):
        out = run_example("byzantine_generals.py")
        assert "traitor wins" in out
        assert "EIG holds the line" in out
        assert "Dolev–Strong agrees" in out

    def test_sensor_fusion(self):
        out = run_example("sensor_fusion.py")
        assert "fusion converges" in out
        assert "Lemma 7" in out

    def test_clock_synchronization(self):
        out = run_example("clock_synchronization.py")
        assert "averaging beats the trivial skew" in out
        assert "Lemma 9" in out
        assert "Corollary" in out

    def test_firing_squad(self):
        out = run_example("firing_squad_drill.py")
        assert "clean volley" in out
        assert "CORRECT behavior" in out

    def test_adversary_lab(self):
        out = run_example("adversary_lab.py")
        assert "survived" in out
        assert "broken" in out
        assert "masquerades" in out

    def test_network_design(self):
        out = run_example("network_design.py")
        assert "price list" in out
        assert "Under-provisioning" in out
        assert "all conditions satisfied" in out
