"""ASCII renderings of the paper's figures.

The figures in FLM 1985 are its covering-graph diagrams; these
functions regenerate them (with device/input annotations) so the
benchmark reports can show the construction being executed.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..graphs.coverings import CoveringMap
from ..graphs.graph import NodeId


def triangle_figure() -> str:
    """Section 3.1's base graph: the fully connected triangle."""
    return "\n".join(
        [
            "      A",
            "     / \\",
            "    B---C",
        ]
    )


def hexagon_figure(inputs: Mapping[str, object] | None = None) -> str:
    """Section 3.1's covering graph S (two copies of each device)."""
    inputs = inputs or {"u": 0, "v": 0, "w": 0, "x": 1, "y": 1, "z": 1}
    return "\n".join(
        [
            f"      u:A({inputs['u']}) --- v:B({inputs['v']})",
            "     /                    \\",
            f" z:C({inputs['z']})                w:C({inputs['w']})",
            "     \\                    /",
            f"      y:B({inputs['y']}) --- x:A({inputs['x']})",
        ]
    )


def diamond_figure() -> str:
    """Section 3.2's base graph of connectivity two."""
    return "\n".join(
        [
            "      B",
            "     / \\",
            "    A   C      (removing {B, D} disconnects A from C)",
            "     \\ /",
            "      D",
        ]
    )


def eight_ring_figure() -> str:
    """Section 3.2's covering: two copies of the diamond, A-D edges
    crossed, forming one eight-cycle."""
    return "\n".join(
        [
            "    A(0)---B(0)       copy 0: inputs 0",
            "    /         \\",
            " D(1)          C(0)",
            "    \\          |",
            "    C(1)       D(0)",
            "      \\       /",
            "    B(1)---A(1)       copy 1: inputs 1",
        ]
    )


def ring_figure(covering: CoveringMap, inputs: Mapping[NodeId, object]) -> str:
    """The 4k-ring of Sections 4/5 or the (k+2)-ring of Sections 6/7,
    rendered as the paper prints it: a line of device letters with
    inputs beneath."""
    nodes = covering.cover.nodes
    letters = [str(covering(u))[:1].upper() for u in nodes]
    values = [str(inputs.get(u, "")) for u in nodes]
    width = max(len(v) for v in values) if values else 1
    top = " - ".join(letter.center(width) for letter in letters)
    bottom = "   ".join(v.center(width) for v in values)
    return f"(ring) {top} (wraps)\n       {bottom}"


def witness_chain_figure(labels: list[str], shared: list[str]) -> str:
    """The chain E1 ~ E2 ~ ... with the shared correct nodes marked."""
    parts = []
    for i, label in enumerate(labels):
        parts.append(label)
        if i < len(shared):
            parts.append(f"--[{shared[i]}]--")
    return " ".join(parts)
