"""Devices for the synchronous round model.

A *device* (the paper's primitive) is here a deterministic state
machine.  In every round it emits one message per *port* from its state,
then consumes the messages arriving on its ports and moves to a new
state.  A port is a local label for a link to a neighbor; crucially,
devices see **only** their input, their port labels, and incoming
messages — never the identity of the node they run at.  This is what
lets the same device run at several nodes of a covering graph and
behave identically (the Locality axiom).

Port labels are assigned by the :class:`~repro.runtime.sync.system.
SyncSystem`.  On a base graph they default to the neighbors' node ids;
when devices are installed in a covering graph the labels are the
*images* of the neighbors under the covering map, so a device cannot
tell the covering from the base.
"""

from __future__ import annotations

import abc
from collections.abc import Hashable, Mapping
from dataclasses import dataclass
from typing import Any, TypeAlias

PortLabel: TypeAlias = Hashable
Message: TypeAlias = Any
State: TypeAlias = Any


@dataclass(frozen=True)
class NodeContext:
    """Everything a device may legitimately observe about its location.

    Attributes
    ----------
    ports:
        The labels of this node's links, in a fixed order.
    input:
        The node's problem input (a Boolean, a real, a clock, ...).
    """

    ports: tuple[PortLabel, ...]
    input: Any


class SyncDevice(abc.ABC):
    """A deterministic synchronous-round state machine.

    Subclasses must be *pure*: the three methods may depend only on
    their arguments (and immutable configuration set at construction
    time).  The executor checks determinism opportunistically; the
    impossibility engines rely on it.
    """

    @abc.abstractmethod
    def init_state(self, ctx: NodeContext) -> State:
        """The state before round 0."""

    @abc.abstractmethod
    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> Mapping[PortLabel, Message]:
        """Messages for this round, keyed by port label.

        Ports missing from the mapping send ``None`` (no message).
        """

    @abc.abstractmethod
    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        """Consume this round's incoming messages and produce the next
        state.  ``inbox`` has an entry for every port (``None`` when the
        neighbor sent nothing)."""

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        """The paper's CHOOSE function: the decision read off a state.

        ``None`` means "not yet decided".  The executor records the
        first round at which a non-``None`` value appears; once decided
        a device must never change its value (enforced by the
        executor).
        """
        return None


class FunctionDevice(SyncDevice):
    """Adapter building a device from three plain functions.

    Convenient for tests and for hypothesis-generated device families.
    """

    def __init__(self, init, send, transition, choose=None) -> None:
        self._init = init
        self._send = send
        self._transition = transition
        self._choose = choose

    def init_state(self, ctx: NodeContext) -> State:
        return self._init(ctx)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> Mapping[PortLabel, Message]:
        return self._send(ctx, state, round_index)

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        return self._transition(ctx, state, round_index, inbox)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        if self._choose is None:
            return None
        return self._choose(ctx, state)
