#!/usr/bin/env python3
"""The Byzantine firing squad: synchronize a volley, or fail to.

A stimulus (an order) may arrive at time 0 at one or more nodes; every
correct node must enter FIRE at exactly the same instant, and only if
the order was given.

  1. On the triangle with honest relay devices and NO faults, the
     volley is perfectly simultaneous.
  2. Theorem 4's engine builds the 4k-ring with half the nodes
     stimulated; every adjacent pair is a correct behavior of the
     triangle, yet the fire wave breaks — the engine prints where.
  3. On an adequate K4, firing squad via agreement (EIG) fires in
     unison despite a Byzantine node.

Run:  python examples/firing_squad_drill.py
"""

from repro.core import refute_firing_squad
from repro.core.firing_squad import fire_time_profile
from repro.graphs import complete_graph, triangle
from repro.protocols import (
    RelayFireDevice,
    fire_round_of,
    firing_squad_devices,
)
from repro.runtime.sync import RandomLiarDevice, make_system
from repro.runtime.sync import run as run_sync
from repro.runtime.timed import make_timed_system, run_timed


def drill_without_faults() -> None:
    print("=" * 72)
    print("1. Honest triangle: a clean volley")
    print("=" * 72)
    g = triangle()
    factories = {u: (lambda: RelayFireDevice(fire_at=2.5)) for u in g.nodes}
    behavior = run_timed(
        make_timed_system(g, factories, {"a": 1, "b": 0, "c": 0}, delay=1.0),
        horizon=4.0,
    )
    print(f"stimulus at a only; fire times: {behavior.fire_times()}")
    assert set(behavior.fire_times().values()) == {2.5}
    print()


def the_wave_must_break() -> None:
    print("=" * 72)
    print("2. Theorem 4: with one traitor the volley cannot be saved")
    print("=" * 72)
    g = triangle()
    factories = {u: (lambda: RelayFireDevice(fire_at=2.5)) for u in g.nodes}
    witness = refute_firing_squad(
        factories, delta=1.0, fire_deadline=3.0
    )
    print(
        f"ring of 4k = {witness.extra['ring_size']} nodes, half stimulated; "
        f"honest fire time t = {witness.extra['fire_time']}"
    )
    for label, times in fire_time_profile(witness):
        checked = next(c for c in witness.checked if c.label == label)
        if not checked.verdict.ok:
            print(
                f"  {label}: correct pair fire times {times} — "
                f"{checked.verdict.describe()}"
            )
    print()
    print("Each line above is a CORRECT behavior of the triangle (two")
    print("loyal nodes + one masquerading traitor) violating simultaneity.")
    print()


def drill_on_k4() -> None:
    print("=" * 72)
    print("3. Adequate K4: fire in unison despite a Byzantine node")
    print("=" * 72)
    g = complete_graph(4)
    devices = dict(firing_squad_devices(g, max_faults=1))
    devices["n3"] = RandomLiarDevice(seed=99)
    inputs = {"n0": 1, "n1": 0, "n2": 0, "n3": 0}
    behavior = run_sync(make_system(g, devices, inputs), rounds=4)
    rounds_fired = {u: fire_round_of(behavior, u) for u in ("n0", "n1", "n2")}
    print(f"fire rounds (agreement-based): {rounds_fired}")
    assert len(set(rounds_fired.values())) == 1


if __name__ == "__main__":
    drill_without_faults()
    the_wave_must_break()
    drill_on_k4()
