"""Exponential Information Gathering (EIG) Byzantine agreement
[PSL 1980 / LSP 1982], the classical matching upper bound for the
paper's ``3f + 1`` node lower bound.

On a complete graph with ``n >= 3f + 1`` nodes, EIG reaches Byzantine
agreement in ``f + 1`` rounds against any ``f`` Byzantine nodes.  Each
node relays everything it has heard every round, building a tree of
claims ``"j_r said that ... j_1's input is v"`` indexed by paths of
distinct node ids; decisions resolve the tree bottom-up by majority.

Unlike the covering-refutation candidates, protocol devices know their
own identity (``my_id``) and the full roster — identities are part of
the problem setup for agreement algorithms, and adequate-graph
protocols are never installed in coverings.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice

Path = tuple[Any, ...]


class EIGDevice(SyncDevice):
    """One node's EIG state machine.

    Parameters
    ----------
    my_id:
        This node's identity (must equal its port label at peers).
    all_ids:
        The full roster, in canonical order shared by all nodes.
    max_faults:
        The bound ``f``; the protocol runs ``f + 1`` rounds.
    default:
        Tie-breaking / missing-value default.
    """

    def __init__(
        self,
        my_id: NodeId,
        all_ids: Sequence[NodeId],
        max_faults: int,
        default: Any = 0,
    ) -> None:
        if my_id not in all_ids:
            raise GraphError("my_id must appear in the roster")
        self.my_id = my_id
        self.all_ids = tuple(all_ids)
        self.f = max_faults
        self.default = default
        self.rounds = max_faults + 1

    # State: (tree, decided) with tree a dict from paths to values.

    def init_state(self, ctx: NodeContext) -> State:
        return ({(): ctx.input}, None)

    def _level_entries(self, tree: Mapping[Path, Any], level: int) -> dict:
        return {path: v for path, v in tree.items() if len(path) == level}

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        tree, _decided = state
        if round_index >= self.rounds:
            return {}
        payload = tuple(
            sorted(
                self._level_entries(tree, round_index).items(),
                key=lambda kv: tuple(map(str, kv[0])),
            )
        )
        return {port: payload for port in ctx.ports}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        tree, decided = state
        if round_index >= self.rounds:
            return state
        tree = dict(tree)
        # Own relays: "I said that <path>" — known without a message.
        for path, value in self._level_entries(tree, round_index).items():
            if self.my_id not in path:
                tree[path + (self.my_id,)] = value
        for sender, payload in inbox.items():
            if payload is None:
                continue
            if not self._well_formed(payload, round_index):
                continue  # garbage from a faulty node: ignore
            for path, value in payload:
                if sender not in path and len(path) == round_index:
                    tree[tuple(path) + (sender,)] = value
        if round_index == self.rounds - 1:
            decided = self._resolve(tree, ())
        return (tree, decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[1]

    # -- helpers -----------------------------------------------------------

    def _well_formed(self, payload: Any, level: int) -> bool:
        if not isinstance(payload, tuple):
            return False
        for entry in payload:
            if not (isinstance(entry, tuple) and len(entry) == 2):
                return False
            path = entry[0]
            if not isinstance(path, tuple) or len(path) != level:
                return False
            if len(set(path)) != len(path):
                return False
        return True

    def _resolve(self, tree: Mapping[Path, Any], path: Path) -> Any:
        """Bottom-up majority resolution (``newval`` in Lynch's book)."""
        if len(path) == self.rounds:
            return tree.get(path, self.default)
        children = [
            self._resolve(tree, path + (q,))
            for q in self.all_ids
            if q not in path
        ]
        return _strict_majority(children, self.default)


def _strict_majority(values: Sequence[Any], default: Any) -> Any:
    tally: dict[Any, int] = {}
    for v in values:
        tally[v] = tally.get(v, 0) + 1
    for value, count in tally.items():
        if count * 2 > len(values):
            return value
    return default


def eig_devices(
    graph: CommunicationGraph, max_faults: int, default: Any = 0
) -> dict[NodeId, EIGDevice]:
    """An EIG device per node of a complete graph."""
    if not graph.is_complete():
        raise GraphError(
            "EIG requires a complete graph; relay over vertex-disjoint "
            "paths (protocols.dolev_relay) extends it to 2f+1-connected "
            "graphs"
        )
    if len(graph) < 3 * max_faults + 1:
        raise GraphError(
            f"EIG requires n >= 3f+1 (= {3 * max_faults + 1}); "
            f"got n = {len(graph)} — and the core engines prove no "
            "protocol can do better"
        )
    roster = tuple(graph.nodes)
    return {
        u: EIGDevice(u, roster, max_faults, default) for u in graph.nodes
    }
