"""Odds and ends: edge paths not covered elsewhere."""

import pytest

from repro.analysis import format_table, hexagon_figure
from repro.core import refute_clock_sync_connectivity, refute_node_bound
from repro.graphs import GraphError, line, triangle
from repro.protocols import MajorityVoteDevice
from repro.runtime.sync import FunctionDevice, run, uniform_system
from repro.testing import constant_device


class TestExecutorEdges:
    def test_decision_at_initialization(self):
        g = triangle()
        behavior = run(
            uniform_system(g, constant_device(5), {u: 0 for u in g.nodes}),
            2,
        )
        assert behavior.node("a").decided_at == 0
        assert behavior.decision("a") == 5

    def test_negative_rounds_rejected(self):
        from repro.runtime.sync import ExecutionError

        g = triangle()
        system = uniform_system(
            g, constant_device(1), {u: 0 for u in g.nodes}
        )
        with pytest.raises(ExecutionError):
            run(system, -1)

    def test_none_send_values_are_silence(self):
        silent_but_present = FunctionDevice(
            init=lambda ctx: 0,
            send=lambda ctx, state, r: {p: None for p in ctx.ports},
            transition=lambda ctx, state, r, inbox: state,
        )
        g = triangle()
        behavior = run(
            uniform_system(g, silent_but_present, {u: 0 for u in g.nodes}),
            2,
        )
        from repro.analysis.metrics import measure

        assert measure(behavior).messages == 0


class TestDiagramsAndTables:
    def test_hexagon_custom_inputs(self):
        fig = hexagon_figure({"u": 9, "v": 8, "w": 7, "x": 6, "y": 5, "z": 4})
        assert "A(9)" in fig and "C(4)" in fig

    def test_table_with_no_rows(self):
        out = format_table(("a", "b"), [])
        assert "a" in out


class TestEngineGuards:
    def test_node_bound_refuses_adequate_inputs_param(self):
        from repro.graphs import complete_graph

        g = complete_graph(4)
        with pytest.raises(GraphError):
            refute_node_bound(
                g,
                {u: MajorityVoteDevice() for u in g.nodes},
                1,
                2,
                inputs=("x", "y"),
            )

    def test_custom_input_values_flow_through(self):
        g = triangle()
        witness = refute_node_bound(
            g,
            {u: MajorityVoteDevice(default="no") for u in g.nodes},
            1,
            rounds=3,
            inputs=("no", "yes"),
        )
        assert witness.found
        seen_inputs = {
            v
            for checked in witness.checked
            for v in checked.constructed.inputs.values()
        }
        assert seen_inputs <= {"no", "yes"}

    def test_clock_connectivity_witness_describes(self):
        from repro.core import SynchronizationSetting
        from repro.graphs import diamond
        from repro.protocols import LowerEnvelopeClockDevice
        from repro.runtime.timed import LinearClock

        lower = LinearClock(1.0, 0.0)
        setting = SynchronizationSetting(
            p=LinearClock(1.0, 0.0),
            q=LinearClock(1.2, 0.0),
            lower=lower,
            upper=LinearClock(1.0, 2.0),
            alpha=0.2,
            t_prime=1.0,
        )
        g = diamond()
        witness = refute_clock_sync_connectivity(
            g,
            {u: (lambda: LowerEnvelopeClockDevice(lower)) for u in g.nodes},
            max_faults=1,
            setting=setting,
        )
        text = witness.describe()
        assert "VIOLATED" in text and "clock-synchronization" in text


class TestGraphEdges:
    def test_line_has_no_cycle(self):
        g = line(3)
        assert not g.has_edge("l0", "l2")

    def test_subgraph_of_disjoint_nodes_has_no_edges(self):
        g = triangle()
        sub = g.subgraph(["a"])
        assert len(sub.edges) == 0

    def test_empty_inedge_border(self):
        g = line(2)
        assert g.inedge_border(["l0", "l1"]) == frozenset()
