"""Impossibility witnesses — the engines' output.

A witness is the executable counterpart of "contradiction": a set of
*correct* behaviors of the inadequate graph, built by the paper's
construction from one run of the covering system, of which at least one
violates the problem's correctness conditions for the specific
candidate devices supplied.  The theorems guarantee a witness exists
for every device implementation; the engines find one and explain it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..graphs.graph import CommunicationGraph
from ..problems.spec import SpecVerdict
from .covering_argument import ChainLink, ConstructedBehavior


class NoViolationFound(RuntimeError):
    """Raised if every constructed behavior satisfies the spec.

    For a correct engine and deterministic devices this is unreachable
    (the theorems forbid it); reaching it indicates nondeterministic
    candidate devices or a horizon too short to observe decisions.
    """


@dataclass(frozen=True)
class CheckedBehavior:
    """A constructed behavior together with its spec verdict."""

    constructed: ConstructedBehavior
    verdict: SpecVerdict

    @property
    def label(self) -> str:
        return self.constructed.label


@dataclass(frozen=True)
class ImpossibilityWitness:
    """The full output of one covering argument.

    Attributes
    ----------
    problem / bound:
        What was refuted (e.g. ``"byzantine-agreement"`` /
        ``"3f+1 nodes"``).
    graph / max_faults:
        The inadequate graph and the fault budget.
    checked:
        Every constructed behavior with its verdict, in chain order.
    links:
        The correct nodes shared by consecutive behaviors (the glue of
        the contradiction).
    extra:
        Engine-specific data (e.g. the Lemma 7 value trace).
    """

    problem: str
    bound: str
    graph: CommunicationGraph
    max_faults: int
    checked: tuple[CheckedBehavior, ...]
    links: tuple[ChainLink, ...] = ()
    extra: dict[str, Any] = field(default_factory=dict)

    @property
    def violated(self) -> tuple[CheckedBehavior, ...]:
        return tuple(c for c in self.checked if not c.verdict.ok)

    @property
    def found(self) -> bool:
        return bool(self.violated)

    def describe(self) -> str:
        lines = [
            f"Impossibility witness for {self.problem} ({self.bound}) on "
            f"{self.graph!r} with f = {self.max_faults}:",
        ]
        for checked in self.checked:
            c = checked.constructed
            status = "OK" if checked.verdict.ok else "VIOLATED"
            lines.append(
                f"  {c.label}: correct = "
                f"{{{', '.join(sorted(map(str, c.correct_nodes)))}}}, "
                f"faulty = {{{', '.join(sorted(map(str, c.faulty_nodes)))}}} "
                f"-> {status}"
            )
            if not checked.verdict.ok:
                for violation in checked.verdict.violations:
                    lines.append(f"      {violation}")
        if self.links:
            lines.append("  chain links (shared correct behaviors):")
            for link in self.links:
                lines.append(
                    f"      {link.first} ~ {link.second} share node "
                    f"{link.node} (covering node {link.covering_node})"
                )
        return "\n".join(lines)

    def require_found(self) -> "ImpossibilityWitness":
        if not self.found:
            raise NoViolationFound(
                "every constructed behavior satisfied the specification; "
                "candidate devices are nondeterministic or the horizon is "
                "too short for decisions to appear"
            )
        return self
