"""T8 — Theorem 8, clock synchronization (Section 7).

Regenerates: the (k+2)-ring of clocks q·h⁻ⁱ, the ν-trace of Lemma 11
(how far each node's logical clock sits above the lower envelope at
t''), the per-scenario agreement/validity verdicts, and the executed
Lemma 9 reconstructions (Scaling axiom verified, not assumed).
"""

from conftest import report

from repro.analysis import format_table
from repro.core import SynchronizationSetting, refute_clock_sync
from repro.graphs import triangle
from repro.protocols import ExchangeMidpointClockDevice, LowerEnvelopeClockDevice
from repro.runtime.timed import LinearClock

LOWER = LinearClock(1.0, 0.0)


def _setting(alpha=0.1):
    return SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(1.2, 0.0),
        lower=LOWER,
        upper=LinearClock(1.0, 2.0),
        alpha=alpha,
        t_prime=1.0,
    )


def _factories(factory):
    return {u: factory for u in triangle().nodes}


def test_trivial_synchronizer(benchmark):
    witness = benchmark(
        lambda: refute_clock_sync(
            _factories(lambda: LowerEnvelopeClockDevice(LOWER)),
            _setting(),
            verify_indices=(0, 1, 2),
        )
    )
    assert witness.found
    nu = format_table(
        ("i", "ring node", "C_i(t'')", "ν_i", "agreement bound", "skew"),
        [
            (
                r["i"],
                r["node"],
                r["logical"],
                r["nu"],
                r["agreement_bound"],
                r["skew"],
            )
            for r in witness.extra["nu_trace"]
        ],
        f"Lemma 11 ν-trace at t'' = {witness.extra['t_double_prime']:.4g} "
        f"(k = {witness.extra['k']})",
    )
    scaling = format_table(
        ("scenario", "correct pair", "logical readings reproduced"),
        [
            (c["index"], "/".join(c["correct"]), c["all_match"])
            for c in witness.extra["scaling_checks"]
        ],
        "Lemma 9 executed: scaled scenarios re-run as triangle behaviors",
    )
    report("T8: clock synchronization", nu + "\n\n" + scaling)

    # Shape: the trivial synchronizer misses the nontrivial bound in
    # EVERY scaled scenario (its skew is exactly the trivial skew).
    assert len(witness.violated) == len(witness.checked)
    assert all(c["all_match"] for c in witness.extra["scaling_checks"])


def test_communicating_synchronizer(benchmark):
    witness = benchmark(
        lambda: refute_clock_sync(
            _factories(
                lambda: ExchangeMidpointClockDevice(
                    LOWER, exchange_at=0.5, delay=0.125
                )
            ),
            _setting(),
        )
    )
    assert witness.found
    benchmark.extra_info["violations"] = len(witness.violated)


def test_tighter_alpha_needs_longer_ring(benchmark):
    loose = benchmark(
        lambda: refute_clock_sync(
            _factories(lambda: LowerEnvelopeClockDevice(LOWER)),
            _setting(alpha=0.2),
            verify_indices=(),
        )
    )
    tight = refute_clock_sync(
        _factories(lambda: LowerEnvelopeClockDevice(LOWER)),
        _setting(alpha=0.05),
        verify_indices=(),
    )
    # k scales like (u(q(t')) - l(p(t'))) / α.
    assert tight.extra["k"] > loose.extra["k"]


def test_connectivity_variant_on_the_diamond(benchmark):
    """Theorem 8's connectivity bound via the cyclic cover of copies
    of the diamond running ever-slower clocks."""
    from repro.core import refute_clock_sync_connectivity
    from repro.graphs import diamond

    g = diamond()
    witness = benchmark(
        lambda: refute_clock_sync_connectivity(
            g,
            {u: (lambda: LowerEnvelopeClockDevice(LOWER)) for u in g.nodes},
            max_faults=1,
            setting=_setting(),
        )
    )
    assert witness.found
    # The trivial synchronizer breaks exactly the cross-copy scenarios.
    assert all(c.label.startswith("B") for c in witness.violated)
