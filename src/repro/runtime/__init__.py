"""Operational models satisfying the paper's axioms.

:mod:`repro.runtime.sync`
    Synchronous rounds; satisfies the Locality and Fault axioms.
    Hosts Theorems 1, 5, 6 and the round-based protocols.

:mod:`repro.runtime.timed`
    Continuous time with a minimum message delay and hardware clocks;
    additionally satisfies the Bounded-Delay Locality and Scaling
    axioms.  Hosts Theorems 2, 4, 8.

:mod:`repro.runtime.faults`
    Link-level fault injection shared by both runtimes: declarative
    :class:`~repro.runtime.faults.FaultPlan` schedules (drop, corrupt,
    delay, omission bursts, partitions), deterministic injectors, and
    replayable injection traces.
"""

from .faults import (
    FAULT_KINDS,
    FaultPlan,
    InjectionRecord,
    InjectionTrace,
    LinkFault,
    Partition,
    SyncFaultInjector,
    TimedFaultInjector,
    partition_between,
)

__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "InjectionRecord",
    "InjectionTrace",
    "LinkFault",
    "Partition",
    "SyncFaultInjector",
    "TimedFaultInjector",
    "partition_between",
]
