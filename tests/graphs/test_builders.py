"""Graph-builder tests."""

import random

import pytest

from repro.graphs import (
    GraphError,
    butterfly_network,
    circulant,
    complete_bipartite,
    complete_graph,
    diamond,
    line,
    node_connectivity,
    random_connected_graph,
    ring,
    star,
    triangle,
    wheel,
)


class TestBuilders:
    def test_complete(self):
        g = complete_graph(5)
        assert len(g) == 5 and g.is_complete()

    def test_triangle_nodes(self):
        assert triangle().nodes == ("a", "b", "c")

    def test_diamond_structure(self):
        g = diamond()
        assert not g.has_edge("a", "c")
        assert not g.has_edge("b", "d")
        assert g.degree("a") == 2

    def test_ring_degrees(self):
        g = ring(6)
        assert all(g.degree(u) == 2 for u in g.nodes)

    def test_line_endpoints(self):
        g = line(4)
        assert g.degree("l0") == 1 and g.degree("l3") == 1

    def test_wheel_hub(self):
        g = wheel(5)
        assert g.degree("whub") == 5

    def test_star(self):
        g = star(3)
        assert g.degree("shub") == 3
        assert node_connectivity(g) == 1

    def test_complete_bipartite(self):
        g = complete_bipartite(2, 3)
        assert len(g) == 5
        assert g.degree("bL0") == 3

    def test_circulant_connectivity(self):
        assert node_connectivity(circulant(8, [1])) == 2
        assert node_connectivity(circulant(8, [1, 2])) == 4

    def test_circulant_rejects_empty_offsets(self):
        with pytest.raises(GraphError):
            circulant(8, [0])

    def test_butterfly_is_adequate(self):
        from repro.graphs import is_adequate

        for f in (1, 2, 3):
            assert is_adequate(butterfly_network(f), f)

    def test_random_graph_is_connected_and_deterministic(self):
        g1 = random_connected_graph(10, 0.2, random.Random(5))
        g2 = random_connected_graph(10, 0.2, random.Random(5))
        assert g1.is_connected()
        assert g1 == g2

    @pytest.mark.parametrize(
        "builder,args",
        [(ring, (2,)), (line, (1,)), (wheel, (2,)), (star, (1,)),
         (complete_graph, (0,)), (complete_bipartite, (0, 3))],
    )
    def test_size_guards(self, builder, args):
        with pytest.raises(GraphError):
            builder(*args)


class TestHararyGraphs:
    @pytest.mark.parametrize(
        "k,n", [(2, 7), (3, 8), (3, 9), (4, 10), (5, 11), (5, 12)]
    )
    def test_exact_connectivity(self, k, n):
        from repro.graphs import harary_graph

        assert node_connectivity(harary_graph(k, n)) == k

    @pytest.mark.parametrize(
        "k,n", [(2, 7), (3, 8), (3, 9), (4, 10), (5, 11)]
    )
    def test_optimal_edge_count(self, k, n):
        import math

        from repro.graphs import harary_graph

        g = harary_graph(k, n)
        assert len(g.undirected_edges) == math.ceil(k * n / 2)

    def test_cheapest_adequate(self):
        from repro.graphs import cheapest_adequate_graph, is_adequate

        for n, f in [(4, 1), (7, 2), (10, 3), (9, 2)]:
            g = cheapest_adequate_graph(n, f)
            assert is_adequate(g, f)

    def test_cheapest_adequate_rejects_node_shortage(self):
        from repro.graphs import cheapest_adequate_graph

        with pytest.raises(GraphError):
            cheapest_adequate_graph(6, 2)

    def test_harary_guards(self):
        from repro.graphs import harary_graph

        with pytest.raises(GraphError):
            harary_graph(5, 5)
        with pytest.raises(GraphError):
            harary_graph(0, 5)
