"""Prefix-sharing execution trie vs. the plain executor and the oracle.

The contract is byte-identity: however many runs share a trie, each
run's behavior and injection trace must equal the plain executor's and
the interpretive oracle's (``reference_sync_run``) for the same fault
plan.  Differential tests drive randomized fault plans through all
three paths; structural tests pin the signature semantics and the
replay counters.
"""

import random

import pytest

from repro.analysis.campaign import sample_fault_plan
from repro.graphs.builders import complete_graph, ring
from repro.protocols.naive import MajorityVoteDevice
from repro.runtime.faults import FaultPlan, LinkFault, SyncFaultInjector
from repro.runtime.incremental import (
    ExecutionTrie,
    IncrementalContext,
    plan_signatures,
)
from repro.runtime.plan import compile_sync_plan
from repro.runtime.sync.executor import ExecutionError, execute_plan
from repro.runtime.sync.system import make_system
from repro.testing import reference_sync_run


def _system(graph, inputs=None):
    devices = {u: MajorityVoteDevice() for u in graph.nodes}
    inputs = inputs or {u: i % 2 for i, u in enumerate(graph.nodes)}
    return make_system(graph, devices, inputs)


def _drop(edge, start=0, end=1):
    return LinkFault(edge=edge, kind="drop", start=start, end=end)


class TestPlanSignatures:
    def test_empty_plan_has_empty_round_signatures(self):
        sigs = plan_signatures(FaultPlan(), 3)
        assert sigs == (((), ()),) * 3

    def test_signatures_localize_fault_windows(self):
        plan = FaultPlan(link_faults=(_drop(("a", "b"), start=2, end=3),))
        sigs = plan_signatures(plan, 4)
        assert sigs[0] == sigs[1] == sigs[3] == ((), ())
        assert sigs[2] != ((), ())

    def test_plans_sharing_a_prefix_share_signatures(self):
        early = FaultPlan(link_faults=(_drop(("a", "b"), start=0, end=1),))
        late = FaultPlan(
            link_faults=(
                _drop(("a", "b"), start=0, end=1),
                _drop(("b", "a"), start=3, end=4),
            )
        )
        s_early = plan_signatures(early, 5)
        s_late = plan_signatures(late, 5)
        assert s_early[:3] == s_late[:3]
        assert s_early[3] != s_late[3]

    def test_same_edge_order_distinguishes_signatures(self):
        corrupt = LinkFault(edge=("a", "b"), kind="corrupt", start=0, end=1)
        drop = _drop(("a", "b"))
        a = plan_signatures(FaultPlan(link_faults=(corrupt, drop)), 1)
        b = plan_signatures(FaultPlan(link_faults=(drop, corrupt)), 1)
        assert a != b

    def test_cross_edge_order_is_canonicalized(self):
        f1 = _drop(("a", "b"))
        f2 = _drop(("b", "c"))
        a = plan_signatures(FaultPlan(link_faults=(f1, f2)), 1)
        b = plan_signatures(FaultPlan(link_faults=(f2, f1)), 1)
        assert a == b


class TestTrieEquivalence:
    def _assert_equivalent(self, graph, plans, rounds):
        """One shared trie vs. fresh plain executions, per plan."""
        system = _system(graph)
        compiled = compile_sync_plan(system)
        trie = ExecutionTrie(compiled)
        for fault_plan in plans:
            behavior, trace = trie.execute(fault_plan, rounds)
            plain_injector = SyncFaultInjector(fault_plan)
            plain = execute_plan(compiled, rounds, plain_injector)
            assert behavior == plain
            assert trace == plain_injector.trace
            oracle_injector = SyncFaultInjector(fault_plan)
            oracle = reference_sync_run(system, rounds, oracle_injector)
            assert behavior == oracle
            assert trace == oracle_injector.trace

    def test_fault_free_run_matches(self):
        self._assert_equivalent(complete_graph(4), [FaultPlan()], 3)

    def test_shared_prefix_runs_match(self):
        plans = [
            FaultPlan(),
            FaultPlan(link_faults=(_drop(("n0", "n1"), start=2, end=3),)),
            FaultPlan(link_faults=(_drop(("n0", "n1"), start=1, end=2),)),
            FaultPlan(link_faults=(_drop(("n0", "n1"), start=2, end=3),)),
        ]
        self._assert_equivalent(complete_graph(4), plans, 4)

    def test_delayed_messages_survive_snapshots(self):
        # A delay fault holds messages in the injector's pending map;
        # runs that branch *after* the delay fires must replay it.
        delay = LinkFault(
            edge=("n0", "n1"), kind="delay", start=0, end=1, delay=2
        )
        plans = [
            FaultPlan(link_faults=(delay,)),
            FaultPlan(
                link_faults=(delay, _drop(("n2", "n3"), start=3, end=4))
            ),
        ]
        self._assert_equivalent(complete_graph(4), plans, 5)

    def test_randomized_plans_match(self):
        graph = ring(5)
        rng = random.Random(7)
        plans = [
            sample_fault_plan(graph, 5, 3, rng, seed=7)
            for _ in range(12)
        ]
        self._assert_equivalent(graph, plans, 5)

    def test_corrupt_faults_match(self):
        graph = complete_graph(4)
        rng = random.Random(1)
        plans = [
            sample_fault_plan(
                graph, 4, 2, rng, kinds=("corrupt",), seed=1
            )
            for _ in range(6)
        ]
        self._assert_equivalent(graph, plans, 4)


class TestTrieMechanics:
    def test_counters_account_for_replay(self):
        graph = complete_graph(4)
        trie = ExecutionTrie(compile_sync_plan(_system(graph)))
        trie.execute(FaultPlan(), 4)
        assert trie.stats() == {
            "runs": 1,
            "rounds_replayed": 0,
            "rounds_executed": 4,
            "snapshots": 5,  # root + one per round
        }
        trie.execute(FaultPlan(), 4)
        s = trie.stats()
        assert s["runs"] == 2
        assert s["rounds_replayed"] == 4
        assert s["rounds_executed"] == 4
        assert s["snapshots"] == 5

    def test_divergent_suffix_executes_only_new_rounds(self):
        graph = complete_graph(4)
        trie = ExecutionTrie(compile_sync_plan(_system(graph)))
        trie.execute(FaultPlan(), 4)
        late = FaultPlan(link_faults=(_drop(("n0", "n1"), start=3, end=4),))
        trie.execute(late, 4)
        s = trie.stats()
        assert s["rounds_replayed"] == 3
        assert s["rounds_executed"] == 5

    def test_zero_rounds(self):
        graph = complete_graph(3)
        trie = ExecutionTrie(compile_sync_plan(_system(graph)))
        behavior, trace = trie.execute(FaultPlan(), 0)
        assert behavior.rounds == 0
        assert trace.records == []

    def test_negative_rounds_rejected(self):
        trie = ExecutionTrie(compile_sync_plan(_system(complete_graph(3))))
        with pytest.raises(ExecutionError):
            trie.prepare(FaultPlan(), -1)


class TestIncrementalContext:
    def test_get_put_roundtrip(self):
        ctx = IncrementalContext()
        trie = ExecutionTrie(compile_sync_plan(_system(complete_graph(3))))
        assert ctx.get("k") is None
        ctx.put("k", trie)
        assert ctx.get("k") is trie

    def test_eviction_folds_stats(self):
        ctx = IncrementalContext(max_contexts=1)
        g = complete_graph(3)
        first = ExecutionTrie(compile_sync_plan(_system(g)))
        first.execute(FaultPlan(), 2)
        ctx.put("a", first)
        ctx.put("b", ExecutionTrie(compile_sync_plan(_system(g))))
        assert ctx.get("a") is None  # evicted
        s = ctx.stats()
        assert s["live_contexts"] == 1
        assert s["contexts"] == 2
        assert s["rounds_executed"] == 2  # survived the eviction
        assert "incremental execution" in ctx.describe()
