"""Devices for the continuous-time model.

A timed device is an event handler: it reacts to its start event,
incoming messages, and its own timers.  Through the :class:`DeviceApi`
it may send messages, set timers, decide a value, enter the FIRE
state, and (re)define its logical clock.

Two deliberate restrictions make the paper's axioms hold:

* A device never sees real time — only its **hardware clock** reading
  (timers are set in clock time too).  With identity clocks this is
  real time, which is what the weak-agreement/firing-squad model
  allows; with drifting clocks it is exactly Section 7's "no direct
  method, other than by reading their inaccurate hardware clocks, to
  measure the passage of time", giving the Scaling axiom.
* Messages incur the system's minimum delay, giving the Bounded-Delay
  Locality axiom.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Hashable
from dataclasses import dataclass
from typing import Any, TypeAlias

PortLabel: TypeAlias = Hashable
Message: TypeAlias = Any
LogicalClockFn: TypeAlias = Callable[[float], float]


@dataclass(frozen=True)
class TimedContext:
    """What a timed device may observe about its location: its port
    labels and its problem input."""

    ports: tuple[PortLabel, ...]
    input: Any


class DeviceApi(abc.ABC):
    """The executor-provided handle a device acts through.

    All times a device sees or supplies are **hardware clock values**.
    """

    @abc.abstractmethod
    def clock(self) -> float:
        """The current hardware clock reading."""

    @abc.abstractmethod
    def send(self, port: PortLabel, message: Message) -> None:
        """Send over a port; arrives after the system's delay."""

    @abc.abstractmethod
    def set_timer(self, name: Hashable, clock_value: float) -> None:
        """Request a wake-up when the hardware clock reads
        ``clock_value`` (must be in the future)."""

    @abc.abstractmethod
    def decide(self, value: Any) -> None:
        """Choose an output value (once; re-deciding the same value is
        a no-op, a different value is an error)."""

    @abc.abstractmethod
    def fire(self) -> None:
        """Enter the FIRE state (firing squad problems)."""

    @abc.abstractmethod
    def set_logical(self, fn: LogicalClockFn) -> None:
        """Define the logical clock as ``fn`` applied to the hardware
        clock reading, from this instant on."""


class TimedDevice(abc.ABC):
    """A deterministic event-driven device.

    One instance runs at one node; instances are created per node by a
    factory, so mutable instance state is fine (and expected).
    Handlers must be deterministic functions of the instance state and
    their arguments.
    """

    def on_start(self, ctx: TimedContext, api: DeviceApi) -> None:
        """Called once at time 0."""

    def on_message(
        self, ctx: TimedContext, api: DeviceApi, port: PortLabel, message: Message
    ) -> None:
        """Called when a message arrives on a port."""

    def on_timer(self, ctx: TimedContext, api: DeviceApi, name: Hashable) -> None:
        """Called when a timer set via :meth:`DeviceApi.set_timer` fires."""


DeviceFactory: TypeAlias = Callable[[], TimedDevice]
