"""Reductions between the paper's problems on adequate graphs.

* Weak agreement from Byzantine agreement: strong validity implies
  weak validity, so any BA device family (EIG) solves weak agreement —
  on adequate graphs.
* Byzantine firing squad from Byzantine agreement ([BL]/[CDDS]
  direction): agree on whether any stimulus occurred; if the agreed
  bit is 1, everyone enters FIRE at the same fixed round.  In the
  synchronous model rounds are simultaneous by definition, so the fire
  times coincide exactly.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.behavior import SyncBehavior
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice
from .eig import eig_devices


def weak_agreement_devices(
    graph: CommunicationGraph, max_faults: int, default: Any = 0
) -> dict[NodeId, SyncDevice]:
    """Weak agreement on an adequate complete graph = EIG."""
    return dict(eig_devices(graph, max_faults, default))


class FiringSquadFromAgreementDevice(SyncDevice):
    """Firing squad via agreement on the stimulus bit.

    Wraps an agreement device; once the agreement decides 1, schedules
    FIRE for the fixed round ``fire_round`` (after the agreement's
    worst-case decision round, so all correct nodes fire together).

    The FIRE state is modeled in-state: :func:`fire_round_of` reads the
    round at which a node entered it.
    """

    def __init__(self, agreement: SyncDevice, fire_round: int) -> None:
        self.agreement = agreement
        self.fire_round = fire_round

    def init_state(self, ctx: NodeContext) -> State:
        return (self.agreement.init_state(ctx), None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> Mapping[PortLabel, Message]:
        inner, _fired_at = state
        return self.agreement.send(ctx, inner, round_index)

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        inner, fired_at = state
        inner = self.agreement.transition(ctx, inner, round_index, inbox)
        decision = self.agreement.choose(ctx, inner)
        if (
            fired_at is None
            and decision == 1
            and round_index + 1 >= self.fire_round
        ):
            fired_at = round_index + 1
        return (inner, fired_at)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        # The "decision" of a firing-squad device is whether it fired;
        # the fire round is read via fire_round_of.
        return None


def firing_squad_devices(
    graph: CommunicationGraph, max_faults: int
) -> dict[NodeId, FiringSquadFromAgreementDevice]:
    """Firing-squad devices for an adequate complete graph.

    The fire round is ``f + 2``: EIG decides after round ``f + 1``, and
    every correct node that agreed on "stimulated" fires at the next
    round boundary simultaneously.
    """
    if len(graph) < 3 * max_faults + 1:
        raise GraphError("firing squad from agreement needs n >= 3f+1")
    agreement = eig_devices(graph, max_faults, default=0)
    fire_round = max_faults + 2
    return {
        u: FiringSquadFromAgreementDevice(agreement[u], fire_round)
        for u in graph.nodes
    }


def fire_round_of(behavior: SyncBehavior, node: NodeId) -> int | None:
    """The round at which ``node`` entered the FIRE state, if any."""
    final = behavior.node(node).states[-1]
    return final[1]
