"""Crash-safe run store: durable journals of campaign progress.

The ROADMAP's north star — "heavy traffic, as many scenarios as you can
imagine" — means searches that outlive a single uninterrupted process.
This module makes partial progress durable: every completed work item
(a campaign attempt, a degradation-frontier budget level, a sweep
point) is journaled to an append-only JSONL *shard* the moment it
finishes, and a later run against the same store skips the journaled
items and continues from the exact index position where the previous
process died.

Layout and guarantees
---------------------
::

    <store>/
      meta.json               # how to re-run: command + args (atomic)
      shards/<key>.jsonl      # one journal per run content-fingerprint

* **Content-addressed shards.**  A shard's filename is a fingerprint
  over everything that determines the run's item stream (graph shape,
  device factory, budgets, seed, link kinds — see
  :func:`repro.analysis.campaign.campaign_store_key` and friends), so
  one store directory can be shared across many runs: a resumed run
  finds exactly its own journal, and an unrelated run gets a fresh one.
* **Atomic metadata.**  ``meta.json`` is written via
  :func:`atomic_write_text` (tmp file + ``fsync`` + ``os.replace``): a
  crash mid-write can never leave a truncated file behind.
* **Append-only journals with torn-tail recovery.**  Each record is one
  JSON line, written and flushed in a single call; a process killed
  mid-append can tear at most the final line, which the loader detects
  and discards (the item simply re-executes on resume).  Garbage
  *before* the last line is real corruption and raises
  :class:`RunStoreError` with a clear message.  ``fsync`` runs at merge
  points (:meth:`Shard.sync`), every :data:`FSYNC_EVERY` appends, and
  on close — bounding loss to the unsynced suffix even on power
  failure, while keeping the per-item cost to a buffered write.
* **Equivalence.**  A journaled record stores the item's result *and*
  (when telemetry is enabled) the run-scope event payload the original
  execution emitted.  Resume replays the payload instead of
  re-executing, so a resumed run's traces and ``run.*`` metrics are
  byte-identical to an uninterrupted run's.  Records journaled with
  telemetry off carry no payload and are deliberately **not** reused by
  a telemetry-on resume — the item re-executes so the trace stays
  complete.  Checkpoint reuse/write facts themselves are host-scope
  events, invisible in exported traces.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections.abc import Callable, Iterable, Sequence
from pathlib import Path
from typing import Any, TypeVar

from .. import obs

T = TypeVar("T")
R = TypeVar("R")

STORE_FORMAT = "repro-runstore/1"
META_NAME = "meta.json"
SHARD_DIR = "shards"

#: Appends between forced ``fsync`` calls (crash loss bound on power
#: failure; a plain SIGKILL loses nothing past the buffered write).
FSYNC_EVERY = 64


class RunStoreError(ValueError):
    """A run store is missing, malformed, or corrupt.

    Subclasses :class:`ValueError` so CLI error handling reports it as
    a clear one-line message instead of a traceback.
    """


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` atomically: tmp + fsync + rename.

    The temporary file lives in the destination directory (rename is
    only atomic within a filesystem) and is fsynced before the
    ``os.replace``, so a crash at any point leaves either the old file
    or the complete new one — never a truncated hybrid.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent) or ".", prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


# -- telemetry payload round-trip -------------------------------------------


def encode_payload(payload: Sequence[tuple]) -> list:
    """A captured event payload as a JSON-safe nested list."""
    return [
        [kind, [[name, value] for name, value in fields]]
        for kind, fields in payload
    ]


def decode_payload(data: Iterable) -> tuple:
    """The inverse of :func:`encode_payload` (lists back to tuples, as
    :func:`repro.obs.replay` expects)."""
    return tuple(
        (kind, tuple((name, value) for name, value in fields))
        for kind, fields in data
    )


def run_scope_payload(payload: Sequence[tuple]) -> tuple:
    """Strip host-scope events (cache luck, worker pools, checkpoint
    facts) from a captured payload, leaving the deterministic stream a
    journal record may durably store."""
    return tuple(
        (kind, fields)
        for kind, fields in payload
        if kind not in obs.HOST_KINDS
    )


def reusable(record: dict | None) -> bool:
    """May this journal record satisfy the current run's needs?

    A record without a stored event payload cannot reproduce the item's
    trace, so it only counts when telemetry is off.
    """
    if record is None:
        return False
    return not obs.is_enabled() or "obs" in record


# -- the journal ------------------------------------------------------------


class Shard:
    """One append-only JSONL journal of completed work items.

    Records are ``{"k": item_key, "v": {...}}`` lines; the constructor
    loads any existing journal into memory (last record wins per key,
    torn tail tolerated).  :meth:`append` writes and flushes one line —
    a SIGKILL immediately after still finds the record on disk — and
    :meth:`sync` fsyncs at merge points.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._records: dict[str, dict] = {}
        self._fh = None
        self._unsynced = 0
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        try:
            text = self.path.read_text()
        except OSError as exc:
            raise RunStoreError(
                f"cannot read journal shard {self.path}: {exc}"
            ) from exc
        pending: dict[str, dict] = {}
        bad_line: int | None = None
        lines = text.split("\n")
        for lineno, line in enumerate(lines, 1):
            if not line.strip():
                continue
            if bad_line is not None:
                # Parseable-or-not, content after a bad line means the
                # bad line was not a torn tail: corruption.
                raise RunStoreError(
                    f"corrupt journal shard {self.path}: unparseable "
                    f"record at line {bad_line} is not the final line; "
                    "the store cannot be trusted for resume"
                )
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad_line = lineno
                continue
            if not isinstance(record, dict) or "k" not in record:
                bad_line = lineno
                continue
            pending[str(record["k"])] = record.get("v", {})
        # A trailing unparseable line is the signature of a crash
        # mid-append: drop it, the item re-executes on resume.
        self._records = pending

    def get(self, item_key: str) -> dict | None:
        """The journaled record for ``item_key``, or ``None``."""
        return self._records.get(item_key)

    def append(self, item_key: str, value: dict) -> None:
        """Journal one completed item (write + flush, periodic fsync)."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a")
        line = json.dumps(
            {"k": item_key, "v": value},
            sort_keys=True,
            separators=(",", ":"),
        )
        self._fh.write(line + "\n")
        self._fh.flush()
        self._records[item_key] = value
        self._unsynced += 1
        obs.emit(obs.CHECKPOINT_WRITE, item=item_key)
        if self._unsynced >= FSYNC_EVERY:
            self.sync()

    def sync(self) -> None:
        """fsync the journal (called at merge points and on close)."""
        if self._fh is not None and self._unsynced:
            os.fsync(self._fh.fileno())
        self._unsynced = 0

    def close(self) -> None:
        if self._fh is not None:
            self.sync()
            self._fh.close()
            self._fh = None

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> list[str]:
        return list(self._records)

    def __enter__(self) -> "Shard":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class RunStore:
    """A directory of journal shards plus resume metadata."""

    def __init__(self, root: str | Path, create: bool = True) -> None:
        self.root = Path(root)
        if create:
            (self.root / SHARD_DIR).mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise RunStoreError(f"no run store at {self.root}")

    @property
    def meta_path(self) -> Path:
        return self.root / META_NAME

    def shard(self, key: str) -> Shard:
        """The journal shard for content fingerprint ``key``."""
        return Shard(self.root / SHARD_DIR / f"{key}.jsonl")

    def write_meta(self, command: str, seed: int, args: dict) -> None:
        """Atomically record how to re-run this store's command."""
        meta = {
            "format": STORE_FORMAT,
            "command": command,
            "seed": seed,
            "args": args,
        }
        atomic_write_text(
            self.meta_path, json.dumps(meta, indent=2, sort_keys=True) + "\n"
        )

    def read_meta(self) -> dict:
        """The resume metadata; raises :class:`RunStoreError` on a
        missing, truncated, or foreign file."""
        try:
            text = self.meta_path.read_text()
        except FileNotFoundError:
            raise RunStoreError(
                f"{self.meta_path} not found: not a run store (was the "
                "run started with --checkpoint?)"
            ) from None
        except OSError as exc:
            raise RunStoreError(
                f"cannot read {self.meta_path}: {exc}"
            ) from exc
        try:
            meta = json.loads(text)
        except json.JSONDecodeError as exc:
            raise RunStoreError(
                f"corrupt or truncated run-store metadata in "
                f"{self.meta_path}: {exc}"
            ) from exc
        if not isinstance(meta, dict) or meta.get("format") != STORE_FORMAT:
            raise RunStoreError(
                f"{self.meta_path} is not {STORE_FORMAT} metadata "
                f"(format={meta.get('format') if isinstance(meta, dict) else None!r})"
            )
        return meta


# -- checkpoint-aware ordered map -------------------------------------------


def journaled_map(
    runner: Any,
    fn: Callable[[T], R],
    items: Iterable[T],
    shard: Shard | None,
    key_fn: Callable[[T], str],
    encode: Callable[[R], dict],
    decode: Callable[[dict], R],
) -> list[R]:
    """An ordered map over ``items`` that skips journaled items.

    The workhorse for frontier levels and sweep points: items whose key
    is already in ``shard`` (with a telemetry payload when one is
    needed — see :func:`reusable`) decode straight from the journal and
    replay their recorded events; the rest fan out through ``runner``
    (a :class:`~repro.analysis.parallel.ParallelRunner`), are merged in
    item order, and are journaled as they merge.  The journal is
    fsynced once per call (the merge point).  With ``shard=None`` this
    degrades to ``runner.map`` semantics exactly.

    Results are byte-identical to an uninterrupted ``runner.map`` —
    reused items replay the run-scope events their original execution
    emitted, so traces and ``run.*`` metrics cannot tell the
    difference.
    """
    work = list(items)
    if shard is None:
        return runner.map(fn, work)
    keys = [key_fn(item) for item in work]
    records = [shard.get(key) for key in keys]
    fresh_indices = [i for i, rec in enumerate(records) if not reusable(rec)]
    pooled = runner.map_captured(fn, [work[i] for i in fresh_indices])
    fresh = dict(zip(fresh_indices, pooled))
    obs_on = obs.is_enabled()
    results: list[R] = []
    for i in range(len(work)):
        if i in fresh:
            result, payload = fresh[i]
            obs.replay(payload)
            record = {"r": encode(result)}
            if obs_on:
                record["obs"] = encode_payload(run_scope_payload(payload))
            shard.append(keys[i], record)
        else:
            record = records[i]
            assert record is not None
            obs.emit(obs.CHECKPOINT_REUSE, item=keys[i])
            obs.replay(decode_payload(record.get("obs", ())))
            result = decode(record["r"])
        results.append(result)
    shard.sync()
    return results


__all__ = [
    "FSYNC_EVERY",
    "META_NAME",
    "RunStore",
    "RunStoreError",
    "STORE_FORMAT",
    "Shard",
    "atomic_write_text",
    "decode_payload",
    "encode_payload",
    "journaled_map",
    "reusable",
    "run_scope_payload",
]
