"""Theorems 5 and 6, executable: approximate agreement is impossible in
inadequate graphs.

Theorem 5 (:func:`refute_simple_node_bound`,
:func:`refute_simple_connectivity`) reuses the Theorem 1 chains with
real inputs 0 and 1: in ``E1`` validity forces output 0, in ``E3`` it
forces output 1, and in ``E2`` the agreement condition then demands the
outputs be strictly closer than the inputs — impossible.

Theorem 6 (:func:`refute_epsilon_delta`) uses the ``(k+2)``-node ring
cover with inputs ``0, δ, 2δ, ..., (k+1)δ``: each adjacent pair is a
correct behavior of the triangle, validity anchors node 1 near 0,
agreement lets each step drift at most ε, and validity at the far end
demands a value near ``kδ`` — unreachable once
``k > 1 + 2γ / (δ - ε)`` (Lemma 7).
"""

from __future__ import annotations

import math
from collections.abc import Mapping

from ..graphs.adequacy import required_nodes
from ..graphs.builders import triangle
from ..graphs.coverings import (
    connectivity_double_cover,
    cut_partition_for_connectivity,
    node_bound_double_cover,
    partition_for_node_bound,
    ring_cover_of_triangle,
)
from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..problems.approximate import (
    EpsilonDeltaGammaSpec,
    SimpleApproximateAgreementSpec,
)
from ..runtime.sync.device import SyncDevice
from ..runtime.sync.system import install_in_covering
from .covering_argument import (
    ChainResult,
    build_base_behavior,
    connectivity_scenarios,
    node_bound_scenarios,
    run,
    run_scenario_chain,
    shared_links,
)
from .witness import CheckedBehavior, ImpossibilityWitness

_SIMPLE_SPEC = SimpleApproximateAgreementSpec()


def refute_simple_node_bound(
    graph: CommunicationGraph,
    devices: Mapping[NodeId, SyncDevice],
    max_faults: int,
    rounds: int,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Theorem 5, node bound: simple approximate agreement on ``n <= 3f``."""
    if len(graph) >= required_nodes(max_faults):
        raise GraphError(
            f"graph has {len(graph)} >= 3f+1 nodes; argument does not apply"
        )
    part_a, part_b, part_c = partition_for_node_bound(graph, max_faults)
    dc = node_bound_double_cover(graph, part_a, part_b, part_c)
    cover_inputs = {dc.copy_of(v, 0): 0.0 for v in graph.nodes}
    cover_inputs.update({dc.copy_of(v, 1): 1.0 for v in graph.nodes})
    cover_system = install_in_covering(dc.covering, devices, cover_inputs)
    chain = run_scenario_chain(
        dc.covering,
        cover_system,
        devices,
        node_bound_scenarios(dc, part_a, part_b, part_c),
        rounds,
    )
    return _simple_witness(
        "simple-approximate-agreement", "3f+1 nodes", graph, max_faults,
        chain, require_violation,
    )


def refute_simple_connectivity(
    graph: CommunicationGraph,
    devices: Mapping[NodeId, SyncDevice],
    max_faults: int,
    rounds: int,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Theorem 5, connectivity bound: ``c(G) <= 2f``."""
    side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(
        graph, max_faults
    )
    dc = connectivity_double_cover(graph, cut_b, cut_d, side_a, side_c)
    cover_inputs = {dc.copy_of(v, 0): 0.0 for v in graph.nodes}
    cover_inputs.update({dc.copy_of(v, 1): 1.0 for v in graph.nodes})
    cover_system = install_in_covering(dc.covering, devices, cover_inputs)
    chain = run_scenario_chain(
        dc.covering,
        cover_system,
        devices,
        connectivity_scenarios(dc, side_a, cut_b, side_c, cut_d),
        rounds,
    )
    return _simple_witness(
        "simple-approximate-agreement", "2f+1 connectivity", graph,
        max_faults, chain, require_violation,
    )


def _simple_witness(
    problem: str,
    bound: str,
    graph: CommunicationGraph,
    max_faults: int,
    chain: ChainResult,
    require_violation: bool,
) -> ImpossibilityWitness:
    checked = tuple(
        CheckedBehavior(
            constructed=c,
            verdict=_SIMPLE_SPEC.check(
                c.inputs, c.decisions(), c.correct_nodes
            ),
        )
        for c in chain.constructed
    )
    witness = ImpossibilityWitness(
        problem=problem,
        bound=bound,
        graph=graph,
        max_faults=max_faults,
        checked=checked,
        links=chain.links,
    )
    if require_violation:
        witness.require_found()
    return witness


# ---------------------------------------------------------------------------
# Theorem 6: (ε, δ, γ)-agreement
# ---------------------------------------------------------------------------


def ring_size_for_epsilon_delta(
    epsilon: float, delta: float, gamma: float
) -> int:
    """The smallest valid ring size ``k + 2`` for Theorem 6's argument.

    Needs ``δ > 2γ/(k-1) + ε`` — i.e. ``k > 1 + 2γ/(δ - ε)`` — and
    ``k + 2`` divisible by three.
    """
    if epsilon >= delta:
        raise ValueError(
            "(ε,δ,γ)-agreement with ε >= δ is trivially solvable; "
            "Theorem 6 needs ε < δ"
        )
    k = max(2, math.floor(1 + 2 * gamma / (delta - epsilon)) + 1)
    while (k + 2) % 3 != 0:
        k += 1
    return k


def refute_epsilon_delta_connectivity(
    graph: CommunicationGraph,
    devices: Mapping[NodeId, SyncDevice],
    max_faults: int,
    epsilon: float,
    delta: float,
    gamma: float,
    rounds: int,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Theorem 6's connectivity bound: (ε,δ,γ)-agreement with ``ε < δ``
    is impossible when ``c(G) <= 2f``.

    The §3.2 construction stretched: a cyclic chain of ``k + 2`` copies
    of ``G`` (every ``a``–``d`` edge re-routed to the next copy), copy
    ``i`` holding input ``i·δ``.  Scenarios alternate
    ``A(i) = (a∪b∪c)@i`` (inputs δ-close: equal) and
    ``B(i) = a@i ∪ (d∪c)@(i+1)`` (inputs exactly δ apart), each a
    correct behavior of ``G``; the Lemma 7 drift argument then runs
    along the chain of copies.

    Stepping from copy ``i`` to ``i+1`` passes through *two* agreement
    conditions (one ``B``, one ``A``), so the per-copy drift allowance
    is ``2ε`` and this chain refutes exactly the range ``ε < δ/2``
    (the triangle-ring engine covers the full ``ε < δ`` for ``n <= 3f``
    graphs; the stronger connectivity-only statement would need a
    finer scenario interleaving).
    """
    import math

    from ..graphs.coverings import (
        connectivity_cyclic_cover,
        cut_partition_for_connectivity,
    )

    if epsilon >= delta / 2:
        raise ValueError(
            "the cyclic-cover chain drifts 2ε per copy; this engine needs "
            "ε < δ/2"
        )
    side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(
        graph, max_faults
    )
    # Contradiction requires k·δ - γ > δ + γ + 2kε.
    k = max(2, math.floor((delta + 2 * gamma) / (delta - 2 * epsilon)) + 1)
    copies = k + 2
    cover = connectivity_cyclic_cover(
        graph, cut_b, cut_d, side_a, side_c, copies=copies
    )
    cover_inputs = {}
    for i in range(copies):
        for v in graph.nodes:
            cover_inputs[cover.copy_of(v, i)] = i * delta
    cover_system = install_in_covering(
        cover.covering, dict(devices), cover_inputs
    )
    cover_behavior = run(cover_system, rounds)

    spec = EpsilonDeltaGammaSpec(epsilon, delta, gamma)

    def part_nodes(part, i):
        return [cover.copy_of(v, i) for v in sorted(part, key=str)]

    checked = []
    constructed = []
    # Scenario chain along the copies 0..k+1 (the wrap pair, whose
    # inputs differ by (k+1)·δ, is never used — same as the triangle
    # ring construction never using the wrap edge's pair).
    for i in range(copies - 1):
        a_i = part_nodes(side_a, i)
        b_i = part_nodes(cut_b, i)
        c_i = part_nodes(side_c, i)
        c_next = part_nodes(side_c, i + 1)
        d_next = part_nodes(cut_d, i + 1)
        for label, nodes in (
            (f"A{i}", a_i + b_i + c_i),
            (f"B{i}", a_i + d_next + c_next),
        ):
            c = build_base_behavior(
                cover.covering, cover_system, cover_behavior, nodes,
                dict(devices), label=label,
            )
            checked.append(
                CheckedBehavior(
                    constructed=c,
                    verdict=spec.check(
                        c.inputs, c.decisions(), c.correct_nodes
                    ),
                )
            )
            constructed.append(c)

    links = []
    for previous, current in zip(constructed, constructed[1:]):
        links.extend(shared_links(cover.covering, previous, current))
    witness = ImpossibilityWitness(
        problem="epsilon-delta-gamma-agreement",
        bound=(
            f"2f+1 connectivity (cyclic {copies}-fold cover; "
            f"ε={epsilon}, δ={delta}, γ={gamma}, k={k})"
        ),
        graph=graph,
        max_faults=max_faults,
        checked=tuple(checked),
        links=tuple(links),
        extra={"k": k, "copies": copies},
    )
    if require_violation:
        witness.require_found()
    return witness


def refute_epsilon_delta(
    devices: Mapping[NodeId, SyncDevice],
    epsilon: float,
    delta: float,
    gamma: float,
    rounds: int,
    base: CommunicationGraph | None = None,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Theorem 6: refute claimed (ε,δ,γ)-devices for the triangle.

    ``devices`` maps the triangle's nodes (``a, b, c`` by default) to
    the claimed devices.  The returned witness carries the Lemma 7
    trace in ``extra["lemma7"]``: for each ring node, the value its
    device chose and the inductive upper bound ``δ + γ + iε``.
    """
    base = base or triangle()
    k = ring_size_for_epsilon_delta(epsilon, delta, gamma)
    covering = ring_cover_of_triangle(k + 2, base)
    ring_nodes = covering.cover.nodes
    cover_inputs = {
        node: index * delta for index, node in enumerate(ring_nodes)
    }
    cover_system = install_in_covering(covering, devices, cover_inputs)
    cover_behavior = run(cover_system, rounds)

    spec_cache: dict[int, EpsilonDeltaGammaSpec] = {}
    checked = []
    constructed = []
    for i in range(k + 1):
        pair = [ring_nodes[i], ring_nodes[i + 1]]
        c = build_base_behavior(
            covering, cover_system, cover_behavior, pair, devices,
            label=f"E{i}",
        )
        spec = spec_cache.setdefault(
            0, EpsilonDeltaGammaSpec(epsilon, delta, gamma)
        )
        checked.append(
            CheckedBehavior(
                constructed=c,
                verdict=spec.check(c.inputs, c.decisions(), c.correct_nodes),
            )
        )
        constructed.append(c)

    links = []
    for previous, current in zip(constructed, constructed[1:]):
        links.extend(shared_links(covering, previous, current))

    lemma7 = []
    for index, node in enumerate(ring_nodes):
        chosen = cover_behavior.decision(node)
        bound = delta + gamma + max(0, index - 1) * epsilon
        lemma7.append(
            {
                "node": node,
                "input": cover_inputs[node],
                "chosen": chosen,
                "lemma7_upper_bound": bound if index >= 1 else None,
                "validity_lower_bound": cover_inputs[node] - delta - gamma,
            }
        )

    witness = ImpossibilityWitness(
        problem="epsilon-delta-gamma-agreement",
        bound=f"3f+1 nodes (ε={epsilon}, δ={delta}, γ={gamma}, k={k})",
        graph=base,
        max_faults=1,
        checked=tuple(checked),
        links=tuple(links),
        extra={"lemma7": lemma7, "k": k},
    )
    if require_violation:
        witness.require_found()
    return witness
