"""TIGHT-N — tightness of the 3f+1 node bound.

The lower bound matters because [PSL/LSP] protocols match it: EIG
succeeds at exactly n = 3f+1 under Byzantine adversaries, and the
engine refutes everything below.  Also benchmarks EIG's cost growth
(its messages are exponential in f — the price of optimal resilience)
against phase king's polynomial messages at n > 4f.
"""

import pytest
from conftest import report

from repro.analysis import SWEEP_HEADERS, format_table, node_bound_sweep
from repro.graphs import complete_graph
from repro.problems import ByzantineAgreementSpec
from repro.protocols import eig_devices, phase_king_devices
from repro.runtime.sync import RandomLiarDevice, make_system, run

SPEC = ByzantineAgreementSpec()


def test_full_threshold_table(benchmark):
    rows = benchmark(lambda: node_bound_sweep((1, 2)))
    report(
        "TIGHT-N: the 3f+1 threshold",
        format_table(SWEEP_HEADERS, [r.as_tuple() for r in rows]),
    )
    boundary = {
        (row.n_nodes, row.max_faults): row.outcome for row in rows
    }
    assert "IMPOSSIBLE" in boundary[(3, 1)]
    assert "SOLVED" in boundary[(4, 1)]
    assert "IMPOSSIBLE" in boundary[(6, 2)]
    assert "SOLVED" in boundary[(7, 2)]


@pytest.mark.parametrize("f", [1, 2])
def test_eig_at_exactly_3f_plus_1(benchmark, f):
    n = 3 * f + 1
    g = complete_graph(n)

    def once():
        devices = dict(eig_devices(g, f))
        nodes = list(g.nodes)
        for i, node in enumerate(nodes[-f:]):
            devices[node] = RandomLiarDevice(seed=i)
        inputs = {u: i % 2 for i, u in enumerate(nodes)}
        behavior = run(make_system(g, devices, inputs), f + 1)
        return SPEC.check(inputs, behavior.decisions(), nodes[: n - f])

    verdict = benchmark(once)
    assert verdict.ok


def test_phase_king_at_4f_plus_1(benchmark):
    f = 1
    g = complete_graph(4 * f + 1)

    def once():
        devices = dict(phase_king_devices(g, f))
        devices["n4"] = RandomLiarDevice(seed=5)
        inputs = {u: i % 2 for i, u in enumerate(g.nodes)}
        behavior = run(make_system(g, devices, inputs), 2 * (f + 1))
        return SPEC.check(
            inputs, behavior.decisions(), [f"n{i}" for i in range(4)]
        )

    verdict = benchmark(once)
    assert verdict.ok
