"""Timed executor tests, including operational checks of the
Bounded-Delay Locality and Scaling axioms."""

import pytest

from repro.graphs import line, triangle
from repro.runtime.timed import (
    LinearClock,
    TimedExecutionError,
    TimedReplayDevice,
    make_timed_system,
    run_timed,
)
from repro.runtime.timed.device import TimedDevice


class PingDevice(TimedDevice):
    """Sends its input on every port at start; echoes receipts once."""

    def __init__(self):
        self.echoed = set()

    def on_start(self, ctx, api):
        for port in ctx.ports:
            api.send(port, ("ping", ctx.input))

    def on_message(self, ctx, api, port, message):
        if port not in self.echoed and message[0] == "ping":
            self.echoed.add(port)
            api.send(port, ("echo", message[1]))


class TimerDevice(TimedDevice):
    def __init__(self, at):
        self.at = at

    def on_start(self, ctx, api):
        api.set_timer("wake", self.at)

    def on_timer(self, ctx, api, name):
        api.decide(api.clock())


class TestHorizonValidation:
    """The timed executor validates its horizon the same way the sync
    executor validates ``rounds`` — before any device code runs."""

    def _system(self):
        g = triangle()
        return make_timed_system(
            g, {u: PingDevice for u in g.nodes}, {u: u for u in g.nodes}
        )

    def test_negative_horizon_rejected(self):
        with pytest.raises(TimedExecutionError, match="non-negative"):
            run_timed(self._system(), horizon=-1.0)

    def test_nan_horizon_rejected(self):
        with pytest.raises(TimedExecutionError, match="non-negative"):
            run_timed(self._system(), horizon=float("nan"))

    def test_zero_horizon_runs_only_time_zero(self):
        behavior = run_timed(self._system(), horizon=0.0)
        for u in behavior.graph.nodes:
            assert all(e.time == 0.0 for e in behavior.node(u).events)


class TestBasics:
    def test_messages_arrive_after_delay(self):
        g = triangle()
        system = make_timed_system(
            g,
            {u: PingDevice for u in g.nodes},
            {u: u for u in g.nodes},
            delay=0.5,
        )
        behavior = run_timed(system, horizon=2.0)
        sends = behavior.edge("a", "b").sends
        assert sends[0][0] == 0.0 and sends[0][2] == 0.5
        receive_times = [
            e.time for e in behavior.node("b").events if e.kind == "receive"
        ]
        assert 0.5 in receive_times

    def test_timer_fires_at_clock_time(self):
        g = triangle()
        clock = LinearClock(2.0, 0.0)  # clock runs twice real time
        system = make_timed_system(
            g,
            {u: (lambda: TimerDevice(3.0)) for u in g.nodes},
            {u: None for u in g.nodes},
            clocks={u: clock for u in g.nodes},
        )
        behavior = run_timed(system, horizon=2.0)
        # Clock value 3.0 is real time 1.5; decision records clock 3.0.
        assert behavior.node("a").decision == pytest.approx(3.0)
        assert behavior.node("a").decision_time == pytest.approx(1.5)

    def test_past_timer_rejected(self):
        class Bad(TimedDevice):
            def on_start(self, ctx, api):
                api.set_timer("now", 0.0)

        g = triangle()
        system = make_timed_system(
            g, {u: Bad for u in g.nodes}, {u: None for u in g.nodes}
        )
        with pytest.raises(TimedExecutionError):
            run_timed(system, 1.0)

    def test_changed_decision_rejected(self):
        class Fickle(TimedDevice):
            def on_start(self, ctx, api):
                api.set_timer("a", 1.0)
                api.set_timer("b", 2.0)

            def on_timer(self, ctx, api, name):
                api.decide(name)

        g = triangle()
        system = make_timed_system(
            g, {u: Fickle for u in g.nodes}, {u: None for u in g.nodes}
        )
        with pytest.raises(TimedExecutionError):
            run_timed(system, 3.0)

    def test_determinism(self):
        g = triangle()

        def build():
            return make_timed_system(
                g,
                {u: PingDevice for u in g.nodes},
                {u: u for u in g.nodes},
                delay=0.25,
            )

        b1 = run_timed(build(), 2.0)
        b2 = run_timed(build(), 2.0)
        for u in g.nodes:
            assert b1.node(u).events == b2.node(u).events

    def test_replay_device_reproduces_script(self):
        g = triangle()
        script = [(0.5, "b", "hello", 1.0), (1.5, "c", "bye", 2.5)]
        factories = {
            "a": (lambda: TimedReplayDevice(script)),
            "b": PingDevice,
            "c": PingDevice,
        }
        system = make_timed_system(
            g, factories, {u: 0 for u in g.nodes}, delay=1.0
        )
        behavior = run_timed(system, 3.0)
        assert behavior.edge("a", "b").sends[0] == (0.5, "hello", 1.0)
        assert behavior.edge("a", "c").sends[0] == (1.5, "bye", 2.5)


class TestBoundedDelayLocality:
    """Information crosses at most one edge per δ — news of a distant change
    cannot reach a node before (distance · δ)."""

    def test_news_travels_at_delta_per_hop(self):
        class Gossip(TimedDevice):
            def on_start(self, ctx, api):
                if ctx.input == 1:
                    for port in ctx.ports:
                        api.send(port, "news")

            def on_message(self, ctx, api, port, message):
                for out in ctx.ports:
                    if out != port:
                        api.send(out, message)

        g = line(5)
        delta = 1.0

        def build(first_input):
            inputs = {u: 0 for u in g.nodes}
            inputs["l0"] = first_input
            return make_timed_system(
                g, {u: Gossip for u in g.nodes}, inputs, delay=delta
            )

        quiet = run_timed(build(0), 5.0)
        noisy = run_timed(build(1), 5.0)
        # l4 is 4 hops away: behaviors identical strictly before 4δ.
        assert noisy.node("l4").prefix_equal(quiet.node("l4"), through=3.9)
        assert not noisy.node("l4").prefix_equal(quiet.node("l4"), through=4.1)


class TestScalingAxiom:
    """Running Sh equals scaling the behavior of S by h (Section 7)."""

    def test_scaled_system_scales_behavior(self):
        class ClockTalker(TimedDevice):
            def on_start(self, ctx, api):
                api.set_logical(lambda c: c / 2)
                api.set_timer("t", 2.0)

            def on_timer(self, ctx, api, name):
                for port in ctx.ports:
                    api.send(port, ("r", api.clock()))

            def on_message(self, ctx, api, port, message):
                api.decide(message[1])

        g = triangle()
        base = make_timed_system(
            g,
            {u: ClockTalker for u in g.nodes},
            {u: None for u in g.nodes},
            delay=0.5,
            delay_mode="clock",
            clocks={u: LinearClock(1.5, 0.0) for u in g.nodes},
        )
        h = LinearClock(2.0, 0.0)
        scaled = base.scaled(h)
        b_base = run_timed(base, 4.0)
        b_scaled = run_timed(scaled, 2.0)  # h maps [0,2] onto [0,4]
        h_inv = h.inverse()
        for u in g.nodes:
            original = [
                e for e in b_base.node(u).events if e.time <= 4.0 + 1e-9
            ]
            mirrored = b_scaled.node(u).events
            assert len(original) == len(mirrored)
            for a, b in zip(original, mirrored):
                assert a.kind == b.kind
                assert b.time == pytest.approx(h_inv(a.time))

    def test_scaling_requires_clock_delays(self):
        g = triangle()
        system = make_timed_system(
            g,
            {u: PingDevice for u in g.nodes},
            {u: 0 for u in g.nodes},
            delay_mode="real",
        )
        from repro.graphs import GraphError

        with pytest.raises(GraphError):
            system.scaled(LinearClock(2.0, 0.0))


class TestClockAlgebra:
    def test_linear_inverse(self):
        c = LinearClock(2.0, 3.0)
        inv = c.inverse()
        for t in (0.0, 1.0, 7.5):
            assert inv(c(t)) == pytest.approx(t)

    def test_compose_simplifies_linear(self):
        from repro.runtime.timed import compose

        c = compose(LinearClock(2.0, 1.0), LinearClock(3.0, 0.5))
        assert isinstance(c, LinearClock)
        assert c(1.0) == pytest.approx(2.0 * (3.0 * 1.0 + 0.5) + 1.0)

    def test_iterate(self):
        h = LinearClock(2.0, 0.0)
        assert h.iterate(3)(1.0) == pytest.approx(8.0)
        assert h.iterate(-2)(8.0) == pytest.approx(2.0)
        assert h.iterate(0)(5.0) == pytest.approx(5.0)

    def test_drift_map(self):
        from repro.runtime.timed import drift_map

        p = LinearClock(1.0, 0.0)
        q = LinearClock(1.5, 0.0)
        h = drift_map(p, q)
        assert h(2.0) == pytest.approx(3.0)
        for t in (0.5, 1.0, 4.0):
            assert h(t) >= t

    def test_power_clock(self):
        from repro.runtime.timed import PowerClock

        c = PowerClock(scale=2.0, exponent=2.0)
        assert c(3.0) == pytest.approx(18.0)
        assert c.inverse()(c(3.0)) == pytest.approx(3.0)

    def test_clock_order_check(self):
        from repro.runtime.timed import ClockError, verify_clock_order

        with pytest.raises(ClockError):
            verify_clock_order(LinearClock(2.0, 0.0), LinearClock(1.0, 0.0))
