"""Adequate vs. inadequate graphs.

The paper calls a graph *inadequate* for ``f`` faults when it has fewer
than ``3f + 1`` nodes or connectivity less than ``2f + 1``.  Every
impossibility result applies exactly to inadequate graphs; every
positive protocol in :mod:`repro.protocols` requires an adequate one.
"""

from __future__ import annotations

from dataclasses import dataclass

from .connectivity import node_connectivity
from .graph import CommunicationGraph, GraphError


def required_nodes(max_faults: int) -> int:
    """Minimum node count to tolerate ``f`` Byzantine faults: ``3f + 1``."""
    _check_f(max_faults)
    return 3 * max_faults + 1


def required_connectivity(max_faults: int) -> int:
    """Minimum connectivity to tolerate ``f`` Byzantine faults: ``2f + 1``."""
    _check_f(max_faults)
    return 2 * max_faults + 1


@dataclass(frozen=True)
class AdequacyReport:
    """Why a graph is (in)adequate for a given number of faults."""

    n_nodes: int
    connectivity: int
    max_faults: int
    enough_nodes: bool
    enough_connectivity: bool

    @property
    def adequate(self) -> bool:
        return self.enough_nodes and self.enough_connectivity

    def describe(self) -> str:
        f = self.max_faults
        parts = [
            f"n = {self.n_nodes} {'≥' if self.enough_nodes else '<'} "
            f"3f+1 = {3 * f + 1}",
            f"κ = {self.connectivity} "
            f"{'≥' if self.enough_connectivity else '<'} 2f+1 = {2 * f + 1}",
        ]
        verdict = "ADEQUATE" if self.adequate else "INADEQUATE"
        return f"{verdict} for f = {f}: " + ", ".join(parts)


def classify(graph: CommunicationGraph, max_faults: int) -> AdequacyReport:
    """Full adequacy report for ``graph`` against ``f`` faults."""
    _check_f(max_faults)
    if len(graph) < 3:
        raise GraphError("the paper assumes graphs with at least three nodes")
    kappa = node_connectivity(graph)
    return AdequacyReport(
        n_nodes=len(graph),
        connectivity=kappa,
        max_faults=max_faults,
        enough_nodes=len(graph) >= required_nodes(max_faults),
        enough_connectivity=kappa >= required_connectivity(max_faults),
    )


def is_adequate(graph: CommunicationGraph, max_faults: int) -> bool:
    """``n >= 3f + 1`` and ``κ(G) >= 2f + 1``."""
    return classify(graph, max_faults).adequate


def is_inadequate(graph: CommunicationGraph, max_faults: int) -> bool:
    """Fewer than ``3f + 1`` nodes or connectivity below ``2f + 1``."""
    return not is_adequate(graph, max_faults)


def max_tolerable_faults(graph: CommunicationGraph) -> int:
    """Largest ``f`` for which ``graph`` is adequate (0 if none)."""
    if len(graph) < 3:
        raise GraphError("the paper assumes graphs with at least three nodes")
    kappa = node_connectivity(graph)
    by_nodes = (len(graph) - 1) // 3
    by_connectivity = (kappa - 1) // 2
    return max(0, min(by_nodes, by_connectivity))


def _check_f(max_faults: int) -> None:
    if max_faults < 1:
        raise GraphError("the fault bound f must be at least 1")
