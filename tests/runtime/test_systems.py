"""System-construction guards and helpers for both runtimes."""

import pytest

from repro.graphs import GraphError, triangle
from repro.protocols import MajorityVoteDevice
from repro.runtime.sync import (
    NodeAssignment,
    SyncSystem,
    run,
    uniform_system,
)
from repro.runtime.timed import (
    LinearClock,
    TimedNodeAssignment,
    TimedSystem,
    make_timed_system,
)
from repro.runtime.timed.device import TimedDevice


class TestSyncSystemGuards:
    def test_missing_assignment_rejected(self):
        g = triangle()
        assignments = {
            "a": NodeAssignment(
                MajorityVoteDevice(), 0, {"b": "b", "c": "c"}
            )
        }
        with pytest.raises(GraphError):
            SyncSystem(g, assignments)

    def test_wrong_port_set_rejected(self):
        g = triangle()
        base = uniform_system(g, MajorityVoteDevice(), {u: 0 for u in g.nodes})
        bad = dict(base.assignments)
        bad["a"] = NodeAssignment(MajorityVoteDevice(), 0, {"b": "b"})
        with pytest.raises(GraphError):
            SyncSystem(g, bad)

    def test_duplicate_labels_rejected(self):
        g = triangle()
        base = uniform_system(g, MajorityVoteDevice(), {u: 0 for u in g.nodes})
        bad = dict(base.assignments)
        bad["a"] = NodeAssignment(
            MajorityVoteDevice(), 0, {"b": "x", "c": "x"}
        )
        with pytest.raises(GraphError):
            SyncSystem(g, bad)

    def test_with_inputs_preserves_devices(self):
        g = triangle()
        system = uniform_system(
            g, MajorityVoteDevice(), {u: 0 for u in g.nodes}
        )
        updated = system.with_inputs({"a": 1})
        assert updated.input("a") == 1
        assert updated.input("b") == 0
        assert updated.device("a") is system.device("a")

    def test_neighbor_of_port_roundtrip(self):
        g = triangle()
        system = uniform_system(
            g, MajorityVoteDevice(), {u: 0 for u in g.nodes}
        )
        label = system.port("a", "b")
        assert system.neighbor_of_port("a", label) == "b"
        with pytest.raises(GraphError):
            system.neighbor_of_port("a", "nope")

    def test_behaviors_depend_only_on_inputs(self):
        g = triangle()
        s1 = uniform_system(g, MajorityVoteDevice(), {u: 1 for u in g.nodes})
        s2 = s1.with_inputs({u: 1 for u in g.nodes})
        assert run(s1, 2).decisions() == run(s2, 2).decisions()

    def test_reverse_port_map_cached_per_assignment(self):
        g = triangle()
        system = uniform_system(
            g, MajorityVoteDevice(), {u: 0 for u in g.nodes}
        )
        first = system.assignments["a"].neighbor_of_port
        second = system.assignments["a"].neighbor_of_port
        assert first is second  # built once, then cached
        assert first == {"b": "b", "c": "c"}

    def test_reverse_map_with_non_identity_labels(self):
        # Covering-style labelings rename ports; the cached reverse map
        # must follow the labeling, not the node ids.
        g = triangle()
        assignments = {
            "a": NodeAssignment(
                MajorityVoteDevice(), 0, {"b": "east", "c": "west"}
            ),
            "b": NodeAssignment(
                MajorityVoteDevice(), 0, {"a": "a", "c": "c"}
            ),
            "c": NodeAssignment(
                MajorityVoteDevice(), 0, {"a": "a", "b": "b"}
            ),
        }
        system = SyncSystem(g, assignments)
        assert system.neighbor_of_port("a", "east") == "b"
        assert system.neighbor_of_port("a", "west") == "c"
        with pytest.raises(GraphError):
            system.neighbor_of_port("a", "b")


class _Noop(TimedDevice):
    pass


class TestTimedSystemGuards:
    def test_nonpositive_delay_rejected(self):
        g = triangle()
        with pytest.raises(GraphError):
            make_timed_system(
                g, {u: _Noop for u in g.nodes}, {u: None for u in g.nodes},
                delay=0.0,
            )

    def test_missing_assignment_rejected(self):
        g = triangle()
        assignments = {
            "a": TimedNodeAssignment(_Noop, None, {"b": "b", "c": "c"})
        }
        with pytest.raises(GraphError):
            TimedSystem(g, assignments)

    def test_duplicate_labels_rejected(self):
        g = triangle()
        good = make_timed_system(
            g, {u: _Noop for u in g.nodes}, {u: None for u in g.nodes}
        )
        bad = dict(good.assignments)
        bad["a"] = TimedNodeAssignment(_Noop, None, {"b": "x", "c": "x"})
        with pytest.raises(GraphError):
            TimedSystem(g, bad)

    def test_reverse_port_map_cached_per_assignment(self):
        g = triangle()
        system = make_timed_system(
            g, {u: _Noop for u in g.nodes}, {u: None for u in g.nodes}
        )
        first = system.assignments["a"].neighbor_of_port
        assert first is system.assignments["a"].neighbor_of_port
        assert system.neighbor_of_port("a", "b") == "b"
        with pytest.raises(GraphError):
            system.neighbor_of_port("a", "nope")

    def test_with_factories_swaps_only_devices(self):
        g = triangle()
        system = make_timed_system(
            g,
            {u: _Noop for u in g.nodes},
            {u: u for u in g.nodes},
            clocks={u: LinearClock(2.0, 0.0) for u in g.nodes},
        )

        class Other(TimedDevice):
            pass

        updated = system.with_factories({"a": Other})
        assert updated.assignments["a"].factory is Other
        assert updated.clock("a") == LinearClock(2.0, 0.0)
        assert updated.assignments["b"].factory is _Noop

    def test_default_clock_is_identity(self):
        g = triangle()
        system = make_timed_system(
            g, {u: _Noop for u in g.nodes}, {u: None for u in g.nodes}
        )
        assert system.clock("a")(7.5) == 7.5
