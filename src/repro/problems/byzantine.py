"""Byzantine agreement and weak agreement specifications (Sections 3–4).

*Byzantine agreement* (strong validity):
    Agreement — every correct node chooses the same value.
    Validity  — if all the **correct** nodes have the same input, that
                input must be the value chosen.

*Weak agreement* (Lamport's weak Byzantine generals):
    Agreement — every correct node chooses the same value.
    Validity  — if **all** nodes are correct and have the same input,
                that input must be the value chosen.
    Choice    — a correct node must choose after a finite amount of
                time (checked against an explicit deadline).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from ..graphs.graph import NodeId
from .spec import SpecVerdict, Violation, _undecided


def check_agreement(
    decisions: Mapping[NodeId, Any | None], correct: Iterable[NodeId]
) -> list[Violation]:
    """All correct, decided nodes chose the same value."""
    correct = list(correct)
    decided = {u: decisions[u] for u in correct if decisions[u] is not None}
    values = set(decided.values())
    if len(values) > 1:
        by_value: dict[Any, list[NodeId]] = {}
        for u, v in decided.items():
            by_value.setdefault(v, []).append(u)
        detail = "correct nodes disagree: " + ", ".join(
            f"{sorted(map(str, nodes))} chose {value!r}"
            for value, nodes in sorted(by_value.items(), key=lambda kv: repr(kv[0]))
        )
        return [Violation("agreement", detail, tuple(correct))]
    return []


def check_termination(
    decisions: Mapping[NodeId, Any | None], correct: Iterable[NodeId]
) -> list[Violation]:
    """Every correct node decided (within the observation horizon)."""
    missing = [u for u in correct if decisions[u] is None]
    if missing:
        return [
            Violation(
                "termination",
                "correct nodes never chose a value within the horizon",
                tuple(missing),
            )
        ]
    return []


@dataclass(frozen=True)
class ByzantineAgreementSpec:
    """Agreement + strong validity + termination, per Section 3."""

    def check(
        self,
        inputs: Mapping[NodeId, Any],
        decisions: Mapping[NodeId, Any | None],
        correct: Iterable[NodeId],
    ) -> SpecVerdict:
        correct = list(correct)
        violations = check_termination(decisions, correct)
        violations += check_agreement(decisions, correct)
        correct_inputs = {inputs[u] for u in correct}
        if len(correct_inputs) == 1:
            (common,) = correct_inputs
            dissenters = [
                u
                for u in correct
                if decisions[u] is not None and decisions[u] != common
            ]
            if dissenters:
                violations.append(
                    Violation(
                        "validity",
                        f"all correct inputs are {common!r} but these nodes "
                        "chose otherwise",
                        tuple(dissenters),
                    )
                )
        return SpecVerdict(tuple(violations))


@dataclass(frozen=True)
class WeakAgreementSpec:
    """Agreement + weak validity + choice, per Section 4.

    Weak validity binds only behaviors in which *every* node is correct;
    pass ``all_correct=True`` for those.
    """

    def check(
        self,
        inputs: Mapping[NodeId, Any],
        decisions: Mapping[NodeId, Any | None],
        correct: Iterable[NodeId],
        all_correct: bool,
    ) -> SpecVerdict:
        correct = list(correct)
        violations = check_termination(decisions, correct)
        violations += check_agreement(decisions, correct)
        if all_correct:
            all_inputs = {inputs[u] for u in correct}
            if len(all_inputs) == 1:
                (common,) = all_inputs
                dissenters = [
                    u
                    for u in correct
                    if decisions[u] is not None and decisions[u] != common
                ]
                if dissenters:
                    violations.append(
                        Violation(
                            "validity",
                            f"all nodes are correct with input {common!r} but "
                            "these nodes chose otherwise",
                            tuple(dissenters),
                        )
                    )
        return SpecVerdict(tuple(violations))


__all__ = [
    "ByzantineAgreementSpec",
    "WeakAgreementSpec",
    "check_agreement",
    "check_termination",
    "_undecided",
]
