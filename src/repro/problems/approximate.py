"""Approximate agreement specifications (Section 6).

*Simple approximate agreement* [DLPSW]:
    Agreement — the spread of chosen values is strictly smaller than the
                spread of the correct inputs (or equal if that is zero).
    Validity  — each correct node chooses a value within the range of
                the correct inputs.

*(ε, δ, γ)-agreement* [MS]:
    Inputs are promised to lie in an interval of length at most δ.
    Agreement — chosen values are all at most ε apart.
    Validity  — each chosen value lies in ``[r_min - γ, r_max + γ]``.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..graphs.graph import NodeId
from .byzantine import check_termination
from .spec import SpecVerdict, Violation


def _spread(values: Iterable[float]) -> float:
    vals = list(values)
    return max(vals) - min(vals) if vals else 0.0


@dataclass(frozen=True)
class SimpleApproximateAgreementSpec:
    """Section 6.1's (very weak) version of [DLPSW] approximate
    agreement, over real inputs in ``[0, 1]``."""

    def check(
        self,
        inputs: Mapping[NodeId, float],
        decisions: Mapping[NodeId, float | None],
        correct: Iterable[NodeId],
    ) -> SpecVerdict:
        correct = list(correct)
        violations = check_termination(decisions, correct)
        decided = {
            u: decisions[u] for u in correct if decisions[u] is not None
        }
        input_spread = _spread(inputs[u] for u in correct)
        output_spread = _spread(decided.values())
        if decided:
            if input_spread == 0.0:
                if output_spread != 0.0:
                    violations.append(
                        Violation(
                            "agreement",
                            f"inputs all equal but outputs spread "
                            f"{output_spread}",
                            tuple(decided),
                        )
                    )
            elif output_spread >= input_spread:
                violations.append(
                    Violation(
                        "agreement",
                        f"output spread {output_spread} not strictly below "
                        f"input spread {input_spread}",
                        tuple(decided),
                    )
                )
            low = min(inputs[u] for u in correct)
            high = max(inputs[u] for u in correct)
            outliers = [
                u for u, v in decided.items() if not low <= v <= high
            ]
            if outliers:
                violations.append(
                    Violation(
                        "validity",
                        f"chosen values escape the input range "
                        f"[{low}, {high}]",
                        tuple(outliers),
                    )
                )
        return SpecVerdict(tuple(violations))


@dataclass(frozen=True)
class EpsilonDeltaGammaSpec:
    """Section 6.2's (ε, δ, γ)-agreement, after [MS].

    Trivially solvable by echoing the input when ``ε >= δ``; Theorem 6
    shows it is unsolvable in inadequate graphs when ``ε < δ``.
    """

    epsilon: float
    delta: float
    gamma: float

    def __post_init__(self) -> None:
        if min(self.epsilon, self.delta, self.gamma) <= 0:
            raise ValueError("ε, δ, γ must all be positive")

    def check(
        self,
        inputs: Mapping[NodeId, float],
        decisions: Mapping[NodeId, float | None],
        correct: Iterable[NodeId],
    ) -> SpecVerdict:
        correct = list(correct)
        r_min = min(inputs[u] for u in correct)
        r_max = max(inputs[u] for u in correct)
        if r_max - r_min > self.delta + 1e-12:
            raise ValueError(
                f"input promise broken: spread {r_max - r_min} > δ = "
                f"{self.delta}"
            )
        violations = check_termination(decisions, correct)
        decided = {
            u: decisions[u] for u in correct if decisions[u] is not None
        }
        if decided:
            output_spread = _spread(decided.values())
            if output_spread > self.epsilon + 1e-12:
                violations.append(
                    Violation(
                        "agreement",
                        f"output spread {output_spread} exceeds ε = "
                        f"{self.epsilon}",
                        tuple(decided),
                    )
                )
            low = r_min - self.gamma
            high = r_max + self.gamma
            outliers = [
                u
                for u, v in decided.items()
                if not low - 1e-12 <= v <= high + 1e-12
            ]
            if outliers:
                violations.append(
                    Violation(
                        "validity",
                        f"chosen values escape [r_min - γ, r_max + γ] = "
                        f"[{low}, {high}]",
                        tuple(outliers),
                    )
                )
        return SpecVerdict(tuple(violations))
