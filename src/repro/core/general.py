"""General-case engines by reduction (footnote 3 made operational).

The paper proves its ring-based theorems (6, and by the same pattern 2,
4, 8) on the triangle and notes the general ``n <= 3f`` case "follows
immediately": partition the nodes into three classes of at most ``f``
and treat each class as one device.  This module executes that
reduction for (ε, δ, γ)-agreement: collapse the graph into a supernode
triangle (:mod:`repro.runtime.sync.collapse`), install the collapsed
group devices in the ``(k+2)``-ring, and evaluate the specification on
the *member* decisions unwrapped from the group decisions.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.builders import triangle
from ..graphs.coverings import partition_for_node_bound, ring_cover_of_triangle
from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..problems.approximate import EpsilonDeltaGammaSpec
from ..runtime.sync.collapse import GroupDevice, PortRenamedDevice, collapse_system
from ..runtime.sync.device import NodeContext, SyncDevice
from ..runtime.sync.executor import run
from ..runtime.sync.system import install_in_covering, make_system
from .approximate import refute_epsilon_delta, ring_size_for_epsilon_delta
from .covering_argument import build_base_behavior, shared_links
from .witness import CheckedBehavior, ImpossibilityWitness

_TRIANGLE_NAMES = {"group0": "a", "group1": "b", "group2": "c"}


def collapse_to_triangle(
    graph: CommunicationGraph,
    devices: Mapping[NodeId, SyncDevice],
    max_faults: int,
) -> tuple[dict[NodeId, SyncDevice], dict[NodeId, GroupDevice]]:
    """Collapse an ``n <= 3f`` system into three triangle devices.

    Returns the renamed triangle devices and, per triangle node, the
    underlying :class:`GroupDevice` (for decision unwrapping).
    """
    parts = partition_for_node_bound(graph, max_faults)
    system = make_system(graph, dict(devices), {u: None for u in graph.nodes})
    quotient, _member_of = collapse_system(
        system, [sorted(p, key=str) for p in parts]
    )
    if len(quotient.graph) != 3 or not quotient.graph.is_complete():
        raise GraphError(
            "the three partition classes are not pairwise adjacent; the "
            "triangle reduction needs every pair of classes to share an "
            "edge (true for complete and near-complete graphs)"
        )
    tri_devices: dict[NodeId, SyncDevice] = {}
    groups: dict[NodeId, GroupDevice] = {}
    for group, name in _TRIANGLE_NAMES.items():
        rename = {
            other: _TRIANGLE_NAMES[other]
            for other in quotient.graph.neighbors(group)
        }
        inner = quotient.device(group)
        assert isinstance(inner, GroupDevice)
        tri_devices[name] = PortRenamedDevice(inner, rename)
        groups[name] = inner
    return tri_devices, groups


def refute_epsilon_delta_general(
    graph: CommunicationGraph,
    devices: Mapping[NodeId, SyncDevice],
    max_faults: int,
    epsilon: float,
    delta: float,
    gamma: float,
    rounds: int,
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Theorem 6 for any graph with ``3 <= n <= 3f``.

    For the literal triangle this defers to
    :func:`repro.core.refute_epsilon_delta`; otherwise it performs the
    collapse reduction and runs the same ``(k+2)``-ring construction on
    the supernode triangle, checking the spec on unwrapped member
    decisions.
    """
    if len(graph) == 3:
        name_map = dict(zip(graph.nodes, ("a", "b", "c")))
        renamed = {name_map[u]: devices[u] for u in graph.nodes}
        return refute_epsilon_delta(
            renamed, epsilon, delta, gamma, rounds,
            require_violation=require_violation,
        )
    if len(graph) > 3 * max_faults:
        raise GraphError(
            f"n = {len(graph)} > 3f = {3 * max_faults}: not inadequate by "
            "node count"
        )
    tri_devices, groups = collapse_to_triangle(graph, devices, max_faults)
    base = triangle()
    k = ring_size_for_epsilon_delta(epsilon, delta, gamma)
    covering = ring_cover_of_triangle(k + 2, base)
    ring_nodes = covering.cover.nodes
    cover_inputs = {
        node: index * delta for index, node in enumerate(ring_nodes)
    }
    cover_system = install_in_covering(covering, tri_devices, cover_inputs)
    cover_behavior = run(cover_system, rounds)

    spec = EpsilonDeltaGammaSpec(epsilon, delta, gamma)
    checked: list[CheckedBehavior] = []
    constructed = []
    for i in range(k + 1):
        pair = [ring_nodes[i], ring_nodes[i + 1]]
        c = build_base_behavior(
            covering, cover_system, cover_behavior, pair, tri_devices,
            label=f"E{i}",
        )
        member_inputs: dict[NodeId, float] = {}
        member_decisions: dict[NodeId, Any] = {}
        correct_members: list[NodeId] = []
        for g in sorted(c.correct_nodes, key=str):
            group = groups[g]
            final_state = c.behavior.node(g).states[-1]
            ctx = NodeContext(ports=(), input=c.inputs[g])
            for member in group.members:
                member_inputs[member] = c.inputs[g]
                member_decisions[member] = group.member_decision(
                    final_state, member, ctx
                )
                correct_members.append(member)
        verdict = spec.check(
            member_inputs, member_decisions, correct_members
        )
        checked.append(CheckedBehavior(constructed=c, verdict=verdict))
        constructed.append(c)

    links = []
    for previous, current in zip(constructed, constructed[1:]):
        links.extend(shared_links(covering, previous, current))
    witness = ImpossibilityWitness(
        problem="epsilon-delta-gamma-agreement",
        bound=(
            f"3f+1 nodes, general case via footnote-3 collapse "
            f"(n={len(graph)}, f={max_faults}, k={k})"
        ),
        graph=graph,
        max_faults=max_faults,
        checked=tuple(checked),
        links=tuple(links),
        extra={"k": k, "collapsed": True},
    )
    if require_violation:
        witness.require_found()
    return witness
