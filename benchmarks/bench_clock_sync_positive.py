"""SYNC-POS — the positive side of Theorem 8.

Regenerates: the skew table comparing the trivial lower-envelope
synchronization against fault-tolerant averaging on an adequate K4
(with a two-faced Byzantine clock), and the same comparison's
impossibility on the triangle (engine verdict).
"""

from conftest import report

from repro.analysis import format_table
from repro.graphs import complete_graph
from repro.protocols import (
    AveragingSyncDevice,
    ByzantineClockDevice,
    LowerEnvelopeClockDevice,
    max_logical_skew,
)
from repro.runtime.timed import LinearClock, make_timed_system, run_timed

LOWER = LinearClock(1.0, 0.0)
DELAY = 0.125
CLOCKS = {
    "n0": LinearClock(1.00, 0.0),
    "n1": LinearClock(1.07, 0.0),
    "n2": LinearClock(1.15, 0.0),
    "n3": LinearClock(1.20, 0.0),
}


def _skew(strategy_factory, with_byzantine=True, horizon=20.0):
    g = complete_graph(4)
    factories = {u: strategy_factory for u in g.nodes}
    if with_byzantine:
        factories["n3"] = lambda: ByzantineClockDevice(2.0, spread=40.0)
    system = make_timed_system(
        g,
        factories,
        {u: None for u in g.nodes},
        delay=DELAY,
        delay_mode="clock",
        clocks=CLOCKS,
    )
    behavior = run_timed(system, horizon)
    return max_logical_skew(behavior, ["n0", "n1", "n2"], (10.0, horizon))


def test_averaging_beats_trivial(benchmark):
    averaging = benchmark(
        lambda: _skew(
            lambda: AveragingSyncDevice(LOWER, 2.0, DELAY, max_faults=1)
        )
    )
    trivial = _skew(lambda: LowerEnvelopeClockDevice(LOWER))
    rows = [
        ("trivial l(D(t)), no communication", trivial),
        ("averaging with f-trim (one exchange)", averaging),
    ]
    report(
        "SYNC-POS: honest skew by t = 20 on K4 (one Byzantine clock)",
        format_table(("strategy", "max honest skew"), rows),
    )
    assert averaging < trivial


def test_byzantine_clock_cannot_poison_average(benchmark):
    with_fault = benchmark(
        lambda: _skew(
            lambda: AveragingSyncDevice(LOWER, 2.0, DELAY, max_faults=1),
            with_byzantine=True,
        )
    )
    without_fault = _skew(
        lambda: AveragingSyncDevice(LOWER, 2.0, DELAY, max_faults=1),
        with_byzantine=False,
    )
    # Trimming keeps the Byzantine influence bounded: the faulty clock
    # (lying by ±40) must not blow the skew past the trivial bound.
    trivial = _skew(lambda: LowerEnvelopeClockDevice(LOWER))
    assert with_fault < trivial
    benchmark.extra_info["skew_with_fault"] = with_fault
    benchmark.extra_info["skew_without_fault"] = without_fault
