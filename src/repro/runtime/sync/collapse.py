"""The quotient-system construction of the paper's footnote 3.

    "Given a system S and a partitioning of its communication graph G
    into subgraphs, there is a natural construction of a new system
    S', obtained by collapsing the subgraphs into single nodes.  The
    devices in S' are the (indexed) sets of devices running in each
    subgraph of G, [...] Then the devices and behaviors in S' satisfy
    the Locality and Fault axioms if the underlying devices and
    behaviors in S do."

This module implements that construction operationally: a
:class:`GroupDevice` runs an entire induced subsystem (several devices
plus their internal edges) as one synchronous device, and
:func:`collapse_system` rewrites a system over a node partition into
the quotient system over supernodes.  The quotient's behavior projects
exactly onto the original's — verified by :func:`verify_collapse` and
the test suite — which yields the paper's alternative proof of the
general ``n <= 3f`` bound by direct reduction to the ``f = 1``
triangle case.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping, Sequence
from typing import Any

from ...graphs.graph import CommunicationGraph, GraphError, NodeId
from .behavior import SyncBehavior
from .device import Message, NodeContext, PortLabel, State, SyncDevice
from .system import NodeAssignment, SyncSystem


class GroupDevice(SyncDevice):
    """A set of devices (an induced subsystem) run as one pure device.

    The group's state is the tuple of member states; each round the
    group routes members' messages internally over the collapsed
    edges and bundles boundary messages per supernode port.  Bundled
    messages are dicts ``{(sender_member, receiver_member): message}``
    so the receiving group can dispatch them to the right inboxes.

    Member devices keep their original port labels **in their original
    order**, so a member cannot tell it has been collapsed — which is
    what makes the footnote's projection exact.
    """

    def __init__(
        self,
        members: Sequence[NodeId],
        member_devices: Mapping[NodeId, SyncDevice],
        member_inputs: Mapping[NodeId, Any],
        label_to_neighbor: Mapping[NodeId, Mapping[PortLabel, NodeId]],
        port_of_group: Mapping[tuple[NodeId, NodeId], PortLabel],
    ) -> None:
        """
        Parameters
        ----------
        members:
            Member node ids, in a fixed order.
        label_to_neighbor:
            Per member, its original (ordered) port labeling: port
            label -> the neighbor node id behind it, internal and
            external alike.
        port_of_group:
            (member, external neighbor) -> the supernode port that
            reaches that neighbor's group.
        """
        self.members = tuple(members)
        self.member_set = frozenset(members)
        self.devices = dict(member_devices)
        self.inputs = dict(member_inputs)
        self.label_to_neighbor = {
            m: dict(ports) for m, ports in label_to_neighbor.items()
        }
        self.port_of_group = dict(port_of_group)
        # Reverse lookup: the label `u` uses for neighbor `v`.
        self.label_for: dict[tuple[NodeId, NodeId], PortLabel] = {}
        for m, ports in self.label_to_neighbor.items():
            for label, neighbor in ports.items():
                self.label_for[(m, neighbor)] = label

    def _member_input(self, member: NodeId, ctx: NodeContext):
        """The member's input, resolved from the group's own input.

        A per-member sequence assigns one value per member; any other
        non-``None`` value is broadcast to all members (the paper:
        "the inputs depicted for the sets of devices are assigned to
        all the devices in the respective sets"); ``None`` falls back
        to the inputs stored at collapse time.
        """
        if ctx.input is None:
            return self.inputs[member]
        if isinstance(ctx.input, (tuple, list)) and len(ctx.input) == len(
            self.members
        ):
            return ctx.input[self.members.index(member)]
        return ctx.input

    def _member_context(self, member: NodeId, ctx: NodeContext) -> NodeContext:
        return NodeContext(
            ports=tuple(self.label_to_neighbor[member]),
            input=self._member_input(member, ctx),
        )

    def _member_sends(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[NodeId, Mapping[PortLabel, Message]]:
        return {
            m: self.devices[m].send(
                self._member_context(m, ctx), member_state, round_index
            )
            for m, member_state in zip(self.members, state)
        }

    def init_state(self, ctx: NodeContext) -> State:
        return tuple(
            self.devices[m].init_state(self._member_context(m, ctx))
            for m in self.members
        )

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        outbound: dict[PortLabel, dict] = {}
        for m, out in self._member_sends(ctx, state, round_index).items():
            for label, message in out.items():
                neighbor = self.label_to_neighbor[m].get(label)
                if neighbor is None or neighbor in self.member_set:
                    continue  # unknown or internal; internal is routed
                    # by the receiving side in transition
                group_port = self.port_of_group[(m, neighbor)]
                outbound.setdefault(group_port, {})[(m, neighbor)] = message
        return outbound

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        # Recompute members' sends: devices are pure, so this equals
        # what `send` emitted this round.  Keeping no instance state
        # lets one GroupDevice serve several covering nodes at once.
        member_outputs = self._member_sends(ctx, state, round_index)
        new_states = []
        for m, member_state in zip(self.members, state):
            mctx = self._member_context(m, ctx)
            member_inbox: dict[PortLabel, Message] = {}
            for label, neighbor in self.label_to_neighbor[m].items():
                if neighbor in self.member_set:
                    # Internal edge: deliver what the neighbor sent us.
                    their_label = self.label_for[(neighbor, m)]
                    member_inbox[label] = member_outputs[neighbor].get(
                        their_label
                    )
                else:
                    group_port = self.port_of_group[(m, neighbor)]
                    bundle = inbox.get(group_port)
                    member_inbox[label] = (
                        bundle.get((neighbor, m))
                        if isinstance(bundle, dict)
                        else None
                    )
            new_states.append(
                self.devices[m].transition(
                    mctx, member_state, round_index, member_inbox
                )
            )
        return tuple(new_states)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        """The group's CHOOSE: the tuple of member decisions, or None
        until every member has decided."""
        decisions = []
        for m, member_state in zip(self.members, state):
            value = self.devices[m].choose(
                self._member_context(m, ctx), member_state
            )
            if value is None:
                return None
            decisions.append((m, value))
        return tuple(decisions)

    def member_decision(
        self, state: State, member: NodeId, ctx: NodeContext | None = None
    ) -> Any | None:
        index = self.members.index(member)
        if ctx is None:
            ctx = NodeContext(ports=(), input=None)
        return self.devices[member].choose(
            self._member_context(member, ctx), state[index]
        )


class PortRenamedDevice(SyncDevice):
    """Adapter translating a device's port labels.

    Used to install quotient :class:`GroupDevice`\\ s (whose ports are
    named after supernodes) at nodes of another graph (e.g. the
    triangle, for the footnote 3 reduction).  ``rename`` maps the
    inner device's labels to the outer system's labels.
    """

    def __init__(
        self, inner: SyncDevice, rename: Mapping[PortLabel, PortLabel]
    ) -> None:
        self.inner = inner
        self.to_outer = dict(rename)
        self.to_inner = {v: k for k, v in rename.items()}
        if len(self.to_inner) != len(self.to_outer):
            raise GraphError("port renaming must be a bijection")

    def _inner_ctx(self, ctx: NodeContext) -> NodeContext:
        return NodeContext(
            ports=tuple(self.to_inner[p] for p in ctx.ports),
            input=ctx.input,
        )

    def init_state(self, ctx: NodeContext) -> State:
        return self.inner.init_state(self._inner_ctx(ctx))

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        out = self.inner.send(self._inner_ctx(ctx), state, round_index)
        return {self.to_outer[label]: msg for label, msg in out.items()}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        inner_inbox = {
            self.to_inner[label]: msg for label, msg in inbox.items()
        }
        return self.inner.transition(
            self._inner_ctx(ctx), state, round_index, inner_inbox
        )

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return self.inner.choose(self._inner_ctx(ctx), state)


def collapse_system(
    system: SyncSystem, partition: Sequence[Iterable[NodeId]]
) -> tuple[SyncSystem, dict[NodeId, NodeId]]:
    """Collapse a system over a node partition into its quotient.

    Returns the quotient system and the map original node -> supernode.
    Supernodes are named ``"group0", "group1", ...`` in partition
    order.  Two supernodes are adjacent iff some members are.
    """
    graph = system.graph
    groups = [tuple(dict.fromkeys(part)) for part in partition]
    flat = [u for group in groups for u in group]
    if len(flat) != len(set(flat)) or set(flat) != set(graph.nodes):
        raise GraphError("partition must exactly cover the node set")

    group_name = {i: f"group{i}" for i in range(len(groups))}
    member_group: dict[NodeId, int] = {}
    for i, group in enumerate(groups):
        for u in group:
            member_group[u] = i

    super_edges = set()
    for (u, v) in graph.edges:
        gu, gv = member_group[u], member_group[v]
        if gu != gv:
            pair = sorted((gu, gv))
            super_edges.add((group_name[pair[0]], group_name[pair[1]]))
    quotient_graph = CommunicationGraph(
        [group_name[i] for i in range(len(groups))],
        sorted(super_edges, key=lambda e: (str(e[0]), str(e[1]))),
    )

    assignments = {}
    for i, group in enumerate(groups):
        label_to_neighbor: dict[NodeId, dict[PortLabel, NodeId]] = {}
        port_of_group: dict[tuple[NodeId, NodeId], PortLabel] = {}
        for u in group:
            ports = system.assignments[u].port_of_neighbor
            # Original order: iterate neighbors in their port order.
            label_to_neighbor[u] = {
                label: neighbor for neighbor, label in ports.items()
            }
            for neighbor, label in ports.items():
                if member_group[neighbor] != i:
                    port_of_group[(u, neighbor)] = group_name[
                        member_group[neighbor]
                    ]
        device = GroupDevice(
            members=group,
            member_devices={u: system.device(u) for u in group},
            member_inputs={u: system.input(u) for u in group},
            label_to_neighbor=label_to_neighbor,
            port_of_group=port_of_group,
        )
        name = group_name[i]
        assignments[name] = NodeAssignment(
            device=device,
            input=tuple(system.input(u) for u in group),
            port_of_neighbor={
                v: v for v in quotient_graph.neighbors(name)
            },
        )
    quotient = SyncSystem(quotient_graph, assignments)
    return quotient, {u: group_name[g] for u, g in member_group.items()}


def verify_collapse(
    original: SyncBehavior,
    quotient: SyncBehavior,
    partition_order: Mapping[NodeId, Sequence[NodeId]],
) -> bool:
    """Check footnote 3's claim: the quotient's member states project
    exactly onto the original system's states, round by round."""
    for supernode, members in partition_order.items():
        super_behavior = quotient.node(supernode)
        for r in range(quotient.rounds + 1):
            group_state = super_behavior.states[r]
            for index, member in enumerate(members):
                if original.node(member).states[r] != group_state[index]:
                    return False
    return True
