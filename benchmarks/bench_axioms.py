"""AXIOMS — micro-benchmarks of the model machinery (Section 2).

Times the operational cost of the pieces every proof leans on: the
synchronous executor, covering installation, Fault-axiom replay
assembly, connectivity computation, and the timed executor — plus
determinism verification.
"""

from conftest import report

from repro.core import build_base_behavior, node_bound_scenarios
from repro.graphs import (
    complete_graph,
    hexagon_cover_of_triangle,
    node_bound_double_cover,
    node_connectivity,
    random_connected_graph,
    triangle,
)
from repro.protocols import MajorityVoteDevice, eig_devices
from repro.runtime.sync import (
    check_determinism,
    install_in_covering,
    make_system,
    run,
)


def test_sync_executor_throughput(benchmark):
    g = complete_graph(7)
    devices = eig_devices(g, 2)
    inputs = {u: i % 2 for i, u in enumerate(g.nodes)}
    system = make_system(g, devices, inputs)
    behavior = benchmark(lambda: run(system, 3))
    assert behavior.rounds == 3


def test_covering_installation(benchmark):
    g = triangle()
    devices = {u: MajorityVoteDevice() for u in g.nodes}

    def install():
        cm = hexagon_cover_of_triangle()
        inputs = {u: 0 for u in cm.cover.nodes}
        return install_in_covering(cm, devices, inputs)

    system = benchmark(install)
    assert len(system.graph) == 6


def test_fault_axiom_assembly(benchmark):
    g = triangle()
    devices = {u: MajorityVoteDevice() for u in g.nodes}
    dc = node_bound_double_cover(g, {"a"}, {"b"}, {"c"})
    cover_inputs = {dc.copy_of(v, 0): 0 for v in g.nodes}
    cover_inputs.update({dc.copy_of(v, 1): 1 for v in g.nodes})
    cover_system = install_in_covering(dc.covering, devices, cover_inputs)
    cover_behavior = run(cover_system, 3)
    scenario = node_bound_scenarios(dc, {"a"}, {"b"}, {"c"})[0]

    constructed = benchmark(
        lambda: build_base_behavior(
            dc.covering, cover_system, cover_behavior, scenario, devices
        )
    )
    assert constructed.correct_nodes == frozenset({"b", "c"})


def test_connectivity_computation(benchmark):
    import random

    g = random_connected_graph(16, 0.3, random.Random(7))
    kappa = benchmark(lambda: node_connectivity(g))
    assert kappa >= 1
    report("AXIOMS: connectivity", f"random 16-node graph has κ = {kappa}")


def test_determinism_verification(benchmark):
    g = complete_graph(4)
    system = make_system(
        g, eig_devices(g, 1), {u: i % 2 for i, u in enumerate(g.nodes)}
    )
    assert benchmark(lambda: check_determinism(system, 2))
