"""COST — protocol cost comparison (context for the bounds).

The bounds the paper proves are about *possibility*; this bench adds
the classical cost picture for the matching protocols: EIG's traffic
grows exponentially with f (it relays its entire tree every round),
phase king stays polynomial (but needs n > 4f), authenticated
agreement pays in signature chains, and sparse-graph agreement
multiplies everything by the 2f+1 path redundancy.
"""

from conftest import report

from repro.analysis import format_table
from repro.analysis.metrics import COMPARE_HEADERS, compare, measure
from repro.graphs import circulant, complete_graph
from repro.protocols import (
    authenticated_consensus_devices,
    eig_devices,
    phase_king_devices,
    sparse_agreement_devices,
)
from repro.runtime.sync import make_system, run


def _run_and_measure(graph, devices, rounds):
    inputs = {u: i % 2 for i, u in enumerate(graph.nodes)}
    return measure(run(make_system(graph, devices, inputs), rounds))


def test_cost_table_f1(benchmark):
    def build():
        metrics = {}
        k4 = complete_graph(4)
        metrics["EIG (n=4, f=1)"] = _run_and_measure(
            k4, eig_devices(k4, 1), 2
        )
        k5 = complete_graph(5)
        metrics["phase king (n=5, f=1)"] = _run_and_measure(
            k5, phase_king_devices(k5, 1), 4
        )
        metrics["Dolev-Strong auth (n=4, f=1)"] = _run_and_measure(
            k4, authenticated_consensus_devices(k4, 1), 2
        )
        sparse = circulant(7, [1, 2])
        devices, rounds = sparse_agreement_devices(sparse, 1)
        metrics["EIG over relay (n=7, κ=4, f=1)"] = _run_and_measure(
            sparse, devices, rounds
        )
        return metrics

    metrics = benchmark(build)
    report(
        "COST: matching protocols, f = 1",
        format_table(COMPARE_HEADERS, compare(metrics)),
    )
    assert metrics["EIG (n=4, f=1)"].last_decision_round == 2
    # Relay redundancy costs more messages than plain EIG at similar n.
    assert (
        metrics["EIG over relay (n=7, κ=4, f=1)"].messages
        > metrics["EIG (n=4, f=1)"].messages
    )


def test_eig_traffic_grows_exponentially(benchmark):
    def grow():
        rows = []
        for f in (1, 2):
            n = 3 * f + 1
            g = complete_graph(n)
            metrics = _run_and_measure(g, eig_devices(g, f), f + 1)
            rows.append((f, n, metrics.messages, metrics.traffic))
        return rows

    rows = benchmark(grow)
    report(
        "COST: EIG traffic vs f",
        format_table(("f", "n", "messages", "traffic"), rows),
    )
    # Traffic ratio between f=2 and f=1 far exceeds the node ratio —
    # the exponential tree at work.
    assert rows[1][3] > 10 * rows[0][3]
