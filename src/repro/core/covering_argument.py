"""The generic covering argument (the paper's proof engine), for the
synchronous model.

Every impossibility proof in the paper has the same shape (end of
Section 3): install the candidate devices in a covering graph ``S`` of
the inadequate graph ``G``, run ``S`` once, cut out scenarios, and use
the Fault axiom to re-create each scenario inside a *correct* behavior
of ``G`` in which the remaining nodes are faulty masqueraders.

:func:`build_base_behavior` performs one such re-creation **and then
verifies the Locality identification at run time**: it re-runs the
assembled system on ``G`` and checks, state by state and message by
message, that the scenario of the correct nodes is identical to the
covering scenario.  A mismatch means the candidate devices are not
deterministic (or the engine is broken) and raises immediately — the
proofs never silently diverge from the constructions they implement.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from ..graphs.coverings import CoveringMap
from ..graphs.graph import NodeId
from ..runtime.sync.adversary import ReplayDevice
from ..runtime.sync.behavior import SyncBehavior
from ..runtime.sync.device import SyncDevice
from ..runtime.sync.executor import run
from ..runtime.sync.system import NodeAssignment, SyncSystem, identity_ports


class CoveringArgumentError(RuntimeError):
    """Raised when a construction's preconditions or the Locality
    identification fail."""


@dataclass(frozen=True)
class ConstructedBehavior:
    """One behavior ``E_i`` of the inadequate graph ``G``, assembled
    from a covering scenario via the Fault axiom.

    Attributes
    ----------
    label:
        Human-readable name, e.g. ``"E1"``.
    scenario_nodes:
        The covering nodes ``U`` whose scenario this behavior realizes.
    correct_nodes / faulty_nodes:
        ``phi(U)`` and its complement in ``G``.
    system / behavior:
        The assembled system on ``G`` and its recorded behavior.
    inputs:
        The inputs of the correct nodes (copied from their covering
        counterparts).
    """

    label: str
    scenario_nodes: tuple[NodeId, ...]
    correct_nodes: frozenset[NodeId]
    faulty_nodes: frozenset[NodeId]
    system: SyncSystem
    behavior: SyncBehavior
    inputs: Mapping[NodeId, Any]

    def decisions(self) -> dict[NodeId, Any | None]:
        return {u: self.behavior.decision(u) for u in self.correct_nodes}


def build_base_behavior(
    covering: CoveringMap,
    cover_system: SyncSystem,
    cover_behavior: SyncBehavior,
    scenario_nodes: Iterable[NodeId],
    base_devices: Mapping[NodeId, SyncDevice],
    label: str = "E",
) -> ConstructedBehavior:
    """Realize a covering scenario as a correct behavior of the base.

    The nodes ``scenario_nodes`` (a subset ``U`` of the covering on
    which ``phi`` restricts to an isomorphism) become the *correct*
    nodes ``phi(U)`` of ``G``, running their own devices on the inputs
    of their covering counterparts.  Every other node of ``G`` runs the
    Fault-axiom replay device, exhibiting toward each correct neighbor
    ``g`` exactly the behavior that ``g``'s covering counterpart saw
    from outside ``U``.
    """
    base = covering.base
    scenario = tuple(dict.fromkeys(scenario_nodes))
    if not covering.is_isomorphism_on(scenario):
        raise CoveringArgumentError(
            f"{label}: phi is not an isomorphism on scenario nodes "
            f"{sorted(map(str, scenario))}"
        )
    representative = {covering(u): u for u in scenario}
    correct = frozenset(representative)
    faulty = frozenset(base.nodes) - correct

    assignments: dict[NodeId, NodeAssignment] = {}
    inputs: dict[NodeId, Any] = {}
    for g, u in representative.items():
        inputs[g] = cover_system.input(u)
        assignments[g] = NodeAssignment(
            device=base_devices[g],
            input=inputs[g],
            port_of_neighbor=identity_ports(base, g),
        )
    for w in faulty:
        scripts = {}
        for g in base.neighbors(w):
            if g not in correct:
                continue
            u = representative[g]
            source = covering.lift_neighbor(u, w)
            scripts[g] = cover_behavior.edge(source, u)
        assignments[w] = NodeAssignment(
            device=ReplayDevice(scripts),
            input=None,
            port_of_neighbor=identity_ports(base, w),
        )

    system = SyncSystem(base, assignments)
    behavior = run(system, cover_behavior.rounds)
    _verify_locality(
        covering, cover_behavior, behavior, representative, label
    )
    return ConstructedBehavior(
        label=label,
        scenario_nodes=scenario,
        correct_nodes=correct,
        faulty_nodes=faulty,
        system=system,
        behavior=behavior,
        inputs=inputs,
    )


def _verify_locality(
    covering: CoveringMap,
    cover_behavior: SyncBehavior,
    base_behavior: SyncBehavior,
    representative: Mapping[NodeId, NodeId],
    label: str,
) -> None:
    """Check that each correct node's behavior in the assembled base
    system is identical to its covering counterpart's — the paper's
    Locality-axiom step, executed rather than assumed."""
    for g, u in representative.items():
        got = base_behavior.node(g)
        expected = cover_behavior.node(u)
        if got != expected:
            raise CoveringArgumentError(
                f"{label}: Locality identification failed at node {g!r} "
                f"(covering node {u!r}); the candidate devices are not "
                "deterministic functions of their local view"
            )
    base = covering.base
    for g, u in representative.items():
        for g2 in base.neighbors(g):
            if g2 not in representative:
                continue
            u2 = representative[g2]
            if not covering.cover.has_edge(u, u2):
                raise CoveringArgumentError(
                    f"{label}: representatives {u!r}, {u2!r} not adjacent "
                    "in the covering"
                )
            if base_behavior.edge(g, g2) != cover_behavior.edge(u, u2):
                raise CoveringArgumentError(
                    f"{label}: edge behavior mismatch on ({g!r}, {g2!r})"
                )


@dataclass(frozen=True)
class ChainLink:
    """A correct node shared by two consecutive constructed behaviors.

    Because the node's behavior is identical in both (it is the same
    covering node's behavior), its decision carries over — the glue of
    the paper's contradiction chains.
    """

    node: NodeId
    covering_node: NodeId
    first: str
    second: str


def shared_links(
    covering: CoveringMap,
    previous: ConstructedBehavior,
    current: ConstructedBehavior,
) -> list[ChainLink]:
    """The correct nodes shared (as covering nodes) by two behaviors."""
    shared = set(previous.scenario_nodes) & set(current.scenario_nodes)
    return [
        ChainLink(
            node=covering(u),
            covering_node=u,
            first=previous.label,
            second=current.label,
        )
        for u in sorted(shared, key=str)
    ]


@dataclass(frozen=True)
class ChainResult:
    """One run of a covering system plus the chain of constructed base
    behaviors extracted from it."""

    cover_system: SyncSystem
    cover_behavior: SyncBehavior
    constructed: tuple[ConstructedBehavior, ...]
    links: tuple[ChainLink, ...]


def run_scenario_chain(
    covering: CoveringMap,
    cover_system: SyncSystem,
    base_devices: Mapping[NodeId, SyncDevice],
    scenario_sets: Iterable[Iterable[NodeId]],
    rounds: int,
) -> ChainResult:
    """Run the covering system once and realize each scenario set as a
    correct behavior of the base graph."""
    cover_behavior = run(cover_system, rounds)
    constructed: list[ConstructedBehavior] = []
    for index, nodes in enumerate(scenario_sets, start=1):
        constructed.append(
            build_base_behavior(
                covering,
                cover_system,
                cover_behavior,
                nodes,
                base_devices,
                label=f"E{index}",
            )
        )
    links: list[ChainLink] = []
    for previous, current in zip(constructed, constructed[1:]):
        links.extend(shared_links(covering, previous, current))
    return ChainResult(
        cover_system=cover_system,
        cover_behavior=cover_behavior,
        constructed=tuple(constructed),
        links=tuple(links),
    )


def node_bound_scenarios(
    double_cover,
    part_a: Iterable[NodeId],
    part_b: Iterable[NodeId],
    part_c: Iterable[NodeId],
) -> list[list[NodeId]]:
    """The three scenario sets of the Section 3.1 argument.

    In the paper's labels (copies ``u v w`` / ``x y z`` of parts
    ``a b c``): ``S_vw = b@0 ∪ c@0``, ``S_wx = c@0 ∪ a@1``,
    ``S_xy = a@1 ∪ b@1``.
    """
    c0 = [double_cover.copy_of(v, 0) for v in sorted(part_c, key=str)]
    b0 = [double_cover.copy_of(v, 0) for v in sorted(part_b, key=str)]
    a1 = [double_cover.copy_of(v, 1) for v in sorted(part_a, key=str)]
    b1 = [double_cover.copy_of(v, 1) for v in sorted(part_b, key=str)]
    return [b0 + c0, c0 + a1, a1 + b1]


def connectivity_scenarios(
    double_cover,
    side_a: Iterable[NodeId],
    cut_b: Iterable[NodeId],
    side_c: Iterable[NodeId],
    cut_d: Iterable[NodeId],
) -> list[list[NodeId]]:
    """The three scenario sets of the Section 3.2 argument:
    ``S1 = (a ∪ b ∪ c)@0``, ``S2 = c@0 ∪ d@0 ∪ a@1``,
    ``S3 = (a ∪ b ∪ c)@1``."""
    a0 = [double_cover.copy_of(v, 0) for v in sorted(side_a, key=str)]
    b0 = [double_cover.copy_of(v, 0) for v in sorted(cut_b, key=str)]
    c0 = [double_cover.copy_of(v, 0) for v in sorted(side_c, key=str)]
    d0 = [double_cover.copy_of(v, 0) for v in sorted(cut_d, key=str)]
    a1 = [double_cover.copy_of(v, 1) for v in sorted(side_a, key=str)]
    b1 = [double_cover.copy_of(v, 1) for v in sorted(cut_b, key=str)]
    c1 = [double_cover.copy_of(v, 1) for v in sorted(side_c, key=str)]
    return [a0 + b0 + c0, c0 + d0 + a1, a1 + b1 + c1]
