"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's constructions (its
"tables and figures" are its theorems and covering diagrams), asserts
the qualitative shape — who wins, where the threshold falls — and
times the engine or protocol run via pytest-benchmark.
"""

import pytest

from repro.graphs import triangle


@pytest.fixture
def triangle_graph():
    return triangle()


def report(title: str, body: str) -> None:
    """Print a benchmark report block (visible with ``pytest -s``)."""
    print()
    print("#" * 72)
    print(f"# {title}")
    print("#" * 72)
    print(body)
