"""Executor tests, including operational checks of the paper's axioms.

The Locality and Fault axioms are what every impossibility proof in
the paper leans on; these tests demonstrate that the synchronous
executor satisfies both by construction.
"""

import pytest

from repro.graphs import hexagon_cover_of_triangle, triangle
from repro.protocols.naive import MajorityVoteDevice
from repro.runtime.sync import (
    ExecutionError,
    FunctionDevice,
    ReplayDevice,
    check_determinism,
    install_in_covering,
    make_system,
    run,
    uniform_system,
)


def flood_device():
    """Simple device: broadcast input each round; state is the history
    of received inboxes."""
    return FunctionDevice(
        init=lambda ctx: (),
        send=lambda ctx, state, r: {p: ctx.input for p in ctx.ports},
        transition=lambda ctx, state, r, inbox: state
        + (tuple(sorted(inbox.items(), key=lambda kv: str(kv[0]))),),
    )


class TestBasicExecution:
    def test_states_and_edges_recorded(self):
        g = triangle()
        system = uniform_system(g, flood_device(), {u: u.upper() for u in g.nodes})
        behavior = run(system, 3)
        for u in g.nodes:
            assert behavior.node(u).rounds == 3
        for edge in g.edges:
            assert behavior.edge(*edge).rounds == 3

    def test_messages_travel_one_edge_per_round(self):
        g = triangle()
        system = uniform_system(g, flood_device(), {"a": 1, "b": 0, "c": 0})
        behavior = run(system, 2)
        # b's first inbox contains a's input.
        first_inbox = dict(behavior.node("b").states[1][0])
        assert first_inbox["a"] == 1

    def test_zero_rounds(self):
        g = triangle()
        system = uniform_system(g, flood_device(), {u: 0 for u in g.nodes})
        behavior = run(system, 0)
        assert behavior.node("a").states == ((),)

    def test_decisions_recorded_once(self):
        g = triangle()
        system = uniform_system(
            g, MajorityVoteDevice(), {"a": 1, "b": 1, "c": 0}
        )
        behavior = run(system, 3)
        assert behavior.decision("a") == 1
        assert behavior.node("a").decided_at == 1

    def test_changed_decision_raises(self):
        fickle = FunctionDevice(
            init=lambda ctx: 0,
            send=lambda ctx, state, r: {},
            transition=lambda ctx, state, r, inbox: state + 1,
            choose=lambda ctx, state: state,  # 0 is falsy -> None? no: 0 returned
        )
        # choose returns the round counter, which changes every round;
        # but round 0 returns 0 which is a *value*, and round 1 returns 1.
        g = triangle()
        system = uniform_system(g, fickle, {u: 0 for u in g.nodes})
        with pytest.raises(ExecutionError):
            run(system, 2)

    def test_unknown_port_raises(self):
        bad = FunctionDevice(
            init=lambda ctx: None,
            send=lambda ctx, state, r: {"not-a-port": 1},
            transition=lambda ctx, state, r, inbox: state,
        )
        g = triangle()
        system = uniform_system(g, bad, {u: 0 for u in g.nodes})
        with pytest.raises(ExecutionError):
            run(system, 1)

    def test_determinism_check(self):
        g = triangle()
        system = uniform_system(g, MajorityVoteDevice(), {u: 0 for u in g.nodes})
        assert check_determinism(system, 3)


class TestLocalityAxiom:
    """Two systems agreeing on a subsystem's devices, inputs, and inedge
    border have identical scenarios there (paper, Locality axiom)."""

    def test_changing_far_input_does_not_change_round1_view(self):
        g = triangle()
        base_inputs = {"a": 0, "b": 0, "c": 0}
        sys1 = uniform_system(g, flood_device(), base_inputs)
        sys2 = uniform_system(g, flood_device(), {**base_inputs, "c": 1})
        b1 = run(sys1, 1)
        b2 = run(sys2, 1)
        # After one round, {a, b} has heard from c, so the scenario of
        # {a} alone differs only if its border differs; the border of
        # {a} includes c's edge, which did change. But a's *own state
        # at round 0* and b->a's messages are identical.
        assert b1.node("a").states[0] == b2.node("a").states[0]
        assert b1.edge("b", "a") == b2.edge("b", "a")

    def test_identical_border_gives_identical_scenario(self):
        g = triangle()
        inputs = {"a": 1, "b": 0, "c": 0}
        sys1 = uniform_system(g, flood_device(), inputs)
        behavior1 = run(sys1, 3)
        # Replace a with a replay of its own recorded edge behaviors:
        # the border of {b, c} is unchanged, so their scenario must be
        # identical (this is precisely how the engines use the axiom).
        replay = ReplayDevice(
            {
                "b": behavior1.edge("a", "b"),
                "c": behavior1.edge("a", "c"),
            }
        )
        sys2 = sys1.with_devices({"a": replay})
        behavior2 = run(sys2, 3)
        s1 = behavior1.scenario(["b", "c"])
        s2 = behavior2.scenario(["b", "c"])
        assert s1.core_equal(s2)


class TestFaultAxiom:
    """A replay device can exhibit, in one behavior, edge behaviors
    recorded from *different* system behaviors (paper, Fault axiom)."""

    def test_masquerade_mixes_two_runs(self):
        g = triangle()
        run0 = run(uniform_system(g, flood_device(), {"a": 0, "b": 0, "c": 0}), 2)
        run1 = run(uniform_system(g, flood_device(), {"a": 1, "b": 1, "c": 1}), 2)
        franken = ReplayDevice(
            {"b": run0.edge("a", "b"), "c": run1.edge("a", "c")}
        )
        sys = uniform_system(g, flood_device(), {"a": 9, "b": 0, "c": 1}).with_devices(
            {"a": franken}
        )
        behavior = run(sys, 2)
        assert behavior.edge("a", "b") == run0.edge("a", "b")
        assert behavior.edge("a", "c") == run1.edge("a", "c")

    def test_replay_ignores_inbox(self):
        g = triangle()
        script = ReplayDevice({"b": [7, 8], "c": [9, 10]})
        sys = uniform_system(g, flood_device(), {u: 0 for u in g.nodes})
        sys = sys.with_devices({"a": script})
        behavior = run(sys, 2)
        assert behavior.edge("a", "b").messages == (7, 8)
        assert behavior.edge("a", "c").messages == (9, 10)


class TestCoveringInstallation:
    def test_covering_node_indistinguishable_from_base(self):
        """A device at a covering node with the same input and border
        sees exactly the base-graph ports — the operational content of
        'S looks locally like G'."""
        cm = hexagon_cover_of_triangle()
        devices = {u: flood_device() for u in cm.base.nodes}
        cover_inputs = {u: 0 for u in cm.cover.nodes}
        system = install_in_covering(cm, devices, cover_inputs)
        base_system = make_system(
            cm.base, devices, {u: 0 for u in cm.base.nodes}
        )
        cover_behavior = run(system, 3)
        base_behavior = run(base_system, 3)
        # With all inputs equal, every covering node behaves exactly
        # like its image.
        for u in cm.cover.nodes:
            assert (
                cover_behavior.node(u).states
                == base_behavior.node(cm(u)).states
            )

    def test_ports_labeled_by_base_names(self):
        cm = hexagon_cover_of_triangle()
        devices = {u: flood_device() for u in cm.base.nodes}
        system = install_in_covering(cm, devices, {u: 0 for u in cm.cover.nodes})
        assert set(system.context("u").ports) == {"b", "c"}
