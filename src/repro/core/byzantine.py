"""Theorem 1, executable: Byzantine agreement is impossible in
inadequate graphs.

:func:`refute_node_bound` runs the Section 3.1 argument (``n <= 3f``):
partition the nodes into three classes of size at most ``f``, build the
rewired double cover (the hexagon, for the triangle), run the candidate
devices in it, and realize the three scenarios ``E1, E2, E3`` as
correct behaviors of ``G``.  Validity pins ``E1`` to the 0-input value
and ``E3`` to the 1-input value, while agreement and the shared correct
behaviors force them to be equal — so, for any concrete devices, at
least one of the three behaviors violates the spec, and the returned
witness names it.

:func:`refute_connectivity` runs the Section 3.2 argument
(``c(G) <= 2f``) with the two-copies-crossed-at-the-cut covering (the
eight-node ring, for the diamond).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.adequacy import required_connectivity, required_nodes
from ..graphs.coverings import (
    connectivity_double_cover,
    cut_partition_for_connectivity,
    node_bound_double_cover,
    partition_for_node_bound,
)
from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..problems.byzantine import ByzantineAgreementSpec
from ..runtime.sync.device import SyncDevice
from ..runtime.sync.system import install_in_covering
from .covering_argument import (
    ChainResult,
    connectivity_scenarios,
    node_bound_scenarios,
    run_scenario_chain,
)
from .witness import CheckedBehavior, ImpossibilityWitness

_SPEC = ByzantineAgreementSpec()


def refute_node_bound(
    graph: CommunicationGraph,
    devices: Mapping[NodeId, SyncDevice],
    max_faults: int,
    rounds: int,
    inputs: tuple[Any, Any] = (0, 1),
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Refute claimed agreement devices on a graph with ``n <= 3f``.

    Parameters
    ----------
    graph:
        The inadequate communication graph ``G``.
    devices:
        One claimed agreement device per node of ``G``.
    max_faults:
        The fault budget ``f``; must satisfy ``len(graph) <= 3f``.
    rounds:
        Horizon: an upper bound on the devices' decision time.
    inputs:
        The two input values assigned to the two sheets of the cover.
    """
    if len(graph) >= required_nodes(max_faults):
        raise GraphError(
            f"graph has {len(graph)} >= 3f+1 = {required_nodes(max_faults)} "
            "nodes; the node-bound argument does not apply"
        )
    part_a, part_b, part_c = partition_for_node_bound(graph, max_faults)
    dc = node_bound_double_cover(graph, part_a, part_b, part_c)
    value0, value1 = inputs
    cover_inputs = {dc.copy_of(v, 0): value0 for v in graph.nodes}
    cover_inputs.update({dc.copy_of(v, 1): value1 for v in graph.nodes})
    cover_system = install_in_covering(dc.covering, devices, cover_inputs)
    chain = run_scenario_chain(
        dc.covering,
        cover_system,
        devices,
        node_bound_scenarios(dc, part_a, part_b, part_c),
        rounds,
    )
    return _witness(
        "byzantine-agreement", "3f+1 nodes", graph, max_faults, chain,
        require_violation,
    )


def refute_connectivity(
    graph: CommunicationGraph,
    devices: Mapping[NodeId, SyncDevice],
    max_faults: int,
    rounds: int,
    inputs: tuple[Any, Any] = (0, 1),
    require_violation: bool = True,
) -> ImpossibilityWitness:
    """Refute claimed agreement devices on a graph with ``c(G) <= 2f``."""
    side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(
        graph, max_faults
    )
    dc = connectivity_double_cover(graph, cut_b, cut_d, side_a, side_c)
    value0, value1 = inputs
    cover_inputs = {dc.copy_of(v, 0): value0 for v in graph.nodes}
    cover_inputs.update({dc.copy_of(v, 1): value1 for v in graph.nodes})
    cover_system = install_in_covering(dc.covering, devices, cover_inputs)
    chain = run_scenario_chain(
        dc.covering,
        cover_system,
        devices,
        connectivity_scenarios(dc, side_a, cut_b, side_c, cut_d),
        rounds,
    )
    return _witness(
        "byzantine-agreement",
        f"2f+1 connectivity (κ < {required_connectivity(max_faults)})",
        graph,
        max_faults,
        chain,
        require_violation,
    )


def _witness(
    problem: str,
    bound: str,
    graph: CommunicationGraph,
    max_faults: int,
    chain: ChainResult,
    require_violation: bool,
) -> ImpossibilityWitness:
    checked = tuple(
        CheckedBehavior(
            constructed=c,
            verdict=_SPEC.check(c.inputs, c.decisions(), c.correct_nodes),
        )
        for c in chain.constructed
    )
    witness = ImpossibilityWitness(
        problem=problem,
        bound=bound,
        graph=graph,
        max_faults=max_faults,
        checked=checked,
        links=chain.links,
    )
    if require_violation:
        witness.require_found()
    return witness
