"""Theorems 2, 4, 8 and Corollaries 12–15: the timed impossibility
engines refute every candidate device family."""

import pytest

from repro.core import (
    SynchronizationSetting,
    agreement_frontier,
    choose_k,
    corollary_12_linear_envelope,
    corollary_13_diverging_linear,
    corollary_14_offset_clocks,
    corollary_15_logarithmic,
    refute_clock_sync,
    refute_firing_squad,
    refute_weak_agreement,
    ring_parameter,
)
from repro.core.firing_squad import fire_time_profile
from repro.graphs import triangle
from repro.protocols import (
    AlarmWeakDevice,
    CountdownFireDevice,
    ExchangeMidpointClockDevice,
    ExchangeOnceWeakDevice,
    LowerEnvelopeClockDevice,
    RelayFireDevice,
)
from repro.runtime.timed import LinearClock
from repro.runtime.timed.device import TimedDevice

TRIANGLE = triangle()


def factories_of(factory):
    return {u: factory for u in TRIANGLE.nodes}


class TestRingParameter:
    def test_multiple_of_three_above_ratio(self):
        k = ring_parameter(t_prime=2.0, delta=1.0)
        assert k % 3 == 0 and k * 1.0 > 2.0

    def test_minimum_is_three(self):
        assert ring_parameter(0.1, 1.0) == 3


class TestWeakAgreementEngine:
    def test_exchange_once_refuted(self):
        witness = refute_weak_agreement(
            factories_of(lambda: ExchangeOnceWeakDevice(decide_at=2.0)),
            delta=1.0,
            decision_deadline=3.0,
        )
        assert witness.found
        assert witness.extra["ring_size"] == 4 * witness.extra["k"]

    def test_violations_sit_at_the_half_boundaries(self):
        witness = refute_weak_agreement(
            factories_of(lambda: ExchangeOnceWeakDevice(decide_at=2.0)),
            delta=1.0,
            decision_deadline=3.0,
        )
        frontier = agreement_frontier(witness)
        assert len(frontier) >= 2

    def test_alarm_variant_also_refuted(self):
        witness = refute_weak_agreement(
            factories_of(
                lambda: AlarmWeakDevice(alarm_at=1.5, decide_at=3.0)
            ),
            delta=1.0,
            decision_deadline=4.0,
        )
        assert witness.found

    def test_lemma3_middles_decide_their_half(self):
        witness = refute_weak_agreement(
            factories_of(lambda: ExchangeOnceWeakDevice(decide_at=2.0)),
            delta=1.0,
            decision_deadline=3.0,
        )
        for row in witness.extra["lemma3"]:
            assert row["decides"] == row["expected"]

    def test_never_deciding_devices_caught_in_reference_run(self):
        class Mute(TimedDevice):
            pass

        witness = refute_weak_agreement(
            factories_of(Mute), delta=1.0, decision_deadline=2.0
        )
        assert witness.found
        assert witness.extra["stage"] == "all-correct reference runs"
        conditions = {
            v.condition
            for checked in witness.violated
            for v in checked.verdict.violations
        }
        assert "termination" in conditions


class TestFiringSquadEngine:
    def test_relay_fire_refuted(self):
        witness = refute_firing_squad(
            factories_of(lambda: RelayFireDevice(fire_at=2.5)),
            delta=1.0,
            fire_deadline=3.0,
        )
        assert witness.found
        middles = witness.extra["middles"]
        stim = {m["fire_time"] for m in middles if m["stimulated"]}
        unstim = {m["fire_time"] for m in middles if not m["stimulated"]}
        assert stim == {2.5}
        assert 2.5 not in unstim

    def test_countdown_fire_refuted(self):
        witness = refute_firing_squad(
            factories_of(lambda: CountdownFireDevice(fuse=3.0, delay=1.0)),
            delta=1.0,
            fire_deadline=4.0,
        )
        assert witness.found

    def test_fire_time_profile_shows_the_break(self):
        witness = refute_firing_squad(
            factories_of(lambda: RelayFireDevice(fire_at=2.5)),
            delta=1.0,
            fire_deadline=3.0,
        )
        profile = dict(fire_time_profile(witness))
        times = {t for row in profile.values() for t in row.values()}
        assert len(times) > 1  # not everyone fired simultaneously

    def test_firing_without_stimulus_caught_early(self):
        class Trigger(TimedDevice):
            def on_start(self, ctx, api):
                api.set_timer("go", 1.0)

            def on_timer(self, ctx, api, name):
                api.fire()

        witness = refute_firing_squad(
            factories_of(Trigger), delta=1.0, fire_deadline=2.0
        )
        assert witness.found
        assert witness.extra["stage"] == "all-correct reference runs"


def default_setting(alpha=0.05):
    return SynchronizationSetting(
        p=LinearClock(1.0, 0.0),
        q=LinearClock(1.2, 0.0),
        lower=LinearClock(1.0, 0.0),
        upper=LinearClock(1.0, 2.0),
        alpha=alpha,
        t_prime=1.0,
    )


class TestClockSyncEngine:
    def test_choose_k_satisfies_inequality(self):
        setting = default_setting()
        k = choose_k(setting)
        assert (k + 2) % 3 == 0
        assert setting.lower(setting.p(1.0)) + k * setting.alpha > (
            setting.upper(setting.q(1.0))
        )

    def test_trivial_synchronizer_refuted(self):
        lower = LinearClock(1.0, 0.0)
        witness = refute_clock_sync(
            factories_of(lambda: LowerEnvelopeClockDevice(lower)),
            default_setting(),
        )
        assert witness.found
        # The trivial device misses the bound by exactly α in *every*
        # scaled scenario.
        assert len(witness.violated) == len(witness.checked)

    def test_exchange_midpoint_refuted(self):
        lower = LinearClock(1.0, 0.0)
        witness = refute_clock_sync(
            factories_of(
                lambda: ExchangeMidpointClockDevice(
                    lower, exchange_at=0.5, delay=0.125
                )
            ),
            default_setting(),
        )
        assert witness.found

    def test_lemma9_scaling_checks_pass(self):
        lower = LinearClock(1.0, 0.0)
        witness = refute_clock_sync(
            factories_of(lambda: LowerEnvelopeClockDevice(lower)),
            default_setting(),
            verify_indices=(0, 1, 2),
        )
        checks = witness.extra["scaling_checks"]
        assert len(checks) == 3
        assert all(c["all_match"] for c in checks)

    def test_nu_trace_accumulates_alpha(self):
        """Lemma 11 made visible: each agreement violation lets ν grow
        by at least α less than required, so with the trivial device ν
        stays at 0 while the *required* growth is k·α."""
        lower = LinearClock(1.0, 0.0)
        witness = refute_clock_sync(
            factories_of(lambda: LowerEnvelopeClockDevice(lower)),
            default_setting(),
        )
        trace = witness.extra["nu_trace"]
        assert all(abs(row["nu"]) < 1e-6 for row in trace)


class TestCorollaries:
    lower = LinearClock(1.0, 0.0)

    def factories(self):
        lower = self.lower
        return factories_of(lambda: LowerEnvelopeClockDevice(lower))

    def test_corollary_12(self):
        out = corollary_12_linear_envelope(self.factories())
        assert out.witness.found

    def test_corollary_13(self):
        out = corollary_13_diverging_linear(self.factories())
        assert out.witness.found
        # The unbeatable skew grows linearly with t.
        assert out.trivial_skew_at(10.0) > out.trivial_skew_at(1.0)

    def test_corollary_14(self):
        out = corollary_14_offset_clocks(self.factories())
        assert out.witness.found
        # The unbeatable skew is a constant (a·c).
        assert out.trivial_skew_at(10.0) == pytest.approx(
            out.trivial_skew_at(1.0)
        )

    def test_corollary_15(self):
        from repro.core.corollaries import Log2Envelope

        log_lower = Log2Envelope(shift=1.0)
        factories = factories_of(
            lambda: LowerEnvelopeClockDevice(log_lower)
        )
        out = corollary_15_logarithmic(factories)
        assert out.witness.found
        # log2 logical clocks make the trivial skew approach log2(r).
        import math

        assert out.trivial_skew_at(200.0) == pytest.approx(
            math.log2(2.0), abs=0.05
        )
