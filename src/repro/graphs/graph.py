"""Communication graphs (Section 2 of FLM 1985).

A *communication graph* is a directed graph whose edges occur in
symmetric pairs: ``(u, v)`` is an edge iff ``(v, u)`` is.  The pair of
directed edges models the two directions of a bidirectional link
separately, exactly as in the paper.

The class here is immutable; use :mod:`repro.graphs.builders` to
construct common topologies, or :meth:`CommunicationGraph.from_undirected`
for ad-hoc graphs.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import TypeAlias

NodeId: TypeAlias = Hashable
DirectedEdge: TypeAlias = tuple[NodeId, NodeId]


class GraphError(ValueError):
    """Raised for malformed graph constructions."""


class CommunicationGraph:
    """An immutable communication graph with paired directed edges.

    Parameters
    ----------
    nodes:
        Iterable of hashable node identifiers.  Order is preserved and
        becomes the canonical iteration order.
    undirected_edges:
        Iterable of unordered node pairs; each contributes the two
        directed edges ``(u, v)`` and ``(v, u)``.
    """

    __slots__ = ("_nodes", "_index", "_out", "_in", "_edges", "_analytics")

    def __init__(
        self,
        nodes: Iterable[NodeId],
        undirected_edges: Iterable[tuple[NodeId, NodeId]],
    ) -> None:
        node_list = list(nodes)
        if len(set(node_list)) != len(node_list):
            raise GraphError("duplicate node identifiers")
        self._nodes: tuple[NodeId, ...] = tuple(node_list)
        self._index: dict[NodeId, int] = {u: i for i, u in enumerate(node_list)}
        out: dict[NodeId, list[NodeId]] = {u: [] for u in node_list}
        inn: dict[NodeId, list[NodeId]] = {u: [] for u in node_list}
        seen: set[frozenset[NodeId]] = set()
        for u, v in undirected_edges:
            if u not in self._index or v not in self._index:
                raise GraphError(f"edge ({u!r}, {v!r}) references unknown node")
            if u == v:
                raise GraphError(f"self-loop at {u!r} is not allowed")
            key = frozenset((u, v))
            if key in seen:
                continue
            seen.add(key)
            out[u].append(v)
            out[v].append(u)
            inn[u].append(v)
            inn[v].append(u)
        self._out: dict[NodeId, tuple[NodeId, ...]] = {
            u: tuple(vs) for u, vs in out.items()
        }
        self._in: dict[NodeId, tuple[NodeId, ...]] = {
            u: tuple(vs) for u, vs in inn.items()
        }
        self._edges: frozenset[DirectedEdge] = frozenset(
            (u, v) for u in node_list for v in self._out[u]
        )
        # Per-instance scratch space for derived analytics (connectivity,
        # automorphisms, ...).  The graph itself is immutable, so anything
        # computed from it may be cached here for the instance's lifetime.
        self._analytics: dict = {}

    # -- basic accessors ------------------------------------------------

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """All nodes, in canonical order."""
        return self._nodes

    @property
    def edges(self) -> frozenset[DirectedEdge]:
        """All directed edges.  Always closed under reversal."""
        return self._edges

    @property
    def undirected_edges(self) -> frozenset[frozenset[NodeId]]:
        """The undirected edge set (each pair of directed edges, once)."""
        return frozenset(frozenset(e) for e in self._edges)

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._nodes)

    def __contains__(self, node: NodeId) -> bool:
        return node in self._index

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CommunicationGraph):
            return NotImplemented
        return set(self._nodes) == set(other._nodes) and self._edges == other._edges

    def __hash__(self) -> int:
        return hash((frozenset(self._nodes), self._edges))

    def __repr__(self) -> str:
        return (
            f"CommunicationGraph(n={len(self)}, "
            f"m={len(self._edges) // 2} undirected edges)"
        )

    def has_edge(self, u: NodeId, v: NodeId) -> bool:
        """True if the directed edge ``(u, v)`` exists."""
        return (u, v) in self._edges

    def out_neighbors(self, u: NodeId) -> tuple[NodeId, ...]:
        """Targets of ``u``'s outedges, in insertion order."""
        self._require(u)
        return self._out[u]

    def in_neighbors(self, u: NodeId) -> tuple[NodeId, ...]:
        """Sources of ``u``'s inedges, in insertion order."""
        self._require(u)
        return self._in[u]

    def neighbors(self, u: NodeId) -> tuple[NodeId, ...]:
        """Neighbors of ``u`` (identical to out/in neighbors here)."""
        return self.out_neighbors(u)

    def outedges(self, u: NodeId) -> tuple[DirectedEdge, ...]:
        """The outedges of ``u``, as directed pairs."""
        return tuple((u, v) for v in self.out_neighbors(u))

    def inedges(self, u: NodeId) -> tuple[DirectedEdge, ...]:
        """The inedges of ``u``, as directed pairs."""
        return tuple((v, u) for v in self.in_neighbors(u))

    def degree(self, u: NodeId) -> int:
        """Number of neighbors of ``u``."""
        return len(self.out_neighbors(u))

    def min_degree(self) -> int:
        """Minimum degree over all nodes."""
        return min(self.degree(u) for u in self._nodes)

    def _require(self, u: NodeId) -> None:
        if u not in self._index:
            raise GraphError(f"node {u!r} not in graph")

    def analytics_cache(self) -> dict:
        """Per-instance memo table for derived analytics.

        Immutability makes this sound: everything computable from the
        graph is fixed at construction, so modules like
        :mod:`repro.graphs.connectivity` and
        :mod:`repro.graphs.automorphisms` stash their (expensive)
        results here, keyed by ``(operation, args)`` tuples.
        """
        return self._analytics

    # -- subgraphs and borders (paper Section 2) -------------------------

    def subgraph(self, nodes: Iterable[NodeId]) -> "CommunicationGraph":
        """The induced subgraph ``G_U`` on the given node set."""
        keep = list(dict.fromkeys(nodes))
        for u in keep:
            self._require(u)
        keep_set = set(keep)
        edges = [
            (u, v)
            for u in keep
            for v in self._out[u]
            if v in keep_set and self._index[u] < self._index[v]
        ]
        return CommunicationGraph(keep, edges)

    def inedge_border(self, nodes: Iterable[NodeId]) -> frozenset[DirectedEdge]:
        """Edges from outside ``U`` into ``U``: ``edges(G) ∩ ((V\\U) × U)``."""
        inside = set(nodes)
        for u in inside:
            self._require(u)
        return frozenset(
            (v, u) for u in inside for v in self._in[u] if v not in inside
        )

    def outedge_border(self, nodes: Iterable[NodeId]) -> frozenset[DirectedEdge]:
        """Edges from inside ``U`` to the rest of the graph."""
        inside = set(nodes)
        for u in inside:
            self._require(u)
        return frozenset(
            (u, v) for u in inside for v in self._out[u] if v not in inside
        )

    # -- connectivity helpers --------------------------------------------

    def is_connected(self) -> bool:
        """True if the graph is (weakly == strongly) connected."""
        if not self._nodes:
            return True
        return len(self.reachable_from(self._nodes[0])) == len(self)

    def reachable_from(
        self, start: NodeId, removed: Iterable[NodeId] = ()
    ) -> set[NodeId]:
        """Nodes reachable from ``start`` after deleting ``removed`` nodes."""
        self._require(start)
        gone = set(removed)
        if start in gone:
            return set()
        seen = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in self._out[u]:
                if v not in gone and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return seen

    def is_complete(self) -> bool:
        """True if every pair of distinct nodes is adjacent."""
        n = len(self)
        return all(self.degree(u) == n - 1 for u in self._nodes)

    # -- construction helpers ---------------------------------------------

    @classmethod
    def from_undirected(
        cls, edges: Iterable[tuple[NodeId, NodeId]]
    ) -> "CommunicationGraph":
        """Build a graph whose node set is inferred from the edge list."""
        edge_list = list(edges)
        nodes: dict[NodeId, None] = {}
        for u, v in edge_list:
            nodes.setdefault(u)
            nodes.setdefault(v)
        return cls(nodes, edge_list)

    def relabel(self, mapping: Mapping[NodeId, NodeId]) -> "CommunicationGraph":
        """A copy with nodes renamed by ``mapping`` (must be injective)."""
        new_names = [mapping.get(u, u) for u in self._nodes]
        if len(set(new_names)) != len(new_names):
            raise GraphError("relabeling is not injective")
        rename = dict(zip(self._nodes, new_names))
        edges = [
            (rename[u], rename[v])
            for (u, v) in self._edges
            if self._index[u] < self._index[v]
        ]
        return CommunicationGraph(new_names, edges)
