"""The synchronous round model: devices, systems, executor, behaviors,
and Byzantine adversaries (including the Fault-axiom replay device)."""

from .adversary import (
    CrashDevice,
    DelayedEchoDevice,
    RandomLiarDevice,
    ReplayDevice,
    SilentDevice,
    TwoFacedDevice,
)
from .collapse import (
    GroupDevice,
    PortRenamedDevice,
    collapse_system,
    verify_collapse,
)
from .behavior import EdgeBehavior, NodeBehavior, Scenario, SyncBehavior
from .device import (
    FunctionDevice,
    Message,
    NodeContext,
    PortLabel,
    State,
    SyncDevice,
)
from .executor import ExecutionError, check_determinism, execute_plan, run
from .system import (
    NodeAssignment,
    SyncSystem,
    identity_ports,
    install_in_covering,
    make_system,
    uniform_system,
)

__all__ = [
    "CrashDevice",
    "GroupDevice",
    "PortRenamedDevice",
    "collapse_system",
    "verify_collapse",
    "DelayedEchoDevice",
    "EdgeBehavior",
    "ExecutionError",
    "FunctionDevice",
    "Message",
    "NodeAssignment",
    "NodeBehavior",
    "NodeContext",
    "PortLabel",
    "RandomLiarDevice",
    "ReplayDevice",
    "Scenario",
    "SilentDevice",
    "State",
    "SyncBehavior",
    "SyncDevice",
    "SyncSystem",
    "TwoFacedDevice",
    "check_determinism",
    "execute_plan",
    "identity_ports",
    "install_in_covering",
    "make_system",
    "run",
    "uniform_system",
]
