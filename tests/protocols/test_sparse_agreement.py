"""Dolev's theorem, sufficiency half: EIG over disjoint-path relay
achieves Byzantine agreement on sparse adequate graphs — exactly when
both FLM bounds are met."""

import pytest

from repro.graphs import (
    GraphError,
    circulant,
    complete_graph,
    is_adequate,
    node_connectivity,
    ring,
)
from repro.problems import ByzantineAgreementSpec
from repro.protocols.sparse_agreement import (
    build_routing,
    sparse_agreement_devices,
)
from repro.runtime.sync import (
    RandomLiarDevice,
    SilentDevice,
    make_system,
    run,
)

SPEC = ByzantineAgreementSpec()


def run_sparse(graph, f, inputs, faulty=()):
    devices, rounds = sparse_agreement_devices(graph, f)
    devices = dict(devices)
    for node, bad in dict(faulty).items():
        devices[node] = bad
    input_map = {u: inputs[i] for i, u in enumerate(graph.nodes)}
    behavior = run(make_system(graph, devices, input_map), rounds)
    correct = [u for u in graph.nodes if u not in dict(faulty)]
    return SPEC.check(input_map, behavior.decisions(), correct), behavior


class TestRouting:
    def test_routing_covers_all_pairs(self):
        g = circulant(7, [1, 2])
        routing, span = build_routing(g, 1)
        assert len(routing) == 7 * 6
        assert span >= 1
        for (s, t), paths in routing.items():
            assert len(paths) == 3
            for path in paths:
                assert path[0] == s and path[-1] == t

    def test_insufficient_connectivity_rejected(self):
        with pytest.raises(GraphError):
            build_routing(ring(7), 1)


class TestSparseAgreement:
    GRAPH = circulant(7, [1, 2])  # n = 7, κ = 4: adequate for f = 1

    def test_graph_is_adequate_but_sparse(self):
        assert is_adequate(self.GRAPH, 1)
        assert not self.GRAPH.is_complete()
        assert node_connectivity(self.GRAPH) == 4

    def test_fault_free(self):
        verdict, _ = run_sparse(self.GRAPH, 1, (1, 0, 1, 0, 1, 0, 1))
        assert verdict.ok, verdict.describe()

    @pytest.mark.parametrize(
        "bad",
        [SilentDevice(), RandomLiarDevice(17)],
        ids=["silent", "liar"],
    )
    def test_one_byzantine_fault(self, bad):
        verdict, _ = run_sparse(
            self.GRAPH, 1, (1, 1, 1, 1, 0, 0, 0), faulty={"c3": bad}
        )
        assert verdict.ok, verdict.describe()

    def test_unanimous_validity_under_fault(self):
        verdict, behavior = run_sparse(
            self.GRAPH,
            1,
            (1, 1, 1, 1, 1, 1, 1),
            faulty={"c6": RandomLiarDevice(23)},
        )
        assert verdict.ok
        decisions = [behavior.decision(f"c{i}") for i in range(6)]
        assert decisions == [1] * 6

    def test_complete_graph_degenerates_to_plain_eig(self):
        g = complete_graph(4)
        verdict, _ = run_sparse(
            g, 1, (1, 0, 1, 0), faulty={"n3": RandomLiarDevice(2)}
        )
        assert verdict.ok

    def test_rejects_too_few_nodes(self):
        with pytest.raises(GraphError):
            sparse_agreement_devices(complete_graph(3), 1)

    def test_rejects_too_little_connectivity(self):
        # Enough nodes (7 > 4) but a ring has κ = 2 < 3.
        with pytest.raises(GraphError):
            sparse_agreement_devices(ring(7), 1)
