"""The continuous-time executor.

A deterministic discrete-event simulator over real time.  The paper's
timed axioms hold by construction:

* **Bounded-Delay Locality** — the only inter-node channel is message
  delivery, and every message arrives exactly ``delay`` after it is
  sent (in real time, or in sender-clock time under
  ``delay_mode="clock"``), so information crosses at most one edge per
  ``δ`` of time.
* **Scaling** — devices observe time exclusively through their
  hardware clock (timers are set in clock values; in clock mode the
  delay is measured on the sender's clock), so rescaling every clock
  by ``h`` rescales the one behavior by ``h``.  The test suite checks
  this by re-running scaled systems.

Determinism: simultaneous events are ordered canonically (by target
node, event kind, then port/timer identity), so a system has exactly
one behavior — the model's standing assumption.

Hot path: the event loop reads a compiled
:class:`~repro.runtime.plan.TimedPlan` — contexts, clocks (and their
inverses), port→neighbor and edge→receiver-port tables are resolved
once per system instead of once per event.  Device *instances* remain
per-run (factories are called inside ``execute``), so behaviors are
unchanged.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Hashable
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any

from ... import obs
from ...graphs.graph import DirectedEdge, GraphError, NodeId
from ..faults import TimedFaultInjector
from ..plan import compile_timed_plan
from .adversary import TimedReplayDevice
from .behavior import (
    TimedBehavior,
    TimedEdgeBehavior,
    TimedEvent,
    TimedNodeBehavior,
)
from .device import DeviceApi, LogicalClockFn, Message, PortLabel, TimedDevice
from .system import TimedSystem


class TimedExecutionError(RuntimeError):
    """Raised when a device misuses the API (past timers, changed
    decisions, ...)."""


_KIND_RANK = {"start": 0, "scripted": 1, "timer": 2, "deliver": 3}


@dataclass
class _NodeRecord:
    events: list[TimedEvent] = field(default_factory=list)
    decision: Any | None = None
    decision_time: float | None = None
    fire_time: float | None = None
    logical_segments: list[tuple[float, LogicalClockFn]] = field(
        default_factory=list
    )


class _Api(DeviceApi):
    """Device-facing API bound to one node; ``now`` is maintained by
    the executor.  The node's clock (and its inverse) come from the
    compiled plan, so neither is re-resolved per call."""

    def __init__(self, executor: "_Run", node: NodeId, compiled) -> None:
        self._executor = executor
        self._node = node
        self._compiled = compiled
        self.now = 0.0

    def clock(self) -> float:
        return self._compiled.clock(self.now)

    def send(self, port: PortLabel, message: Message) -> None:
        self._executor.send_from(self._node, port, message, self.now)

    def set_timer(self, name: Hashable, clock_value: float) -> None:
        real = self._compiled.clock_inverse(clock_value)
        if real <= self.now + 1e-15:
            raise TimedExecutionError(
                f"timer {name!r} at node {self._node!r} set for clock value "
                f"{clock_value} which is not in the future"
            )
        self._executor.schedule(real, self._node, "timer", name)

    def decide(self, value: Any) -> None:
        self._executor.record_decision(self._node, value, self.now)

    def fire(self) -> None:
        self._executor.record_fire(self._node, self.now)

    def set_logical(self, fn: LogicalClockFn) -> None:
        self._executor.record_logical(self._node, fn, self.now)


class _Run:
    def __init__(
        self,
        system: TimedSystem,
        horizon: float,
        injector: TimedFaultInjector | None = None,
    ) -> None:
        self.system = system
        self.horizon = horizon
        self.injector = injector
        self.plan = compile_timed_plan(system)
        graph = system.graph
        by_node = self.plan.by_node
        self._node_rank = {u: c.rank for u, c in by_node.items()}
        self._queue: list[tuple] = []
        self._seq = itertools.count()
        self.records: dict[NodeId, _NodeRecord] = {
            u: _NodeRecord() for u in graph.nodes
        }
        self.edge_sends: dict[DirectedEdge, list[tuple[float, Any, float]]] = {
            e: [] for e in graph.edges
        }
        self.devices: dict[NodeId, TimedDevice] = {}
        self.apis: dict[NodeId, _Api] = {
            u: _Api(self, u, by_node[u]) for u in graph.nodes
        }

    # -- scheduling ------------------------------------------------------

    def schedule(
        self, time: float, node: NodeId, kind: str, payload: Any
    ) -> None:
        key = (
            time,
            self._node_rank[node],
            _KIND_RANK[kind],
            repr(payload),
            next(self._seq),
        )
        heapq.heappush(self._queue, (key, node, kind, payload))

    def _resolve_port(self, node: NodeId, port: PortLabel) -> NodeId:
        try:
            return self.plan.by_node[node].neighbor_of_port[port]
        except KeyError:
            raise GraphError(
                f"node {node!r} has no port labeled {port!r}"
            ) from None

    def send_from(
        self, node: NodeId, port: PortLabel, message: Message, now: float
    ) -> None:
        neighbor = self._resolve_port(node, port)
        if self.system.delay_mode == "clock":
            compiled = self.plan.by_node[node]
            clock = compiled.clock
            arrival = compiled.clock_inverse(clock(now) + self.system.delay)
        else:
            arrival = now + self.system.delay
        self._transmit(node, neighbor, port, message, now, arrival)

    def send_scripted(
        self,
        node: NodeId,
        port: PortLabel,
        message: Message,
        now: float,
        arrival: float,
    ) -> None:
        """Replay a recorded send: the arrival time is part of the
        recorded edge behavior and is reproduced verbatim rather than
        recomputed from the (faulty) sender's clock."""
        neighbor = self._resolve_port(node, port)
        self._transmit(node, neighbor, port, message, now, arrival)

    def _transmit(
        self,
        node: NodeId,
        neighbor: NodeId,
        port: PortLabel,
        message: Message,
        now: float,
        arrival: float,
    ) -> None:
        """Common channel half of a send: the sender's event records the
        message it emitted; the fault injector (if any) then decides
        what, if anything, the edge actually carries."""
        self.records[node].events.append(
            TimedEvent(now, "send", (port, message))
        )
        if self.injector is not None:
            delivered, message, arrival = self.injector.on_send(
                (node, neighbor), now, message, arrival
            )
            if not delivered:
                return
        self.edge_sends[(node, neighbor)].append((now, message, arrival))
        receiver_port = self.plan.receiver_port[(node, neighbor)]
        self.schedule(arrival, neighbor, "deliver", (receiver_port, message))

    # -- recording ---------------------------------------------------------

    def record_decision(self, node: NodeId, value: Any, now: float) -> None:
        record = self.records[node]
        if record.decision is not None:
            if record.decision != value:
                raise TimedExecutionError(
                    f"node {node!r} changed its decision from "
                    f"{record.decision!r} to {value!r}"
                )
            return
        record.decision = value
        record.decision_time = now
        record.events.append(TimedEvent(now, "decide", value))

    def record_fire(self, node: NodeId, now: float) -> None:
        record = self.records[node]
        if record.fire_time is not None:
            return
        record.fire_time = now
        record.events.append(TimedEvent(now, "fire"))

    def record_logical(
        self, node: NodeId, fn: LogicalClockFn, now: float
    ) -> None:
        record = self.records[node]
        record.logical_segments.append((now, fn))
        record.events.append(TimedEvent(now, "logical", fn))

    # -- main loop ---------------------------------------------------------

    def execute(self) -> TimedBehavior:
        system = self.system
        graph = system.graph
        by_node = self.plan.by_node
        for u in graph.nodes:
            factory = system.assignments[u].factory
            device = factory()
            self.devices[u] = device
            if isinstance(device, TimedReplayDevice):
                for time, port, message, arrival in device.script:
                    if time < 0:
                        raise TimedExecutionError(
                            "replay scripts cannot send before time 0"
                        )
                    self.schedule(time, u, "scripted", (port, message, arrival))
            self.schedule(0.0, u, "start", None)

        # One flag for the whole event loop; when telemetry is off the
        # per-event cost is a single boolean check.
        obs_on = obs.is_enabled()
        if obs_on:
            loop_t0 = perf_counter()

        while self._queue:
            (key, node, kind, payload) = heapq.heappop(self._queue)
            time = key[0]
            if time > self.horizon:
                break
            if obs_on:
                # Simulated time only — the dispatch order is already
                # canonical, so this stream is deterministic.  The
                # dispatch kind is carried as ``event`` ("kind" is the
                # telemetry-level discriminator).
                obs.emit(obs.TIMED_EVENT, time=time, node=str(node), event=kind)
            api = self.apis[node]
            api.now = time
            device = self.devices[node]
            ctx = by_node[node].ctx
            if kind == "start":
                self.records[node].events.append(TimedEvent(time, "start"))
                device.on_start(ctx, api)
            elif kind == "scripted":
                port, message, arrival = payload
                self.send_scripted(node, port, message, time, arrival)
            elif kind == "timer":
                self.records[node].events.append(
                    TimedEvent(time, "timer", payload)
                )
                device.on_timer(ctx, api, payload)
            elif kind == "deliver":
                port, message = payload
                self.records[node].events.append(
                    TimedEvent(time, "receive", (port, message))
                )
                device.on_message(ctx, api, port, message)
            else:  # pragma: no cover
                raise TimedExecutionError(f"unknown event kind {kind!r}")

        if obs_on:
            obs.observe_span("executor.timed", perf_counter() - loop_t0)

        node_behaviors = {
            u: TimedNodeBehavior(
                events=tuple(r.events),
                decision=r.decision,
                decision_time=r.decision_time,
                fire_time=r.fire_time,
                clock=system.clock(u),
                logical_segments=tuple(r.logical_segments),
            )
            for u, r in self.records.items()
        }
        edge_behaviors = {
            e: TimedEdgeBehavior(tuple(sends))
            for e, sends in self.edge_sends.items()
        }
        return TimedBehavior(
            graph=graph,
            horizon=self.horizon,
            node_behaviors=node_behaviors,
            edge_behaviors=edge_behaviors,
        )


def run_timed(
    system: TimedSystem,
    horizon: float,
    injector: TimedFaultInjector | None = None,
) -> TimedBehavior:
    """Execute ``system`` through real time ``horizon``.

    ``horizon`` is validated exactly like ``rounds`` in the synchronous
    executor's ``run`` — negative (or NaN) horizons raise
    :class:`TimedExecutionError` before any device code runs.  An
    optional ``injector`` (see :mod:`repro.runtime.faults`) interposes
    on every send; without one the executor is unchanged.
    """
    if math.isnan(horizon) or horizon < 0:
        raise TimedExecutionError("horizon must be non-negative")
    return _Run(system, horizon, injector).execute()
