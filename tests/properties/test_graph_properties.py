"""Property-based tests on graphs, connectivity, and coverings."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    classify,
    complete_graph,
    double_cover,
    is_covering,
    max_tolerable_faults,
    node_bound_double_cover,
    node_connectivity,
    partition_for_node_bound,
    random_connected_graph,
    ring_cover_of_triangle,
    verify_covering,
)


@st.composite
def connected_graphs(draw, min_nodes=3, max_nodes=9):
    n = draw(st.integers(min_nodes, max_nodes))
    seed = draw(st.integers(0, 2**16))
    p = draw(st.floats(0.05, 0.7))
    return random_connected_graph(n, p, random.Random(seed))


class TestConnectivityProperties:
    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_connectivity_at_most_min_degree(self, g):
        assert node_connectivity(g) <= g.min_degree()

    @given(connected_graphs())
    @settings(max_examples=40, deadline=None)
    def test_removing_min_cut_disconnects(self, g):
        from repro.graphs import global_min_cut

        if g.is_complete():
            return
        cut = global_min_cut(g)
        survivors = [u for u in g.nodes if u not in cut]
        assert survivors
        reach = g.reachable_from(survivors[0], removed=cut)
        assert reach != set(survivors)

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_removing_fewer_than_kappa_never_disconnects(self, g):
        kappa = node_connectivity(g)
        if kappa <= 1:
            return
        rng = random.Random(0)
        nodes = list(g.nodes)
        for _ in range(5):
            removed = rng.sample(nodes, kappa - 1)
            survivors = [u for u in nodes if u not in removed]
            reach = g.reachable_from(survivors[0], removed=removed)
            assert reach == set(survivors)


class TestAdequacyProperties:
    @given(st.integers(1, 5))
    @settings(max_examples=10, deadline=None)
    def test_complete_3f_plus_1_is_exactly_adequate(self, f):
        assert classify(complete_graph(3 * f + 1), f).adequate
        if 3 * f >= 3:
            assert not classify(complete_graph(3 * f), f).adequate

    @given(connected_graphs())
    @settings(max_examples=30, deadline=None)
    def test_max_tolerable_faults_is_tight(self, g):
        f = max_tolerable_faults(g)
        if f >= 1:
            assert classify(g, f).adequate
        assert not classify(g, f + 1).adequate


class TestCoveringProperties:
    @given(connected_graphs(min_nodes=3, max_nodes=8))
    @settings(max_examples=30, deadline=None)
    def test_double_cover_always_covers(self, g):
        edges = sorted(
            {frozenset(e) for e in g.edges}, key=lambda s: sorted(map(str, s))
        )
        crossed = [tuple(edges[0])] if edges else []
        dc = double_cover(g, crossed)
        verify_covering(dc.covering.cover, g, dc.covering.phi)

    @given(connected_graphs(min_nodes=3, max_nodes=9), st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_node_bound_cover_when_inadequate(self, g, f):
        if len(g) > 3 * f:
            return
        a, b, c = partition_for_node_bound(g, f)
        dc = node_bound_double_cover(g, a, b, c)
        assert len(dc.covering.cover) == 2 * len(g)
        # Fibers all have exactly two elements.
        assert all(len(dc.covering.fiber(w)) == 2 for w in g.nodes)

    @given(st.integers(2, 12))
    @settings(max_examples=12, deadline=None)
    def test_ring_covers_of_all_sizes(self, m):
        cm = ring_cover_of_triangle(3 * m)
        assert is_covering(cm.cover, cm.base, cm.phi)

    @given(connected_graphs(min_nodes=3, max_nodes=7))
    @settings(max_examples=20, deadline=None)
    def test_identity_is_always_a_covering(self, g):
        assert is_covering(g, g, {u: u for u in g.nodes})


class TestCyclicAndHararyProperties:
    @given(connected_graphs(min_nodes=3, max_nodes=7), st.integers(2, 5))
    @settings(max_examples=25, deadline=None)
    def test_cyclic_cover_always_covers(self, g, copies):
        from repro.graphs import cyclic_cover, verify_covering

        edges = sorted(
            {frozenset(e) for e in g.edges},
            key=lambda s: sorted(map(str, s)),
        )
        crossed = [tuple(sorted(edges[0], key=str))] if edges else []
        cover = cyclic_cover(g, crossed, copies)
        verify_covering(
            cover.covering.cover, cover.covering.base, cover.covering.phi
        )
        assert len(cover.covering.cover) == copies * len(g)

    @given(st.integers(2, 6), st.integers(7, 14))
    @settings(max_examples=25, deadline=None)
    def test_harary_connectivity_is_exact(self, k, n):
        from repro.graphs import harary_graph

        if n <= k:
            return
        assert node_connectivity(harary_graph(k, n)) == k
