"""Authenticated (signed-message) agreement — Dolev–Strong.

The paper remarks (Section 2) that when the Fault axiom is
"significantly weakened (say, by adding an unforgeable signature
assumption), then consensus is possible [LSP, PSL]".  This module
demonstrates that: with simulated unforgeable signatures, Byzantine
broadcast and agreement work for **any** number of faults — even on
the three-node graph where Theorem 1 forbids unauthenticated
agreement.

Signatures are simulated: a signature is a tagged tuple
``("sig", signer, payload)`` and *unforgeability is an assumption on
the adversary class* — the Byzantine devices used in tests may drop,
reorder, or replay legitimately signed messages and may sign anything
with their own key, but never fabricate another node's signature.
(This is exactly how the signature assumption weakens the Fault axiom:
the masquerading device ``F_A(E_1..E_d)`` generally *cannot exist*,
because exhibiting another run's edge behavior would require forging
the signatures embedded in it.)
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice

Signed = tuple  # ("sig", signer, payload)


def sign(signer: NodeId, payload: Any) -> Signed:
    """Simulated signature; honest code only calls it with its own id."""
    return ("sig", signer, payload)


def signer_chain(message: Any) -> list[NodeId]:
    """The signer ids of a nested signature chain, outermost first."""
    chain = []
    while (
        isinstance(message, tuple)
        and len(message) == 3
        and message[0] == "sig"
    ):
        chain.append(message[1])
        message = message[2]
    return chain


def signed_core(message: Any) -> Any:
    """The innermost payload of a signature chain."""
    while (
        isinstance(message, tuple)
        and len(message) == 3
        and message[0] == "sig"
    ):
        message = message[2]
    return message


class DolevStrongBroadcastDevice(SyncDevice):
    """Dolev–Strong Byzantine broadcast with a designated general.

    Runs ``f + 1`` rounds; tolerates any ``f < n`` faults under the
    signature assumption.  The general signs and broadcasts its input
    in round 0; a node that first accepts a value with ``r`` valid
    signatures in round ``r`` co-signs and forwards it.  After round
    ``f + 1`` a node decides the unique accepted value, or the default
    if it extracted zero or several values.
    """

    def __init__(
        self,
        my_id: NodeId,
        general: NodeId,
        max_faults: int,
        default: Any = 0,
    ) -> None:
        self.my_id = my_id
        self.general = general
        self.f = max_faults
        self.rounds = max_faults + 1
        self.default = default

    # State: (extracted_values, outbox_chains, decided)

    def init_state(self, ctx: NodeContext) -> State:
        if self.my_id == self.general:
            chain = sign(self.my_id, ("value", ctx.input))
            return (frozenset({ctx.input}), (chain,), None)
        return (frozenset(), (), None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        _extracted, outbox, _decided = state
        if round_index >= self.rounds or not outbox:
            return {}
        return {port: tuple(outbox) for port in ctx.ports}

    def _valid_chain(self, message: Any, round_index: int) -> bool:
        chain = signer_chain(message)
        core = signed_core(message)
        if not (isinstance(core, tuple) and len(core) == 2 and core[0] == "value"):
            return False
        if len(chain) != round_index + 1:
            return False
        if len(set(chain)) != len(chain):
            return False
        if chain[-1] != self.general:
            return False  # innermost signature must be the general's
        if self.my_id in chain:
            return False
        return True

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        extracted, _old_outbox, decided = state
        if round_index >= self.rounds:
            return state
        extracted = set(extracted)
        outbox = []
        for _sender, payload in sorted(
            inbox.items(), key=lambda kv: str(kv[0])
        ):
            if payload is None or not isinstance(payload, tuple):
                continue
            for message in payload:
                if not self._valid_chain(message, round_index):
                    continue
                value = signed_core(message)[1]
                if value not in extracted:
                    extracted.add(value)
                    if len(extracted) <= 2 and round_index + 1 < self.rounds:
                        outbox.append(sign(self.my_id, message))
        if round_index == self.rounds - 1:
            decided = (
                next(iter(extracted))
                if len(extracted) == 1
                else self.default
            )
        return (frozenset(extracted), tuple(outbox), decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[2]


class AuthenticatedConsensusDevice(SyncDevice):
    """Byzantine agreement from ``n`` parallel Dolev–Strong broadcasts.

    Every node acts as the general of its own broadcast instance; after
    all instances finish, each node decides the majority of the
    broadcast outcomes (including its own input for its own instance).
    Agreement holds because every instance ends consistently at all
    correct nodes; validity holds because correct instances deliver
    their generals' inputs, and correct generals are a majority when
    ``f < n/2`` (agreement alone holds for any ``f < n``).
    """

    def __init__(
        self,
        my_id: NodeId,
        all_ids: Sequence[NodeId],
        max_faults: int,
        default: Any = 0,
    ) -> None:
        self.my_id = my_id
        self.all_ids = tuple(all_ids)
        self.f = max_faults
        self.default = default
        self._instances = {
            general: DolevStrongBroadcastDevice(
                my_id, general, max_faults, default
            )
            for general in all_ids
        }
        self.rounds = max_faults + 1

    def init_state(self, ctx: NodeContext) -> State:
        states = {
            general: device.init_state(ctx)
            for general, device in self._instances.items()
        }
        return (states, None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        states, _decided = state
        out: dict[PortLabel, dict] = {port: {} for port in ctx.ports}
        for general, device in self._instances.items():
            sub = device.send(ctx, states[general], round_index)
            for port, message in sub.items():
                out[port][general] = message
        return {
            port: tuple(sorted(bundle.items(), key=lambda kv: str(kv[0])))
            for port, bundle in out.items()
            if bundle
        }

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        states, decided = state
        new_states = {}
        for general, device in self._instances.items():
            sub_inbox = {}
            for port, payload in inbox.items():
                entry = None
                if isinstance(payload, tuple):
                    entry = dict(payload).get(general)
                sub_inbox[port] = entry
            new_states[general] = device.transition(
                ctx, states[general], round_index, sub_inbox
            )
        if round_index == self.rounds - 1:
            outcomes = []
            for general, device in self._instances.items():
                sub_decision = device.choose(ctx, new_states[general])
                outcomes.append(sub_decision)
            tally: dict[Any, int] = {}
            for value in outcomes:
                tally[value] = tally.get(value, 0) + 1
            best = max(tally.values())
            winners = sorted(
                (v for v, c in tally.items() if c == best), key=repr
            )
            decided = (
                self.default
                if self.default in winners or len(winners) > 1
                else winners[0]
            )
        return (new_states, decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[1]


def authenticated_consensus_devices(
    graph: CommunicationGraph, max_faults: int, default: Any = 0
) -> dict[NodeId, AuthenticatedConsensusDevice]:
    """Signed-message agreement devices — valid for **any** ``f < n``,
    including inadequate graphs (the whole point)."""
    if not graph.is_complete():
        raise GraphError("this implementation assumes a complete graph")
    roster = tuple(graph.nodes)
    return {
        u: AuthenticatedConsensusDevice(u, roster, max_faults, default)
        for u in graph.nodes
    }
