"""Witness structure tests."""

import pytest

from repro.core import NoViolationFound, refute_node_bound
from repro.core.witness import CheckedBehavior, ImpossibilityWitness
from repro.graphs import triangle
from repro.problems.spec import SpecVerdict, Violation
from repro.protocols import MajorityVoteDevice


def make_witness():
    g = triangle()
    return refute_node_bound(
        g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=3
    )


class TestWitness:
    def test_violated_filters(self):
        witness = make_witness()
        assert witness.found
        assert all(not c.verdict.ok for c in witness.violated)
        assert len(witness.violated) < len(witness.checked)

    def test_describe_contains_everything(self):
        text = make_witness().describe()
        assert "E1" in text and "E2" in text and "E3" in text
        assert "VIOLATED" in text and "OK" in text
        assert "chain links" in text

    def test_require_found_passthrough(self):
        witness = make_witness()
        assert witness.require_found() is witness

    def test_require_found_raises_when_clean(self):
        g = triangle()
        clean = ImpossibilityWitness(
            problem="p",
            bound="b",
            graph=g,
            max_faults=1,
            checked=(),
        )
        with pytest.raises(NoViolationFound):
            clean.require_found()

    def test_checked_behavior_label(self):
        witness = make_witness()
        first = witness.checked[0]
        assert isinstance(first, CheckedBehavior)
        assert first.label == first.constructed.label


class TestVerdictPlumbing:
    def test_spec_verdict_bool(self):
        assert SpecVerdict(())
        assert not SpecVerdict((Violation("x", "broken"),))

    def test_violation_str_with_nodes(self):
        v = Violation("agreement", "nope", ("a", "b"))
        assert "agreement" in str(v) and "a, b" in str(v)

    def test_describe_clean(self):
        assert "satisfied" in SpecVerdict(()).describe()
