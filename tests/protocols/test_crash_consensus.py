"""FloodSet under crash faults: agreement where Byzantine agreement is
impossible — isolating the Fault axiom's role in the bounds."""

import pytest

from repro.graphs import GraphError, complete_graph, is_inadequate, triangle
from repro.problems import ByzantineAgreementSpec
from repro.protocols.crash_consensus import floodset_devices
from repro.runtime.sync import CrashDevice, make_system, run

SPEC = ByzantineAgreementSpec()


def run_floodset(n, f, inputs, crash_at=()):
    g = complete_graph(n)
    devices = dict(floodset_devices(g, f))
    for node, when in dict(crash_at).items():
        devices[node] = CrashDevice(devices[node], crash_round=when)
    input_map = {u: inputs[i] for i, u in enumerate(g.nodes)}
    behavior = run(make_system(g, devices, input_map), f + 1)
    correct = [u for u in g.nodes if u not in dict(crash_at)]
    return SPEC.check(input_map, behavior.decisions(), correct), behavior


class TestFloodSet:
    def test_three_nodes_one_crash(self):
        """The headline contrast: n = 3, f = 1 is INADEQUATE for
        Byzantine faults (Theorem 1) yet trivial for crash faults."""
        assert is_inadequate(triangle(), 1)
        for crash_round in (0, 1):
            verdict, _ = run_floodset(
                3, 1, (1, 0, 1), crash_at={"n2": crash_round}
            )
            assert verdict.ok, verdict.describe()

    def test_fault_free(self):
        verdict, behavior = run_floodset(4, 1, (1, 0, 1, 0))
        assert verdict.ok
        # Deterministic rule: min value seen.
        assert set(behavior.decisions().values()) == {0}

    def test_unanimous_validity(self):
        verdict, behavior = run_floodset(
            4, 2, (1, 1, 1, 1), crash_at={"n3": 0, "n2": 1}
        )
        assert verdict.ok
        assert behavior.decision("n0") == 1

    @pytest.mark.parametrize("staggered", [(0, 0), (0, 1), (1, 2), (2, 2)])
    def test_two_staggered_crashes(self, staggered):
        verdict, _ = run_floodset(
            5,
            2,
            (1, 0, 1, 0, 1),
            crash_at={"n3": staggered[0], "n4": staggered[1]},
        )
        assert verdict.ok, verdict.describe()

    def test_n_equals_f_plus_1(self):
        # Even two nodes, one crash: the survivor agrees with itself.
        verdict, _ = run_floodset(2, 1, (1, 0), crash_at={"n1": 0})
        assert verdict.ok

    def test_rejects_too_few_nodes(self):
        with pytest.raises(GraphError):
            floodset_devices(complete_graph(2), 2)


class TestWhyTheEngineDoesNotApply:
    def test_byzantine_engine_still_refutes_floodset(self):
        """FloodSet is NOT Byzantine-tolerant: handed to Theorem 1's
        engine as a candidate (where faults may masquerade), it falls
        like everything else.  Crash-tolerance ≠ Byzantine-tolerance —
        the Fault axiom is exactly the difference."""
        from repro.core import refute_node_bound

        g = triangle()
        devices = {u: floodset_devices(complete_graph(3), 1)["n0"]
                   for u in g.nodes}
        witness = refute_node_bound(g, devices, 1, rounds=3)
        assert witness.found
