"""Fault-tolerant averaging clock synchronization (Lundelius–Lynch /
Welch–Lynch style), the positive counterpart of Theorem 8.

On an *adequate* complete graph (``n >= 3f + 1``) nodes periodically
exchange clock readings, discard the ``f`` lowest and ``f`` highest
observed offsets, and shift their logical clocks by the trimmed mean.
One such exchange already beats the trivial lower-envelope
synchronization between exchanges (the benchmark measures by how
much); Theorem 8's engine proves the same idea is hopeless on the
triangle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..runtime.timed.device import DeviceApi, PortLabel, TimedContext, TimedDevice


@dataclass(frozen=True)
class OffsetEnvelope:
    """``c ↦ base(c + offset)`` — a comparable logical-clock function."""

    base: Any  # Callable[[float], float]
    offset: float = 0.0

    def __call__(self, c: float) -> float:
        return self.base(c + self.offset)


def trimmed_mean_offsets(offsets: list[float], trim: int) -> float:
    kept = sorted(offsets)[trim : len(offsets) - trim] if trim else sorted(offsets)
    if not kept:
        raise ValueError("trimming removed every offset")
    return sum(kept) / len(kept)


class AveragingSyncDevice(TimedDevice):
    """One exchange of readings, f-trimmed offset averaging.

    Parameters
    ----------
    lower:
        The envelope the logical clock runs at between adjustments.
    exchange_at:
        Hardware-clock time of the exchange broadcast.
    delay:
        The system's clock-units message delay (used to compensate the
        transit time when estimating peers' clocks).
    max_faults:
        Trim parameter ``f``.
    """

    def __init__(
        self,
        lower: Callable[[float], float],
        exchange_at: float,
        delay: float,
        max_faults: int,
    ) -> None:
        self.lower = lower
        self.exchange_at = exchange_at
        self.delay = delay
        self.f = max_faults
        self._offsets: list[float] = []
        self._expected = 0

    def on_start(self, ctx: TimedContext, api: DeviceApi) -> None:
        self._expected = len(ctx.ports)
        api.set_logical(OffsetEnvelope(self.lower, 0.0))
        api.set_timer("exchange", self.exchange_at)

    def on_timer(self, ctx: TimedContext, api: DeviceApi, name) -> None:
        if name == "exchange":
            reading = api.clock()
            for port in ctx.ports:
                api.send(port, ("reading", reading))

    def on_message(
        self, ctx: TimedContext, api: DeviceApi, port: PortLabel, message
    ) -> None:
        if not (
            isinstance(message, tuple)
            and len(message) == 2
            and message[0] == "reading"
            and isinstance(message[1], (int, float))
        ):
            return
        remote = float(message[1])
        local_estimate = api.clock() - self.delay
        self._offsets.append(remote - local_estimate)
        if len(self._offsets) == self._expected:
            pool = [0.0, *self._offsets]
            adjustment = trimmed_mean_offsets(pool, self.f)
            api.set_logical(OffsetEnvelope(self.lower, adjustment))


class ByzantineClockDevice(TimedDevice):
    """A faulty participant that reports wildly different readings to
    different neighbors — the classic two-faced clock."""

    def __init__(self, exchange_at: float, spread: float = 100.0) -> None:
        self.exchange_at = exchange_at
        self.spread = spread

    def on_start(self, ctx: TimedContext, api: DeviceApi) -> None:
        api.set_timer("exchange", self.exchange_at)

    def on_timer(self, ctx: TimedContext, api: DeviceApi, name) -> None:
        if name == "exchange":
            for index, port in enumerate(sorted(ctx.ports, key=str)):
                lie = api.clock() + (index - 1) * self.spread
                api.send(port, ("reading", lie))


def max_logical_skew(
    behavior, nodes, times: tuple[float, ...]
) -> float:
    """Worst pairwise logical-clock skew over the sample times."""
    worst = 0.0
    for t in times:
        readings = [behavior.node(u).logical_value(t) for u in nodes]
        worst = max(worst, max(readings) - min(readings))
    return worst
