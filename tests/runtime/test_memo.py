"""Tests for content-addressed behavior memoization.

Caching is only sound because execution is deterministic; these tests
pin both halves — the cache mechanics (bounded LRU, counters) and the
equivalence contract (cached results equal fresh executions, through
the campaign engine's shrink/replay paths).
"""

import pytest

from repro.analysis.campaign import (
    CampaignConfig,
    execute_attempt,
    run_campaign,
)
from repro.graphs.builders import complete_graph
from repro.protocols.naive import MajorityVoteDevice
from repro.runtime.faults import FaultPlan, LinkFault
from repro.runtime.memo import (
    BehaviorCache,
    behavior_cache_of,
    fingerprint,
    graph_fingerprint,
    memoized_run,
    plan_fingerprint,
)
from repro.runtime.sync.executor import run
from repro.runtime.sync.system import make_system


def _factory(graph):
    return {u: MajorityVoteDevice() for u in graph.nodes}


def _system(n=4):
    g = complete_graph(n)
    return make_system(
        g, _factory(g), {u: i % 2 for i, u in enumerate(g.nodes)}
    )


def _plan(graph, seed=17):
    nodes = list(graph.nodes)
    return FaultPlan(
        link_faults=(
            LinkFault(edge=(nodes[0], nodes[1]), kind="drop", start=0, end=2),
        ),
        seed=seed,
    )


class TestBehaviorCache:
    def test_miss_then_hit(self):
        cache = BehaviorCache(maxsize=4)
        assert cache.get("k") is None
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.stats() == {
            "hits": 1, "misses": 1, "size": 1, "maxsize": 4,
        }

    def test_lru_eviction_order(self):
        cache = BehaviorCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_rejects_none_values(self):
        with pytest.raises(ValueError):
            BehaviorCache().put("k", None)

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            BehaviorCache(maxsize=0)

    def test_clear_resets_counters(self):
        cache = BehaviorCache()
        cache.put("k", 1)
        cache.get("k")
        cache.get("absent")
        cache.clear()
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0
        assert len(cache) == 0

    def test_describe_mentions_hit_rate(self):
        cache = BehaviorCache()
        cache.put("k", 1)
        cache.get("k")
        assert "hit rate" in cache.describe()


class TestFingerprints:
    def test_fingerprint_is_content_addressed(self):
        assert fingerprint("a", 1) == fingerprint("a", 1)
        assert fingerprint("a", 1) != fingerprint("a", 2)

    def test_plan_fingerprint_equal_for_equal_plans(self):
        g = complete_graph(4)
        assert plan_fingerprint(_plan(g)) == plan_fingerprint(_plan(g))
        assert plan_fingerprint(_plan(g)) != plan_fingerprint(
            _plan(g, seed=99)
        )
        assert plan_fingerprint(None) == "fault-free"

    def test_graph_fingerprint_distinguishes_shapes(self):
        assert graph_fingerprint(complete_graph(4)) == graph_fingerprint(
            complete_graph(4)
        )
        assert graph_fingerprint(complete_graph(4)) != graph_fingerprint(
            complete_graph(5)
        )


class TestMemoizedRun:
    def test_equals_fresh_run_and_hits(self):
        system = _system()
        fresh = run(system, 3)
        b1, t1 = memoized_run(system, 3)
        b2, t2 = memoized_run(system, 3)
        assert b1 == fresh == b2
        assert t1 is None and t2 is None
        assert behavior_cache_of(system).stats()["hits"] == 1

    def test_fault_plan_keys_separately(self):
        system = _system()
        plan = _plan(system.graph)
        b_free, _ = memoized_run(system, 3)
        b_faulty, trace = memoized_run(system, 3, plan=plan)
        assert trace is not None
        assert b_free != b_faulty
        # Same plan content rebuilt from scratch still hits.
        b_again, trace_again = memoized_run(
            system, 3, plan=_plan(system.graph)
        )
        assert b_again == b_faulty and trace_again == trace

    def test_explicit_shared_cache_keys_by_system_identity(self):
        cache = BehaviorCache()
        s1, s2 = _system(), _system()
        b1, _ = memoized_run(s1, 3, cache=cache)
        b2, _ = memoized_run(s2, 3, cache=cache)
        # Two distinct system objects never alias in a shared cache,
        # even with equal content.
        assert cache.stats()["misses"] == 2
        assert b1 == b2


class TestCampaignMemoization:
    def _config(self, attempts=30, seed=11):
        return CampaignConfig(
            graph=complete_graph(4),
            device_factory=_factory,
            rounds=3,
            attempts=attempts,
            seed=seed,
            max_link_faults=2,
        )

    def test_execute_attempt_cached_equals_uncached(self):
        config = self._config()
        plan = _plan(config.graph)
        inputs = {u: i % 2 for i, u in enumerate(config.graph.nodes)}
        cache = BehaviorCache()
        uncached = execute_attempt(config, inputs, (), plan)
        first = execute_attempt(config, inputs, (), plan, cache)
        second = execute_attempt(config, inputs, (), plan, cache)
        assert first == uncached
        assert second == first
        assert cache.stats()["hits"] == 1

    def test_run_campaign_memoize_on_off_identical(self):
        config = self._config()
        with_memo = run_campaign(config, memoize=True)
        without = run_campaign(config, memoize=False)
        assert with_memo == without

    def test_shrink_and_replay_hit_the_cache(self):
        # MajorityVote breaks under link faults; the shrinker's
        # re-executions overlap, so a campaign that found and shrunk a
        # counterexample must have cache hits.
        config = self._config()
        cache = BehaviorCache()
        result = run_campaign(config, cache=cache)
        assert result.broken
        assert cache.stats()["hits"] > 0
        # The shrunk counterexample replays to the same verdict.
        from repro.analysis.campaign import replay_counterexample

        _, verdict, trace = replay_counterexample(
            config, result.shrunk, cache
        )
        assert not verdict.ok
        assert trace == result.injection_trace
