"""The Byzantine firing squad specification (Section 5).

One or more nodes may receive a stimulus at time 0 (input ``1``; the
absence of the stimulus is input ``0``).  Correct behaviors must
satisfy:

    Agreement — if a correct node enters the FIRE state at time ``t``,
                every correct node enters the FIRE state at time ``t``.
    Validity  — if all nodes are correct and the stimulus occurs at any
                node, all nodes fire after some finite delay; if the
                stimulus does not occur and all nodes are correct, no
                node ever fires.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from ..graphs.graph import NodeId
from .spec import SpecVerdict, Violation


@dataclass(frozen=True)
class FiringSquadSpec:
    """Checks fire times (``None`` = never fired within the horizon).

    ``time_tolerance`` absorbs floating-point jitter when comparing
    fire instants; simultaneity in the model is exact, so the default
    is exact comparison.
    """

    time_tolerance: float = 0.0

    def _simultaneous(self, s: float, t: float) -> bool:
        return abs(s - t) <= self.time_tolerance

    def check(
        self,
        inputs: Mapping[NodeId, int],
        fire_times: Mapping[NodeId, float | None],
        correct: Iterable[NodeId],
        all_correct: bool,
    ) -> SpecVerdict:
        correct = list(correct)
        violations: list[Violation] = []
        fired = {u: fire_times[u] for u in correct if fire_times[u] is not None}
        if fired:
            reference = min(fired.values())
            stragglers = [
                u
                for u in correct
                if fire_times[u] is None
                or not self._simultaneous(fire_times[u], reference)
            ]
            if stragglers:
                violations.append(
                    Violation(
                        "agreement",
                        f"a correct node fired at time {reference} but these "
                        "correct nodes did not fire at that time",
                        tuple(stragglers),
                    )
                )
        if all_correct:
            stimulated = any(inputs[u] == 1 for u in correct)
            if stimulated and len(fired) < len(correct):
                missing = [u for u in correct if fire_times[u] is None]
                violations.append(
                    Violation(
                        "validity",
                        "stimulus occurred but these nodes never fired "
                        "within the horizon",
                        tuple(missing),
                    )
                )
            if not stimulated and fired:
                violations.append(
                    Violation(
                        "validity",
                        "no stimulus occurred yet these nodes fired",
                        tuple(fired),
                    )
                )
        return SpecVerdict(tuple(violations))
