"""The clock synchronization specification (Section 7).

Correct hardware clocks run at ``p(t)`` or ``q(t)`` (increasing,
invertible, ``p <= q``); envelope functions ``l <= u`` are
non-decreasing.  Running every logical clock at the lower envelope of
its own hardware clock (``C(E(t)) = l(D(t))``) trivially synchronizes
to within ``l(q(t)) - l(p(t))``.  *Nontrivial* synchronization beats
that by a constant:

    Agreement — ``|C_i(t) - C_j(t)| <= l(q(t)) - l(p(t)) - α`` for all
                correct ``i, j`` and all ``t >= t'``.
    Validity  — ``l(p(t)) <= C_i(t) <= u(q(t))`` for all ``t``.

Theorem 8: no devices achieve this in inadequate graphs.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass

from ..graphs.graph import NodeId
from ..runtime.timed.clocks import ClockFunction
from .spec import SpecVerdict, Violation

LogicalClock = Callable[[float], float]
Envelope = Callable[[float], float]


@dataclass(frozen=True)
class ClockSyncSpec:
    """Nontrivial synchronization with margin ``alpha`` from time
    ``t_prime`` on, for clock bounds ``(p, q)`` and envelopes
    ``(lower, upper)``."""

    p: ClockFunction
    q: ClockFunction
    lower: Envelope
    upper: Envelope
    alpha: float
    t_prime: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError("the synchronization margin α must be positive")

    def trivial_skew(self, t: float) -> float:
        """The skew achieved with no communication: ``l(q(t)) - l(p(t))``."""
        return self.lower(self.q(t)) - self.lower(self.p(t))

    def agreement_bound(self, t: float) -> float:
        """Maximum allowed skew at time ``t >= t'``."""
        return self.trivial_skew(t) - self.alpha

    def check_agreement_at(
        self,
        logical: Mapping[NodeId, LogicalClock],
        correct: Iterable[NodeId],
        t: float,
        tolerance: float = 1e-9,
    ) -> SpecVerdict:
        """Pairwise skew of correct logical clocks at one time ``t >= t'``."""
        if t < self.t_prime:
            raise ValueError(f"agreement binds only from t' = {self.t_prime}")
        correct = list(correct)
        bound = self.agreement_bound(t)
        violations = []
        readings = {u: logical[u](t) for u in correct}
        for i, a in enumerate(correct):
            for b in correct[i + 1 :]:
                skew = abs(readings[a] - readings[b])
                if skew > bound + tolerance:
                    violations.append(
                        Violation(
                            "agreement",
                            f"|C_{a} - C_{b}| = {skew:.6g} > bound "
                            f"{bound:.6g} at t = {t:.6g}",
                            (a, b),
                        )
                    )
        return SpecVerdict(tuple(violations))

    def check_validity_at(
        self,
        logical: Mapping[NodeId, LogicalClock],
        correct: Iterable[NodeId],
        t: float,
        tolerance: float = 1e-9,
    ) -> SpecVerdict:
        """Envelope containment of correct logical clocks at time ``t``."""
        low = self.lower(self.p(t))
        high = self.upper(self.q(t))
        violations = []
        for u in correct:
            value = logical[u](t)
            if value < low - tolerance or value > high + tolerance:
                violations.append(
                    Violation(
                        "validity",
                        f"C_{u}({t:.6g}) = {value:.6g} outside envelope "
                        f"[{low:.6g}, {high:.6g}]",
                        (u,),
                    )
                )
        return SpecVerdict(tuple(violations))

    def check_at(
        self,
        logical: Mapping[NodeId, LogicalClock],
        correct: Iterable[NodeId],
        t: float,
        tolerance: float = 1e-9,
    ) -> SpecVerdict:
        """Agreement (if ``t >= t'``) plus validity at time ``t``."""
        correct = list(correct)
        violations = list(
            self.check_validity_at(logical, correct, t, tolerance).violations
        )
        if t >= self.t_prime:
            violations.extend(
                self.check_agreement_at(logical, correct, t, tolerance).violations
            )
        return SpecVerdict(tuple(violations))
