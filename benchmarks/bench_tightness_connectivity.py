"""TIGHT-K — tightness of the 2f+1 connectivity bound.

Dolev-style relay over 2f+1 vertex-disjoint paths delivers messages
reliably at exactly connectivity 2f+1, while the engine constructs the
counterexample one step below (see bench_theorem1_connectivity.py).
Sweeps f and graph families; also times the disjoint-path computation.
"""

import pytest
from conftest import report

from repro.analysis import SWEEP_HEADERS, connectivity_sweep, format_table
from repro.graphs import circulant, node_connectivity, vertex_disjoint_paths
from repro.protocols import relay_devices, transmission_rounds
from repro.runtime.sync import RandomLiarDevice, SilentDevice, make_system, run


def test_connectivity_threshold_table(benchmark):
    rows = benchmark(lambda: connectivity_sweep(max_faults=1, n_nodes=8))
    report(
        "TIGHT-K: the 2f+1 connectivity threshold",
        format_table(SWEEP_HEADERS, [r.as_tuple() for r in rows]),
    )
    outcomes = {row.connectivity: row.outcome for row in rows}
    assert any(
        "IMPOSSIBLE" in outcome
        for kappa, outcome in outcomes.items()
        if kappa < 3
    )
    assert any(
        "DELIVERED" in outcome
        for kappa, outcome in outcomes.items()
        if kappa >= 3
    )


@pytest.mark.parametrize(
    "f,offsets", [(1, [1, 2]), (2, [1, 2, 3])], ids=["f1-k4", "f2-k6"]
)
def test_relay_under_maximal_corruption(benchmark, f, offsets):
    g = circulant(11, offsets)
    assert node_connectivity(g) >= 2 * f + 1
    source, target = "c0", "c5"

    def once():
        devices = dict(relay_devices(g, source, target, f))
        intermediaries = [u for u in g.nodes if u not in (source, target)]
        for i in range(f):
            devices[intermediaries[i]] = (
                RandomLiarDevice(seed=i) if i % 2 else SilentDevice()
            )
        inputs = {u: ("SECRET" if u == source else None) for u in g.nodes}
        rounds = transmission_rounds(g, source, target, f) + 1
        return run(make_system(g, devices, inputs), rounds).decision(target)

    assert benchmark(once) == "SECRET"


def test_disjoint_path_computation(benchmark):
    g = circulant(24, [1, 2, 3])
    paths = benchmark(lambda: vertex_disjoint_paths(g, "c0", "c12"))
    assert len(paths) == 6
    interior = set()
    for path in paths:
        middle = set(path[1:-1])
        assert not middle & interior
        interior |= middle
