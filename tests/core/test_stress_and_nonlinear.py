"""Stress tests: larger fault budgets and nonlinear clock families."""

import pytest

from repro.core import (
    SynchronizationSetting,
    refute_clock_sync,
    refute_node_bound,
)
from repro.graphs import complete_graph
from repro.problems import ByzantineAgreementSpec
from repro.protocols import (
    LowerEnvelopeClockDevice,
    MajorityVoteDevice,
    eig_devices,
)
from repro.runtime.sync import RandomLiarDevice, make_system, run
from repro.runtime.timed import LinearClock, PowerClock
from repro.runtime.timed.clocks import ComposedClock, compose


@pytest.mark.slow
class TestLargerFaultBudgets:
    def test_eig_three_faults_on_k10(self):
        g = complete_graph(10)
        devices = dict(eig_devices(g, 3))
        for i, node in enumerate(("n7", "n8", "n9")):
            devices[node] = RandomLiarDevice(seed=50 + i)
        inputs = {u: i % 2 for i, u in enumerate(g.nodes)}
        behavior = run(make_system(g, devices, inputs), 4)
        correct = [f"n{i}" for i in range(7)]
        verdict = ByzantineAgreementSpec().check(
            inputs, behavior.decisions(), correct
        )
        assert verdict.ok, verdict.describe()

    def test_engine_refutes_k9_three_faults(self):
        g = complete_graph(9)  # 9 <= 3f for f = 3
        witness = refute_node_bound(
            g,
            {u: MajorityVoteDevice() for u in g.nodes},
            max_faults=3,
            rounds=3,
        )
        assert witness.found
        for checked in witness.checked:
            assert len(checked.constructed.correct_nodes) >= 6


class TestNonlinearClocks:
    def test_power_clock_composition_path(self):
        """p = t², q = 1.44·t² exercise the generic ComposedClock
        machinery: h = p⁻¹∘q is effectively 1.2·t but computed through
        compositions and inverses, not LinearClock shortcuts."""
        p = PowerClock(scale=1.0, exponent=2.0)
        q = PowerClock(scale=1.44, exponent=2.0)
        from repro.runtime.timed.clocks import drift_map

        h = drift_map(p, q)
        assert isinstance(h, ComposedClock)
        for t in (1.0, 2.0, 5.0):
            assert h(t) == pytest.approx(1.2 * t)
            assert h.inverse()(h(t)) == pytest.approx(t)

    @pytest.mark.slow
    def test_clock_engine_with_power_clocks(self):
        """Theorem 8 with quadratic hardware clocks: the engine's
        choose_k / iterate / scaling chain must survive a nonlinear
        (but exactly invertible) clock family."""
        p = PowerClock(scale=1.0, exponent=2.0)
        q = PowerClock(scale=1.44, exponent=2.0)
        lower = LinearClock(1.0, 0.0)  # l(c) = c (on clock readings)
        upper = LinearClock(1.0, 12.0)
        setting = SynchronizationSetting(
            p=p, q=q, lower=lower, upper=upper, alpha=0.5, t_prime=1.0
        )
        from repro.graphs import triangle

        factories = {
            u: (lambda: LowerEnvelopeClockDevice(lower))
            for u in triangle().nodes
        }
        witness = refute_clock_sync(
            factories, setting, verify_indices=(0,)
        )
        assert witness.found
        assert all(
            c["all_match"] for c in witness.extra["scaling_checks"]
        )

    def test_compose_mixed_families(self):
        mixed = compose(LinearClock(2.0, 1.0), PowerClock(1.0, 2.0))
        assert mixed(3.0) == pytest.approx(2.0 * 9.0 + 1.0)
        assert mixed.inverse()(mixed(3.0)) == pytest.approx(3.0)
