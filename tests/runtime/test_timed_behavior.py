"""Timed behavior data-structure tests: prefixes, logical clocks,
payload comparison, edge restriction."""

import math

import pytest

from repro.graphs import GraphError
from repro.runtime.timed import LinearClock, TimedEvent
from repro.runtime.timed.behavior import (
    TimedEdgeBehavior,
    TimedNodeBehavior,
    events_equal,
    payloads_close,
)


def node_behavior(events, clock=None, segments=()):
    return TimedNodeBehavior(
        events=tuple(events),
        clock=clock,
        logical_segments=tuple(segments),
    )


class TestEventPrefixes:
    EVENTS = [
        TimedEvent(0.0, "start"),
        TimedEvent(1.0, "receive", ("p", "m")),
        TimedEvent(2.0, "timer", "t"),
    ]

    def test_prefix_cuts_by_time(self):
        nb = node_behavior(self.EVENTS)
        assert len(nb.prefix(0.5)) == 1
        assert len(nb.prefix(1.0)) == 2
        assert len(nb.prefix(10.0)) == 3

    def test_prefix_equal(self):
        nb1 = node_behavior(self.EVENTS)
        nb2 = node_behavior(self.EVENTS[:2] + [TimedEvent(2.0, "timer", "u")])
        assert nb1.prefix_equal(nb2, through=1.5)
        assert not nb1.prefix_equal(nb2, through=2.5)

    def test_prefix_equal_with_tolerance(self):
        shifted = [
            TimedEvent(e.time + 1e-9, e.kind, e.payload) for e in self.EVENTS
        ]
        nb1 = node_behavior(self.EVENTS)
        nb2 = node_behavior(shifted)
        assert nb1.prefix_equal(nb2, through=5.0, time_tolerance=1e-6)
        assert not nb1.prefix_equal(nb2, through=5.0, time_tolerance=0.0)

    def test_events_equal(self):
        a = TimedEvent(1.0, "receive", ("p", 1))
        b = TimedEvent(1.0, "receive", ("p", 1))
        c = TimedEvent(1.0, "receive", ("p", 2))
        assert events_equal(a, b)
        assert not events_equal(a, c)

    def test_shifted(self):
        e = TimedEvent(2.0, "timer", "t")
        assert e.shifted(lambda t: 2 * t).time == 4.0


class TestLogicalClocks:
    def test_default_reads_hardware(self):
        nb = node_behavior([], clock=LinearClock(2.0, 0.0))
        assert nb.logical_value(3.0) == pytest.approx(6.0)

    def test_segments_switch_over_time(self):
        clock = LinearClock(1.0, 0.0)
        nb = node_behavior(
            [],
            clock=clock,
            segments=[(0.0, lambda c: c), (5.0, lambda c: c + 100)],
        )
        assert nb.logical_value(4.0) == pytest.approx(4.0)
        assert nb.logical_value(6.0) == pytest.approx(106.0)

    def test_no_clock_raises(self):
        nb = node_behavior([])
        with pytest.raises(GraphError):
            nb.logical_value(1.0)


class TestEdgeBehavior:
    def test_through_filters_by_send_time(self):
        eb = TimedEdgeBehavior(
            ((0.0, "a", 1.0), (2.0, "b", 3.0), (4.0, "c", 5.0))
        )
        assert eb.through(2.0).messages() == ("a", "b")
        assert eb.through(0.5).messages() == ("a",)


class TestPayloadsClose:
    def test_float_tolerance(self):
        assert payloads_close(1.0, 1.0 + 1e-9, 1e-6)
        assert not payloads_close(1.0, 1.1, 1e-6)

    def test_relative_scaling(self):
        assert payloads_close(1e9, 1e9 + 10, 1e-6)

    def test_nested_structures(self):
        a = ("reading", 2.0, {"x": (1.0, 2.0)})
        b = ("reading", 2.0 + 1e-10, {"x": (1.0, 2.0 + 1e-10)})
        assert payloads_close(a, b, 1e-6)

    def test_mismatched_shapes(self):
        assert not payloads_close((1, 2), (1, 2, 3), 1e-6)
        assert not payloads_close({"a": 1}, {"b": 1}, 1e-6)

    def test_callables_pass(self):
        assert payloads_close(math.sin, math.cos, 1e-6)

    def test_plain_equality_fallback(self):
        assert payloads_close("x", "x", 0.0)
        assert not payloads_close("x", "y", 0.0)
