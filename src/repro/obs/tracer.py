"""Nestable spans: logical boundaries in the trace, wall time on the
side.

A span marks a region of work — an executor round, a campaign attempt,
a shrink ladder, a frontier probe.  Spans split their two outputs by
determinism:

* ``span_start`` / ``span_end`` events (run scope) go into the event
  log; ``span_end`` carries the number of events the span enclosed.
  Neither carries wall time, so traces stay byte-identical across
  ``--jobs`` settings and machines.
* Wall-clock durations are aggregated host-side per span name
  (count / total / min / max seconds) and surface in the run summary
  and ``host.span.*`` metrics — never in the exported trace.

Spans nest lexically (a plain stack); pairing ``span_start`` with its
``span_end`` in a trace is by nesting order, like well-formed
brackets.  When telemetry is disabled, :meth:`Tracer.span` yields
immediately — the disabled cost is one boolean check.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Any, Iterator

from . import events as ev


class SpanAggregate:
    """Wall-time aggregate for one span name."""

    __slots__ = ("count", "total_s", "min_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total_s += seconds
        if seconds < self.min_s:
            self.min_s = seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": (self.total_s / self.count) if self.count else 0.0,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class Tracer:
    """Span emission + host-side wall-time aggregation."""

    __slots__ = ("aggregates", "_depth")

    def __init__(self) -> None:
        self.aggregates: dict[str, SpanAggregate] = {}
        self._depth = 0

    @property
    def depth(self) -> int:
        return self._depth

    def observe(self, name: str, seconds: float) -> None:
        agg = self.aggregates.get(name)
        if agg is None:
            agg = self.aggregates[name] = SpanAggregate()
        agg.observe(seconds)

    @contextmanager
    def span(
        self, name: str, emit_events: bool = True, **fields: Any
    ) -> Iterator[None]:
        """Mark a region of work.

        ``emit_events=False`` records only the wall-time aggregate —
        for hot regions whose boundaries are already evident from
        other events (e.g. executor rounds).
        """
        if not ev.is_enabled():
            yield
            return
        start = perf_counter()
        events_before = _stream_position()
        if emit_events:
            ev.emit(ev.SPAN_START, name=name, **fields)
        self._depth += 1
        try:
            yield
        finally:
            self._depth -= 1
            if emit_events:
                enclosed = _stream_position() - events_before - 1
                ev.emit(ev.SPAN_END, name=name, events=enclosed)
            self.observe(name, perf_counter() - start)

    def stats(self) -> dict[str, dict[str, float]]:
        return {
            name: agg.snapshot()
            for name, agg in sorted(self.aggregates.items())
        }

    def render(self) -> str:
        """Human-readable span table (host scope: wall times are this
        process's view — forked workers' spans aggregate in their own
        processes and are not merged)."""
        if not self.aggregates:
            return "no spans recorded"
        lines = ["span                           count   total(s)    mean(s)     max(s)"]
        for name, agg in sorted(self.aggregates.items()):
            s = agg.snapshot()
            lines.append(
                f"{name:<30} {s['count']:>5}  {s['total_s']:>9.4f} "
                f"{s['mean_s']:>10.6f} {s['max_s']:>10.6f}"
            )
        return "\n".join(lines)


def _stream_position() -> int:
    """Current position in the active sink's *run-scope* stream —
    capsule run-length or the main log's run sequence counter.  Host
    events are excluded so the enclosed-event count a ``span_end``
    carries never depends on cache luck or worker scheduling."""
    state = ev._STATE
    if state.sinks:
        return state.sinks[-1].run_len
    return state.log.seq if state.log is not None else 0


__all__ = ["SpanAggregate", "Tracer"]
