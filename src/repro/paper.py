"""The paper's structure, as data: every theorem and corollary mapped
to the code that reproduces it.

This is the machine-readable version of DESIGN.md's experiment index —
useful for discovery (``python -c "import repro.paper;
repro.paper.print_index()"``) and used by the test suite to guarantee
the map stays complete and truthful.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PaperResult:
    """One theorem/corollary and where it lives in this library."""

    identifier: str
    section: str
    statement: str
    engine: str  # dotted path of the refuting function / demo entry
    positive_counterpart: str | None = None
    benchmark: str = ""
    axioms: tuple[str, ...] = field(default_factory=tuple)


RESULTS: tuple[PaperResult, ...] = (
    PaperResult(
        identifier="theorem-1-nodes",
        section="3.1",
        statement=(
            "Byzantine agreement is impossible with n <= 3f nodes"
        ),
        engine="repro.core.refute_node_bound",
        positive_counterpart="repro.protocols.eig_devices",
        benchmark="benchmarks/bench_theorem1_nodes.py",
        axioms=("Locality", "Fault"),
    ),
    PaperResult(
        identifier="theorem-1-connectivity",
        section="3.2",
        statement=(
            "Byzantine agreement is impossible with connectivity <= 2f"
        ),
        engine="repro.core.refute_connectivity",
        positive_counterpart="repro.protocols.sparse_agreement_devices",
        benchmark="benchmarks/bench_theorem1_connectivity.py",
        axioms=("Locality", "Fault"),
    ),
    PaperResult(
        identifier="theorem-2",
        section="4",
        statement="Weak agreement is impossible in inadequate graphs",
        engine="repro.core.refute_weak_agreement",
        positive_counterpart="repro.protocols.weak_agreement_devices",
        benchmark="benchmarks/bench_theorem2_weak.py",
        axioms=("Locality", "Fault", "Bounded-Delay Locality"),
    ),
    PaperResult(
        identifier="theorem-4",
        section="5",
        statement=(
            "The Byzantine firing squad problem cannot be solved in "
            "inadequate graphs"
        ),
        engine="repro.core.refute_firing_squad",
        positive_counterpart="repro.protocols.firing_squad_devices",
        benchmark="benchmarks/bench_theorem4_firing_squad.py",
        axioms=("Locality", "Fault", "Bounded-Delay Locality"),
    ),
    PaperResult(
        identifier="theorem-5",
        section="6.1",
        statement=(
            "Simple approximate agreement is impossible in inadequate "
            "graphs"
        ),
        engine="repro.core.refute_simple_node_bound",
        positive_counterpart="repro.protocols.dlpsw_devices",
        benchmark="benchmarks/bench_theorem5_approx.py",
        axioms=("Locality", "Fault"),
    ),
    PaperResult(
        identifier="theorem-6",
        section="6.2",
        statement=(
            "(ε,δ,γ)-agreement with ε < δ is impossible in inadequate "
            "graphs"
        ),
        engine="repro.core.refute_epsilon_delta",
        positive_counterpart="repro.protocols.inexact_devices",
        benchmark="benchmarks/bench_theorem6_eps_delta.py",
        axioms=("Locality", "Fault"),
    ),
    PaperResult(
        identifier="theorem-8",
        section="7",
        statement=(
            "Nontrivial clock synchronization is impossible in "
            "inadequate graphs"
        ),
        engine="repro.core.refute_clock_sync",
        positive_counterpart="repro.protocols.AveragingSyncDevice",
        benchmark="benchmarks/bench_theorem8_clock_sync.py",
        axioms=("Locality", "Fault", "Scaling"),
    ),
    PaperResult(
        identifier="corollary-12",
        section="7.1",
        statement=(
            "Linear envelope synchronization is impossible in "
            "inadequate graphs"
        ),
        engine="repro.core.corollary_12_linear_envelope",
        benchmark="benchmarks/bench_corollaries_clock.py",
        axioms=("Scaling",),
    ),
    PaperResult(
        identifier="corollary-13",
        section="7.1",
        statement="With p=t, q=rt, l=at+b, nothing beats skew art-at",
        engine="repro.core.corollary_13_diverging_linear",
        benchmark="benchmarks/bench_corollaries_clock.py",
        axioms=("Scaling",),
    ),
    PaperResult(
        identifier="corollary-14",
        section="7.1",
        statement="With p=t, q=t+c, l=at+b, nothing beats the constant ac",
        engine="repro.core.corollary_14_offset_clocks",
        benchmark="benchmarks/bench_corollaries_clock.py",
        axioms=("Scaling",),
    ),
    PaperResult(
        identifier="corollary-15",
        section="7.1",
        statement=(
            "With p=t, q=rt, l=log2, nothing beats the constant log2(r)"
        ),
        engine="repro.core.corollary_15_logarithmic",
        benchmark="benchmarks/bench_corollaries_clock.py",
        axioms=("Scaling",),
    ),
    PaperResult(
        identifier="remark-signatures",
        section="2",
        statement=(
            "Weakening the Fault axiom (unforgeable signatures) makes "
            "consensus possible"
        ),
        engine="repro.protocols.authenticated_consensus_devices",
        benchmark="benchmarks/bench_authenticated.py",
        axioms=("Locality",),
    ),
    PaperResult(
        identifier="remark-nondeterminism",
        section="3",
        statement=(
            "Nondeterministic algorithms cannot guarantee Byzantine "
            "agreement either"
        ),
        engine="repro.core.refute_nondeterministic",
        benchmark="benchmarks/bench_extensions.py",
        axioms=("Locality", "Fault"),
    ),
    PaperResult(
        identifier="theorem-2-connectivity",
        section="4 (general case remark)",
        statement=(
            "Weak agreement's connectivity bound, via cyclic m-fold covers"
        ),
        engine="repro.core.refute_weak_agreement_connectivity",
        benchmark="benchmarks/bench_theorem2_weak.py",
        axioms=("Locality", "Fault", "Bounded-Delay Locality"),
    ),
    PaperResult(
        identifier="theorem-4-connectivity",
        section="5 (general case remark)",
        statement="The firing squad's connectivity bound",
        engine="repro.core.refute_firing_squad_connectivity",
        benchmark="benchmarks/bench_theorem4_firing_squad.py",
        axioms=("Locality", "Fault", "Bounded-Delay Locality"),
    ),
    PaperResult(
        identifier="theorem-6-connectivity",
        section="6.2 (general case remark)",
        statement=(
            "(ε,δ,γ)-agreement's connectivity bound (ε < δ/2 via this "
            "chain)"
        ),
        engine="repro.core.refute_epsilon_delta_connectivity",
        benchmark="benchmarks/bench_theorem6_eps_delta.py",
        axioms=("Locality", "Fault"),
    ),
    PaperResult(
        identifier="theorem-8-connectivity",
        section="7 (closing remark)",
        statement="Clock synchronization's connectivity bound",
        engine="repro.core.refute_clock_sync_connectivity",
        benchmark="benchmarks/bench_theorem8_clock_sync.py",
        axioms=("Locality", "Fault", "Scaling"),
    ),
    PaperResult(
        identifier="conclusion-fault-axiom",
        section="8",
        statement=(
            "The bounds stem from Byzantine masquerading: crash-only "
            "faults admit consensus on inadequate graphs"
        ),
        engine="repro.protocols.floodset_devices",
        benchmark="benchmarks/bench_extensions.py",
        axioms=("Locality",),
    ),
    PaperResult(
        identifier="footnote-3",
        section="3.1",
        statement=(
            "The general n <= 3f case reduces to f = 1 by collapsing "
            "subgraphs into supernode systems"
        ),
        engine="repro.runtime.sync.collapse_system",
        benchmark="benchmarks/bench_extensions.py",
        axioms=("Locality", "Fault"),
    ),
)


def by_id(identifier: str) -> PaperResult:
    for result in RESULTS:
        if result.identifier == identifier:
            return result
    raise KeyError(identifier)


def resolve(dotted: str):
    """Import the object named by a result's ``engine`` path."""
    module_path, _, attr = dotted.rpartition(".")
    module = __import__(module_path, fromlist=[attr])
    return getattr(module, attr)


def print_index() -> None:
    from .analysis.tables import format_table

    rows = [
        (r.identifier, r.section, r.engine.rsplit(".", 1)[-1],
         ", ".join(r.axioms))
        for r in RESULTS
    ]
    print(
        format_table(
            ("result", "§", "engine", "axioms"),
            rows,
            "FLM 1985 — reproduction index",
        )
    )
