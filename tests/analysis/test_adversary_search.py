"""Adversary search: breaks naive devices fast, cannot break EIG."""

from repro.analysis.adversary_search import search_agreement_attacks
from repro.graphs import complete_graph
from repro.protocols import MajorityVoteDevice, eig_devices


class TestAdversarySearch:
    def test_eig_survives_the_search(self):
        result = search_agreement_attacks(
            complete_graph(4),
            lambda g: eig_devices(g, 1),
            max_faults=1,
            rounds=2,
            attempts=120,
            seed=7,
        )
        assert not result.broken, result.describe()
        assert result.attempts == 120
        assert "survived" in result.describe()

    def test_majority_vote_falls_quickly(self):
        """Plain one-round majority is not Byzantine-tolerant even on
        K4: a two-faced or replaying adversary splits it."""
        result = search_agreement_attacks(
            complete_graph(4),
            lambda g: {u: MajorityVoteDevice() for u in g.nodes},
            max_faults=1,
            rounds=1,
            attempts=300,
            seed=3,
        )
        assert result.broken
        assert result.attack is not None
        assert "broken" in result.describe()

    def test_search_is_deterministic(self):
        def go():
            return search_agreement_attacks(
                complete_graph(4),
                lambda g: {u: MajorityVoteDevice() for u in g.nodes},
                max_faults=1,
                rounds=1,
                attempts=300,
                seed=11,
            )

        first, second = go(), go()
        assert first.attempts == second.attempts
        assert first.broken == second.broken

    def test_eig_survives_two_faults_on_k7(self):
        result = search_agreement_attacks(
            complete_graph(7),
            lambda g: eig_devices(g, 2),
            max_faults=2,
            rounds=3,
            attempts=25,
            seed=1,
        )
        assert not result.broken, result.describe()


class TestVerdictMemoization:
    def _search(self, cache=None, **overrides):
        kwargs = dict(
            max_faults=1, rounds=2, attempts=120, seed=7, cache=cache
        )
        kwargs.update(overrides)
        return search_agreement_attacks(
            complete_graph(4), lambda g: eig_devices(g, 1), **kwargs
        )

    def test_cache_does_not_change_the_result(self):
        from repro.runtime.memo import BehaviorCache

        plain = self._search()
        cached = self._search(cache=BehaviorCache())
        assert plain == cached

    def test_repeated_draws_hit_the_cache(self):
        from repro.runtime.memo import BehaviorCache

        cache = BehaviorCache()
        self._search(cache=cache)
        # Small strategy space (silent/crash/two-faced on K4) repeats
        # across 120 attempts; some of them must collide.
        assert cache.hits > 0

    def test_cache_works_in_indexed_mode(self):
        from repro.runtime.memo import BehaviorCache

        plain = self._search(jobs=1)
        cached = self._search(cache=BehaviorCache(), jobs=1)
        assert plain == cached
