"""Isomorphism checking — and the paper's figure-shape claims made
literal: the triangle's double cover IS the hexagon; the diamond's IS
the 8-ring; the 4k construction IS a ring."""

import random

import pytest

from repro.graphs import (
    complete_graph,
    connectivity_double_cover,
    cut_partition_for_connectivity,
    diamond,
    node_bound_double_cover,
    random_connected_graph,
    ring,
    ring_cover_of_triangle,
    triangle,
    wheel,
)
from repro.graphs.isomorphism import (
    find_isomorphism,
    is_isomorphic,
    verify_isomorphism,
)


class TestBasics:
    def test_identity(self):
        g = wheel(5)
        mapping = find_isomorphism(g, g)
        assert mapping is not None
        assert verify_isomorphism(g, g, mapping)

    def test_relabeled_graphs_isomorphic(self):
        g = complete_graph(5)
        h = g.relabel({u: f"x{u}" for u in g.nodes})
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        assert verify_isomorphism(g, h, mapping)

    def test_different_sizes_rejected(self):
        assert not is_isomorphic(ring(5), ring(6))

    def test_same_degrees_different_structure(self):
        # C6 vs two disjoint triangles: both 2-regular on 6 nodes.
        from repro.graphs import CommunicationGraph

        two_triangles = CommunicationGraph(
            list("abcdef"),
            [("a", "b"), ("b", "c"), ("c", "a"),
             ("d", "e"), ("e", "f"), ("f", "d")],
        )
        assert not is_isomorphic(ring(6), two_triangles)

    def test_verify_rejects_bad_mapping(self):
        g = ring(4)
        bad = {u: u for u in g.nodes}
        bad["r0"], bad["r1"] = bad["r1"], bad["r0"]
        # Swapping two adjacent ring nodes is still an automorphism of
        # C4? r0<->r1 swap: edge (r0,r1) -> (r1,r0) ok; (r1,r2)->(r0,r2)
        # which is NOT an edge. So it must be rejected.
        assert not verify_isomorphism(g, g, bad)


class TestPaperFigureShapes:
    def test_triangle_double_cover_is_the_hexagon(self):
        dc = node_bound_double_cover(triangle(), {"a"}, {"b"}, {"c"})
        assert is_isomorphic(dc.covering.cover, ring(6))

    def test_diamond_double_cover_is_the_eight_ring(self):
        g = diamond()
        side_a, cut_b, side_c, cut_d = cut_partition_for_connectivity(g, 1)
        dc = connectivity_double_cover(g, cut_b, cut_d, side_a, side_c)
        assert is_isomorphic(dc.covering.cover, ring(8))

    @pytest.mark.parametrize("m", [4, 5])
    def test_ring_covers_are_rings(self, m):
        cm = ring_cover_of_triangle(3 * m)
        assert is_isomorphic(cm.cover, ring(3 * m))

    def test_k6_double_cover_not_a_ring(self):
        g = complete_graph(6)
        from repro.graphs import partition_for_node_bound

        a, b, c = partition_for_node_bound(g, 2)
        dc = node_bound_double_cover(g, a, b, c)
        assert not is_isomorphic(dc.covering.cover, ring(12))


class TestRandomized:
    @pytest.mark.parametrize("seed", range(5))
    def test_random_relabelings(self, seed):
        rng = random.Random(seed)
        g = random_connected_graph(8, 0.3, rng)
        names = list(g.nodes)
        shuffled = names[:]
        rng.shuffle(shuffled)
        h = g.relabel(dict(zip(names, [f"z{s}" for s in shuffled])))
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        assert verify_isomorphism(g, h, mapping)
