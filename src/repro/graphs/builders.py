"""Constructors for the communication graphs used throughout the paper
and its benchmarks: complete graphs, rings, lines, wheels, the diamond
of Section 3.2, and random regular-ish graphs for property tests.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from .graph import CommunicationGraph, GraphError, NodeId


def complete_graph(n: int, prefix: str = "n") -> CommunicationGraph:
    """The complete communication graph on ``n`` nodes ``n0 .. n{n-1}``."""
    if n < 1:
        raise GraphError("complete_graph needs n >= 1")
    nodes = [f"{prefix}{i}" for i in range(n)]
    edges = [(nodes[i], nodes[j]) for i in range(n) for j in range(i + 1, n)]
    return CommunicationGraph(nodes, edges)


def triangle() -> CommunicationGraph:
    """The three-node complete graph ``a — b — c`` of Section 3.1."""
    return CommunicationGraph(["a", "b", "c"], [("a", "b"), ("b", "c"), ("c", "a")])


def diamond() -> CommunicationGraph:
    """Section 3.2's four-node graph of connectivity two.

    Nodes ``a, b, c, d`` arranged in a 4-cycle ``a - b - c - d - a``;
    removing ``{b, d}`` disconnects ``a`` from ``c``.
    """
    return CommunicationGraph(
        ["a", "b", "c", "d"],
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "a")],
    )


def ring(n: int, prefix: str = "r") -> CommunicationGraph:
    """A ring (cycle) of ``n >= 3`` nodes."""
    if n < 3:
        raise GraphError("ring needs n >= 3")
    nodes = [f"{prefix}{i}" for i in range(n)]
    edges = [(nodes[i], nodes[(i + 1) % n]) for i in range(n)]
    return CommunicationGraph(nodes, edges)


def line(n: int, prefix: str = "l") -> CommunicationGraph:
    """A simple path of ``n >= 2`` nodes."""
    if n < 2:
        raise GraphError("line needs n >= 2")
    nodes = [f"{prefix}{i}" for i in range(n)]
    edges = [(nodes[i], nodes[i + 1]) for i in range(n - 1)]
    return CommunicationGraph(nodes, edges)


def wheel(n_rim: int, prefix: str = "w") -> CommunicationGraph:
    """A wheel: a hub connected to every node of an ``n_rim``-ring."""
    if n_rim < 3:
        raise GraphError("wheel needs n_rim >= 3")
    hub = f"{prefix}hub"
    rim = [f"{prefix}{i}" for i in range(n_rim)]
    edges = [(rim[i], rim[(i + 1) % n_rim]) for i in range(n_rim)]
    edges.extend((hub, r) for r in rim)
    return CommunicationGraph([hub, *rim], edges)


def star(n_leaves: int, prefix: str = "s") -> CommunicationGraph:
    """A hub connected to ``n_leaves`` leaves (connectivity 1)."""
    if n_leaves < 2:
        raise GraphError("star needs n_leaves >= 2")
    hub = f"{prefix}hub"
    leaves = [f"{prefix}{i}" for i in range(n_leaves)]
    return CommunicationGraph([hub, *leaves], [(hub, leaf) for leaf in leaves])


def complete_bipartite(a: int, b: int, prefix: str = "b") -> CommunicationGraph:
    """The complete bipartite graph ``K_{a,b}`` (connectivity min(a, b))."""
    if a < 1 or b < 1:
        raise GraphError("complete_bipartite needs both sides nonempty")
    left = [f"{prefix}L{i}" for i in range(a)]
    right = [f"{prefix}R{i}" for i in range(b)]
    edges = [(u, v) for u in left for v in right]
    return CommunicationGraph([*left, *right], edges)


def circulant(n: int, offsets: Sequence[int], prefix: str = "c") -> CommunicationGraph:
    """Circulant graph: node ``i`` adjacent to ``i ± o`` for each offset.

    Circulants give fine-grained control over connectivity (a circulant
    with offsets ``1..k`` is ``2k``-connected for ``n > 2k``), which the
    connectivity benchmarks use to sweep around the ``2f+1`` threshold.
    """
    if n < 3:
        raise GraphError("circulant needs n >= 3")
    offs = sorted({o % n for o in offsets} - {0})
    if not offs:
        raise GraphError("circulant needs at least one nonzero offset")
    nodes = [f"{prefix}{i}" for i in range(n)]
    edges = []
    for i in range(n):
        for o in offs:
            j = (i + o) % n
            if i < j or (j < i and (j - i) % n == o):
                edges.append((nodes[i], nodes[j]))
    return CommunicationGraph(nodes, edges)


def butterfly_network(f: int) -> CommunicationGraph:
    """An adequate-but-not-complete graph with ``3f + 1`` nodes.

    Built as a complete graph on ``3f + 1`` nodes minus a matching on
    ``f`` disjoint pairs; connectivity drops to ``3f - 1 >= 2f + 1``
    when ``f >= 2`` (for ``f = 1`` the graph stays complete).  Used by
    benchmarks needing adequate graphs that are not complete.
    """
    if f < 1:
        raise GraphError("butterfly_network needs f >= 1")
    n = 3 * f + 1
    g = complete_graph(n)
    if f == 1:
        return g
    nodes = g.nodes
    dropped = {frozenset((nodes[2 * i], nodes[2 * i + 1])) for i in range(f)}
    edges = [
        (u, v)
        for (u, v) in g.edges
        if frozenset((u, v)) not in dropped and nodes.index(u) < nodes.index(v)
    ]
    return CommunicationGraph(nodes, edges)


def harary_graph(connectivity: int, n: int, prefix: str = "h") -> CommunicationGraph:
    """The Harary graph ``H_{k,n}``: the ``k``-connected graph on ``n``
    nodes with the fewest possible edges (``⌈k·n/2⌉``).

    This is the *cheapest* way to buy adequacy: tolerating ``f``
    Byzantine faults needs connectivity ``2f + 1`` (FLM's bound), and
    ``H_{2f+1, n}`` achieves it with minimum wiring.  Construction
    (Harary 1962): connect every node to its ``⌊k/2⌋`` nearest
    neighbors on each side of a ring; for odd ``k`` add diameters
    (even ``n``) or near-diameters (odd ``n``).
    """
    k, n = connectivity, n
    if k < 1 or n <= k:
        raise GraphError("harary_graph needs 1 <= k < n")
    nodes = [f"{prefix}{i}" for i in range(n)]
    edges: set[frozenset] = set()

    def connect(i: int, j: int) -> None:
        if i % n != j % n:
            edges.add(frozenset((nodes[i % n], nodes[j % n])))

    half = k // 2
    for i in range(n):
        for offset in range(1, half + 1):
            connect(i, i + offset)
    if k % 2 == 1:
        if n % 2 == 0:
            for i in range(n // 2):
                connect(i, i + n // 2)
        else:
            # Odd n: the classic construction joins i to i + (n-1)/2
            # for i in 0..(n-1)/2 inclusive, giving one extra edge.
            for i in range(n // 2 + 1):
                connect(i, i + (n - 1) // 2)
    edge_list = sorted(tuple(sorted(e)) for e in edges)
    return CommunicationGraph(nodes, edge_list)


def cheapest_adequate_graph(
    n: int, max_faults: int, prefix: str = "h"
) -> CommunicationGraph:
    """The minimum-edge graph on ``n`` nodes that is adequate for ``f``
    faults: the Harary graph of connectivity ``2f + 1``.

    Requires ``n >= 3f + 1`` (no wiring fixes a node shortage — that is
    Theorem 1's other half)."""
    if n < 3 * max_faults + 1:
        raise GraphError(
            f"n = {n} < 3f+1 = {3 * max_faults + 1}: no topology on this "
            "few nodes is adequate (Theorem 1)"
        )
    return harary_graph(2 * max_faults + 1, n, prefix)


def random_connected_graph(
    n: int,
    extra_edge_probability: float = 0.3,
    rng: random.Random | None = None,
    prefix: str = "g",
) -> CommunicationGraph:
    """A random connected graph: a random spanning tree plus extra edges.

    Deterministic given ``rng``; used by property-based tests.
    """
    if n < 1:
        raise GraphError("random_connected_graph needs n >= 1")
    rng = rng or random.Random(0)
    nodes = [f"{prefix}{i}" for i in range(n)]
    edges: list[tuple[NodeId, NodeId]] = []
    for i in range(1, n):
        edges.append((nodes[i], nodes[rng.randrange(i)]))
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < extra_edge_probability:
                edges.append((nodes[i], nodes[j]))
    return CommunicationGraph(nodes, edges)
