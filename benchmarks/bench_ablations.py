"""ABLATE — ablations of the design choices the bounds hinge on.

Each ablation removes one ingredient a matching protocol relies on and
shows the failure the theory predicts:

* EIG with only f rounds (instead of f+1) — agreement can break;
* DLPSW trimming f-1 values (instead of f) — validity can break;
* relay over 2f paths (instead of 2f+1) — delivery can be corrupted;
* majority folding replaced by first-path folding — same corruption.

Together with the engines (which show *no* protocol can survive on
inadequate graphs), these pin the constructions from both sides.
"""

from conftest import report

from repro.analysis import format_table
from repro.graphs import complete_graph, vertex_disjoint_paths, wheel
from repro.problems import ByzantineAgreementSpec
from repro.protocols import IteratedTrimmedMeanDevice, eig_devices
from repro.protocols.dolev_relay import RelayNodeDevice
from repro.protocols.eig import EIGDevice
from repro.runtime.sync import (
    RandomLiarDevice,
    ReplayDevice,
    TwoFacedDevice,
    make_system,
    run,
)

SPEC = ByzantineAgreementSpec()


def test_eig_needs_f_plus_1_rounds(benchmark):
    """With only f rounds, a Byzantine node can still split the vote:
    we search replay adversaries for one that breaks 1-round 'EIG'."""
    g = complete_graph(4)
    roster = tuple(g.nodes)

    def attack():
        # f=0 devices decide after ONE round; n3 equivocates with
        # well-formed level-0 payloads ((path, value), ...), telling
        # n0/n1 "1" and n2 "0" — splitting a 2-2 tie at n2 only.
        devices = {u: EIGDevice(u, roster, max_faults=0) for u in g.nodes}
        devices["n3"] = ReplayDevice(
            {
                "n0": [(((), 1),)],
                "n1": [(((), 1),)],
                "n2": [(((), 0),)],
            }
        )
        inputs = {"n0": 1, "n1": 1, "n2": 0, "n3": 0}
        behavior = run(make_system(g, devices, inputs), 1)
        return SPEC.check(
            inputs, behavior.decisions(), ["n0", "n1", "n2"]
        )

    verdict = benchmark(attack)
    full = _full_eig_verdict()
    rows = [
        ("EIG, f+1 = 2 rounds", "OK" if full.ok else full.describe()),
        ("ablated: 1 round", "OK" if verdict.ok else verdict.describe()),
    ]
    report("ABLATE: EIG round count", format_table(("variant", "spec"), rows))
    assert full.ok
    assert not verdict.ok  # the equivocator splits a 1-round protocol


def _full_eig_verdict():
    g = complete_graph(4)
    devices = dict(eig_devices(g, 1))
    honest = eig_devices(g, 1)["n3"]
    devices["n3"] = TwoFacedDevice(honest, honest, ["n0"])
    inputs = {"n0": 1, "n1": 0, "n2": 0, "n3": 0}
    behavior = run(make_system(g, devices, inputs), 2)
    return SPEC.check(inputs, behavior.decisions(), ["n0", "n1", "n2"])


def test_trimming_less_than_f_breaks_validity(benchmark):
    g = complete_graph(4)

    def attacked_spread(trim):
        devices = {
            u: IteratedTrimmedMeanDevice(max_faults=trim, rounds=2)
            for u in g.nodes
        }
        devices["n3"] = RandomLiarDevice(5, value_pool=(1000.0,))
        inputs = {"n0": 0.0, "n1": 0.5, "n2": 1.0, "n3": 0.0}
        behavior = run(make_system(g, devices, inputs), 2)
        return [behavior.decision(u) for u in ("n0", "n1", "n2")]

    proper = benchmark(lambda: attacked_spread(trim=1))
    ablated = attacked_spread(trim=0)
    rows = [
        ("trim f = 1", max(proper), "within [0,1]" if max(proper) <= 1 else "ESCAPED"),
        ("trim 0 (ablated)", max(ablated), "within [0,1]" if max(ablated) <= 1 else "ESCAPED"),
    ]
    report(
        "ABLATE: DLPSW trim parameter (liar injecting 1000.0)",
        format_table(("variant", "max honest estimate", "validity"), rows),
    )
    assert max(proper) <= 1.0
    assert max(ablated) > 1.0  # the injected 1000 leaks into estimates


def test_relay_needs_2f_plus_1_paths(benchmark):
    g = wheel(6)
    source, target = "w0", "w3"
    paths = vertex_disjoint_paths(g, source, target)
    assert len(paths) == 3

    # The faulty node sits on one chosen path and FORGES well-formed
    # relay packets carrying a wrong value toward the target.
    def deliver(path_count):
        chosen = [tuple(p) for p in paths[:path_count]]
        corrupt_path = next(
            (i, p) for i, p in enumerate(chosen) if len(p) > 2
        )
        path_id, path = corrupt_path
        corrupt_node = path[-2]  # last interior hop before the target
        hop = len(path) - 1
        forged = ("relay", path_id, hop, "FORGED")
        devices = {
            u: RelayNodeDevice(u, source, target, chosen) for u in g.nodes
        }
        devices[corrupt_node] = ReplayDevice(
            {target: [(forged,)] * len(path)}
        )
        inputs = {u: ("MSG" if u == source else None) for u in g.nodes}
        rounds = max(len(p) for p in chosen)
        behavior = run(make_system(g, devices, inputs), rounds)
        return behavior.decision(target)

    with_redundancy = benchmark(lambda: deliver(3))
    ablated = deliver(2)
    report(
        "ABLATE: relay path redundancy (forged value on one path)",
        format_table(
            ("variant", "delivered value"),
            [
                ("2f+1 = 3 paths", with_redundancy),
                ("2f = 2 paths (ablated)", ablated),
            ],
        ),
    )
    assert with_redundancy == "MSG"
    assert ablated != "MSG"
