"""The search optimizations must be invisible in results.

Orbit dedup, incremental (prefix-trie) execution, and both combined —
serially and through the parallel scan — must produce campaign
reports byte-identical to the plain path, for breaking and surviving
campaigns alike.  SearchStats and the serial fallback of
ParallelRunner are covered here too.
"""

import json
import logging

from repro.analysis.campaign import (
    CampaignConfig,
    SearchStats,
    degradation_frontier,
    run_campaign,
)
from repro.analysis.parallel import ParallelRunner
from repro.analysis.witness_io import campaign_to_dict
from repro.graphs import complete_graph, ring
from repro.protocols import MajorityVoteDevice, eig_devices
from repro.runtime.incremental import IncrementalContext


def _naive_factory(graph):
    return {u: MajorityVoteDevice() for u in graph.nodes}


def _eig_factory(graph):
    return dict(eig_devices(graph, 1))


def _as_json(result):
    return json.dumps(campaign_to_dict(result), sort_keys=True)


def _config(**overrides):
    defaults = dict(
        graph=complete_graph(4),
        device_factory=_naive_factory,
        rounds=3,
        max_node_faults=0,
        max_link_faults=2,
        attempts=40,
        seed=11,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestOptimizedCampaignEquivalence:
    def _assert_all_equal(self, config, jobs=1):
        plain = _as_json(run_campaign(config, jobs=jobs, memoize=False))
        for kwargs in (
            {"orbit_dedup": True},
            {"incremental": True},
            {"orbit_dedup": True, "incremental": True},
        ):
            optimized = run_campaign(
                config, jobs=jobs, memoize=False, **kwargs
            )
            assert _as_json(optimized) == plain, f"diverged under {kwargs}"

    def test_breaking_campaign_identical(self):
        self._assert_all_equal(_config())

    def test_surviving_campaign_identical(self):
        self._assert_all_equal(
            _config(
                device_factory=_eig_factory, rounds=2, max_link_faults=1,
                attempts=30, seed=5,
            )
        )

    def test_node_fault_campaign_identical(self):
        # Node faults force the name-sensitivity guard: orbit keys fall
        # back to identity and must still agree with the plain path.
        self._assert_all_equal(
            _config(max_node_faults=1, attempts=25, seed=3)
        )

    def test_ring_campaign_identical(self):
        self._assert_all_equal(
            _config(graph=ring(5), rounds=4, attempts=30, seed=9)
        )

    def test_parallel_scan_identical(self):
        self._assert_all_equal(_config(), jobs=2)
        self._assert_all_equal(
            _config(
                device_factory=_eig_factory, rounds=2, max_link_faults=1,
                attempts=30, seed=5,
            ),
            jobs=2,
        )

    def test_shared_incremental_context_across_campaigns(self):
        config = _config()
        plain = _as_json(run_campaign(config, memoize=False))
        shared = IncrementalContext()
        first = _as_json(
            run_campaign(config, memoize=False, incremental=shared)
        )
        second = _as_json(
            run_campaign(config, memoize=False, incremental=shared)
        )
        assert first == plain
        assert second == plain
        stats = shared.stats()
        # The second pass replays the first pass's rounds as lookups.
        assert stats["rounds_replayed"] > 0

    def test_frontier_identical_with_optimizations(self):
        config = _config(attempts=15)
        plain = degradation_frontier(
            config, max_link_faults=2, attempts_per_level=15
        )
        optimized = degradation_frontier(
            config,
            max_link_faults=2,
            attempts_per_level=15,
            orbit_dedup=True,
            incremental=True,
        )
        assert plain == optimized


class TestSearchStats:
    def test_stats_collects_the_machinery(self):
        config = _config(
            device_factory=_eig_factory, rounds=2, max_link_faults=1,
            attempts=30, seed=5,
        )
        stats = SearchStats()
        run_campaign(
            config, orbit_dedup=True, incremental=True, stats=stats
        )
        assert stats.cache is not None
        assert stats.orbit_index is not None
        assert stats.incremental is not None
        text = stats.describe()
        assert "orbit dedup" in text
        assert "incremental execution" in text
        assert stats.orbit_index.stats()["scenarios_seen"] > 0

    def test_stats_empty_without_optimizations(self):
        stats = SearchStats()
        run_campaign(_config(attempts=5), memoize=False, stats=stats)
        assert stats.orbit_index is None
        assert stats.incremental is None
        assert stats.describe() == "no caches in use"

    def test_orbit_dedup_actually_saves_runs(self):
        # Drop-only faults on K4 with uniform-ish inputs collapse hard.
        config = _config(
            device_factory=_eig_factory,
            rounds=2,
            max_link_faults=1,
            attempts=80,
            seed=11,
            link_kinds=("drop",),
        )
        stats = SearchStats()
        result = run_campaign(config, orbit_dedup=True, stats=stats)
        assert not result.broken
        assert stats.orbit_index.stats()["runs_saved"] > 0


class TestParallelRunnerFallback:
    def test_jobs_one_reports_reason(self):
        runner = ParallelRunner(1)
        assert not runner.parallel
        assert "jobs=1" in runner.fallback_reason

    def test_single_core_falls_back(self, monkeypatch, caplog):
        monkeypatch.setattr(
            "repro.analysis.parallel.available_parallelism", lambda: 1
        )
        with caplog.at_level(logging.INFO, logger="repro.analysis.parallel"):
            runner = ParallelRunner(4)
        assert not runner.parallel
        assert "1 CPU core" in runner.fallback_reason
        assert any(
            "falling back to serial" in r.message for r in caplog.records
        )

    def test_multi_core_stays_parallel(self, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.parallel.available_parallelism", lambda: 8
        )
        monkeypatch.setattr(
            "repro.analysis.parallel.fork_available", lambda: True
        )
        runner = ParallelRunner(4)
        assert runner.parallel
        assert runner.fallback_reason is None

    def test_fallback_map_preserves_order(self, monkeypatch):
        monkeypatch.setattr(
            "repro.analysis.parallel.available_parallelism", lambda: 1
        )
        runner = ParallelRunner(8)
        assert runner.map(lambda x: x * 2, [3, 1, 2]) == [6, 2, 4]
