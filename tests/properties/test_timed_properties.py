"""Property-based tests for the timed model: clock algebra round
trips, scaling invariance, and universal refutation of timed devices."""

import math

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core import refute_weak_agreement
from repro.graphs import triangle
from repro.protocols import ExchangeOnceWeakDevice
from repro.runtime.timed import (
    LinearClock,
    PowerClock,
    compose,
    drift_map,
    make_timed_system,
    run_timed,
)
from repro.runtime.timed.device import TimedDevice

rates = st.floats(0.1, 10.0, allow_nan=False, allow_infinity=False)
offsets = st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False)
times = st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False)


class TestClockAlgebraProperties:
    @given(rates, offsets, times)
    @settings(max_examples=60, deadline=None)
    def test_linear_inverse_roundtrip(self, rate, offset, t):
        clock = LinearClock(rate, offset)
        assert clock.inverse()(clock(t)) == (
            __import__("pytest").approx(t, abs=1e-6)
        )

    @given(rates, offsets, rates, offsets, times)
    @settings(max_examples=60, deadline=None)
    def test_compose_matches_nesting(self, r1, o1, r2, o2, t):
        outer, inner = LinearClock(r1, o1), LinearClock(r2, o2)
        composed = compose(outer, inner)
        assert math.isclose(
            composed(t), outer(inner(t)), rel_tol=1e-9, abs_tol=1e-6
        )

    @given(rates, st.integers(-5, 5), times)
    @settings(max_examples=60, deadline=None)
    def test_iterate_adds_exponents(self, rate, k, t):
        h = LinearClock(rate, 0.0)
        expected = (rate ** k) * t
        assume(abs(expected) < 1e12)
        assert math.isclose(
            h.iterate(k)(t), expected, rel_tol=1e-6, abs_tol=1e-6
        )

    @given(rates, rates, times)
    @settings(max_examples=60, deadline=None)
    def test_drift_map_dominates_identity(self, p_rate, gap, t):
        p = LinearClock(p_rate, 0.0)
        q = LinearClock(p_rate * (1.0 + abs(gap) / 10.0 + 1e-6), 0.0)
        h = drift_map(p, q)
        assert h(t) >= t - 1e-9

    @given(st.floats(0.1, 4.0), st.floats(0.2, 3.0), st.floats(0.01, 50.0))
    @settings(max_examples=40, deadline=None)
    def test_power_clock_roundtrip(self, scale, exponent, t):
        clock = PowerClock(scale, exponent)
        assert math.isclose(
            clock.inverse()(clock(t)), t, rel_tol=1e-6, abs_tol=1e-6
        )


class _EchoDevice(TimedDevice):
    """Sends the input at start; decides the first thing it hears."""

    def __init__(self):
        self._decided = False

    def on_start(self, ctx, api):
        for port in ctx.ports:
            api.send(port, ctx.input)

    def on_message(self, ctx, api, port, message):
        if not self._decided:
            self._decided = True
            api.decide((port, message))


class TestScalingProperty:
    @given(st.floats(0.2, 5.0), st.floats(0.1, 2.0))
    @settings(max_examples=25, deadline=None)
    def test_scaled_runs_mirror_unscaled(self, h_rate, delay):
        g = triangle()

        def build():
            return make_timed_system(
                g,
                {u: _EchoDevice for u in g.nodes},
                {u: u for u in g.nodes},
                delay=delay,
                delay_mode="clock",
                clocks={u: LinearClock(1.0, 0.0) for u in g.nodes},
            )

        h = LinearClock(h_rate, 0.0)
        horizon = 4.0 * delay
        base = run_timed(build(), horizon)
        scaled = run_timed(build().scaled(h), h.inverse()(horizon))
        for u in g.nodes:
            base_events = base.node(u).events
            scaled_events = scaled.node(u).events
            assert len(base_events) == len(scaled_events)
            for a, b in zip(base_events, scaled_events):
                assert a.kind == b.kind and a.payload == b.payload
                assert math.isclose(
                    b.time, h.inverse()(a.time), rel_tol=1e-9, abs_tol=1e-9
                )


class TestWeakAgreementUniversality:
    @given(st.floats(1.5, 4.0), st.integers(0, 1))
    @settings(max_examples=8, deadline=None)
    def test_exchange_family_always_refuted(self, decide_at, default):
        witness = refute_weak_agreement(
            {
                u: (
                    lambda d=decide_at, df=default: ExchangeOnceWeakDevice(
                        decide_at=d, default=df
                    )
                )
                for u in triangle().nodes
            },
            delta=1.0,
            decision_deadline=decide_at + 0.5,
            require_violation=False,
        )
        assert witness.found
