"""The impossibility engines — the paper's contribution, executable.

Each ``refute_*`` function takes *concrete candidate devices* claimed
to solve a consensus problem on an inadequate graph and mechanically
performs the paper's covering-graph construction, returning an
:class:`~repro.core.witness.ImpossibilityWitness`: a chain of correct
behaviors of the graph, at least one of which violates the problem's
correctness conditions.
"""

from .approximate import (
    refute_epsilon_delta,
    refute_epsilon_delta_connectivity,
    refute_simple_connectivity,
    refute_simple_node_bound,
    ring_size_for_epsilon_delta,
)
from .byzantine import refute_connectivity, refute_node_bound
from .clock_sync import (
    SynchronizationSetting,
    choose_k,
    refute_clock_sync,
)
from .corollaries import (
    CorollaryOutcome,
    corollary_12_linear_envelope,
    corollary_13_diverging_linear,
    corollary_14_offset_clocks,
    corollary_15_logarithmic,
)
from .covering_argument import (
    ChainLink,
    ChainResult,
    ConstructedBehavior,
    CoveringArgumentError,
    build_base_behavior,
    connectivity_scenarios,
    node_bound_scenarios,
    run_scenario_chain,
    shared_links,
)
from .general import collapse_to_triangle, refute_epsilon_delta_general
from .nondeterminism import SeededOracle, refute_nondeterministic
from .axioms import (
    AxiomViolation,
    check_bounded_delay_locality,
    check_fault_axiom,
    check_locality_axiom,
    check_scaling_axiom,
)
from .firing_squad import fire_time_profile, refute_firing_squad
from .timed_connectivity import (
    refute_clock_sync_connectivity,
    refute_firing_squad_connectivity,
    refute_weak_agreement_connectivity,
)
from .timed_argument import (
    TimedArgumentError,
    TimedConstructedBehavior,
    build_base_behavior_timed,
)
from .weak import agreement_frontier, refute_weak_agreement, ring_parameter
from .witness import (
    CheckedBehavior,
    ImpossibilityWitness,
    NoViolationFound,
)

__all__ = [
    "CorollaryOutcome",
    "SynchronizationSetting",
    "TimedArgumentError",
    "TimedConstructedBehavior",
    "agreement_frontier",
    "build_base_behavior_timed",
    "choose_k",
    "corollary_12_linear_envelope",
    "corollary_13_diverging_linear",
    "corollary_14_offset_clocks",
    "corollary_15_logarithmic",
    "fire_time_profile",
    "AxiomViolation",
    "SeededOracle",
    "check_bounded_delay_locality",
    "check_fault_axiom",
    "check_locality_axiom",
    "check_scaling_axiom",
    "collapse_to_triangle",
    "refute_epsilon_delta_general",
    "refute_clock_sync",
    "refute_nondeterministic",
    "refute_firing_squad",
    "refute_clock_sync_connectivity",
    "refute_epsilon_delta_connectivity",
    "refute_firing_squad_connectivity",
    "refute_weak_agreement_connectivity",
    "refute_weak_agreement",
    "ring_parameter",
    "ChainLink",
    "ChainResult",
    "CheckedBehavior",
    "ConstructedBehavior",
    "CoveringArgumentError",
    "ImpossibilityWitness",
    "NoViolationFound",
    "build_base_behavior",
    "connectivity_scenarios",
    "node_bound_scenarios",
    "refute_connectivity",
    "refute_epsilon_delta",
    "refute_node_bound",
    "refute_simple_connectivity",
    "refute_simple_node_bound",
    "ring_size_for_epsilon_delta",
    "run_scenario_chain",
    "shared_links",
]
