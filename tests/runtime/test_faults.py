"""Link-level fault injection: plan semantics, both injectors, and the
determinism / non-interference contracts the campaign engine relies on.
"""

import math

import pytest

from repro.graphs import GraphError, line, triangle
from repro.protocols import MajorityVoteDevice
from repro.runtime.faults import (
    FaultPlan,
    LinkFault,
    Partition,
    SyncFaultInjector,
    TimedFaultInjector,
    partition_between,
)
from repro.runtime.sync import make_system, run, uniform_system
from repro.runtime.timed import make_timed_system, run_timed
from repro.runtime.timed.device import TimedDevice


def majority_system(inputs=None):
    g = triangle()
    inputs = inputs or {"a": 1, "b": 0, "c": 0}
    return uniform_system(g, MajorityVoteDevice(), inputs)


class TestPlanValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(GraphError):
            LinkFault(("a", "b"), "teleport")

    def test_bad_window_rejected(self):
        with pytest.raises(GraphError):
            LinkFault(("a", "b"), "drop", start=3, end=1)

    def test_bad_omit_shape_rejected(self):
        with pytest.raises(GraphError):
            LinkFault(("a", "b"), "omit", burst=3, period=2)

    def test_atoms_and_without(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault(("a", "b"), "drop"),
                LinkFault(("b", "c"), "delay", delay=1),
            ),
            partitions=(Partition(frozenset({("a", "c")})),),
        )
        assert plan.size == 3
        smaller = plan.without_atoms([0])
        assert smaller.size == 2
        assert smaller.link_faults == (LinkFault(("b", "c"), "delay", delay=1),)
        assert smaller.partitions == plan.partitions
        assert plan.faulty_edges() == {("a", "b"), ("b", "c"), ("a", "c")}

    def test_partition_between_cuts_both_directions(self):
        g = triangle()
        cut = partition_between(g, ["a"])
        assert cut.edges == {("a", "b"), ("b", "a"), ("a", "c"), ("c", "a")}

    def test_roundtrip_through_dict(self):
        g = triangle()
        plan = FaultPlan(
            link_faults=(
                LinkFault(("a", "b"), "corrupt", start=1, end=3),
                LinkFault(("b", "c"), "omit", burst=1, period=3, end=5),
            ),
            partitions=(partition_between(g, ["c"], 0, 2),),
            seed=7,
            corrupt_pool=(0, 1, 2),
        )
        rebuilt = FaultPlan.from_dict(plan.to_dict(), g)
        assert rebuilt == plan

    def test_from_dict_rejects_unknown_node(self):
        plan = FaultPlan(link_faults=(LinkFault(("a", "z"), "drop"),))
        with pytest.raises(GraphError):
            FaultPlan.from_dict(plan.to_dict(), triangle())


class TestSyncInjector:
    def test_fault_free_plan_changes_nothing(self):
        system = majority_system()
        plain = run(system, 2)
        injector = SyncFaultInjector(FaultPlan())
        injected = run(system, 2, injector)
        assert dict(plain.node_behaviors) == dict(injected.node_behaviors)
        assert dict(plain.edge_behaviors) == dict(injected.edge_behaviors)
        assert len(injector.trace) == 0

    def test_drop_loses_the_slot(self):
        system = majority_system()
        plan = FaultPlan(link_faults=(LinkFault(("a", "b"), "drop"),))
        injector = SyncFaultInjector(plan)
        behavior = run(system, 2, injector)
        assert behavior.edge("a", "b").messages[0] is None
        # The other direction is untouched.
        assert behavior.edge("b", "a").messages[0] == 0
        actions = [r.action for r in injector.trace.records]
        assert "drop" in actions

    def test_corrupt_replaces_with_pool_value(self):
        system = majority_system()
        plan = FaultPlan(
            link_faults=(LinkFault(("a", "b"), "corrupt"),),
            corrupt_pool=(0, 1),
        )
        injector = SyncFaultInjector(plan)
        behavior = run(system, 2, injector)
        # a's input is 1; the corrupted value must differ.
        assert behavior.edge("a", "b").messages[0] == 0
        record = injector.trace.records[0]
        assert record.action == "corrupt"
        assert record.original == 1 and record.delivered == 0

    def test_delay_arrives_k_rounds_later(self):
        g = line(2)
        system = make_system(
            g,
            {u: MajorityVoteDevice(rounds=1) for u in g.nodes},
            {"l0": 1, "l1": 0},
        )
        plan = FaultPlan(
            link_faults=(
                LinkFault(("l0", "l1"), "delay", start=0, end=1, delay=2),
            )
        )
        injector = SyncFaultInjector(plan)
        behavior = run(system, 4, injector)
        messages = behavior.edge("l0", "l1").messages
        assert messages[0] is None  # consumed by the delay
        assert messages[2] == 1  # delivered two rounds later
        actions = [r.action for r in injector.trace.records]
        assert actions.count("delay") == 1
        assert actions.count("deliver-delayed") == 1

    def test_delayed_message_preempts_fresh_one(self):
        g = line(2)
        system = make_system(
            g,
            # Two exchange rounds: l0 sends in rounds 0 and 1.
            {u: MajorityVoteDevice(rounds=2) for u in g.nodes},
            {"l0": 1, "l1": 0},
        )
        plan = FaultPlan(
            link_faults=(
                LinkFault(("l0", "l1"), "delay", start=0, end=1, delay=1),
            )
        )
        injector = SyncFaultInjector(plan)
        behavior = run(system, 3, injector)
        # Round 1's fresh send is preempted by round 0's delayed packet.
        assert behavior.edge("l0", "l1").messages[1] == 1
        actions = [r.action for r in injector.trace.records]
        assert "preempt" in actions

    def test_omit_burst_is_periodic(self):
        g = line(2)
        system = make_system(
            g,
            {u: MajorityVoteDevice(rounds=4) for u in g.nodes},
            {"l0": 1, "l1": 0},
        )
        plan = FaultPlan(
            link_faults=(
                LinkFault(("l0", "l1"), "omit", burst=1, period=2),
            )
        )
        behavior = run(system, 4, SyncFaultInjector(plan))
        messages = behavior.edge("l0", "l1").messages
        assert messages == (None, 1, None, 1)

    def test_partition_window_cuts_and_heals(self):
        plan = FaultPlan(
            partitions=(partition_between(triangle(), ["a"], 0, 1),)
        )
        g = triangle()
        inputs = {u: 1 for u in g.nodes}
        flood = make_system(
            g, {u: MajorityVoteDevice(rounds=3) for u in g.nodes}, inputs
        )
        behavior = run(flood, 3, SyncFaultInjector(plan))
        assert behavior.edge("a", "b").messages[0] is None
        assert behavior.edge("a", "b").messages[1] == 1  # healed
        assert behavior.edge("b", "c").messages[0] == 1  # inside edge fine

    def test_probabilistic_fault_is_deterministic(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault(("a", "b"), "drop", probability=0.5, end=64),
            ),
            seed=11,
        )
        system = uniform_system(
            triangle(),
            MajorityVoteDevice(rounds=8),
            {u: 1 for u in triangle().nodes},
        )
        first = SyncFaultInjector(plan)
        second = SyncFaultInjector(plan)
        b1 = run(system, 8, first)
        b2 = run(system, 8, second)
        assert first.trace == second.trace
        assert dict(b1.edge_behaviors) == dict(b2.edge_behaviors)
        # A different seed flips at least some coins over 8 rounds.
        other = SyncFaultInjector(
            FaultPlan(link_faults=plan.link_faults, seed=12)
        )
        run(system, 8, other)
        assert other.trace != first.trace


class _Ping(TimedDevice):
    def on_start(self, ctx, api):
        for port in ctx.ports:
            api.send(port, ("ping", ctx.input))


class TestTimedInjector:
    def _system(self):
        g = triangle()
        return make_timed_system(
            g, {u: _Ping for u in g.nodes}, {u: u for u in g.nodes},
            delay=0.5,
        )

    def test_fault_free_plan_changes_nothing(self):
        system = self._system()
        plain = run_timed(system, 2.0)
        injector = TimedFaultInjector(FaultPlan())
        injected = run_timed(system, 2.0, injector)
        assert dict(plain.node_behaviors) == dict(injected.node_behaviors)
        assert dict(plain.edge_behaviors) == dict(injected.edge_behaviors)
        assert len(injector.trace) == 0

    def test_drop_suppresses_delivery(self):
        plan = FaultPlan(link_faults=(LinkFault(("a", "b"), "drop"),))
        injector = TimedFaultInjector(plan)
        behavior = run_timed(self._system(), 2.0, injector)
        assert behavior.edge("a", "b").sends == ()
        receives = [
            e for e in behavior.node("b").events
            if e.kind == "receive" and e.payload[0] == "a"
        ]
        assert receives == []
        # The sender still believes it sent.
        sends = [e for e in behavior.node("a").events if e.kind == "send"]
        assert len(sends) == 2

    def test_delay_postpones_arrival(self):
        plan = FaultPlan(
            link_faults=(LinkFault(("a", "b"), "delay", delay=0.75),)
        )
        injector = TimedFaultInjector(plan)
        behavior = run_timed(self._system(), 2.0, injector)
        (send,) = behavior.edge("a", "b").sends
        assert send[0] == 0.0 and send[2] == pytest.approx(1.25)

    def test_partition_window_on_send_time(self):
        plan = FaultPlan(
            partitions=(
                partition_between(triangle(), ["a"], 0.0, 0.25),
            )
        )
        injector = TimedFaultInjector(plan)
        behavior = run_timed(self._system(), 2.0, injector)
        # a's time-0 sends fall inside the cut window, both directions
        # out of a; traffic between b and c is unaffected.
        assert behavior.edge("a", "b").sends == ()
        assert behavior.edge("a", "c").sends == ()
        assert len(behavior.edge("b", "c").sends) == 1

    def test_corrupt_rewrites_message(self):
        plan = FaultPlan(
            link_faults=(LinkFault(("a", "b"), "corrupt"),),
            corrupt_pool=("garbage",),
        )
        injector = TimedFaultInjector(plan)
        behavior = run_timed(self._system(), 2.0, injector)
        (send,) = behavior.edge("a", "b").sends
        assert send[1] == "garbage"

    def test_timed_trace_is_deterministic(self):
        plan = FaultPlan(
            link_faults=(
                LinkFault(("a", "b"), "drop", probability=0.5, end=math.inf),
                LinkFault(("b", "c"), "delay", delay=0.5),
            ),
            seed=3,
        )
        i1, i2 = TimedFaultInjector(plan), TimedFaultInjector(plan)
        b1 = run_timed(self._system(), 2.0, i1)
        b2 = run_timed(self._system(), 2.0, i2)
        assert i1.trace == i2.trace
        assert dict(b1.edge_behaviors) == dict(b2.edge_behaviors)
