"""Unit tests for the communication-graph core (paper Section 2)."""

import pytest

from repro.graphs import CommunicationGraph, GraphError, triangle


class TestConstruction:
    def test_edges_come_in_directed_pairs(self):
        g = CommunicationGraph(["a", "b"], [("a", "b")])
        assert ("a", "b") in g.edges
        assert ("b", "a") in g.edges

    def test_duplicate_nodes_rejected(self):
        with pytest.raises(GraphError):
            CommunicationGraph(["a", "a"], [])

    def test_self_loops_rejected(self):
        with pytest.raises(GraphError):
            CommunicationGraph(["a"], [("a", "a")])

    def test_edge_to_unknown_node_rejected(self):
        with pytest.raises(GraphError):
            CommunicationGraph(["a"], [("a", "b")])

    def test_duplicate_undirected_edges_collapse(self):
        g = CommunicationGraph(["a", "b"], [("a", "b"), ("b", "a")])
        assert len(g.edges) == 2

    def test_from_undirected_infers_nodes(self):
        g = CommunicationGraph.from_undirected([("x", "y"), ("y", "z")])
        assert set(g.nodes) == {"x", "y", "z"}

    def test_node_order_preserved(self):
        g = CommunicationGraph(["c", "a", "b"], [])
        assert g.nodes == ("c", "a", "b")


class TestAccessors:
    def test_neighbors_symmetric(self):
        g = triangle()
        for u in g.nodes:
            assert set(g.out_neighbors(u)) == set(g.in_neighbors(u))

    def test_degree(self):
        g = triangle()
        assert all(g.degree(u) == 2 for u in g.nodes)
        assert g.min_degree() == 2

    def test_outedges_inedges(self):
        g = triangle()
        assert ("a", "b") in g.outedges("a")
        assert ("b", "a") in g.inedges("a")

    def test_contains(self):
        g = triangle()
        assert "a" in g
        assert "z" not in g

    def test_unknown_node_raises(self):
        g = triangle()
        with pytest.raises(GraphError):
            g.neighbors("nope")

    def test_is_complete(self):
        assert triangle().is_complete()
        path = CommunicationGraph(["a", "b", "c"], [("a", "b"), ("b", "c")])
        assert not path.is_complete()

    def test_equality_and_hash(self):
        g1 = triangle()
        g2 = CommunicationGraph(
            ["c", "b", "a"], [("a", "b"), ("b", "c"), ("c", "a")]
        )
        assert g1 == g2
        assert hash(g1) == hash(g2)


class TestSubgraphsAndBorders:
    def test_subgraph_keeps_internal_edges(self):
        g = triangle()
        sub = g.subgraph(["a", "b"])
        assert set(sub.nodes) == {"a", "b"}
        assert sub.has_edge("a", "b")

    def test_inedge_border_is_incoming_only(self):
        g = triangle()
        border = g.inedge_border(["a", "b"])
        assert border == {("c", "a"), ("c", "b")}

    def test_outedge_border(self):
        g = triangle()
        border = g.outedge_border(["a"])
        assert border == {("a", "b"), ("a", "c")}

    def test_inedge_border_of_everything_is_empty(self):
        g = triangle()
        assert g.inedge_border(g.nodes) == frozenset()


class TestConnectivityHelpers:
    def test_reachability_with_removal(self):
        g = CommunicationGraph(
            ["a", "b", "c"], [("a", "b"), ("b", "c")]
        )
        assert g.reachable_from("a") == {"a", "b", "c"}
        assert g.reachable_from("a", removed=["b"]) == {"a"}

    def test_is_connected(self):
        connected = triangle()
        assert connected.is_connected()
        disconnected = CommunicationGraph(["a", "b", "c"], [("a", "b")])
        assert not disconnected.is_connected()

    def test_relabel(self):
        g = triangle().relabel({"a": "x"})
        assert "x" in g
        assert g.has_edge("x", "b")

    def test_relabel_requires_injective(self):
        with pytest.raises(GraphError):
            triangle().relabel({"a": "b"})
