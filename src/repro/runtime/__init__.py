"""Operational models satisfying the paper's axioms.

:mod:`repro.runtime.sync`
    Synchronous rounds; satisfies the Locality and Fault axioms.
    Hosts Theorems 1, 5, 6 and the round-based protocols.

:mod:`repro.runtime.timed`
    Continuous time with a minimum message delay and hardware clocks;
    additionally satisfies the Bounded-Delay Locality and Scaling
    axioms.  Hosts Theorems 2, 4, 8.

:mod:`repro.runtime.faults`
    Link-level fault injection shared by both runtimes: declarative
    :class:`~repro.runtime.faults.FaultPlan` schedules (drop, corrupt,
    delay, omission bursts, partitions), deterministic injectors, and
    replayable injection traces.

:mod:`repro.runtime.plan`
    Compiled execution plans: everything the executors used to
    re-resolve per node per round/event, pre-resolved once per system.

:mod:`repro.runtime.memo`
    Bounded, content-addressed behavior memoization (determinism makes
    re-execution a cache lookup), with hit/miss counters.

:mod:`repro.runtime.incremental`
    Prefix-sharing incremental execution: a round-level trie of
    execution deltas, so runs whose fault plans agree on a prefix of
    rounds replay that prefix as a lookup instead of re-executing it.
"""

from .faults import (
    FAULT_KINDS,
    FaultPlan,
    InjectionRecord,
    InjectionTrace,
    LinkFault,
    Partition,
    SyncFaultInjector,
    TimedFaultInjector,
    partition_between,
)
from .incremental import (
    ExecutionTrie,
    IncrementalContext,
    plan_signatures,
)
from .memo import (
    BehaviorCache,
    behavior_cache_of,
    fingerprint,
    graph_fingerprint,
    memoized_run,
    plan_fingerprint,
)
from .plan import (
    SyncPlan,
    TimedPlan,
    compile_sync_plan,
    compile_timed_plan,
)

__all__ = [
    "FAULT_KINDS",
    "BehaviorCache",
    "ExecutionTrie",
    "FaultPlan",
    "IncrementalContext",
    "InjectionRecord",
    "InjectionTrace",
    "LinkFault",
    "Partition",
    "SyncFaultInjector",
    "SyncPlan",
    "TimedFaultInjector",
    "TimedPlan",
    "behavior_cache_of",
    "compile_sync_plan",
    "compile_timed_plan",
    "fingerprint",
    "graph_fingerprint",
    "memoized_run",
    "partition_between",
    "plan_fingerprint",
    "plan_signatures",
]
