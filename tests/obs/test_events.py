"""Event core: the switch, the two-scope log, capture/replay."""

from repro import obs


class TestSwitch:
    def test_off_by_default_and_emit_is_noop(self):
        assert not obs.is_enabled()
        obs.emit(obs.ROUND_START, round=0)  # must not raise or record
        assert obs.get_log() is None

    def test_enable_records_disable_stops_reset_drops(self):
        obs.enable()
        obs.emit(obs.ROUND_START, round=0)
        assert obs.get_log().seq == 1
        obs.disable()
        obs.emit(obs.ROUND_START, round=1)
        assert obs.get_log().seq == 1  # still readable, no longer recording
        obs.reset()
        assert obs.get_log() is None

    def test_enable_starts_fresh(self):
        obs.enable()
        obs.emit(obs.ROUND_START, round=0)
        obs.enable()
        assert obs.get_log().seq == 0


class TestScopeSplit:
    def test_host_events_do_not_consume_run_seq(self):
        obs.enable()
        obs.emit(obs.ROUND_START, round=0)
        obs.emit(obs.CACHE_HIT, cache="behavior")
        obs.emit(obs.ROUND_END, round=0, messages=0, injected=0)
        log = obs.get_log()
        run_events = log.events(scope="run")
        assert [e.seq for e in run_events] == [0, 1]
        assert [e.kind for e in run_events] == [obs.ROUND_START, obs.ROUND_END]
        host_events = log.events(scope="host")
        assert [e.seq for e in host_events] == [0]
        assert host_events[0].scope == "host"

    def test_kind_constants_partition(self):
        assert not (obs.HOST_KINDS & obs.RUN_KINDS)

    def test_ring_buffer_drops_oldest_and_counts(self):
        obs.enable(capacity=3)
        for i in range(5):
            obs.emit(obs.ROUND_START, round=i)
        log = obs.get_log()
        assert log.dropped == 2
        assert [dict(e.fields)["round"] for e in log.events("run")] == [2, 3, 4]
        assert log.kind_counts[obs.ROUND_START] == 5  # totals keep counting


class TestCaptureReplay:
    def test_capture_diverts_and_replay_restamps(self):
        obs.enable()
        obs.emit(obs.ATTEMPT_START, attempt=1)
        with obs.capture() as capsule:
            obs.emit(obs.ROUND_START, round=0)
            obs.emit(obs.CACHE_MISS, cache="behavior")
        assert obs.get_log().seq == 1  # nothing hit the main log
        assert capsule.run_len == 1
        obs.replay(capsule.payload())
        log = obs.get_log()
        assert [e.kind for e in log.events("run")] == [
            obs.ATTEMPT_START,
            obs.ROUND_START,
        ]
        assert [e.seq for e in log.events("run")] == [0, 1]
        assert [e.kind for e in log.events("host")] == [obs.CACHE_MISS]

    def test_run_payload_strips_host_events(self):
        obs.enable()
        with obs.capture() as capsule:
            obs.emit(obs.CACHE_HIT, cache="behavior")
            obs.emit(obs.ROUND_START, round=0)
        kinds = [kind for kind, _ in capsule.run_payload()]
        assert kinds == [obs.ROUND_START]
        assert len(capsule.payload()) == 2

    def test_capture_disabled_yields_empty_capsule(self):
        with obs.capture() as capsule:
            obs.emit(obs.ROUND_START, round=0)
        assert capsule.payload() == ()

    def test_nested_capture(self):
        obs.enable()
        with obs.capture() as outer:
            obs.emit(obs.ROUND_START, round=0)
            with obs.capture() as inner:
                obs.emit(obs.ROUND_END, round=0, messages=0, injected=0)
            obs.replay(inner.payload())
        kinds = [kind for kind, _ in outer.payload()]
        assert kinds == [obs.ROUND_START, obs.ROUND_END]

    def test_fields_canonically_sorted(self):
        obs.enable()
        obs.emit(obs.ROUND_END, round=0, injected=0, messages=3)
        obs.emit(obs.ROUND_END, messages=3, injected=0, round=0)
        a, b = obs.get_log().events("run")
        assert a.fields == b.fields
