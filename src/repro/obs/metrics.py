"""Central metrics registry: counters, gauges, histograms.

One interface absorbs the stats that used to be scattered across
:class:`~repro.runtime.memo.BehaviorCache` (hit/miss),
:class:`~repro.analysis.campaign.SearchStats`, the connectivity
analytics cache, and the incremental execution trie — behind labeled
metric names with a ``run.`` / ``host.`` scope split:

* ``run.*`` metrics are derived exclusively from run-scope events as
  they reach the main event log (:meth:`MetricsRegistry.record_event`),
  so they are byte-identical across ``--jobs`` settings — the parent
  replays worker capsules in item order and the counters fall out of
  the same stream.
* ``host.*`` metrics are process-local facts (cache luck, worker
  pools, wall time) absorbed from the legacy stat objects; they are
  printed in summaries but excluded from exported traces.

The module is dependency-free and imports nothing from the rest of the
repo at module level, so every layer can use it without cycles.
"""

from __future__ import annotations

from typing import Any, Mapping

RUN_SCOPE = "run"
HOST_SCOPE = "host"


def metric_key(name: str, **labels: Any) -> str:
    """Flatten a metric name + labels into one canonical string key:
    ``name{a=1,b=x}`` with labels sorted by name."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Histogram:
    """A minimal aggregate histogram: count / total / min / max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total": self.total,
            "mean": (self.total / self.count) if self.count else 0.0,
            "min": self.min if self.count else 0.0,
            "max": self.max,
        }


class MetricsRegistry:
    """Counters, gauges and histograms under flattened label keys."""

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # -- instruments -------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: Any) -> None:
        key = metric_key(name, **labels)
        self.counters[key] = self.counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: Any) -> None:
        self.gauges[metric_key(name, **labels)] = value

    def observe(self, name: str, value: float, **labels: Any) -> None:
        key = metric_key(name, **labels)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)

    def get_counter(self, name: str, **labels: Any) -> float:
        return self.counters.get(metric_key(name, **labels), 0)

    def get_gauge(self, name: str, **labels: Any) -> float:
        return self.gauges.get(metric_key(name, **labels), 0)

    # -- event derivation --------------------------------------------------

    def record_event(
        self, kind: str, fields: tuple[tuple[str, Any], ...]
    ) -> None:
        """Fold one event (just appended to the main log) into the
        registry.  Every ``run.*`` counter is derived here and nowhere
        else, which is what makes the run-scope metrics a pure function
        of the event stream."""
        from . import events as ev

        scope = HOST_SCOPE if kind in ev.HOST_KINDS else RUN_SCOPE
        self.inc(f"{scope}.events.total")
        self.inc(f"{scope}.events.{kind}")
        if kind == ev.ROUND_END:
            data = dict(fields)
            self.inc("run.rounds.total")
            self.inc("run.messages.delivered", data.get("messages", 0))
            self.inc("run.faults.injected", data.get("injected", 0))
        elif kind == ev.ATTEMPT_END:
            data = dict(fields)
            self.inc("run.attempts.total")
            if data.get("ok"):
                self.inc("run.attempts.ok")
            else:
                self.inc("run.attempts.violations")
        elif kind == ev.ORBIT_REUSE:
            self.inc("run.orbit.reused")
        elif kind == ev.SHRINK_STEP:
            self.inc("run.shrink.deletions")
        elif kind == ev.TIMED_EVENT:
            self.inc("run.timed.events")
        elif kind == ev.SWEEP_POINT:
            self.inc("run.sweep.points")
        elif kind == ev.FRONTIER_LEVEL:
            self.inc("run.frontier.levels")

    # -- snapshots ---------------------------------------------------------

    def _filtered(
        self, table: Mapping[str, Any], scope: str | None
    ) -> dict[str, Any]:
        if scope is None:
            return dict(sorted(table.items()))
        prefix = scope + "."
        return {
            k: v for k, v in sorted(table.items()) if k.startswith(prefix)
        }

    def snapshot(self, scope: str | None = None) -> dict[str, Any]:
        return {
            "counters": self._filtered(self.counters, scope),
            "gauges": self._filtered(self.gauges, scope),
            "histograms": {
                k: h.snapshot()
                for k, h in self._filtered(self.histograms, scope).items()
            },
        }

    def run_counters(self) -> dict[str, float]:
        """The deterministic section, sorted — what trace export
        writes."""
        return self._filtered(self.counters, RUN_SCOPE)


# -- absorbing the legacy stat objects -------------------------------------


def absorb_cache_stats(
    registry: MetricsRegistry, stats: Mapping[str, int], cache: str = "behavior"
) -> None:
    """Fold a :meth:`BehaviorCache.stats`-shaped dict into ``host.cache.*``."""
    registry.set_gauge("host.cache.hits", stats["hits"], cache=cache)
    registry.set_gauge("host.cache.misses", stats["misses"], cache=cache)
    registry.set_gauge("host.cache.size", stats["size"], cache=cache)
    registry.set_gauge("host.cache.maxsize", stats["maxsize"], cache=cache)


def absorb_orbit_stats(
    registry: MetricsRegistry, stats: Mapping[str, int]
) -> None:
    """Fold :meth:`OrbitIndex.stats` into ``host.orbit.*`` gauges."""
    for name, value in stats.items():
        registry.set_gauge(f"host.orbit.{name}", value)


def absorb_incremental_stats(
    registry: MetricsRegistry, stats: Mapping[str, int]
) -> None:
    """Fold :meth:`IncrementalContext.stats` into ``host.trie.*``."""
    for name, value in stats.items():
        registry.set_gauge(f"host.trie.{name}", value)


def absorb_connectivity_stats(registry: MetricsRegistry) -> None:
    """Fold the connectivity analytics cache counters into
    ``host.connectivity.*``."""
    from ..graphs.connectivity import analytics_stats

    for name, value in analytics_stats().items():
        registry.set_gauge(f"host.connectivity.{name}", value)


def absorb_search_stats(registry: MetricsRegistry, stats: Any) -> None:
    """Fold a :class:`~repro.analysis.campaign.SearchStats` (duck-typed:
    ``.cache`` / ``.orbit_index`` / ``.incremental``, each optional)
    into the registry."""
    if getattr(stats, "cache", None) is not None:
        absorb_cache_stats(registry, stats.cache.stats())
    if getattr(stats, "orbit_index", None) is not None:
        absorb_orbit_stats(registry, stats.orbit_index.stats())
    if getattr(stats, "incremental", None) is not None:
        absorb_incremental_stats(registry, stats.incremental.stats())


# -- legacy output shapes ---------------------------------------------------
#
# ``--cache-stats`` predates the registry; its output shape is kept
# stable by rendering the same strings the stat objects' ``describe``
# methods produced, now read back out of the registry.


def describe_cache(
    registry: MetricsRegistry, cache: str = "behavior"
) -> str:
    hits = int(registry.get_gauge("host.cache.hits", cache=cache))
    misses = int(registry.get_gauge("host.cache.misses", cache=cache))
    size = int(registry.get_gauge("host.cache.size", cache=cache))
    maxsize = int(registry.get_gauge("host.cache.maxsize", cache=cache))
    total = hits + misses
    rate = (100.0 * hits / total) if total else 0.0
    return (
        f"cache: {hits} hits / {misses} misses "
        f"({rate:.0f}% hit rate), {size}/{maxsize} entries"
    )


def describe_orbit(registry: MetricsRegistry) -> str:
    g = int(registry.get_gauge("host.orbit.group_order"))
    exact = int(registry.get_gauge("host.orbit.exact_group"))
    seen = int(registry.get_gauge("host.orbit.scenarios_seen"))
    orbits = int(registry.get_gauge("host.orbit.orbits"))
    collapsed = int(registry.get_gauge("host.orbit.orbits_collapsed"))
    saved = int(registry.get_gauge("host.orbit.runs_saved"))
    return (
        f"orbit dedup: |Aut|={g}"
        f"{'' if exact else ' (identity fallback)'}, "
        f"{seen} scenarios -> {orbits} orbits, "
        f"{collapsed} collapsed, "
        f"{saved} runs saved"
    )


def describe_incremental(registry: MetricsRegistry) -> str:
    runs = int(registry.get_gauge("host.trie.runs"))
    contexts = int(registry.get_gauge("host.trie.contexts"))
    replayed = int(registry.get_gauge("host.trie.rounds_replayed"))
    executed = int(registry.get_gauge("host.trie.rounds_executed"))
    snapshots = int(registry.get_gauge("host.trie.snapshots"))
    total = replayed + executed
    ratio = replayed / total if total else 0.0
    return (
        f"incremental execution: {runs} runs over "
        f"{contexts} contexts, "
        f"{replayed}/{total} rounds replayed from "
        f"snapshots ({ratio:.0%}), {snapshots} snapshots held"
    )


def describe_search_stats(registry: MetricsRegistry, stats: Any) -> str:
    """Render the ``--cache-stats`` block from the registry in the
    exact shape :meth:`SearchStats.describe` produced.  ``stats`` is
    consulted only for *which* sections were in use."""
    absorb_search_stats(registry, stats)
    lines = []
    if getattr(stats, "cache", None) is not None:
        lines.append(describe_cache(registry))
    if getattr(stats, "orbit_index", None) is not None:
        lines.append(describe_orbit(registry))
    if getattr(stats, "incremental", None) is not None:
        lines.append(describe_incremental(registry))
    return "\n".join(lines) or "no caches in use"


__all__ = [
    "HOST_SCOPE",
    "Histogram",
    "MetricsRegistry",
    "RUN_SCOPE",
    "absorb_cache_stats",
    "absorb_connectivity_stats",
    "absorb_incremental_stats",
    "absorb_orbit_stats",
    "absorb_search_stats",
    "describe_cache",
    "describe_incremental",
    "describe_orbit",
    "describe_search_stats",
    "metric_key",
]
