"""EIG Byzantine agreement: correct on adequate graphs under every
adversary we can field — the positive half of Theorem 1's story."""

import pytest

from repro.graphs import GraphError, complete_graph
from repro.problems import ByzantineAgreementSpec
from repro.protocols import eig_devices
from repro.runtime.sync import (
    CrashDevice,
    DelayedEchoDevice,
    RandomLiarDevice,
    ReplayDevice,
    SilentDevice,
    TwoFacedDevice,
    make_system,
    run,
)

SPEC = ByzantineAgreementSpec()


def run_eig(n, f, inputs, faulty=()):
    g = complete_graph(n)
    devices = dict(eig_devices(g, f))
    for node, bad in dict(faulty).items():
        devices[node] = bad
    input_map = {u: inputs[i] for i, u in enumerate(g.nodes)}
    system = make_system(g, devices, input_map)
    behavior = run(system, f + 1)
    correct = [u for u in g.nodes if u not in dict(faulty)]
    return SPEC.check(input_map, behavior.decisions(), correct), behavior


class TestFaultFree:
    @pytest.mark.parametrize("inputs", [(0, 0, 0, 0), (1, 1, 1, 1), (1, 0, 1, 0)])
    def test_four_nodes_no_faults(self, inputs):
        verdict, _ = run_eig(4, 1, inputs)
        assert verdict.ok

    def test_unanimous_input_is_decided(self):
        _, behavior = run_eig(4, 1, (1, 1, 1, 1))
        assert all(v == 1 for v in behavior.decisions().values())

    def test_decides_exactly_after_f_plus_1_rounds(self):
        _, behavior = run_eig(4, 1, (1, 0, 1, 0))
        assert all(
            behavior.node(u).decided_at == 2 for u in behavior.graph.nodes
        )


class TestOneByzantineFault:
    @pytest.mark.parametrize(
        "bad_factory",
        [
            lambda: SilentDevice(),
            lambda: RandomLiarDevice(seed=7),
            lambda: DelayedEchoDevice(),
            lambda: ReplayDevice({"n0": [1, 0], "n1": [0, 1], "n2": [1, 1]}),
        ],
        ids=["silent", "liar", "echo", "replay"],
    )
    @pytest.mark.parametrize("inputs", [(1, 1, 1, 0), (0, 0, 0, 1)])
    def test_k4_tolerates_one_fault(self, bad_factory, inputs):
        verdict, _ = run_eig(4, 1, inputs, faulty={"n3": bad_factory()})
        assert verdict.ok, verdict.describe()

    def test_two_faced_general(self):
        g = complete_graph(4)
        honest = eig_devices(g, 1)
        two_faced = TwoFacedDevice(
            face_one=honest["n3"], face_two=honest["n3"], ports_for_one=["n0"]
        )
        verdict, _ = run_eig(4, 1, (1, 1, 1, 0), faulty={"n3": two_faced})
        assert verdict.ok


class TestTwoByzantineFaults:
    @pytest.mark.parametrize("seed", range(5))
    def test_k7_tolerates_two_liars(self, seed):
        inputs = tuple((seed >> i) & 1 for i in range(7))
        verdict, _ = run_eig(
            7,
            2,
            inputs,
            faulty={
                "n5": RandomLiarDevice(seed=seed),
                "n6": RandomLiarDevice(seed=seed + 100),
            },
        )
        assert verdict.ok, verdict.describe()

    def test_k7_crash_and_liar(self):
        from repro.graphs import complete_graph as cg
        from repro.protocols import eig_devices as eig

        honest = eig(cg(7), 2)
        verdict, _ = run_eig(
            7,
            2,
            (1, 1, 1, 1, 1, 0, 0),
            faulty={
                "n5": CrashDevice(honest["n5"], crash_round=1),
                "n6": RandomLiarDevice(seed=3),
            },
        )
        assert verdict.ok


class TestGuards:
    def test_rejects_inadequate_node_count(self):
        with pytest.raises(GraphError):
            eig_devices(complete_graph(3), 1)

    def test_rejects_incomplete_graph(self):
        from repro.graphs import ring

        with pytest.raises(GraphError):
            eig_devices(ring(5), 1)
