"""Faulty devices for the continuous-time model.

:class:`TimedReplayDevice` is the timed form of the Fault axiom: it
plays back, on each port, messages at prescribed *real* times —
regardless of anything it hears.  The executor schedules its script
directly, so a replay node reproduces recorded edge behaviors exactly
(including recordings taken in a different system, possibly
time-scaled — which is how the clock-synchronization engine realizes
Lemma 9's scaled scenarios).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from .device import Message, PortLabel, TimedDevice


class TimedReplayDevice(TimedDevice):
    """Plays a fixed send script; deaf to all inputs.

    ``script`` is a sequence of ``(send_time, port, message,
    arrival_time)`` quadruples.  Arrival times are part of the recorded
    edge behavior — the edge behavior is the state of the transmitting
    end of the link, so a faithful masquerade must reproduce *when the
    receiver hears each message*, not re-derive it from the faulty
    node's own (possibly very different) clock.
    """

    def __init__(
        self, script: Iterable[tuple[float, PortLabel, Message, float]]
    ) -> None:
        entries = []
        for entry in script:
            send_time, port, message, arrival = entry
            if arrival < send_time:
                raise ValueError("arrival cannot precede the send")
            entries.append((send_time, port, message, arrival))
        self.script: tuple[tuple[float, PortLabel, Message, float], ...] = (
            tuple(sorted(entries, key=lambda s: (s[0], repr(s[1]))))
        )

    @classmethod
    def from_edge_sends(
        cls,
        per_port: dict[PortLabel, Sequence[tuple[float, Any, float]]],
        time_map=None,
    ) -> "TimedReplayDevice":
        """Build a replay from recorded edge behaviors
        (``(send_time, message, arrival)`` triples per port), optionally
        re-timing sends and arrivals with ``time_map`` (scaling)."""
        mapping = time_map or (lambda t: t)
        script = []
        for port, sends in per_port.items():
            for send_time, message, arrival in sends:
                script.append(
                    (mapping(send_time), port, message, mapping(arrival))
                )
        return cls(script)


class TimedSilentDevice(TimedDevice):
    """Never sends, never decides, never fires."""


class TimedCrashDevice(TimedDevice):
    """Runs an inner device until ``crash_time``, then goes silent.

    Implemented by filtering the API: sends after the crash are
    swallowed.
    """

    def __init__(self, inner: TimedDevice, crash_time: float) -> None:
        self._inner = inner
        self._crash_time = crash_time

    def _gate(self, api):
        outer = self

        class _Gated:
            def __getattr__(self, name):
                return getattr(api, name)

            def send(self, port, message):
                if api.now < outer._crash_time:
                    api.send(port, message)

        return _Gated()

    def on_start(self, ctx, api):
        self._inner.on_start(ctx, self._gate(api))

    def on_message(self, ctx, api, port, message):
        if api.now >= self._crash_time:
            return
        self._inner.on_message(ctx, self._gate(api), port, message)

    def on_timer(self, ctx, api, name):
        if api.now >= self._crash_time:
            return
        self._inner.on_timer(ctx, self._gate(api), name)
