"""Property-based tests for protocols and the collapse construction."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import complete_graph, random_connected_graph
from repro.problems import ByzantineAgreementSpec
from repro.protocols import (
    MajorityVoteDevice,
    eig_devices,
    fault_tolerant_midpoint,
    trimmed_mean,
)
from repro.protocols.reliable_broadcast import reliable_broadcast_devices
from repro.runtime.sync import ReplayDevice, make_system, run
from repro.runtime.sync.collapse import collapse_system, verify_collapse

SPEC = ByzantineAgreementSpec()


class TestTrimmedAggregates:
    @given(
        st.lists(st.floats(-100, 100), min_size=4, max_size=12),
        st.integers(1, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_trimmed_mean_within_untrimmed_range(self, values, trim):
        if len(values) <= 2 * trim:
            return
        result = trimmed_mean(values, trim)
        assert min(values) - 1e-9 <= result <= max(values) + 1e-9

    @given(
        st.lists(st.floats(-100, 100), min_size=4, max_size=12),
        st.integers(1, 2),
    )
    @settings(max_examples=60, deadline=None)
    def test_midpoint_within_trimmed_range(self, values, trim):
        if len(values) <= 2 * trim:
            return
        kept = sorted(values)[trim : len(values) - trim]
        result = fault_tolerant_midpoint(values, trim)
        assert kept[0] - 1e-9 <= result <= kept[-1] + 1e-9

    @given(st.lists(st.floats(0, 1), min_size=5, max_size=9))
    @settings(max_examples=40, deadline=None)
    def test_trim_bounds_outlier_influence(self, honest):
        """One arbitrary outlier cannot push the f=1 trimmed mean
        outside the honest range."""
        for outlier in (-1e9, 1e9):
            pool = honest + [outlier]
            result = trimmed_mean(pool, 1)
            assert min(honest) - 1e-9 <= result <= max(honest) + 1e-9


class TestCollapseProjection:
    @given(st.integers(0, 2**16), st.integers(6, 9))
    @settings(max_examples=20, deadline=None)
    def test_projection_exact_on_random_graphs(self, seed, n):
        rng = random.Random(seed)
        g = random_connected_graph(n, 0.5, rng)
        devices = {u: MajorityVoteDevice() for u in g.nodes}
        inputs = {u: rng.randint(0, 1) for u in g.nodes}
        system = make_system(g, devices, inputs)
        nodes = list(g.nodes)
        rng.shuffle(nodes)
        third = max(1, n // 3)
        partition = [
            nodes[:third],
            nodes[third : 2 * third],
            nodes[2 * third :],
        ]
        quotient, _ = collapse_system(system, partition)
        original = run(system, 2)
        collapsed = run(quotient, 2)
        order = {
            f"group{i}": list(part) for i, part in enumerate(partition)
        }
        assert verify_collapse(original, collapsed, order)


class TestBroadcastConsistency:
    @given(
        st.tuples(
            st.sampled_from(["X", "Y", None]),
            st.sampled_from(["X", "Y", None]),
            st.sampled_from(["X", "Y", None]),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_equivocating_sender_never_splits(self, faces):
        """Whatever the faulty sender SENDs to each peer, correct nodes
        never accept two different values, and totality holds."""
        g = complete_graph(4)
        devices, rounds = reliable_broadcast_devices(g, "n0", 1)
        devices = dict(devices)
        scripts = {}
        for peer, face in zip(("n1", "n2", "n3"), faces):
            if face is not None:
                scripts[peer] = [("SEND", face)]
        devices["n0"] = ReplayDevice(scripts)
        inputs = {u: None for u in g.nodes}
        behavior = run(make_system(g, devices, inputs), rounds)
        accepted = [behavior.decision(u) for u in ("n1", "n2", "n3")]
        non_null = {v for v in accepted if v is not None}
        assert len(non_null) <= 1
        if non_null:
            assert all(v is not None for v in accepted)


class TestEIGValidityProperty:
    @given(
        st.integers(0, 2**10),
        st.tuples(*(st.integers(0, 1) for _ in range(6))),
    )
    @settings(max_examples=25, deadline=None)
    def test_k7_two_replay_adversaries(self, seed, inputs):
        rng = random.Random(seed)
        g = complete_graph(7)
        devices = dict(eig_devices(g, 2))
        for node in ("n5", "n6"):
            devices[node] = ReplayDevice(
                {
                    f"n{i}": [rng.randint(0, 1) for _ in range(3)]
                    for i in range(7)
                    if f"n{i}" != node
                }
            )
        input_map = {f"n{i}": inputs[i] for i in range(6)}
        input_map["n6"] = 0
        behavior = run(make_system(g, devices, input_map), 3)
        correct = [f"n{i}" for i in range(5)]
        verdict = SPEC.check(input_map, behavior.decisions(), correct)
        assert verdict.ok, verdict.describe()
