"""Reliable (Bracha-style) broadcast, round-synchronous form.

Another face of the ``3f + 1`` bound: a designated sender broadcasts a
value; despite ``f`` Byzantine nodes (possibly including the sender),

* consistency — no two correct nodes accept different values;
* totality — if any correct node accepts, every correct node accepts;
* validity — a correct sender's value is accepted by all correct nodes.

The echo/ready quorums (``⌈(n+f+1)/2⌉`` echoes, ``f + 1`` readies to
amplify, ``2f + 1`` readies to accept) work exactly when ``n >= 3f+1``
— the same threshold Theorem 1's engine proves necessary, via a
different algorithmic lens than EIG's.

Rounds: 0 = sender's SEND; 1 = ECHO; 2..R = READY gossip until
acceptance stabilizes (``f + 3`` rounds suffice in this synchronous
setting).
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Any

from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice


class ReliableBroadcastDevice(SyncDevice):
    """One node's role in a single-sender reliable broadcast."""

    def __init__(
        self, my_id: NodeId, sender: NodeId, n_nodes: int, max_faults: int
    ) -> None:
        if n_nodes < 3 * max_faults + 1:
            raise GraphError("reliable broadcast requires n >= 3f+1")
        self.my_id = my_id
        self.sender = sender
        self.n = n_nodes
        self.f = max_faults
        self.echo_quorum = (self.n + self.f) // 2 + 1
        self.ready_amplify = self.f + 1
        self.ready_accept = 2 * self.f + 1
        self.rounds = max_faults + 3

    # State: (echoes, readies, sent_echo, sent_ready, accepted)
    # echoes / readies: tuples of (peer, value) pairs observed.

    def init_state(self, ctx: NodeContext) -> State:
        return ((), (), None, None, None)

    def _count(self, observations, value) -> int:
        return sum(1 for _, v in observations if v == value)

    def _values(self, observations):
        return {v for _, v in observations}

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        echoes, readies, sent_echo, sent_ready, _accepted = state
        out: dict[PortLabel, Message] = {}
        if round_index == 0 and self.my_id == self.sender:
            for port in ctx.ports:
                out[port] = ("SEND", ctx.input)
        elif round_index >= 1 and sent_echo is not None and round_index == 1:
            for port in ctx.ports:
                out[port] = ("ECHO", sent_echo)
        elif round_index >= 2 and sent_ready is not None:
            for port in ctx.ports:
                out[port] = ("READY", sent_ready)
        return out

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        echoes, readies, sent_echo, sent_ready, accepted = state
        echoes = list(echoes)
        readies = list(readies)
        for peer, message in sorted(
            inbox.items(), key=lambda kv: str(kv[0])
        ):
            if not (isinstance(message, tuple) and len(message) == 2):
                continue
            kind, value = message
            if kind == "SEND" and peer == self.sender and round_index == 0:
                if sent_echo is None:
                    sent_echo = value
            elif kind == "ECHO":
                if all(p != peer for p, _ in echoes):
                    echoes.append((peer, value))
            elif kind == "READY":
                if all(p != peer for p, _ in readies):
                    readies.append((peer, value))
        # The sender echoes its own input implicitly.
        if self.my_id == self.sender and round_index == 0:
            sent_echo = ctx.input

        if sent_ready is None:
            for value in sorted(
                self._values(echoes) | self._values(readies), key=repr
            ):
                own_echo = 1 if sent_echo == value else 0
                if self._count(echoes, value) + own_echo >= self.echo_quorum:
                    sent_ready = value
                    break
                if self._count(readies, value) >= self.ready_amplify:
                    sent_ready = value
                    break
        if accepted is None and sent_ready is not None:
            own_ready = 1
            for value in sorted(self._values(readies) | {sent_ready}, key=repr):
                own = own_ready if sent_ready == value else 0
                if self._count(readies, value) + own >= self.ready_accept:
                    accepted = value
                    break
        return (tuple(echoes), tuple(readies), sent_echo, sent_ready, accepted)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[4]


def reliable_broadcast_devices(
    graph: CommunicationGraph, sender: NodeId, max_faults: int
) -> tuple[dict[NodeId, ReliableBroadcastDevice], int]:
    """Devices plus the round count for one broadcast instance."""
    if not graph.is_complete():
        raise GraphError("this implementation assumes a complete graph")
    if sender not in graph:
        raise GraphError(f"sender {sender!r} not in graph")
    devices = {
        u: ReliableBroadcastDevice(u, sender, len(graph), max_faults)
        for u in graph.nodes
    }
    return devices, max_faults + 3
