"""Prefix-sharing incremental execution for the synchronous runtime.

The campaign shrinker's candidates differ from their parent by one
deleted fault atom; most sampled plans in a campaign touch only a few
rounds.  Executing each such variant from round 0 repeats work: two
runs of the *same compiled system* whose fault plans act identically on
rounds ``0..k-1`` evolve identically through round ``k-1`` (devices are
pure, the injector is deterministic, and delayed messages in flight are
part of the injector's state).  This module caches execution prefixes
in a round-level **trie**:

* Each fault plan is summarized round by round into a *signature* — a
  canonical description of the transformation the injector applies in
  that round (which edges a partition cuts, which faults fire on which
  edge in plan order, with their parameters).  Equal signatures ⇒ the
  injector treats that round identically, whatever the messages are.
* An :class:`ExecutionTrie` stores, per signature path, the round's
  execution *delta*: each node's new state, each edge's delivered
  message, the injector's trace records and in-flight delayed
  messages.  The state at any round boundary is the concatenation of
  the deltas along the path — so snapshots cost O(nodes + edges) per
  round, not a full copy of the growing histories.
* A new run walks the trie as deep as its signatures match, rebuilds
  that prefix state from the deltas in one pass, and executes only the
  remaining rounds — recording fresh deltas as it goes.

The replayed rounds are *lookups*, not re-executions, yet the final
:class:`~repro.runtime.sync.behavior.SyncBehavior` and
:class:`~repro.runtime.faults.InjectionTrace` are byte-identical to a
from-scratch run: deltas are only ever produced by actually running
the executor's round loop (the code below mirrors
:func:`~repro.runtime.sync.executor.execute_plan` statement for
statement), and the golden tests diff both paths against the
interpretive :func:`repro.testing.reference_sync_run` oracle.

:class:`IncrementalContext` keys tries by execution context (compiled
system content: config, inputs, node faults) with a bounded LRU, so
the campaign engine reuses one trie across a whole shrink ladder while
memory stays bounded.
"""

from __future__ import annotations

from collections import OrderedDict
from time import perf_counter
from typing import Any

from .. import obs
from ..graphs.graph import DirectedEdge
from .faults import FaultPlan, InjectionTrace, SyncFaultInjector, _PlanIndex
from .plan import SyncPlan
from .sync.behavior import EdgeBehavior, NodeBehavior, SyncBehavior
from .sync.executor import ExecutionError, _NodeRun


def plan_signatures(plan: FaultPlan, rounds: int) -> tuple[tuple, ...]:
    """Per-round canonical signatures of a fault plan's actions.

    The signature for round ``r`` captures exactly what
    :class:`~repro.runtime.faults.SyncFaultInjector` consults that
    round: the set of partition-cut edges, and per edge the ordered
    sequence of faults that *fire* (active window, and a won coin for
    probabilistic faults — the coin is deterministic, so it is resolved
    here rather than encoded).  Fault parameters that shape the effect
    ride along: a delay carries its round offset; a corruption carries
    the plan seed and pool, which key its replacement draw.  Two plans
    with equal signatures on rounds ``0..k-1`` drive the executor and
    injector through identical prefixes.

    Same-edge fault order is preserved (the injector applies it in plan
    order); cross-edge order is sorted away, as the injector never
    observes it.
    """
    index = _PlanIndex(plan)
    pool_token = repr(tuple(plan.corrupt_pool))
    signatures: list[tuple] = []
    for r in range(rounds):
        cut = sorted(
            {
                repr(edge)
                for p in plan.partitions
                if p.start <= r < p.end
                for edge in p.edges
            }
        )
        per_edge: list[tuple] = []
        for edge, faults in index.faults_by_edge.items():
            tokens: list[tuple] = []
            for fault in faults:
                if not fault.active_at(r):
                    continue
                if not index.coin(fault, edge, r):
                    continue
                if fault.kind in ("drop", "omit"):
                    # Both manifest as a dropped slot; identical effect,
                    # identical trace record.
                    tokens.append(("drop",))
                elif fault.kind == "delay":
                    tokens.append(("delay", int(fault.delay)))
                else:  # corrupt: replacement rng is keyed by seed+edge+t
                    tokens.append(("corrupt", plan.seed, pool_token))
            if tokens:
                per_edge.append((repr(edge), tuple(tokens)))
        per_edge.sort()
        signatures.append((tuple(cut), tuple(per_edge)))
    return tuple(signatures)


class _TrieNode:
    """One round boundary: the delta this round contributed, plus the
    children keyed by the next round's signature.

    ``states`` holds each node's state *appended* this round (the init
    states at the root), ``messages`` each edge's single delivered
    message, ``trace`` the injection records emitted, ``decisions`` the
    full (small) per-node ``(decision, decided_at)`` vector, and
    ``pending`` the injector's full in-flight delayed-message map at
    the boundary (tiny: only live delays appear in it).
    """

    __slots__ = ("states", "decisions", "messages", "pending", "trace",
                 "children")

    def __init__(
        self,
        states: tuple[Any, ...],
        decisions: tuple[tuple[Any, int | None], ...],
        messages: tuple[Any, ...],
        pending: tuple,
        trace: tuple,
    ) -> None:
        self.states = states
        self.decisions = decisions
        self.messages = messages
        self.pending = pending
        self.trace = trace
        self.children: dict[tuple, _TrieNode] = {}


def _freeze_pending(injector: SyncFaultInjector) -> tuple:
    return tuple(
        (edge, tuple((due, tuple(msgs)) for due, msgs in dues.items() if msgs))
        for edge, dues in injector._pending.items()
        if any(msgs for msgs in dues.values())
    )


class ExecutionTrie:
    """Round-level delta trie over one compiled synchronous plan.

    All runs through a trie share the compiled plan (device objects,
    contexts, routing tables) — sound because synchronous devices are
    pure by contract and the plan layer carries no per-run state — and
    any two runs share the deepest common signature prefix of their
    fault plans.
    """

    def __init__(self, plan: SyncPlan) -> None:
        self.plan = plan
        self.root: _TrieNode | None = None
        self.runs = 0
        self.rounds_replayed = 0
        self.rounds_executed = 0
        self.nodes_stored = 0

    def prepare(self, fault_plan: FaultPlan, rounds: int) -> "TrieRun":
        """Stage a run: resolve signatures and walk the shared prefix.
        No device code runs until :meth:`TrieRun.execute` (so a
        crashing device crashes there, exactly as in the plain
        executor)."""
        if rounds < 0:
            raise ExecutionError("rounds must be non-negative")
        return TrieRun(self, fault_plan, rounds)

    def execute(
        self, fault_plan: FaultPlan, rounds: int
    ) -> tuple[SyncBehavior, InjectionTrace]:
        """One-call convenience: prepare + execute."""
        run = self.prepare(fault_plan, rounds)
        behavior = run.execute()
        return behavior, run.trace

    def stats(self) -> dict[str, int]:
        return {
            "runs": self.runs,
            "rounds_replayed": self.rounds_replayed,
            "rounds_executed": self.rounds_executed,
            "snapshots": self.nodes_stored,
        }


class TrieRun:
    """One staged execution against a trie (single-use).

    ``trace`` is live — after a device exception it holds the partial
    trace, mirroring how callers of the plain executor read
    ``injector.trace`` after a crash.
    """

    def __init__(
        self, trie: ExecutionTrie, fault_plan: FaultPlan, rounds: int
    ) -> None:
        self.trie = trie
        self.rounds = rounds
        self.signatures = plan_signatures(fault_plan, rounds)
        self.injector = SyncFaultInjector(fault_plan)
        self._path: list[_TrieNode] = []
        if trie.root is not None:
            node = trie.root
            self._path.append(node)
            depth = 0
            while depth < rounds and self.signatures[depth] in node.children:
                node = node.children[self.signatures[depth]]
                self._path.append(node)
                depth += 1

    @property
    def trace(self) -> InjectionTrace:
        return self.injector.trace

    def _restore(self) -> tuple[list[_NodeRun], dict[DirectedEdge, list[Any]]]:
        """Rebuild the execution state at the end of the walked prefix
        by concatenating the path's deltas (one pass, front to back)."""
        plan = self.trie.plan
        tip = self._path[-1]
        runs = [
            _NodeRun(states=[node.states[i] for node in self._path],
                     decision=dec, decided_at=at)
            for i, (dec, at) in enumerate(tip.decisions)
        ]
        edge_messages: dict[DirectedEdge, list[Any]] = {
            edge: [node.messages[j] for node in self._path[1:]]
            for j, edge in enumerate(plan.edges)
        }
        records: list = []
        for node in self._path:
            records.extend(node.trace)
        self.injector.trace = InjectionTrace(records=records)
        self.injector._pending = {
            edge: {due: list(msgs) for due, msgs in dues}
            for edge, dues in tip.pending
        }
        return runs, edge_messages

    def execute(self) -> SyncBehavior:
        """Run the staged execution; replays the shared prefix from the
        trie's deltas and executes only the remaining rounds."""
        trie = self.trie
        plan = trie.plan
        compiled = plan.nodes
        injector = self.injector

        if trie.root is None:
            # First run ever: perform the init phase and root it.
            runs = []
            for cn in compiled:
                state = cn.device.init_state(cn.ctx)
                node_run = _NodeRun(states=[state])
                runs.append(node_run)
                node_run.observe_choice(cn.device, cn.ctx, 0, cn.node)
            edge_messages = {edge: [] for edge in plan.edges}
            trie.root = _TrieNode(
                states=tuple(r.states[0] for r in runs),
                decisions=tuple((r.decision, r.decided_at) for r in runs),
                messages=(),
                pending=(),
                trace=(),
            )
            trie.nodes_stored += 1
            self._path = [trie.root]
        else:
            runs, edge_messages = self._restore()

        node = self._path[-1]
        depth = len(self._path) - 1
        trie.runs += 1
        trie.rounds_replayed += depth

        obs_on = obs.is_enabled()
        if obs_on and depth:
            # Replayed rounds are lookups, not executions — but the
            # run-scope event stream must not know that.  Synthesize,
            # from the stored deltas, exactly the events execute_plan
            # would have emitted for the prefix; the replay fact itself
            # is a host-scope event.
            obs.emit(obs.TRIE_REPLAY, rounds=depth)
            for replay_index in range(depth):
                _emit_round_events(
                    replay_index,
                    dict(zip(plan.edges, self._path[replay_index + 1].messages)),
                    self._path[replay_index + 1].trace,
                )

        # From here down this is execute_plan's round loop verbatim,
        # plus a per-round delta recorded into the trie.
        for round_index in range(depth, self.rounds):
            if obs_on:
                round_t0 = perf_counter()
                obs.emit(obs.ROUND_START, round=round_index)
            trace_mark = len(injector.trace.records)
            outboxes: dict[DirectedEdge, Any] = {}
            for cn, node_run in zip(compiled, runs):
                out = cn.device.send(cn.ctx, node_run.states[-1], round_index)
                valid_ports = cn.valid_ports
                for label in out:
                    if label not in valid_ports:
                        raise ExecutionError(
                            f"device at {cn.node!r} sent on unknown port "
                            f"{label!r}"
                        )
                for edge, label in cn.out_routes:
                    message = out.get(label)
                    message = injector.deliver(edge, round_index, message)
                    outboxes[edge] = message
                    edge_messages[edge].append(message)

            if obs_on:
                _emit_phase_events(
                    round_index, outboxes, injector.trace.records[trace_mark:]
                )

            for cn, node_run in zip(compiled, runs):
                inbox = {
                    label: outboxes[edge] for label, edge in cn.in_routes
                }
                state = cn.device.transition(
                    cn.ctx, node_run.states[-1], round_index, inbox
                )
                node_run.states.append(state)
                node_run.observe_choice(
                    cn.device, cn.ctx, round_index + 1, cn.node
                )

            if obs_on:
                obs.emit(
                    obs.ROUND_END,
                    round=round_index,
                    messages=len(outboxes),
                    injected=len(injector.trace.records) - trace_mark,
                )
                obs.observe_span("executor.round", perf_counter() - round_t0)

            trie.rounds_executed += 1
            child = _TrieNode(
                states=tuple(r.states[-1] for r in runs),
                decisions=tuple((r.decision, r.decided_at) for r in runs),
                messages=tuple(edge_messages[e][-1] for e in plan.edges),
                pending=_freeze_pending(injector),
                trace=tuple(injector.trace.records[trace_mark:]),
            )
            node.children[self.signatures[round_index]] = child
            trie.nodes_stored += 1
            node = child

        node_behaviors = {
            cn.node: NodeBehavior(
                states=tuple(r.states),
                decision=r.decision,
                decided_at=r.decided_at,
            )
            for cn, r in zip(compiled, runs)
        }
        edge_behaviors = {
            edge: EdgeBehavior(tuple(msgs))
            for edge, msgs in edge_messages.items()
        }
        return SyncBehavior(
            graph=plan.graph,
            rounds=self.rounds,
            node_behaviors=node_behaviors,
            edge_behaviors=edge_behaviors,
        )


def _emit_phase_events(
    round_index: int, by_edge: dict[DirectedEdge, Any], records
) -> None:
    """Emit one round's delivery + injection events in the same
    canonical (sorted) order :func:`execute_plan` uses — replayed and
    executed rounds must be indistinguishable in the trace."""
    for edge in sorted(by_edge, key=repr):
        obs.emit(
            obs.MESSAGE_DELIVERY,
            round=round_index,
            src=str(edge[0]),
            dst=str(edge[1]),
            empty=by_edge[edge] is None,
        )
    for rec in sorted(records, key=lambda r: (repr(r.edge), r.action, r.time)):
        obs.emit(
            obs.FAULT_INJECTION,
            round=round_index,
            src=str(rec.edge[0]),
            dst=str(rec.edge[1]),
            action=rec.action,
            time=rec.time,
        )


def _emit_round_events(
    round_index: int, by_edge: dict[DirectedEdge, Any], records
) -> None:
    """Synthesize a full replayed round's event stream from its stored
    trie delta."""
    obs.emit(obs.ROUND_START, round=round_index)
    _emit_phase_events(round_index, by_edge, records)
    obs.emit(
        obs.ROUND_END,
        round=round_index,
        messages=len(by_edge),
        injected=len(records),
    )


class IncrementalContext:
    """Bounded LRU of :class:`ExecutionTrie` objects, keyed by execution
    context (a content fingerprint of config + inputs + node faults).

    The campaign engine asks for the trie of each attempt's context;
    the shrink ladder — dozens of plan variants over one context — then
    runs through a single trie.  Evicted tries fold their counters into
    the context totals, so :meth:`stats` reports lifetime numbers.
    """

    def __init__(self, max_contexts: int = 64) -> None:
        self.max_contexts = max_contexts
        self._tries: OrderedDict[str, ExecutionTrie] = OrderedDict()
        self._retired = {
            "runs": 0,
            "rounds_replayed": 0,
            "rounds_executed": 0,
            "snapshots": 0,
        }
        self.contexts_created = 0

    def get(self, key: str) -> ExecutionTrie | None:
        trie = self._tries.get(key)
        if trie is not None:
            self._tries.move_to_end(key)
        return trie

    def put(self, key: str, trie: ExecutionTrie) -> None:
        self._tries[key] = trie
        self._tries.move_to_end(key)
        self.contexts_created += 1
        while len(self._tries) > self.max_contexts:
            _, evicted = self._tries.popitem(last=False)
            for name in self._retired:
                self._retired[name] += evicted.stats()[name]

    def stats(self) -> dict[str, int]:
        totals = dict(self._retired)
        for trie in self._tries.values():
            for name, value in trie.stats().items():
                totals[name] += value
        totals["contexts"] = self.contexts_created
        totals["live_contexts"] = len(self._tries)
        return totals

    def describe(self) -> str:
        s = self.stats()
        total = s["rounds_replayed"] + s["rounds_executed"]
        ratio = s["rounds_replayed"] / total if total else 0.0
        return (
            f"incremental execution: {s['runs']} runs over "
            f"{s['contexts']} contexts, "
            f"{s['rounds_replayed']}/{total} rounds replayed from "
            f"snapshots ({ratio:.0%}), {s['snapshots']} snapshots held"
        )


__all__ = [
    "ExecutionTrie",
    "IncrementalContext",
    "TrieRun",
    "plan_signatures",
]
