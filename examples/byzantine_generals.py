#!/usr/bin/env python3
"""The Byzantine generals, three ways.

A division of generals must agree whether to attack (1) or retreat (0)
while some of them are traitors.  This example walks the three regimes
the paper delineates:

  A. Three generals, one traitor, oral messages — impossible
     (Theorem 1; the engine constructs the betrayal).
  B. Four generals, one traitor, oral messages — EIG agrees.
  C. Three generals, one traitor, *signed* messages — Dolev–Strong
     agrees: weakening the Fault axiom (unforgeable signatures)
     dissolves the bound, exactly as the paper remarks in Section 2.

Run:  python examples/byzantine_generals.py
"""

from repro.core import refute_node_bound
from repro.graphs import complete_graph, triangle
from repro.problems import ByzantineAgreementSpec
from repro.protocols import (
    MajorityVoteDevice,
    authenticated_consensus_devices,
    eig_devices,
)
from repro.runtime.sync import SilentDevice, TwoFacedDevice, make_system, run

SPEC = ByzantineAgreementSpec()


def part_a_three_generals() -> None:
    print("=" * 72)
    print("A. Three generals, oral messages: the traitor wins")
    print("=" * 72)
    g = triangle()
    devices = {u: MajorityVoteDevice(default=0) for u in g.nodes}
    witness = refute_node_bound(g, devices, max_faults=1, rounds=3)
    broken = witness.violated[0]
    print(
        f"The engine produced a correct behavior ({broken.label}) of the "
        f"three-general army in which\nloyal generals "
        f"{sorted(map(str, broken.constructed.correct_nodes))} fail: "
    )
    for violation in broken.verdict.violations:
        print(f"  - {violation}")
    print()
    print("No cleverer strategy helps: swap in ANY deterministic devices")
    print("and refute_node_bound will construct a betrayal for them too.")
    print()


def part_b_four_generals() -> None:
    print("=" * 72)
    print("B. Four generals, oral messages: EIG holds the line")
    print("=" * 72)
    g = complete_graph(4)
    devices = dict(eig_devices(g, max_faults=1))
    # The traitor runs one honest persona toward n0 and another toward
    # the rest — the classic two-faced general.
    honest = eig_devices(g, 1)["n3"]
    devices["n3"] = TwoFacedDevice(honest, honest, ports_for_one=["n0"])
    inputs = {"n0": 1, "n1": 0, "n2": 1, "n3": 0}
    behavior = run(make_system(g, devices, inputs), rounds=2)
    verdict = SPEC.check(
        inputs, behavior.decisions(), correct=["n0", "n1", "n2"]
    )
    print(f"decisions: { {u: behavior.decision(u) for u in ('n0','n1','n2')} }")
    print(f"spec: {verdict.describe()}")
    assert verdict.ok
    print()


def part_c_signed_messages() -> None:
    print("=" * 72)
    print("C. Three generals, SIGNED messages: Dolev–Strong agrees")
    print("=" * 72)
    g = complete_graph(3)
    devices = dict(authenticated_consensus_devices(g, max_faults=1))
    devices["n2"] = SilentDevice()  # the traitor sulks (cannot forge)
    inputs = {"n0": 1, "n1": 1, "n2": 0}
    behavior = run(make_system(g, devices, inputs), rounds=2)
    verdict = SPEC.check(inputs, behavior.decisions(), correct=["n0", "n1"])
    print(f"decisions: { {u: behavior.decision(u) for u in ('n0','n1')} }")
    print(f"spec: {verdict.describe()}")
    assert verdict.ok
    print()
    print("Same three nodes as part A — but signatures break the Fault")
    print("axiom's masquerade, so the covering argument cannot be run.")


if __name__ == "__main__":
    part_a_three_generals()
    part_b_four_generals()
    part_c_signed_messages()
