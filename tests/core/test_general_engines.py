"""General-case (ε,δ,γ) engine via the footnote-3 collapse."""

import pytest

from repro.core.general import (
    collapse_to_triangle,
    refute_epsilon_delta_general,
)
from repro.graphs import GraphError, complete_graph, triangle
from repro.protocols import MedianDevice, MidpointDevice


class TestCollapseToTriangle:
    def test_k6_collapses(self):
        g = complete_graph(6)
        devices = {u: MedianDevice() for u in g.nodes}
        tri_devices, groups = collapse_to_triangle(g, devices, max_faults=2)
        assert set(tri_devices) == {"a", "b", "c"}
        assert sum(len(g2.members) for g2 in groups.values()) == 6

    def test_adequate_graph_rejected(self):
        g = complete_graph(6)
        devices = {u: MedianDevice() for u in g.nodes}
        with pytest.raises(GraphError):
            refute_epsilon_delta_general(
                g, devices, max_faults=1, epsilon=0.5, delta=1.0,
                gamma=1.0, rounds=2,
            )


class TestGeneralEpsilonDelta:
    def test_triangle_delegates(self):
        g = triangle()
        witness = refute_epsilon_delta_general(
            g,
            {u: MedianDevice() for u in g.nodes},
            max_faults=1,
            epsilon=0.25,
            delta=1.0,
            gamma=1.0,
            rounds=3,
        )
        assert witness.found

    def test_k6_two_faults(self):
        g = complete_graph(6)
        witness = refute_epsilon_delta_general(
            g,
            {u: MedianDevice() for u in g.nodes},
            max_faults=2,
            epsilon=0.25,
            delta=1.0,
            gamma=1.0,
            rounds=3,
        )
        assert witness.found
        assert witness.extra["collapsed"]
        # Chain structure intact: consecutive scenarios share a node.
        assert len(witness.links) >= witness.extra["k"] - 1

    def test_k5_two_faults_midpoint(self):
        g = complete_graph(5)
        witness = refute_epsilon_delta_general(
            g,
            {u: MidpointDevice() for u in g.nodes},
            max_faults=2,
            epsilon=0.5,
            delta=1.0,
            gamma=0.5,
            rounds=3,
        )
        assert witness.found

    def test_violations_name_member_nodes(self):
        g = complete_graph(6)
        witness = refute_epsilon_delta_general(
            g,
            {u: MedianDevice() for u in g.nodes},
            max_faults=2,
            epsilon=0.25,
            delta=1.0,
            gamma=1.0,
            rounds=3,
        )
        named = {
            node
            for checked in witness.violated
            for violation in checked.verdict.violations
            for node in violation.nodes
        }
        # The violations speak about ORIGINAL graph nodes, not groups.
        assert named <= set(g.nodes)
