#!/usr/bin/env python3
"""Development install with an offline fallback.

Tries ``pip install -e .`` first; if the environment cannot build
editable installs (e.g. no network and no ``wheel`` package), falls
back to dropping a ``.pth`` file into site-packages pointing at
``src/`` — functionally equivalent for a pure-Python package.
"""

import pathlib
import site
import subprocess
import sys

ROOT = pathlib.Path(__file__).resolve().parents[1]


def main() -> int:
    result = subprocess.run(
        [sys.executable, "-m", "pip", "install", "-e", str(ROOT), "-q"],
        capture_output=True,
        text=True,
    )
    if result.returncode == 0:
        print("installed editable via pip")
        return 0
    site_dir = pathlib.Path(site.getsitepackages()[0])
    pth = site_dir / "repro-dev.pth"
    pth.write_text(str(ROOT / "src") + "\n")
    print(
        f"pip editable install unavailable ({result.stderr.strip().splitlines()[-1] if result.stderr else 'unknown error'});\n"
        f"fell back to {pth}"
    )
    check = subprocess.run(
        [sys.executable, "-c", "import repro; print(repro.__version__)"],
        capture_output=True,
        text=True,
    )
    if check.returncode == 0:
        print(f"repro {check.stdout.strip()} importable")
        return 0
    print(check.stderr, file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
