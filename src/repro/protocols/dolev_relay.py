"""Reliable point-to-point transmission over vertex-disjoint paths
(after Dolev, "The Byzantine Generals Strike Again").

In a graph of connectivity ``κ >= 2f + 1``, Menger's theorem gives
``2f + 1`` internally vertex-disjoint paths between any two nodes.
Flooding a value down all of them and taking the majority at the
receiver defeats any ``f`` Byzantine intermediaries, because at most
``f`` paths contain a faulty node.  This is the mechanism that makes
the paper's ``2f + 1`` connectivity bound tight: with it, any
complete-graph protocol (e.g. EIG) runs over a sparse-but-adequate
network; the core engines prove ``2f`` connectivity cannot suffice.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Any

from ..graphs.connectivity import vertex_disjoint_paths
from ..graphs.graph import CommunicationGraph, GraphError, NodeId
from ..runtime.sync.device import Message, NodeContext, PortLabel, State, SyncDevice


class RelayNodeDevice(SyncDevice):
    """One node's role in a single source→target transmission.

    Every node is constructed with the full path set (routing is public
    knowledge).  The source injects its input on every path in round 0;
    intermediaries forward a message only if it arrived from the
    correct predecessor on a path they belong to; the target collects
    one value per path and decides the majority once every path's
    latest possible arrival round has passed.
    """

    def __init__(
        self,
        my_id: NodeId,
        source: NodeId,
        target: NodeId,
        paths: Sequence[Sequence[NodeId]],
        default: Any = 0,
    ) -> None:
        self.my_id = my_id
        self.source = source
        self.target = target
        self.paths = [tuple(p) for p in paths]
        self.default = default
        self.deadline = max(len(p) for p in self.paths) - 1

    def _position(self, path_id: int) -> int | None:
        path = self.paths[path_id]
        return path.index(self.my_id) if self.my_id in path else None

    # State: (pending_sends, per_path_values, decided)
    # pending_sends: tuple of (next_hop, message) to emit next round.

    def init_state(self, ctx: NodeContext) -> State:
        pending = []
        if self.my_id == self.source:
            for path_id, path in enumerate(self.paths):
                pending.append(
                    (path[1], ("relay", path_id, 1, ctx.input))
                )
        return (tuple(pending), {}, None)

    def send(
        self, ctx: NodeContext, state: State, round_index: int
    ) -> dict[PortLabel, Message]:
        pending, _values, _decided = state
        out: dict[PortLabel, list] = {}
        for next_hop, message in pending:
            out.setdefault(next_hop, []).append(message)
        return {port: tuple(msgs) for port, msgs in out.items()}

    def transition(
        self,
        ctx: NodeContext,
        state: State,
        round_index: int,
        inbox: Mapping[PortLabel, Message],
    ) -> State:
        _pending, values, decided = state
        values = dict(values)
        new_pending = []
        for sender, bundle in sorted(
            inbox.items(), key=lambda kv: str(kv[0])
        ):
            if not isinstance(bundle, tuple):
                continue
            for message in bundle:
                parsed = self._parse(message, sender)
                if parsed is None:
                    continue
                path_id, hop, value = parsed
                path = self.paths[path_id]
                if path[hop] != self.my_id:
                    continue
                if self.my_id == self.target and hop == len(path) - 1:
                    values.setdefault(path_id, value)
                elif hop + 1 < len(path):
                    new_pending.append(
                        (path[hop + 1], ("relay", path_id, hop + 1, value))
                    )
        if (
            self.my_id == self.target
            and decided is None
            and round_index >= self.deadline
        ):
            decided = _majority(
                [values.get(i, None) for i in range(len(self.paths))],
                self.default,
            )
        return (tuple(new_pending), values, decided)

    def choose(self, ctx: NodeContext, state: State) -> Any | None:
        return state[2]

    def _parse(
        self, message: Any, sender: NodeId
    ) -> tuple[int, int, Any] | None:
        if not (
            isinstance(message, tuple)
            and len(message) == 4
            and message[0] == "relay"
        ):
            return None
        _tag, path_id, hop, value = message
        if not isinstance(path_id, int) or not 0 <= path_id < len(self.paths):
            return None
        path = self.paths[path_id]
        if not isinstance(hop, int) or not 1 <= hop < len(path):
            return None
        if path[hop - 1] != sender:
            return None  # not from the legitimate predecessor
        return path_id, hop, value


def _majority(values: Sequence[Any], default: Any) -> Any:
    tally: dict[Any, int] = {}
    for v in values:
        if v is not None:
            tally[v] = tally.get(v, 0) + 1
    if not tally:
        return default
    best = max(tally.values())
    winners = sorted((v for v, c in tally.items() if c == best), key=repr)
    return winners[0] if len(winners) == 1 else default


def relay_devices(
    graph: CommunicationGraph,
    source: NodeId,
    target: NodeId,
    max_faults: int,
    default: Any = 0,
) -> dict[NodeId, RelayNodeDevice]:
    """Relay devices for one transmission; requires ``2f + 1``
    vertex-disjoint paths (i.e. local connectivity ``>= 2f + 1``)."""
    paths = vertex_disjoint_paths(graph, source, target)
    needed = 2 * max_faults + 1
    if len(paths) < needed:
        raise GraphError(
            f"only {len(paths)} vertex-disjoint {source!r}->{target!r} "
            f"paths; need {needed} for f = {max_faults} (and the core "
            "engines prove this is necessary)"
        )
    paths = paths[:needed]
    return {
        u: RelayNodeDevice(u, source, target, paths, default)
        for u in graph.nodes
    }


def transmission_rounds(
    graph: CommunicationGraph, source: NodeId, target: NodeId, max_faults: int
) -> int:
    """Rounds needed for the majority decision at the target."""
    paths = vertex_disjoint_paths(graph, source, target)[: 2 * max_faults + 1]
    return max(len(p) for p in paths) - 1
