"""Hardware clocks and the scaling algebra (Section 7).

A hardware clock is a real-valued, invertible, increasing function of
real time.  Theorem 8's construction needs exact composition and
inversion — the ring of covering nodes runs clocks ``q ∘ h⁻ⁱ`` with
``h = p⁻¹ ∘ q`` — so clocks here form a small closed algebra:

* :class:`LinearClock` — ``t ↦ rate·t + offset`` (closed under inverse
  and composition; covers Corollaries 12–14);
* :class:`PowerClock` — ``t ↦ scale·t^exponent`` on ``t > 0`` (for
  nonlinear examples);
* :class:`ComposedClock` / :func:`iterate` — formal compositions,
  with algebraic simplification for linear chains.

All clocks support ``__call__``, :meth:`ClockFunction.inverse`, and
:meth:`ClockFunction.then`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass


class ClockError(ValueError):
    """Raised for invalid clock constructions (non-increasing, etc.)."""


class ClockFunction(abc.ABC):
    """An increasing, invertible function of time."""

    @abc.abstractmethod
    def __call__(self, t: float) -> float:
        """The clock reading at real time ``t``."""

    @abc.abstractmethod
    def inverse(self) -> "ClockFunction":
        """The functional inverse."""

    def then(self, outer: "ClockFunction") -> "ClockFunction":
        """``outer ∘ self``: apply ``self`` first, then ``outer``."""
        return compose(outer, self)

    def iterate(self, times: int) -> "ClockFunction":
        """``self`` composed with itself ``times`` times.

        Negative ``times`` iterates the inverse; zero is the identity.
        """
        if times == 0:
            return identity()
        base = self if times > 0 else self.inverse()
        result = base
        for _ in range(abs(times) - 1):
            result = compose(base, result)
        return result


@dataclass(frozen=True)
class LinearClock(ClockFunction):
    """``t ↦ rate · t + offset`` with ``rate > 0``."""

    rate: float = 1.0
    offset: float = 0.0

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ClockError("clock rate must be positive")

    def __call__(self, t: float) -> float:
        return self.rate * t + self.offset

    def inverse(self) -> "LinearClock":
        return LinearClock(rate=1.0 / self.rate, offset=-self.offset / self.rate)

    def __repr__(self) -> str:
        return f"LinearClock({self.rate} * t + {self.offset})"


def identity() -> LinearClock:
    """The identity clock (perfect real-time clock)."""
    return LinearClock(1.0, 0.0)


@dataclass(frozen=True)
class PowerClock(ClockFunction):
    """``t ↦ scale · t^exponent`` for ``t > 0``; increasing when both
    parameters are positive."""

    scale: float = 1.0
    exponent: float = 1.0

    def __post_init__(self) -> None:
        if self.scale <= 0 or self.exponent <= 0:
            raise ClockError("scale and exponent must be positive")

    def __call__(self, t: float) -> float:
        if t < 0:
            raise ClockError("PowerClock is defined for t >= 0 only")
        return self.scale * (t ** self.exponent)

    def inverse(self) -> "PowerClock":
        return PowerClock(
            scale=self.scale ** (-1.0 / self.exponent),
            exponent=1.0 / self.exponent,
        )


class ComposedClock(ClockFunction):
    """Formal composition ``outer ∘ inner``."""

    def __init__(self, outer: ClockFunction, inner: ClockFunction) -> None:
        self._outer = outer
        self._inner = inner

    def __call__(self, t: float) -> float:
        return self._outer(self._inner(t))

    def inverse(self) -> ClockFunction:
        return ComposedClock(self._inner.inverse(), self._outer.inverse())

    def __repr__(self) -> str:
        return f"({self._outer!r} ∘ {self._inner!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ComposedClock):
            return NotImplemented
        return self._outer == other._outer and self._inner == other._inner

    def __hash__(self) -> int:
        return hash((ComposedClock, self._outer, self._inner))


def compose(outer: ClockFunction, inner: ClockFunction) -> ClockFunction:
    """``outer ∘ inner``, simplified when both are linear."""
    if isinstance(outer, LinearClock) and isinstance(inner, LinearClock):
        return LinearClock(
            rate=outer.rate * inner.rate,
            offset=outer.rate * inner.offset + outer.offset,
        )
    return ComposedClock(outer, inner)


def drift_map(p: ClockFunction, q: ClockFunction) -> ClockFunction:
    """The paper's ``h = p⁻¹ ∘ q``; satisfies ``h(t) >= t`` when
    ``p(t) <= q(t)`` for all ``t``."""
    return compose(p.inverse(), q)


def verify_clock_order(
    p: ClockFunction,
    q: ClockFunction,
    sample_times: tuple[float, ...] = (0.5, 1.0, 2.0, 5.0, 10.0),
) -> None:
    """Sanity check ``p(t) <= q(t)`` at sample times; raise otherwise."""
    for t in sample_times:
        if p(t) > q(t) + 1e-12:
            raise ClockError(
                f"clock order violated: p({t}) = {p(t)} > q({t}) = {q(t)}"
            )
