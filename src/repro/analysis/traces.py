"""Human-readable renderings of recorded behaviors.

Witnesses are only convincing if you can *read* the counterexample;
these renderers print synchronous behaviors round by round and timed
behaviors as event timelines, in plain text.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..graphs.graph import NodeId
from ..runtime.sync.behavior import SyncBehavior
from ..runtime.timed.behavior import TimedBehavior
from .tables import format_table


def _short(value, width: int = 28) -> str:
    text = repr(value)
    return text if len(text) <= width else text[: width - 1] + "…"


def render_sync_messages(
    behavior: SyncBehavior, nodes: Iterable[NodeId] | None = None
) -> str:
    """One row per directed edge, one column per round."""
    keep = set(nodes) if nodes is not None else set(behavior.graph.nodes)
    rows = []
    for (u, v), edge_behavior in sorted(
        behavior.edge_behaviors.items(), key=lambda kv: (str(kv[0][0]), str(kv[0][1]))
    ):
        if u not in keep or v not in keep:
            continue
        rows.append(
            (f"{u} → {v}", *(_short(m, 18) for m in edge_behavior.messages))
        )
    headers = ("edge", *(f"r{r}" for r in range(behavior.rounds)))
    return format_table(headers, rows, "messages per round")


def render_sync_decisions(behavior: SyncBehavior) -> str:
    """One row per node: decision and the round it appeared."""
    rows = [
        (str(u), _short(nb.decision), nb.decided_at)
        for u, nb in sorted(
            behavior.node_behaviors.items(), key=lambda kv: str(kv[0])
        )
    ]
    return format_table(("node", "decision", "round"), rows, "decisions")


def render_timed_events(
    behavior: TimedBehavior,
    nodes: Iterable[NodeId] | None = None,
    through: float | None = None,
) -> str:
    """A merged, time-ordered event log across the chosen nodes."""
    keep = (
        list(nodes) if nodes is not None else list(behavior.graph.nodes)
    )
    horizon = through if through is not None else behavior.horizon
    entries = []
    for u in keep:
        for event in behavior.node(u).events:
            if event.time <= horizon + 1e-12:
                entries.append((event.time, str(u), event.kind,
                                _short(event.payload)))
    entries.sort(key=lambda e: (e[0], e[1]))
    return format_table(
        ("time", "node", "event", "payload"),
        [(f"{t:.4g}", u, kind, payload) for t, u, kind, payload in entries],
        "event timeline",
    )


def explain_witness(witness, max_behaviors: int = 2) -> str:
    """A long-form account of an impossibility witness: the summary
    chain plus full message/decision traces of the violated behaviors
    (synchronous engines only; timed witnesses carry event traces which
    :func:`render_timed_events` prints from
    ``checked.constructed.behavior``)."""
    parts = [witness.describe()]
    shown = 0
    for checked in witness.violated:
        if shown >= max_behaviors:
            parts.append(
                f"... ({len(witness.violated) - shown} more violated "
                "behaviors omitted)"
            )
            break
        constructed = checked.constructed
        behavior = getattr(constructed, "behavior", None)
        if isinstance(behavior, SyncBehavior):
            parts.append("")
            parts.append(
                f"--- {checked.label}: full trace of the violating "
                "correct behavior ---"
            )
            parts.append(render_sync_messages(behavior))
            parts.append(render_sync_decisions(behavior))
            shown += 1
        elif isinstance(behavior, TimedBehavior):
            parts.append("")
            parts.append(f"--- {checked.label}: event timeline ---")
            parts.append(render_timed_events(behavior))
            shown += 1
    return "\n".join(parts)


def render_fire_times(behavior: TimedBehavior) -> str:
    rows = [
        (str(u), t if t is not None else "never")
        for u, t in sorted(
            behavior.fire_times().items(), key=lambda kv: str(kv[0])
        )
    ]
    return format_table(("node", "fire time"), rows, "FIRE states")
