#!/usr/bin/env python3
"""Designing a Byzantine-tolerant network with FLM's bounds as a
budget sheet.

You are provisioning a cluster that must reach agreement despite ``f``
compromised machines.  The paper tells you the two hard constraints —
at least ``3f + 1`` machines and ``2f + 1`` connectivity — and this
library tells you the cheapest wiring that meets them and *proves*
that anything less fails.

  1. The price list: minimum machines and minimum links per fault
     budget (Harary graphs are edge-optimal for their connectivity).
  2. Buy one link too few and the engine constructs the exploit.
  3. Buy exactly enough and EIG-over-relay actually reaches agreement
     on the sparse topology under a live Byzantine node.

Run:  python examples/network_design.py
"""

import math

from repro.analysis import format_table
from repro.core import refute_connectivity
from repro.graphs import (
    cheapest_adequate_graph,
    classify,
    harary_graph,
    node_connectivity,
)
from repro.problems import ByzantineAgreementSpec
from repro.protocols import MajorityVoteDevice, sparse_agreement_devices
from repro.runtime.sync import RandomLiarDevice, make_system, run


def price_list() -> None:
    print("=" * 72)
    print("1. The price list (minimum machines, minimum links)")
    print("=" * 72)
    rows = []
    for f in (1, 2, 3):
        n = 3 * f + 1
        g = cheapest_adequate_graph(n, f)
        rows.append(
            (
                f,
                n,
                2 * f + 1,
                len(g.undirected_edges),
                math.ceil((2 * f + 1) * n / 2),
                n * (n - 1) // 2,
            )
        )
    print(
        format_table(
            (
                "faults f",
                "machines (3f+1)",
                "connectivity (2f+1)",
                "links used",
                "theoretical minimum",
                "full mesh would cost",
            ),
            rows,
            "Harary graphs H_{2f+1, 3f+1}: adequacy at minimum wiring",
        )
    )
    print()


def one_link_too_few() -> None:
    print("=" * 72)
    print("2. Under-provisioning, caught by the engine")
    print("=" * 72)
    # A 7-node ring-of-rings with connectivity 2 only: inadequate for
    # f = 1 despite having enough machines.
    g = harary_graph(2, 7)
    print(classify(g, max_faults=1).describe())
    witness = refute_connectivity(
        g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=4
    )
    broken = witness.violated[0]
    print(
        f"engine verdict: behavior {broken.label} — "
        f"{broken.verdict.describe()}"
    )
    print()


def exactly_enough() -> None:
    print("=" * 72)
    print("3. Exact provisioning: agreement on the sparse topology")
    print("=" * 72)
    g = cheapest_adequate_graph(7, 1)
    print(classify(g, max_faults=1).describe())
    print(
        f"links: {len(g.undirected_edges)} of "
        f"{7 * 6 // 2} possible (κ = {node_connectivity(g)})"
    )
    devices, rounds = sparse_agreement_devices(g, max_faults=1)
    devices = dict(devices)
    traitor = g.nodes[-1]
    devices[traitor] = RandomLiarDevice(seed=2024)
    inputs = {u: i % 2 for i, u in enumerate(g.nodes)}
    behavior = run(make_system(g, devices, inputs), rounds)
    correct = [u for u in g.nodes if u != traitor]
    verdict = ByzantineAgreementSpec().check(
        inputs, behavior.decisions(), correct
    )
    print(f"EIG-over-relay, {rounds} physical rounds, traitor at {traitor}")
    print(f"decisions: { {u: behavior.decision(u) for u in correct} }")
    print(f"spec: {verdict.describe()}")
    assert verdict.ok


if __name__ == "__main__":
    price_list()
    one_link_too_few()
    exactly_enough()
