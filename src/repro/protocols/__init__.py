"""Consensus protocols: the positive side of the paper's bounds.

Naive devices (refutation targets for the impossibility engines) plus
the classical algorithms that match the bounds on adequate graphs:

* :mod:`~repro.protocols.eig` — EIG Byzantine agreement, ``n >= 3f+1``
  in ``f+1`` rounds (the matching upper bound for Theorem 1);
* :mod:`~repro.protocols.phase_king` — polynomial-message agreement;
* :mod:`~repro.protocols.authenticated` — Dolev–Strong signed-message
  agreement for any ``f`` (the paper's remark that weakening the Fault
  axiom breaks the bound);
* :mod:`~repro.protocols.dolev_relay` — transmission over ``2f+1``
  vertex-disjoint paths (the matching bound for connectivity);
* :mod:`~repro.protocols.approx_dlpsw` / :mod:`~repro.protocols.
  inexact_ms` — approximate/inexact agreement (Theorems 5/6 duals);
* :mod:`~repro.protocols.clock_sync_avg` — averaging clock
  synchronization (Theorem 8 dual);
* :mod:`~repro.protocols.reductions` — weak agreement and the firing
  squad from Byzantine agreement.
"""

from .approx_dlpsw import IteratedTrimmedMeanDevice, dlpsw_devices, trimmed_mean
from .authenticated import (
    AuthenticatedConsensusDevice,
    DolevStrongBroadcastDevice,
    authenticated_consensus_devices,
    sign,
    signed_core,
    signer_chain,
)
from .clock_sync_avg import (
    AveragingSyncDevice,
    ByzantineClockDevice,
    OffsetEnvelope,
    max_logical_skew,
)
from .crash_consensus import FloodSetDevice, floodset_devices
from .dolev_relay import RelayNodeDevice, relay_devices, transmission_rounds
from .eig import EIGDevice, eig_devices
from .gradecast import GradecastDevice, gradecast_devices
from .inexact_ms import (
    InexactAgreementDevice,
    fault_tolerant_midpoint,
    inexact_devices,
    rounds_for_target,
)
from .naive import (
    EchoInputDevice,
    FloodValueDevice,
    MajorityVoteDevice,
    MedianDevice,
    MidpointDevice,
    MinimumDevice,
)
from .phase_king import PhaseKingDevice, phase_king_devices
from .sparse_agreement import (
    RelayedAgreementDevice,
    build_routing,
    sparse_agreement_devices,
)
from .reliable_broadcast import (
    ReliableBroadcastDevice,
    reliable_broadcast_devices,
)
from .reductions import (
    FiringSquadFromAgreementDevice,
    fire_round_of,
    firing_squad_devices,
    weak_agreement_devices,
)
from .timed_naive import (
    AlarmWeakDevice,
    CountdownFireDevice,
    ExchangeMidpointClockDevice,
    ExchangeOnceWeakDevice,
    LowerEnvelopeClockDevice,
    RelayFireDevice,
)

__all__ = [
    "AlarmWeakDevice",
    "AuthenticatedConsensusDevice",
    "AveragingSyncDevice",
    "ByzantineClockDevice",
    "CountdownFireDevice",
    "DolevStrongBroadcastDevice",
    "EIGDevice",
    "EchoInputDevice",
    "ExchangeMidpointClockDevice",
    "ExchangeOnceWeakDevice",
    "FiringSquadFromAgreementDevice",
    "FloodSetDevice",
    "FloodValueDevice",
    "floodset_devices",
    "GradecastDevice",
    "gradecast_devices",
    "InexactAgreementDevice",
    "IteratedTrimmedMeanDevice",
    "LowerEnvelopeClockDevice",
    "MajorityVoteDevice",
    "MedianDevice",
    "MidpointDevice",
    "MinimumDevice",
    "OffsetEnvelope",
    "PhaseKingDevice",
    "RelayFireDevice",
    "RelayNodeDevice",
    "RelayedAgreementDevice",
    "ReliableBroadcastDevice",
    "reliable_broadcast_devices",
    "authenticated_consensus_devices",
    "dlpsw_devices",
    "eig_devices",
    "fault_tolerant_midpoint",
    "fire_round_of",
    "firing_squad_devices",
    "inexact_devices",
    "max_logical_skew",
    "phase_king_devices",
    "relay_devices",
    "rounds_for_target",
    "sparse_agreement_devices",
    "build_routing",
    "sign",
    "signed_core",
    "signer_chain",
    "transmission_rounds",
    "trimmed_mean",
    "weak_agreement_devices",
]
