"""The covering argument in the continuous-time model.

Identical in shape to :mod:`repro.core.covering_argument`, but over
timed behaviors: a scenario of the covering run is realized as a
correct behavior of the base graph by letting the remaining nodes
replay recorded edge behaviors (the Fault axiom), with optional
*time-scaling* of the scripts — which is how Theorem 8's Lemma 9
("scenario ``S_i h^i`` is a scenario of two correct nodes in a correct
behavior of ``G``") is executed rather than assumed.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from typing import Any

from ..graphs.coverings import CoveringMap
from ..graphs.graph import NodeId
from ..runtime.timed.adversary import TimedReplayDevice, TimedSilentDevice
from ..runtime.timed.behavior import TimedBehavior
from ..runtime.timed.clocks import ClockFunction, identity
from ..runtime.timed.device import DeviceFactory
from ..runtime.timed.executor import run_timed
from ..runtime.timed.system import TimedNodeAssignment, TimedSystem


class TimedArgumentError(RuntimeError):
    """Raised when a timed construction's preconditions or Locality /
    Scaling identifications fail."""


@dataclass(frozen=True)
class TimedConstructedBehavior:
    """One correct behavior ``E_i`` of the base graph, assembled from a
    timed covering scenario via the Fault axiom."""

    label: str
    scenario_nodes: tuple[NodeId, ...]
    correct_nodes: frozenset[NodeId]
    faulty_nodes: frozenset[NodeId]
    system: TimedSystem
    behavior: TimedBehavior
    inputs: Mapping[NodeId, Any]

    def decisions(self) -> dict[NodeId, Any | None]:
        return {u: self.behavior.node(u).decision for u in self.correct_nodes}

    def fire_times(self) -> dict[NodeId, float | None]:
        return {u: self.behavior.node(u).fire_time for u in self.correct_nodes}


def build_base_behavior_timed(
    covering: CoveringMap,
    cover_system: TimedSystem,
    cover_behavior: TimedBehavior,
    scenario_nodes: Iterable[NodeId],
    base_factories: Mapping[NodeId, DeviceFactory],
    label: str = "E",
    time_map: Callable[[float], float] | None = None,
    base_clocks: Mapping[NodeId, ClockFunction] | None = None,
    horizon: float | None = None,
    verify_through: float | None = None,
    time_tolerance: float = 0.0,
) -> TimedConstructedBehavior:
    """Realize a timed covering scenario as a correct base behavior.

    Parameters beyond the synchronous analogue:

    time_map:
        Applied to recorded send times of the border (and to the
        verification horizon); ``h^{-i}`` when realizing the scaled
        scenario ``S_i h^i`` of Theorem 8, identity otherwise.
    base_clocks:
        Hardware clocks for the correct base nodes (the scaled clocks
        ``q, p`` in Theorem 8); defaults to the covering nodes' clocks.
    verify_through:
        Check the Locality identification through this (mapped) time;
        defaults to the run horizon.
    """
    base = covering.base
    scenario = tuple(dict.fromkeys(scenario_nodes))
    if not covering.is_isomorphism_on(scenario):
        raise TimedArgumentError(
            f"{label}: phi is not an isomorphism on scenario nodes"
        )
    mapping = time_map or (lambda t: t)
    representative = {covering(u): u for u in scenario}
    correct = frozenset(representative)
    faulty = frozenset(base.nodes) - correct
    base_clocks = base_clocks or {}

    assignments: dict[NodeId, TimedNodeAssignment] = {}
    inputs: dict[NodeId, Any] = {}
    for g, u in representative.items():
        inputs[g] = cover_system.assignments[u].input
        assignments[g] = TimedNodeAssignment(
            factory=base_factories[g],
            input=inputs[g],
            port_of_neighbor={v: v for v in base.neighbors(g)},
            clock=base_clocks.get(g, cover_system.clock(u)),
        )
    for w in faulty:
        script = []
        for g in base.neighbors(w):
            if g not in correct:
                continue
            u = representative[g]
            source = covering.lift_neighbor(u, w)
            for send_time, message, arrival in cover_behavior.edge(
                source, u
            ).sends:
                script.append(
                    (mapping(send_time), g, message, mapping(arrival))
                )
        replay = TimedReplayDevice(script)
        assignments[w] = TimedNodeAssignment(
            factory=(lambda r=replay: r),
            input=None,
            port_of_neighbor={v: v for v in base.neighbors(w)},
            clock=identity(),
        )

    system = TimedSystem(
        base, assignments, cover_system.delay, cover_system.delay_mode
    )
    run_horizon = (
        horizon if horizon is not None else mapping(cover_behavior.horizon)
    )
    behavior = run_timed(system, run_horizon)
    check_through = (
        verify_through if verify_through is not None else run_horizon
    )
    _verify_timed_locality(
        covering,
        cover_behavior,
        behavior,
        representative,
        label,
        mapping,
        check_through,
        time_tolerance,
    )
    return TimedConstructedBehavior(
        label=label,
        scenario_nodes=scenario,
        correct_nodes=correct,
        faulty_nodes=faulty,
        system=system,
        behavior=behavior,
        inputs=inputs,
    )


def _verify_timed_locality(
    covering: CoveringMap,
    cover_behavior: TimedBehavior,
    base_behavior: TimedBehavior,
    representative: Mapping[NodeId, NodeId],
    label: str,
    time_map: Callable[[float], float],
    through: float,
    time_tolerance: float,
) -> None:
    """The Locality (and, when ``time_map`` is nontrivial, Scaling)
    identification: each correct base node's event trace must equal its
    covering counterpart's, with times mapped."""
    from ..runtime.timed.behavior import payloads_close

    payload_tolerance = max(time_tolerance, 0.0)
    for g, u in representative.items():
        expected = [
            e.shifted(time_map)
            for e in cover_behavior.node(u).events
            if time_map(e.time) <= through + 1e-12
        ]
        got = list(base_behavior.node(g).prefix(through))
        if len(expected) != len(got) or not all(
            a.kind == b.kind
            and (
                a.payload == b.payload
                if payload_tolerance == 0.0
                else payloads_close(a.payload, b.payload, payload_tolerance)
            )
            and abs(a.time - b.time) <= time_tolerance + 1e-12
            for a, b in zip(expected, got)
        ):
            raise TimedArgumentError(
                f"{label}: timed Locality identification failed at base "
                f"node {g!r} (covering node {u!r})"
            )


def silent_factory() -> TimedSilentDevice:
    """Factory for a device that does nothing (a degenerate fault)."""
    return TimedSilentDevice()
