"""Timed adversary devices: crash gating, silence, replay validation."""

import pytest

from repro.graphs import triangle
from repro.runtime.timed import (
    TimedCrashDevice,
    TimedReplayDevice,
    TimedSilentDevice,
    make_timed_system,
    run_timed,
)
from repro.runtime.timed.device import TimedDevice


class Beacon(TimedDevice):
    """Broadcasts a tick at clock times 1, 2, 3, ..."""

    def on_start(self, ctx, api):
        api.set_timer(("tick", 1), 1.0)

    def on_timer(self, ctx, api, name):
        _, i = name
        for port in ctx.ports:
            api.send(port, ("tick", i))
        api.set_timer(("tick", i + 1), float(i + 1))


class TestTimedCrash:
    def _run(self, crash_time):
        g = triangle()
        factories = {u: Beacon for u in g.nodes}
        factories["a"] = lambda: TimedCrashDevice(Beacon(), crash_time)
        system = make_timed_system(
            g, factories, {u: None for u in g.nodes}, delay=0.25
        )
        return run_timed(system, horizon=5.0)

    def test_sends_stop_at_crash(self):
        behavior = self._run(crash_time=2.5)
        send_times = [t for t, _, _ in behavior.edge("a", "b").sends]
        assert send_times and max(send_times) < 2.5
        # Honest nodes keep ticking past the crash.
        assert max(t for t, _, _ in behavior.edge("b", "a").sends) > 2.5

    def test_crash_at_zero_is_total_silence(self):
        behavior = self._run(crash_time=0.0)
        assert behavior.edge("a", "b").sends == ()

    def test_late_crash_is_harmless(self):
        behavior = self._run(crash_time=100.0)
        honest = self._run_honest()
        assert len(behavior.edge("a", "b").sends) == len(
            honest.edge("a", "b").sends
        )

    def _run_honest(self):
        g = triangle()
        system = make_timed_system(
            g, {u: Beacon for u in g.nodes}, {u: None for u in g.nodes},
            delay=0.25,
        )
        return run_timed(system, horizon=5.0)


class TestTimedSilent:
    def test_no_events_emitted(self):
        g = triangle()
        factories = {u: Beacon for u in g.nodes}
        factories["c"] = TimedSilentDevice
        system = make_timed_system(
            g, factories, {u: None for u in g.nodes}, delay=0.25
        )
        behavior = run_timed(system, 3.0)
        assert behavior.edge("c", "a").sends == ()
        assert behavior.node("c").decision is None
        assert behavior.node("c").fire_time is None


class TestTimedReplayValidation:
    def test_arrival_before_send_rejected(self):
        with pytest.raises(ValueError):
            TimedReplayDevice([(2.0, "b", "m", 1.0)])

    def test_negative_send_time_rejected(self):
        g = triangle()
        factories = {
            "a": (lambda: TimedReplayDevice([(-1.0, "b", "m", 0.5)])),
            "b": Beacon,
            "c": Beacon,
        }
        system = make_timed_system(
            g, factories, {u: None for u in g.nodes}
        )
        from repro.runtime.timed import TimedExecutionError

        with pytest.raises(TimedExecutionError):
            run_timed(system, 1.0)

    def test_script_sorted_by_time(self):
        device = TimedReplayDevice(
            [(2.0, "b", "late", 3.0), (1.0, "c", "early", 2.0)]
        )
        assert device.script[0][2] == "early"
