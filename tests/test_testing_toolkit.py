"""The public testing toolkit: device factories and strategies."""

import pytest
from hypothesis import given, settings

from repro.core import refute_node_bound, refute_simple_node_bound
from repro.graphs import triangle
from repro.runtime.sync import run, uniform_system
from repro.testing import (
    affine_blend_rule,
    agreement_device_families,
    averaging_device_families,
    constant_device,
    echo_device,
    gossip_rule_device,
    majority_rule,
)

TRIANGLE = triangle()


class TestFactories:
    def test_constant_device(self):
        behavior = run(
            uniform_system(
                TRIANGLE, constant_device(7), {u: 0 for u in TRIANGLE.nodes}
            ),
            1,
        )
        assert set(behavior.decisions().values()) == {7}

    def test_echo_device(self):
        behavior = run(
            uniform_system(
                TRIANGLE, echo_device(), {"a": 1, "b": 2, "c": 3}
            ),
            1,
        )
        assert behavior.decision("b") == 2

    def test_gossip_majority(self):
        device = gossip_rule_device(1, majority_rule())
        behavior = run(
            uniform_system(TRIANGLE, device, {"a": 1, "b": 1, "c": 0}), 2
        )
        assert set(behavior.decisions().values()) == {1}

    def test_gossip_rounds_guard(self):
        with pytest.raises(ValueError):
            gossip_rule_device(0, majority_rule())

    def test_affine_blend_weights_guard(self):
        with pytest.raises(ValueError):
            affine_blend_rule(0.8, 0.5)

    def test_affine_blend_is_convex(self):
        rule = affine_blend_rule(0.25, 0.25)
        assert rule(0.5, (0.0, 1.0)) == pytest.approx(
            0.25 * 0.0 + 0.25 * 1.0 + 0.5 * 0.5
        )


class TestStrategies:
    @given(agreement_device_families())
    @settings(max_examples=25, deadline=None)
    def test_every_family_is_refuted(self, family):
        device, rounds = family
        witness = refute_node_bound(
            TRIANGLE,
            {u: device for u in TRIANGLE.nodes},
            1,
            rounds=rounds + 1,
            require_violation=False,
        )
        assert witness.found

    @given(averaging_device_families())
    @settings(max_examples=20, deadline=None)
    def test_every_averaging_family_is_refuted(self, device):
        witness = refute_simple_node_bound(
            TRIANGLE,
            {u: device for u in TRIANGLE.nodes},
            1,
            rounds=2,
            require_violation=False,
        )
        assert witness.found
