"""Nondeterministic devices (Section 3's closing remark).

    "By considering a system and inputs as determining a set of
    behaviors, nondeterminism may be introduced in a straightforward
    manner. [...] the same proofs suffice to show that
    nondeterministic algorithms cannot guarantee Byzantine agreement."

Operationally: a nondeterministic device is a deterministic device
parameterized by an *oracle* — a seeded source of choices that is part
of the (hidden) input.  A nondeterministic algorithm *guarantees*
agreement only if every oracle resolution does; so to refute the
guarantee it suffices that the covering argument succeeds for each
resolution we try — and Theorem 1 says it succeeds for all of them.

:func:`refute_nondeterministic` runs the Theorem 1 engine across a
family of oracle resolutions and returns one witness per resolution.
"""

from __future__ import annotations

import hashlib
from collections.abc import Callable, Iterable, Mapping, Sequence
from dataclasses import dataclass
from typing import Any

from ..graphs.graph import CommunicationGraph, NodeId
from ..runtime.sync.device import SyncDevice
from .byzantine import refute_node_bound
from .witness import ImpossibilityWitness


@dataclass(frozen=True)
class SeededOracle:
    """A deterministic choice oracle: one fixed resolution of all the
    nondeterministic choices a device might make.

    ``choice(key, options)`` is a pure function of ``(seed, key)``, so
    the same oracle installed at several covering nodes resolves their
    choices identically — which is exactly the refinement of the
    Locality axiom the paper's remark requires.
    """

    seed: int

    def choice(self, key: Any, options: Sequence[Any]) -> Any:
        if not options:
            raise ValueError("cannot choose from no options")
        digest = hashlib.sha256(
            f"{self.seed}::{key!r}".encode()
        ).digest()
        return options[int.from_bytes(digest[:4], "big") % len(options)]

    def coin(self, key: Any) -> int:
        return self.choice(key, (0, 1))


DeviceFamily = Callable[[SeededOracle], Mapping[NodeId, SyncDevice]]


def refute_nondeterministic(
    graph: CommunicationGraph,
    family: DeviceFamily,
    max_faults: int,
    rounds: int,
    oracle_seeds: Iterable[int] = range(8),
) -> list[ImpossibilityWitness]:
    """Refute a nondeterministic agreement algorithm resolution by
    resolution.

    ``family(oracle)`` must return the device assignment obtained by
    fixing the algorithm's choices with ``oracle``.  Every resolution
    is a deterministic algorithm, so Theorem 1's engine produces a
    witness for each — hence no resolution guarantees agreement, hence
    the nondeterministic algorithm does not either.
    """
    witnesses = []
    for seed in oracle_seeds:
        devices = family(SeededOracle(seed))
        witnesses.append(
            refute_node_bound(graph, dict(devices), max_faults, rounds)
        )
    return witnesses
