"""CAMPAIGN — link-fault campaigns and the graceful-degradation frontier.

The impossibility engines speak about *node* faults; this bench maps
the complementary axis the fault-injection subsystem opens: message
loss, delay and partitions on the links.  Expected shape: the naive
majority protocol loses agreement at a single faulty link (and the
shrinker pins the counterexample to exactly one fault atom), while EIG
within its ``n >= 3f + 1`` node budget survives every attempt with
zero link budget.
"""

from conftest import report

from repro.analysis import format_table
from repro.analysis.campaign import (
    CampaignConfig,
    FRONTIER_HEADERS,
    degradation_frontier,
    run_campaign,
)
from repro.graphs import complete_graph
from repro.protocols import MajorityVoteDevice, eig_devices


def _naive_config(links, attempts=60):
    return CampaignConfig(
        graph=complete_graph(4),
        device_factory=lambda g: {u: MajorityVoteDevice() for u in g.nodes},
        rounds=2,
        max_node_faults=0,
        max_link_faults=links,
        attempts=attempts,
        seed=0,
    )


def test_naive_campaign_shrinks_to_one_link(benchmark):
    result = benchmark(lambda: run_campaign(_naive_config(links=3)))
    report("CAMPAIGN: naive majority, k = 3 links", result.describe())
    assert result.broken
    assert result.shrunk.plan.size == 1
    assert len(result.shrunk.node_faults) == 0


def test_eig_campaign_survives_node_budget(benchmark):
    config = CampaignConfig(
        graph=complete_graph(4),
        device_factory=lambda g: eig_devices(g, 1),
        rounds=2,
        max_node_faults=1,
        max_link_faults=0,
        attempts=40,
        seed=0,
    )
    result = benchmark(lambda: run_campaign(config))
    report("CAMPAIGN: EIG, f = 1 nodes, k = 0 links", result.describe())
    assert not result.broken


def test_degradation_frontier_naive(benchmark):
    frontier = benchmark(
        lambda: degradation_frontier(
            _naive_config(links=2, attempts=40)
        )
    )
    report(
        "FRONTIER: naive majority on K4",
        format_table(
            FRONTIER_HEADERS, [r.as_tuple() for r in frontier.rows]
        )
        + "\n"
        + frontier.describe(),
    )
    # Nothing breaks at zero budget; agreement falls within the sweep.
    assert frontier.rows[0].broken_conditions == ()
    assert frontier.first_break["agreement"] is not None
